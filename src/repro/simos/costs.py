"""Timing cost model, calibrated to the paper's testbed.

The evaluation ran on dual 1 GHz Pentium III nodes with gigabit Ethernet
(§6). Absolute constants here are order-of-magnitude estimates for that
hardware; the reproduced *shapes* (flat ~1 s checkpoint latency, µs-scale
coordination overhead, ~100 ms TCP recovery) depend on ratios, not the
exact values.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class CostModel:
    """All tunable timing constants for a simulated node."""

    #: Base cost of entering/leaving the kernel for one syscall.
    syscall_time: float = 0.5e-6
    #: Extra per-syscall cost of Zap's virtualisation layer (the <0.5 %
    #: runtime overhead claim rests on this being tiny, §6).
    pod_syscall_overhead: float = 0.15e-6
    #: Checkpoint images are written to disk; this dominates checkpoint
    #: latency ("the time to write this state to disk", §6).
    disk_write_bandwidth: float = 100e6   # bytes/s
    disk_read_bandwidth: float = 150e6    # bytes/s
    #: Fixed latency per synchronous file write (seek + commit). This is
    #: what makes per-message logging "prohibitive" for chatty apps (§2).
    disk_op_latency: float = 1e-4
    #: Memory-copy bandwidth for serialising captured state into chunks.
    #: The §5.2 pipeline overlaps this copy-out with the disk write; only
    #: the copy-out has to happen while the pod is stopped.
    serialize_bandwidth: float = 1e9      # bytes/s
    #: Fixed per-pod checkpoint overhead (quiesce, walk process table).
    checkpoint_fixed: float = 2e-3
    #: Fixed per-pod restart overhead (recreate processes, fds).
    restart_fixed: float = 3e-3
    #: Per-socket time to extract/restore socket state while the network
    #: locks are held (§4.1 — "blocked only for a short duration").
    socket_capture_time: float = 30e-6
    #: Agent CPU time to handle one coordination message (§6 shows the
    #: coordination overhead at 350–550 µs total across the protocol).
    agent_message_handling: float = 200e-6
    #: Coordinator CPU time to send or process one protocol message. Two
    #: of these per node per round gives the paper's ~50 µs/node growth.
    coordinator_message_handling: float = 25e-6
    #: Time to install/remove a netfilter rule.
    netfilter_update: float = 15e-6
    #: Time to send a SIGSTOP/SIGCONT to one process.
    signal_delivery: float = 5e-6


DEFAULT_COSTS = CostModel()
