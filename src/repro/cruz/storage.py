"""Checkpoint image storage on the network-accessible filesystem.

Zap "relies on a network-accessible file system that is accessible from any
machine on which the application may be restarted" (§2). The store pickles
images into the cluster's shared filesystem so any node can restart any pod,
and keeps a version history per pod for rollback.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.errors import CheckpointError
from repro.simos.filesystem import SharedFileSystem
from repro.zap.image import CheckpointImage, freeze_object, thaw_object


class ImageStore:
    """Versioned checkpoint images in the shared filesystem."""

    def __init__(self, fs: SharedFileSystem, root: str = "/checkpoints"):
        self.fs = fs
        self.root = root
        self._versions: Dict[str, int] = {}

    def _path(self, pod_name: str, version: int) -> str:
        return f"{self.root}/{pod_name}/v{version:06d}.img"

    def save(self, image: CheckpointImage) -> int:
        """Persist an image; returns its version number."""
        version = self._versions.get(image.pod_name, 0) + 1
        self._versions[image.pod_name] = version
        path = self._path(image.pod_name, version)
        blob = freeze_object(image)
        self.fs.create(path)
        self.fs.write_at(path, 0, blob)
        return version

    def load(self, pod_name: str,
             version: Optional[int] = None) -> CheckpointImage:
        if version is None:
            version = self.latest_version(pod_name)
        path = self._path(pod_name, version)
        if not self.fs.exists(path):
            raise CheckpointError(
                f"no checkpoint v{version} for pod {pod_name!r}")
        blob = self.fs.read_at(path, 0, self.fs.size(path))
        return thaw_object(blob)

    def latest_version(self, pod_name: str) -> int:
        version = self._versions.get(pod_name, 0)
        if version == 0:
            raise CheckpointError(f"no checkpoints for pod {pod_name!r}")
        return version

    def versions(self, pod_name: str) -> List[int]:
        return list(range(1, self._versions.get(pod_name, 0) + 1))

    def discard(self, pod_name: str, version: int) -> None:
        """Drop an uncommitted image (aborted round)."""
        path = self._path(pod_name, version)
        if self.fs.exists(path):
            self.fs.unlink(path)
        if self._versions.get(pod_name) == version:
            self._versions[pod_name] = version - 1

    def prune(self, pod_name: str, keep: int = 1) -> int:
        """Delete all but the newest ``keep`` versions; returns removed."""
        latest = self._versions.get(pod_name, 0)
        removed = 0
        for version in range(1, latest - keep + 1):
            path = self._path(pod_name, version)
            if self.fs.exists(path):
                self.fs.unlink(path)
                removed += 1
        return removed
