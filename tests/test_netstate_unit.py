"""Unit tests for Cruz's §4.1 socket-state capture/restore, at the
connection level (no pods, no coordinator)."""

import pytest

from repro.cruz.netstate import capture_connection, restore_connection
from repro.errors import CheckpointError
from repro.net.packet import PROTO_TCP
from repro.tcp.state import TcpState

from tests.helpers import Wire, make_pair
from tests.test_tcp_connection import SinkApp, SourceApp, establish


class FakeNode:
    """The minimal node surface restore_connection needs."""

    def __init__(self, sim, stack):
        self.sim = sim
        self.stack = type("S", (), {"tcp": stack})()
        self.name = "fake"


def test_capture_requires_frozen_connection():
    sim, wire, a, b = make_pair()
    client, server = establish(sim, a, b)
    with pytest.raises(CheckpointError, match="frozen"):
        capture_connection(client)


def test_capture_is_nondestructive():
    sim, wire, a, b = make_pair()
    client, server = establish(sim, a, b)
    sink = SinkApp(sim, server)
    SourceApp(sim, client, b"k" * 150000)
    sim.run(until=sim.now + 0.01)
    client.freeze()
    before = (client.tcb.snd_una, client.tcb.snd_nxt,
              client.send_buffer.unacked_bytes,
              len(client.send_buffer.pending))
    detail = capture_connection(client)
    after = (client.tcb.snd_una, client.tcb.snd_nxt,
             client.send_buffer.unacked_bytes,
             len(client.send_buffer.pending))
    assert before == after
    client.unfreeze()
    sim.run(until=sim.now + 20)
    assert bytes(sink.received) == b"k" * 150000
    assert detail["kind"] == "connected"


def test_snapshot_sequence_adjustment():
    """§4.1: the saved TCB reflects empty buffers via two seq changes."""
    sim, wire, a, b = make_pair()
    client, server = establish(sim, a, b)
    SinkApp(sim, server)
    SourceApp(sim, client, b"s" * 120000)
    sim.run(until=sim.now + 0.01)
    client.freeze()
    detail = capture_connection(client)
    client.unfreeze()
    snap = detail["tcb"]
    live = client.tcb
    # Send side rewound: contents "not yet issued by the process".
    assert snap.snd_nxt == snap.snd_una == live.snd_una
    assert live.snd_nxt > live.snd_una  # live one really had data out
    # The walked packets cover exactly [snd_una, snd_nxt).
    walked = sum(len(p) for _seq, p in detail["send_segments"])
    assert walked == live.snd_nxt - live.snd_una
    assert detail["send_segments"][0][0] == live.snd_una


def test_capture_preserves_packet_boundaries():
    sim, wire, a, b = make_pair()
    client, server = establish(sim, a, b)
    SourceApp(sim, client, b"b" * 80000)
    sim.run(until=sim.now + 0.005)
    client.freeze()
    detail = capture_connection(client)
    client.unfreeze()
    segments = detail["send_segments"]
    assert segments
    # Contiguous, boundary-preserving: each packet starts where the
    # previous ended.
    for (seq1, payload1), (seq2, _p2) in zip(segments, segments[1:]):
        assert seq1 + len(payload1) == seq2


def test_restore_roundtrip_on_fresh_stacks():
    """Capture both ends mid-stream, rebuild them on brand-new stacks,
    and verify the stream completes exactly."""
    sim, wire, a, b = make_pair()
    client, server = establish(sim, a, b)
    sink = SinkApp(sim, server)
    payload = b"r" * 200000
    source = SourceApp(sim, client, payload)
    sim.run(until=sim.now + 0.01)
    already = bytes(sink.received)

    # Freeze and capture both endpoints (a consistent cut: the wire keeps
    # flying packets, which will be dropped — the restored TCP recovers).
    client.freeze()
    server.freeze()
    c_detail = capture_connection(client)
    s_detail = capture_connection(server)

    # Tear down the originals silently and rebuild both on new stacks.
    from repro.tcp.stack import TcpStack
    from repro.net.addresses import Ipv4Address
    client.destroy()
    server.destroy()
    ip_a, old_stack_a = a
    ip_b, old_stack_b = b
    new_a = TcpStack(sim, wire.send, name="A2", time_wait_s=1.0,
                     iss_seed=7)
    new_b = TcpStack(sim, wire.send, name="B2", time_wait_s=1.0,
                     iss_seed=8)
    wire.endpoints[ip_a] = new_a
    wire.endpoints[ip_b] = new_b

    rc = restore_connection(FakeNode(sim, new_a), c_detail)
    rs = restore_connection(FakeNode(sim, new_b), s_detail)
    sink2 = SinkApp(sim, rs)
    # The restored server must first see the §4.1 alternate-buffer bytes.
    sink2.received[:0] = s_detail["recv_data"]

    source2 = SourceApp(sim, rc, source.remaining)
    sim.run(until=sim.now + 30)
    assert already + bytes(sink2.received) == payload
    del source2


def test_restored_sender_retransmits_dropped_reissues():
    """Re-issued sends during restore may be dropped (comm disabled);
    retransmission must recover them."""
    sim, wire, a, b = make_pair()
    client, server = establish(sim, a, b)
    sink = SinkApp(sim, server)
    SourceApp(sim, client, b"d" * 50000)
    sim.run(until=sim.now + 0.005)
    client.freeze()
    detail = capture_connection(client)
    client.destroy()

    from repro.tcp.stack import TcpStack
    ip_a, _ = a
    new_a = TcpStack(sim, wire.send, name="A2", time_wait_s=1.0,
                     iss_seed=9)
    wire.endpoints[ip_a] = new_a

    # Drop everything during the restore window (the netfilter analogue).
    blackout = {"active": True}
    wire.drop_fn = lambda packet: blackout["active"]
    restored = restore_connection(FakeNode(sim, new_a), detail)
    assert restored.send_buffer.unacked_bytes > 0
    sim.call_later(0.05, lambda: blackout.update(active=False))
    sim.run(until=sim.now + 30)
    assert restored.segments_retransmitted >= 1
    assert bytes(sink.received) == b"d" * 50000


def test_listener_capture_restores_accept_queue():
    sim, wire, a, b = make_pair()
    ip_a, stack_a = a
    ip_b, stack_b = b
    listener = stack_b.listen(ip_b, 6100)
    client = stack_a.connect(ip_a, ip_b, 6100)
    sim.run_until_complete(client.established_event, limit=30)
    sim.run(until=sim.now + 0.1)
    # The established connection sits unaccepted in the queue.
    assert len(listener.accept_queue) == 1
    from repro.cruz.netstate import CruzSocketCodec
    from repro.simos.sockets import TcpSocket

    # Wrap in a socket the way the fd table would reference it.
    class StackShim:
        tcp = stack_b
        eth0 = type("I", (), {"ip": ip_b})()

    sock = TcpSocket(sim, StackShim())
    sock.bound = (ip_b, 6100)
    sock.listener = listener
    codec = CruzSocketCodec()
    for pending in listener.accept_queue:
        pending.freeze()
    detail = codec.capture_tcp(sock)
    for pending in listener.accept_queue:
        pending.unfreeze()
    assert detail["kind"] == "listening"
    assert len(detail["queued"]) == 1
    assert detail["queued"][0]["kind"] == "connected"


def test_half_open_connect_restored_as_bound():
    sim, wire, a, b = make_pair()
    ip_a, stack_a = a
    ip_b, _stack_b = b
    wire.drop_fn = lambda packet: True  # SYN never arrives
    client = stack_a.connect(ip_a, ip_b, 6200)
    sim.run(until=sim.now + 0.05)
    assert client.state == TcpState.SYN_SENT

    from repro.cruz.netstate import CruzSocketCodec
    from repro.simos.sockets import TcpSocket

    class StackShim:
        tcp = stack_a
        eth0 = type("I", (), {"ip": ip_a})()

    sock = TcpSocket(sim, StackShim())
    sock.connection = client
    sock.bound = (ip_a, client.tcb.local_port)
    detail = CruzSocketCodec().capture_tcp(sock)
    assert detail["kind"] == "bound"


def test_alternate_buffer_concatenated_on_second_checkpoint():
    """§4.1: checkpoint with a non-empty alternate buffer concatenates
    alternate + receive-buffer contents."""
    sim, wire, a, b = make_pair()
    client, server = establish(sim, a, b)
    client.send(b"NEWDATA")
    sim.run(until=sim.now + 0.1)
    server.freeze()
    detail = capture_connection(server, alternate=b"OLDRESTORED")
    server.unfreeze()
    assert detail["recv_data"] == b"OLDRESTORED" + b"NEWDATA"


def test_close_requested_travels_through_restore():
    sim, wire, a, b = make_pair()
    client, server = establish(sim, a, b)
    client.send(b"tail")
    client.close()  # FIN pends behind the data
    client.freeze()
    detail = capture_connection(client)
    assert detail["close_requested"]
