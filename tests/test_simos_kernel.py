"""Kernel tests: processes, scheduling, signals, errors."""

import pytest

from repro.cluster import Cluster
from repro.simos.process import (
    ProcessState,
    SIGCONT,
    SIGKILL,
    SIGSTOP,
)
from repro.simos.program import PhasedProgram
from repro.simos.syscalls import Exit, sys

from tests.programs import ComputeLoop, FailingProgram, Sleeper


def make_cluster(n=1, **kwargs):
    kwargs.setdefault("time_wait_s", 0.5)
    return Cluster(n, **kwargs)


def test_spawn_run_exit():
    cluster = make_cluster()
    node = cluster.nodes[0]
    proc = node.spawn(ComputeLoop(iterations=3, work_s=0.1))
    cluster.run()
    assert proc.exit_code == 0
    assert proc.program.done == 3
    assert proc.cpu_seconds == pytest.approx(0.3)


def test_compute_respects_cpu_capacity():
    """3 one-second jobs on a 2-CPU node need ~2 s of makespan."""
    cluster = make_cluster(cpus_per_node=2)
    node = cluster.nodes[0]
    for _ in range(3):
        node.spawn(ComputeLoop(iterations=1, work_s=1.0))
    cluster.run()
    assert 2.0 <= cluster.sim.now < 2.1


def test_sleep_does_not_consume_cpu():
    cluster = make_cluster(cpus_per_node=1)
    node = cluster.nodes[0]
    sleepers = [node.spawn(Sleeper(1.0)) for _ in range(5)]
    cluster.run()
    assert all(p.exit_code == 0 for p in sleepers)
    assert cluster.sim.now < 1.1  # sleeps overlap


def test_pids_are_unique_and_increasing():
    cluster = make_cluster()
    node = cluster.nodes[0]
    procs = [node.spawn(Sleeper(0.01)) for _ in range(4)]
    pids = [p.pid for p in procs]
    assert pids == sorted(pids)
    assert len(set(pids)) == 4


def test_syscall_error_delivered_as_result():
    cluster = make_cluster()
    node = cluster.nodes[0]
    proc = node.spawn(FailingProgram())
    cluster.run()
    assert proc.exit_code == 0
    assert proc.program.errno == "EBADF"


def test_unknown_syscall_is_enosys():
    class Weird(FailingProgram):
        def step(self, result):
            if not self.asked:
                self.asked = True
                return sys("frobnicate")
            from repro.errors import SyscallError
            if isinstance(result, SyscallError):
                self.errno = result.errno
            return Exit(0)

    cluster = make_cluster()
    proc = cluster.nodes[0].spawn(Weird())
    cluster.run()
    assert proc.program.errno == "ENOSYS"


def test_sigstop_freezes_progress_and_sigcont_resumes():
    cluster = make_cluster()
    node = cluster.nodes[0]
    proc = node.spawn(ComputeLoop(iterations=100, work_s=0.01))
    cluster.run_for(0.105)
    done_at_stop = proc.program.done
    node.signal_now(proc.pid, SIGSTOP)
    cluster.run_for(0.5)
    # One in-flight compute may finish, but no further steps run.
    assert proc.program.done <= done_at_stop + 1
    assert proc.state == ProcessState.STOPPED
    node.signal_now(proc.pid, SIGCONT)
    cluster.run()
    assert proc.program.done == 100
    assert proc.exit_code == 0


def test_sigkill_terminates_blocked_process():
    class BlockForever(PhasedProgram):
        initial_phase = "pipe"

        def __init__(self):
            super().__init__()
            self.rfd = None

        def phase_pipe(self, result):
            self.goto("read")
            return sys("pipe")

        def phase_read(self, result):
            if isinstance(result, tuple):
                self.rfd = result[0]
            return sys("read", self.rfd, 10)

    cluster = make_cluster()
    node = cluster.nodes[0]
    proc = node.spawn(BlockForever())
    cluster.run_for(0.1)
    assert proc.state == ProcessState.BLOCKED
    node.kill(proc.pid, SIGKILL)
    cluster.run_for(0.1)
    assert proc.exit_code == -9


def test_waitpid_returns_child_exit_code():
    class Parent(PhasedProgram):
        initial_phase = "spawn"

        def __init__(self):
            super().__init__()
            self.child_pid = None
            self.child_code = None

        def phase_spawn(self, result):
            self.goto("wait")
            return sys("spawn", Sleeper(0.05))

        def phase_wait(self, result):
            self.child_pid = result
            self.goto("done")
            return sys("waitpid", self.child_pid)

        def phase_done(self, result):
            self.child_code = result
            return Exit(0)

    cluster = make_cluster()
    proc = cluster.nodes[0].spawn(Parent())
    cluster.run()
    assert proc.program.child_code == 0


def test_exit_closes_descriptors():
    class LeaveOpen(PhasedProgram):
        initial_phase = "pipe"

        def phase_pipe(self, result):
            self.goto("done")
            return sys("pipe")

        def phase_done(self, result):
            self.pipe_fds = result
            return Exit(0)

    cluster = make_cluster()
    node = cluster.nodes[0]
    proc = node.spawn(LeaveOpen())
    cluster.run()
    assert len(proc.fds) == 0


def test_gettime_tracks_simulation_clock():
    class Clocky(PhasedProgram):
        initial_phase = "sleep"

        def __init__(self):
            super().__init__()
            self.t = None

        def phase_sleep(self, result):
            self.goto("ask")
            return sys("sleep", 2.5)

        def phase_ask(self, result):
            self.goto("done")
            return sys("gettime")

        def phase_done(self, result):
            self.t = result
            return Exit(0)

    cluster = make_cluster()
    proc = cluster.nodes[0].spawn(Clocky())
    cluster.run()
    assert proc.program.t == pytest.approx(2.5, abs=0.01)


def test_memory_accounting_syscalls():
    class Mapper(PhasedProgram):
        initial_phase = "map"

        def phase_map(self, result):
            self.goto("touch")
            return sys("mmap", "grid", 1 << 20)

        def phase_touch(self, result):
            self.goto("done")
            return sys("mtouch", "grid", fraction=0.5)

        def phase_done(self, result):
            return Exit(0)

    cluster = make_cluster()
    node = cluster.nodes[0]
    proc = node.spawn(Mapper())
    cluster.run()
    assert proc.memory.resident_bytes == 1 << 20
    assert proc.memory.dirty_bytes() > 0


def test_reserve_pid_skips_taken_ids():
    cluster = make_cluster()
    node = cluster.nodes[0]
    node.reserve_pid(50)
    proc = node.spawn(Sleeper(0.01))
    assert proc.pid == 51
