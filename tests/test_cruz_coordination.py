"""Coordinated checkpoint/restart of distributed applications (§5)."""

import pytest

from repro.apps.ring import RingWorker, ring_factory, validate_ring
from repro.cruz.cluster import CruzCluster
from repro.errors import CoordinationError


def make_cluster(n_app_nodes, **kwargs):
    kwargs.setdefault("time_wait_s", 0.5)
    kwargs.setdefault("coordinator_timeout_s", 20.0)
    return CruzCluster(n_app_nodes, **kwargs)


def ring_app(cluster, n_ranks, max_token=2000, padding=256,
             work_per_hop_s=0.0005, name="ring"):
    return cluster.launch_app_factory(
        name, n_ranks,
        ring_factory(n_ranks, max_token=max_token, padding=padding,
                     work_per_hop_s=work_per_hop_s))


def workers_of(cluster, app):
    return [p for p in cluster.app_programs(app)
            if isinstance(p, RingWorker)]


def run_app_to_completion(cluster, app, limit=600.0):
    cluster.run_until(
        lambda: all(not proc.is_alive
                    for pod in app.pods for proc in pod.processes()),
        limit=limit, step=0.5)


def test_coordinated_checkpoint_commits_and_app_completes():
    cluster = make_cluster(4)
    app = ring_app(cluster, 4)
    cluster.run_for(0.3)  # ring is circulating
    stats = cluster.checkpoint_app(app)
    assert stats.committed and not stats.aborted
    assert stats.latency_s > 0
    run_app_to_completion(cluster, app)
    workers = workers_of(cluster, app)
    assert all(w.finished or w.seen for w in workers)
    validate_ring(workers)


def test_checkpoint_latency_includes_local_save():
    cluster = make_cluster(2)
    app = ring_app(cluster, 2, max_token=100000)
    # Give each pod real memory so the disk write dominates.
    for pod in app.pods:
        pod.processes()[0].memory.allocate("grid", 50 << 20)
    cluster.run_for(0.2)
    stats = cluster.checkpoint_app(app)
    # 50 MiB at 100 MB/s is ~0.5 s of local save.
    assert stats.max_local_op_s > 0.4
    assert stats.latency_s >= stats.max_local_op_s
    # Coordination adds microseconds, not milliseconds (§6).
    assert stats.coordination_overhead_s < 5e-3


def test_coordination_overhead_microseconds_scale():
    cluster = make_cluster(4)
    app = ring_app(cluster, 4)
    cluster.run_for(0.2)
    stats = cluster.checkpoint_app(app)
    assert 0 < stats.coordination_overhead_s < 2e-3


def test_message_complexity_is_linear():
    counts = {}
    for n in (2, 4, 8):
        cluster = make_cluster(n)
        app = ring_app(cluster, n)
        cluster.run_for(0.2)
        before = cluster.coordination_message_count()
        cluster.checkpoint_app(app)
        counts[n] = cluster.coordination_message_count() - before
    # Fig. 2 protocol: 4 messages per node (checkpoint, done, continue,
    # continue-done).
    assert counts[2] == 8
    assert counts[4] == 16
    assert counts[8] == 32


def test_checkpoint_then_crash_then_restart_preserves_ring_invariant():
    """The end-to-end §5 scenario: consistent global state across failure."""
    cluster = make_cluster(3)
    app = ring_app(cluster, 3, max_token=3000)
    cluster.run_for(0.3)
    stats = cluster.checkpoint_app(app)
    assert stats.committed
    cluster.run_for(0.1)  # keep running past the checkpoint
    cluster.crash_app(app)
    restart_stats = cluster.restart_app(app)
    assert restart_stats.committed
    run_app_to_completion(cluster, app)
    workers = workers_of(cluster, app)
    assert any(w.finished for w in workers)
    validate_ring(workers)


def test_restart_on_different_nodes():
    """Migration via restart: pods land on different machines (§4.2)."""
    cluster = make_cluster(4)
    app = ring_app(cluster, 2, max_token=2500)
    original_nodes = [pod.node.name for pod in app.pods]
    cluster.run_for(0.3)
    cluster.checkpoint_app(app)
    cluster.crash_app(app)
    restart_stats = cluster.restart_app(app, node_indices=[2, 3])
    assert restart_stats.committed
    new_nodes = [pod.node.name for pod in app.pods]
    assert set(new_nodes).isdisjoint(set(original_nodes))
    run_app_to_completion(cluster, app)
    validate_ring(workers_of(cluster, app))


def test_restart_from_older_version():
    cluster = make_cluster(2)
    app = ring_app(cluster, 2, max_token=5000)
    cluster.run_for(0.2)
    cluster.checkpoint_app(app)   # v1
    v1_progress = max(len(w.seen) for w in workers_of(cluster, app))
    cluster.run_for(0.3)
    cluster.checkpoint_app(app)   # v2
    cluster.crash_app(app)
    cluster.restart_app(app, version=1)
    workers = workers_of(cluster, app)
    # Progress rolled back to roughly the v1 point.
    assert max(len(w.seen) for w in workers) <= v1_progress + 2
    run_app_to_completion(cluster, app)
    validate_ring(workers_of(cluster, app))


def test_repeated_periodic_checkpoints():
    cluster = make_cluster(3)
    app = ring_app(cluster, 3, max_token=4000)
    rounds = []
    for _ in range(4):
        cluster.run_for(0.15)
        rounds.append(cluster.checkpoint_app(app))
    assert all(r.committed for r in rounds)
    run_app_to_completion(cluster, app)
    validate_ring(workers_of(cluster, app))
    assert len(cluster.store.versions(app.pods[0].name)) == 4


def test_fig4_optimized_protocol_commits_and_shortens_blocking():
    cluster = make_cluster(3)
    app = ring_app(cluster, 3, max_token=5000)
    # Unequal state sizes: node 0's save is much slower.
    app.pods[0].processes()[0].memory.allocate("big", 80 << 20)
    cluster.run_for(0.2)
    stats = cluster.checkpoint_app(app, optimized=True)
    assert stats.committed
    run_app_to_completion(cluster, app)
    validate_ring(workers_of(cluster, app))


def test_abort_on_crashed_agent():
    cluster = make_cluster(3, coordinator_timeout_s=2.0)
    app = ring_app(cluster, 3, max_token=100000)
    cluster.run_for(0.2)
    cluster.agents[1].crashed = True
    with pytest.raises(CoordinationError):
        cluster.checkpoint_app(app)
    stats = cluster.coordinator.rounds[-1]
    assert stats.aborted and not stats.committed


def test_abort_leaves_surviving_nodes_running():
    cluster = make_cluster(3, coordinator_timeout_s=2.0)
    app = ring_app(cluster, 3, max_token=4000)
    cluster.run_for(0.2)
    cluster.agents[2].crashed = True
    with pytest.raises(CoordinationError):
        cluster.checkpoint_app(app)
    cluster.run_for(0.1)  # let the in-flight <abort> messages land
    # Agents 0 and 1 received the abort: their pods resumed and their
    # filters were removed; agent 2's pod is still running too (its agent
    # crashed, not the pod), but its filter never got installed since the
    # crashed agent ignored the request entirely.
    for node in cluster.nodes[:2]:
        assert not node.stack.netfilter.rules
    for pod in app.pods:
        assert any(p.is_alive for p in pod.processes())


def test_checkpoint_with_incremental_flag():
    cluster = make_cluster(2)
    app = ring_app(cluster, 2, max_token=100000)
    app.pods[0].processes()[0].memory.allocate("grid", 40 << 20)
    cluster.run_for(0.2)
    first = cluster.checkpoint_app(app, incremental=True)
    cluster.run_for(0.05)
    second = cluster.checkpoint_app(app, incremental=True)
    # Second incremental round is much faster: only dirty pages written.
    assert second.max_local_op_s < first.max_local_op_s / 5
