"""A compute-bound, communication-free workload.

Used by the Fig. 4 benchmark: with no inter-rank communication, the
early-resume optimisation's benefit (fast-saving nodes resume without
waiting for the slowest) is directly visible as reduced per-pod pause time.
"""

from __future__ import annotations

from repro.simos.program import PhasedProgram
from repro.simos.syscalls import Exit, sys


class ComputeBound(PhasedProgram):
    """Run ``iterations`` chunks of ``work_s`` CPU seconds each."""

    name = "compute-bound"
    initial_phase = "setup"

    def __init__(self, iterations: int, work_s: float = 0.01,
                 state_bytes: int = 0, touch_fraction: float = 1.0):
        super().__init__()
        self.iterations = iterations
        self.work_s = work_s
        self.state_bytes = state_bytes
        self.touch_fraction = touch_fraction
        self.done = 0

    def phase_setup(self, result):
        self.goto("work")
        if self.state_bytes:
            return sys("mmap", "state", self.state_bytes)
        return sys("gettime")

    def phase_work(self, result):
        if self.done >= self.iterations:
            return Exit(0)
        self.done += 1
        self.goto("touch")
        return sys("compute", self.work_s)

    def phase_touch(self, result):
        self.goto("work")
        if self.state_bytes:
            return sys("mtouch", "state", fraction=self.touch_fraction)
        return sys("gettime")


def compute_factory(iterations: int, work_s: float = 0.01,
                    state_mb_per_rank=None, touch_fraction: float = 1.0):
    """Factory for launch_app_factory; ``state_mb_per_rank`` may be a list
    giving each rank a different checkpointable state size.
    ``touch_fraction`` controls how much of the state each iteration
    dirties (drives incremental-checkpoint behaviour)."""

    def make(rank: int, _peer_ips):
        if state_mb_per_rank is None:
            state_bytes = 0
        elif isinstance(state_mb_per_rank, (list, tuple)):
            state_bytes = int(state_mb_per_rank[rank] * (1 << 20))
        else:
            state_bytes = int(state_mb_per_rank * (1 << 20))
        return ComputeBound(iterations=iterations, work_s=work_s,
                            state_bytes=state_bytes,
                            touch_fraction=touch_fraction)

    return make
