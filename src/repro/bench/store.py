"""``repro bench store``: sharded-store restore bandwidth and healing.

The distributed image store shards the content-addressed chunk space
across the application nodes (writer-affinity primary plus hash-ring
successors, ``replication_factor`` copies). This suite measures what
that buys and what it must never lose:

* **restore scaling** — checkpoint a pod at RF 1/2/4 on a 5-node
  cluster, then restart it on the coordinator node (which never holds a
  shard, so every chunk is a remote fetch). A restore streams in
  parallel from every surviving replica; the effective bandwidth must
  grow with the number of source nodes (RF=4 vs RF=1 at least
  ``--min-scaling``, 3x by default).
* **single-loss healing** — at RF=2, crash each application node in
  turn: every committed version must stay reconstructible from the
  surviving replicas (zero lost versions), and the background
  re-replication daemon must repair the replica deficit back to RF.
* **determinism** — the RF=2 restore run is repeated under the LIFO
  event tie-break and diffed field-for-field against FIFO.

All quantities are simulated seconds, so they travel across machines.
``--save`` records the run to ``benchmarks/BENCH_store.json``;
``--compare`` re-runs and fails on the explicit floors or — when the
workload matches the committed baseline — on scaling drift beyond the
tolerance.
"""

from __future__ import annotations

from typing import Dict, List, Optional

DEFAULT_BASELINE = "benchmarks/BENCH_store.json"
#: Replication factors the restore-scaling sweep measures.
DEFAULT_RFS = (1, 2, 4)
DEFAULT_APP_NODES = 5
DEFAULT_MEMORY_MB = 16.0
#: Required RF=4 / RF=1 restore bandwidth ratio (4 source disks vs 1).
DEFAULT_MIN_SCALING = 3.0
#: Allowed relative drop below the committed baseline's scaling.
DEFAULT_TOLERANCE = 0.25


def _launch(cluster, memory_mb: float):
    from repro.apps.slm import slm_factory

    return cluster.launch_app_factory(
        "slm", 1, slm_factory(1, global_rows=8, cols=32, steps=100000,
                              total_work_s=1e6,
                              memory_mb_per_rank=memory_mb))


def run_restore(rf: int,
                app_nodes: int = DEFAULT_APP_NODES,
                memory_mb: float = DEFAULT_MEMORY_MB,
                tiebreak: str = "fifo") -> Dict[str, object]:
    """Checkpoint at ``rf``, restore on the coordinator; measurements.

    The coordinator node holds no shard, so the restore fetches every
    chunk from the application-node replicas — the clean N-source
    parallel-read case the placement map is built for.
    """
    from repro.zap.checkpoint import scrub_pod_network
    from repro.zap.virtualization import uninstall_pod

    from repro.cruz.cluster import CruzCluster

    cluster = CruzCluster(app_nodes, replication_factor=rf,
                          tiebreak=tiebreak)
    app = _launch(cluster, memory_mb)
    cluster.run_for(0.5)
    pod = app.pods[0]
    cluster.checkpoint_app(app)
    image = cluster.store.load(pod.name)
    holders = sorted({holder
                      for group, _nbytes in (image.chunk_sources or [])
                      for holder in group})
    # The restored instance must be the only one.
    scrub_pod_network(pod)
    pod.kill_all()
    uninstall_pod(pod)
    cluster.agents[0].unregister_pod(pod.name)
    started = cluster.sim.now
    task = cluster.sim.process(cluster.agents[0].restart_engine.restart(
        image, cluster.coordinator_node, resume=False))
    cluster.sim.run_until_complete(task, limit=1e6)
    restore_s = cluster.sim.now - started
    stats = cluster.store.stats
    return {
        "rf": rf,
        "tiebreak": tiebreak,
        "state_bytes": image.state_bytes,
        "source_nodes": holders,
        "restore_s": round(restore_s, 9),
        "bandwidth_mbps": round(image.state_bytes / restore_s / 1e6, 3)
        if restore_s > 0 else 0.0,
        "replica_bytes": stats["replica_bytes"],
        "bytes_written": stats["bytes_written"],
    }


def run_heal(rf: int = 2,
             app_nodes: int = DEFAULT_APP_NODES,
             memory_mb: float = 4.0,
             heal_window_s: float = 2.0) -> Dict[str, object]:
    """Crash every application node in turn (fresh cluster each time).

    After each single-node loss every committed version must remain
    reconstructible, and once the re-replication daemon has run the
    chunk space must be back at full replication.
    """
    from repro.cruz.cluster import CruzCluster

    lost_versions = 0
    unhealed = 0
    rereplicated_chunks = 0
    for victim in range(app_nodes):
        cluster = CruzCluster(app_nodes, replication_factor=rf)
        app = _launch(cluster, memory_mb)
        cluster.run_for(0.3)
        pod = app.pods[0]
        cluster.checkpoint_app(app)
        cluster.run_for(0.1)
        cluster.checkpoint_app(app)
        committed = set(cluster.store.versions(pod.name))
        cluster.crash_node(victim)
        surviving = set(cluster.store.reconstructible_versions(pod.name))
        lost_versions += len(committed - surviving)
        cluster.run_for(heal_window_s)  # let re-replication repair
        unhealed += len(cluster.store.under_replicated())
        rereplicated_chunks += \
            cluster.store.stats["rereplicated_chunks"]
    return {
        "rf": rf,
        "nodes_tested": app_nodes,
        "lost_versions": lost_versions,
        "unhealed_chunks": unhealed,
        "rereplicated_chunks": rereplicated_chunks,
    }


def run_suite(app_nodes: int = DEFAULT_APP_NODES,
              memory_mb: float = DEFAULT_MEMORY_MB,
              rfs=DEFAULT_RFS) -> Dict[str, object]:
    """The full sweep: scaling, healing, and the tie-break probe."""
    from repro.analysis.determinism import _diff

    rfs = tuple(sorted(set(int(rf) for rf in rfs)))
    restore = {}
    for rf in rfs:
        print(f"store: restore at rf={rf} "
              f"({memory_mb:.0f} MB, {app_nodes} app nodes)...",
              flush=True)
        restore[f"rf{rf}"] = run_restore(rf, app_nodes=app_nodes,
                                         memory_mb=memory_mb)
    low, high = restore[f"rf{rfs[0]}"], restore[f"rf{rfs[-1]}"]
    scaling = (high["bandwidth_mbps"] / low["bandwidth_mbps"]
               if low["bandwidth_mbps"] > 0 else float("inf"))
    print(f"store: single-loss healing at rf=2...", flush=True)
    heal = run_heal(rf=2, app_nodes=app_nodes)
    print("store: lifo tie-break probe...", flush=True)
    lifo = run_restore(2, app_nodes=app_nodes, memory_mb=memory_mb,
                       tiebreak="lifo")
    divergences: List[str] = []
    _diff(restore["rf2"], lifo, "restore.rf2", divergences)
    divergences = [d for d in divergences if "tiebreak" not in d]
    return {
        "suite": "store",
        "workload": {
            "app_nodes": app_nodes, "memory_mb": memory_mb,
            "rfs": list(rfs),
        },
        "restore": restore,
        "scaling": round(scaling, 4),
        "heal": heal,
        "divergences": divergences,
    }


def render(report: Dict[str, object]) -> List[str]:
    lines = []
    for key in sorted(report["restore"]):
        row = report["restore"][key]
        lines.append(
            f"{key:>4}: restore {row['restore_s'] * 1e3:8.3f}ms from "
            f"{len(row['source_nodes'])} node(s) = "
            f"{row['bandwidth_mbps']:7.1f} MB/s  "
            f"(replica bytes {row['replica_bytes'] / 1e6:.1f}MB)")
    lines.append(f"restore bandwidth scaling: {report['scaling']:.2f}x "
                 f"(floor {DEFAULT_MIN_SCALING})")
    heal = report["heal"]
    lines.append(
        f"single-loss @rf={heal['rf']}: {heal['nodes_tested']} crashes, "
        f"{heal['lost_versions']} lost version(s), "
        f"{heal['unhealed_chunks']} unhealed chunk(s), "
        f"{heal['rereplicated_chunks']} re-replicated")
    if report["divergences"]:
        lines.append(f"tie-break divergences: {report['divergences']}")
    else:
        lines.append("tie-break: fifo and lifo runs are bit-identical")
    return lines


def evaluate(report: Dict[str, object],
             baseline: Optional[Dict[str, object]],
             min_scaling: float = DEFAULT_MIN_SCALING,
             tolerance: float = DEFAULT_TOLERANCE) -> List[str]:
    """Pure comparison: list of failure messages (empty = pass)."""
    from repro.bench.harness import workload_matches

    failures = []
    rows = [report["restore"][key]
            for key in sorted(report["restore"],
                              key=lambda k: int(k[2:]))]
    for earlier, later in zip(rows, rows[1:]):
        if later["bandwidth_mbps"] <= earlier["bandwidth_mbps"]:
            failures.append(
                f"restore bandwidth did not grow from rf={earlier['rf']} "
                f"({earlier['bandwidth_mbps']} MB/s) to "
                f"rf={later['rf']} ({later['bandwidth_mbps']} MB/s)")
    scaling = float(report["scaling"])
    if scaling < min_scaling:
        failures.append(
            f"restore scaling rf={rows[-1]['rf']} vs rf={rows[0]['rf']} "
            f"is only {scaling:.2f}x (floor {min_scaling:.1f}x)")
    heal = report["heal"]
    if heal["lost_versions"]:
        failures.append(
            f"{heal['lost_versions']} committed version(s) lost to a "
            f"single node crash at rf={heal['rf']}")
    if heal["unhealed_chunks"]:
        failures.append(
            f"{heal['unhealed_chunks']} chunk(s) still under-replicated "
            f"after the heal window")
    if not heal["rereplicated_chunks"]:
        failures.append("re-replication daemon repaired nothing")
    if report["divergences"]:
        failures.append(
            f"fifo/lifo divergence: {report['divergences'][:3]}")
    if workload_matches(report, baseline, "store"):
        recorded = float(baseline.get("scaling", 0.0))
        floor = recorded * (1.0 - tolerance)
        if recorded > 0 and scaling < floor:
            failures.append(
                f"scaling {scaling:.2f}x dropped more than "
                f"{tolerance:.0%} below the committed baseline's "
                f"{recorded:.2f}x")
    return failures


def save_baseline(baseline_path: str = DEFAULT_BASELINE,
                  **workload) -> int:
    from repro.bench.harness import baseline_cli
    return baseline_cli(
        baseline_path=baseline_path, save=True, suite="store",
        run=lambda: run_suite(**workload),
        evaluate=evaluate,
        render=lambda report, _baseline: render(report),
        vet_before_save=True)


def check(baseline_path: str = DEFAULT_BASELINE,
          min_scaling: float = DEFAULT_MIN_SCALING,
          tolerance: float = DEFAULT_TOLERANCE,
          **workload) -> int:
    from repro.bench.harness import baseline_cli
    return baseline_cli(
        baseline_path=baseline_path, save=False, suite="store",
        run=lambda: run_suite(**workload),
        evaluate=lambda report, baseline: evaluate(
            report, baseline, min_scaling=min_scaling,
            tolerance=tolerance),
        render=lambda report, _baseline: render(report))
