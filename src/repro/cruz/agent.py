"""The per-node Checkpoint Agent (Fig. 2).

The Agent runs outside any pod (footnote 4: its own traffic never matches
the pod's netfilter rule, so coordination is never self-blocked). On
``<checkpoint>`` it:

1. configures the packet filter to silently drop all traffic to/from the
   local pod,
2. stops the pod's processes and takes the local checkpoint,
3. reports ``<done>``, waits for ``<continue>``,
4. resumes the pod, removes the filter, reports ``<continue-done>``.

With the Fig. 4 optimisation it instead reports ``<comm-disabled>`` right
after step 1 and resumes on its own as soon as both its local save is done
and the coordinator has confirmed every node disabled communication.
"""

from __future__ import annotations

from typing import Dict, Generator, Optional

from repro.cruz import protocol
from repro.cruz.netstate import CruzSocketCodec
from repro.cruz.protocol import AGENT_PORT, COORDINATOR_PORT, ControlMessage
from repro.cruz.storage import ImageStore
from repro.errors import CoordinationError
from repro.net.addresses import Ipv4Address
from repro.simos.kernel import Node
from repro.zap.checkpoint import CheckpointEngine, scrub_pod_network
from repro.zap.pod import Pod
from repro.zap.restart import RestartEngine
from repro.zap.socket_codec import SocketCodec
from repro.zap.virtualization import uninstall_pod


class CheckpointAgent:
    """One agent per application node."""

    def __init__(self, node: Node, store: ImageStore,
                 codec: Optional[SocketCodec] = None,
                 continue_timeout_s: float = 120.0):
        self.node = node
        self.store = store
        #: Coordinator-failure tolerance (§5.1: "can be extended in a
        #: straightforward way"): if <continue> never arrives, the agent
        #: aborts unilaterally — resumes its pod, re-enables
        #: communication, and discards the uncommitted image.
        self.continue_timeout_s = continue_timeout_s
        self.unilateral_aborts = 0
        codec = codec if codec is not None else CruzSocketCodec()
        # The engine saves through the chunk store itself, so serialization
        # pipelines with the disk write and written_bytes is measured.
        self.checkpoint_engine = CheckpointEngine(codec, store=store)
        self.restart_engine = RestartEngine(codec)
        self.pods: Dict[str, Pod] = {}
        #: epoch -> {"continue": Event, "aborted": bool}
        self._rounds: Dict[int, Dict] = {}
        self.messages_handled = 0
        self.messages_sent = 0
        #: Failure injection: a crashed agent ignores all traffic.
        self.crashed = False
        node.stack.udp.bind(AGENT_PORT, self._on_datagram)

    def register_pod(self, pod: Pod) -> None:
        self.pods[pod.name] = pod

    def unregister_pod(self, pod_name: str) -> Optional[Pod]:
        return self.pods.pop(pod_name, None)

    # -- transport ---------------------------------------------------------

    def _send(self, coordinator_ip: Ipv4Address,
              message: ControlMessage) -> None:
        self.messages_sent += 1
        self.node.trace.emit(self.node.sim.now, "coord_msg",
                             node=self.node.name, kind=message.kind,
                             epoch=message.epoch)
        self.node.stack.udp.send(
            self.node.stack.eth0.ip, AGENT_PORT,
            coordinator_ip, COORDINATOR_PORT, message,
            payload_size=message.size)

    def _on_datagram(self, payload, src_ip, _src_port, _dst_ip) -> None:
        if self.crashed or not isinstance(payload, ControlMessage):
            return
        self.messages_handled += 1
        self.node.sim.process(
            self._dispatch(payload, src_ip),
            name=f"agent@{self.node.name}:{payload.kind}")

    def _dispatch(self, message: ControlMessage,
                  coordinator_ip: Ipv4Address) -> Generator:
        yield self.node.sim.timeout(self.node.costs.agent_message_handling)
        if message.kind == protocol.CHECKPOINT:
            yield from self._do_checkpoint(message, coordinator_ip)
        elif message.kind == protocol.RESTART:
            yield from self._do_restart(message, coordinator_ip)
        elif message.kind == protocol.CONTINUE:
            self._signal_continue(message.epoch, aborted=False)
        elif message.kind == protocol.ABORT:
            self._signal_continue(message.epoch, aborted=True)

    def _signal_continue(self, epoch: int, aborted: bool) -> None:
        state = self._rounds.get(epoch)
        if state is None:
            return
        state["aborted"] = aborted
        event = state["continue"]
        if not event.triggered:
            event.succeed()

    def _round_state(self, epoch: int) -> Dict:
        state = self._rounds.get(epoch)
        if state is None:
            state = {"continue": self.node.sim.event(f"continue({epoch})"),
                     "aborted": False}
            self._rounds[epoch] = state
        return state

    def _await_continue(self, state: Dict) -> Generator:
        """Wait for <continue>/<abort>, aborting on coordinator silence."""
        sim = self.node.sim
        event = state["continue"]
        timer = sim.timeout(self.continue_timeout_s)
        outcome = yield sim.any_of([event, timer])
        if event not in outcome:
            state["aborted"] = True
            self.unilateral_aborts += 1
            self.node.trace.emit(
                sim.now, "agent_abort", node=self.node.name,
                reason="coordinator silent")

    # -- checkpoint ----------------------------------------------------------

    def _do_checkpoint(self, message: ControlMessage,
                       coordinator_ip: Ipv4Address) -> Generator:
        sim, costs = self.node.sim, self.node.costs
        pod = self.pods.get(message.pod_name)
        if pod is None:
            self._send(coordinator_ip, ControlMessage(
                kind=protocol.ABORT, epoch=message.epoch,
                node_name=self.node.name,
                reason=f"no pod {message.pod_name!r}"))
            return
        state = self._round_state(message.epoch)
        started = sim.now
        self.node.trace.emit(sim.now, "pod_paused", node=self.node.name,
                             pod=pod.name, epoch=message.epoch)
        # Step 1: silently drop all traffic to/from the local pod.
        rule_id = self.node.stack.netfilter.drop_all_for(pod.ip)
        yield sim.timeout(costs.netfilter_update)
        if message.optimized:
            self._send(coordinator_ip, ControlMessage(
                kind=protocol.COMM_DISABLED, epoch=message.epoch,
                pod_name=pod.name, node_name=self.node.name))
            yield from self._optimized_checkpoint(
                message, coordinator_ip, pod, state, rule_id, started)
            return
        # Step 2: stop the pod and take the local checkpoint. With the
        # copy-on-write option the pod resumes computing (still behind
        # the filter) as soon as its state is extracted.
        image = yield from self.checkpoint_engine.checkpoint(
            pod, resume=message.concurrent,
            incremental=message.incremental,
            dedup=message.dedup,
            concurrent=message.concurrent)
        version = image.version
        local_checkpoint_s = sim.now - started
        # Step 3: report done; Step 4: wait for <continue>.
        self._send(coordinator_ip, ControlMessage(
            kind=protocol.DONE, epoch=message.epoch, pod_name=pod.name,
            node_name=self.node.name,
            local_checkpoint_s=local_checkpoint_s,
            new_chunk_bytes=image.written_bytes,
            total_chunk_bytes=image.total_chunk_bytes))
        yield from self._await_continue(state)
        # Steps 5-7: resume, re-enable communication, report.
        resume_started = sim.now
        if not message.concurrent:
            pod.continue_all()
        self.node.trace.emit(sim.now, "pod_resumed", node=self.node.name,
                             pod=pod.name, epoch=message.epoch)
        self.node.stack.netfilter.remove_rule(rule_id)
        yield sim.timeout(costs.netfilter_update)
        if state["aborted"]:
            # Undo: the round never committed; drop the half-round image.
            self.store.discard(pod.name, version)
        else:
            self._send(coordinator_ip, ControlMessage(
                kind=protocol.CONTINUE_DONE, epoch=message.epoch,
                pod_name=pod.name, node_name=self.node.name,
                local_continue_s=sim.now - resume_started))
        self._rounds.pop(message.epoch, None)

    def _optimized_checkpoint(self, message: ControlMessage,
                              coordinator_ip: Ipv4Address, pod: Pod,
                              state: Dict, rule_id: int,
                              started: float) -> Generator:
        """The Fig. 4 flow, with the §5.2 refinements layered in.

        The local save runs concurrently with waiting for <continue>
        (confirmation that every node has disabled communication). Once
        both the capture is done and <continue> has arrived, the
        ``early_network`` option re-enables communication so TCP backoff
        recovery overlaps the remaining disk write; the pod itself
        resumes as soon as its save completes.
        """
        sim, costs = self.node.sim, self.node.costs
        captured = sim.event(f"captured({message.epoch})")
        save_task = sim.process(
            self.checkpoint_engine.checkpoint(
                pod, resume=False, incremental=message.incremental,
                dedup=message.dedup,
                on_captured=lambda: captured.succeed()
                if not captured.triggered else None),
            name=f"save({pod.name})")
        yield from self._await_continue(state)
        if not captured.triggered:
            yield captured
        removed_early = False
        if message.early_network and not state["aborted"]:
            self.node.stack.netfilter.remove_rule(rule_id)
            yield sim.timeout(costs.netfilter_update)
            removed_early = True
        image = yield save_task
        version = image.version
        local_checkpoint_s = sim.now - started
        resume_started = sim.now
        pod.continue_all()
        self.node.trace.emit(sim.now, "pod_resumed", node=self.node.name,
                             pod=pod.name, epoch=message.epoch)
        if not removed_early:
            self.node.stack.netfilter.remove_rule(rule_id)
            yield sim.timeout(costs.netfilter_update)
        if state["aborted"]:
            self.store.discard(pod.name, version)
        else:
            self._send(coordinator_ip, ControlMessage(
                kind=protocol.DONE, epoch=message.epoch,
                pod_name=pod.name, node_name=self.node.name,
                local_checkpoint_s=local_checkpoint_s,
                local_continue_s=sim.now - resume_started,
                new_chunk_bytes=image.written_bytes,
                total_chunk_bytes=image.total_chunk_bytes))
        self._rounds.pop(message.epoch, None)

    # -- restart --------------------------------------------------------------

    def _do_restart(self, message: ControlMessage,
                    coordinator_ip: Ipv4Address) -> Generator:
        sim, costs = self.node.sim, self.node.costs
        state = self._round_state(message.epoch)
        started = sim.now
        image = self.store.load(message.pod_name,
                                message.version or None)
        # Communications must be disabled *before* any state is restored:
        # restored TCP would otherwise transmit before its peers exist (§5).
        rule_id = self.node.stack.netfilter.drop_all_for(image.ip)
        yield sim.timeout(costs.netfilter_update)
        pod = yield from self.restart_engine.restart(
            image, self.node, resume=False)
        self.register_pod(pod)
        self._send(coordinator_ip, ControlMessage(
            kind=protocol.DONE, epoch=message.epoch, pod_name=pod.name,
            node_name=self.node.name,
            local_checkpoint_s=sim.now - started))
        yield from self._await_continue(state)
        resume_started = sim.now
        if state["aborted"]:
            scrub_pod_network(pod)
            pod.kill_all()
            uninstall_pod(pod)
            self.unregister_pod(pod.name)
            self.node.stack.netfilter.remove_rule(rule_id)
            self._rounds.pop(message.epoch, None)
            return
        self.restart_engine.resume(pod, image)
        self.node.stack.netfilter.remove_rule(rule_id)
        yield sim.timeout(costs.netfilter_update)
        self._send(coordinator_ip, ControlMessage(
            kind=protocol.CONTINUE_DONE, epoch=message.epoch,
            pod_name=pod.name, node_name=self.node.name,
            local_continue_s=sim.now - resume_started))
        self._rounds.pop(message.epoch, None)

    def local_checkpoint(self, pod: Pod, resume: bool = True,
                         incremental: bool = False,
                         dedup: bool = False) -> Generator:
        """Uncoordinated single-pod checkpoint (LSF integration path)."""
        image = yield from self.checkpoint_engine.checkpoint(
            pod, resume=resume, incremental=incremental, dedup=dedup)
        return image.version


class AgentError(CoordinationError):
    """Raised for agent-side protocol violations."""
