"""Packet capture tap."""

from repro.cruz.cluster import CruzCluster
from repro.net.capture import PacketCapture
from repro.net.packet import ETHERTYPE_ARP

from tests.programs import EchoClient, EchoServer


def test_capture_records_handshake_and_data():
    cluster = CruzCluster(2, time_wait_s=0.5)
    capture = PacketCapture()
    for link in cluster.links:
        capture.attach(link)
    pod = cluster.create_pod(0, "svc")
    pod.spawn(EchoServer(port=8300))
    client = cluster.nodes[1].spawn(
        EchoClient(str(pod.ip), 8300, [b"captured"]))
    cluster.run_for(2.0)
    assert client.program.replies == [b"captured"]
    segments = list(capture.tcp_segments())
    assert segments
    from repro.net.packet import TcpFlags
    assert any(seg.flags & TcpFlags.SYN for _r, _p, seg in segments)
    assert any(seg.payload == b"captured" for _r, _p, seg in segments)
    # Gratuitous ARP from the pod attach was also seen.
    assert any(r.frame.ethertype == ETHERTYPE_ARP for r in capture.frames)
    assert "TCP" in capture.dump()


def test_capture_marks_dropped_frames():
    cluster = CruzCluster(2, time_wait_s=0.5)
    capture = PacketCapture()
    capture.attach(cluster.links[0])
    pod = cluster.create_pod(0, "svc")
    pod.spawn(EchoServer(port=8400))
    cluster.links[0].down = True
    cluster.nodes[1].spawn(EchoClient(str(pod.ip), 8400, [b"x"]))
    cluster.run_for(1.0)
    assert capture.dropped_count() >= 1
    assert "[DROPPED]" in capture.dump()


def test_capture_predicate_filters():
    cluster = CruzCluster(2, time_wait_s=0.5)
    capture = PacketCapture(
        predicate=lambda frame: frame.ethertype == ETHERTYPE_ARP)
    for link in cluster.links:
        capture.attach(link)
    pod = cluster.create_pod(0, "svc")
    pod.spawn(EchoServer(port=8500))
    client = cluster.nodes[1].spawn(
        EchoClient(str(pod.ip), 8500, [b"y"]))
    cluster.run_for(2.0)
    assert client.program.replies == [b"y"]
    assert capture.frames
    assert all(r.frame.ethertype == ETHERTYPE_ARP
               for r in capture.frames)
