"""Simulated Ethernet substrate: wire formats, links, NICs, switch, ARP, DHCP."""

from repro.net.addresses import (
    ANY_IP,
    BROADCAST_MAC,
    Ipv4Address,
    MacAddress,
    Subnet,
)
from repro.net.arp import ArpService
from repro.net.capture import CapturedFrame, PacketCapture
from repro.net.dhcp import DhcpMessage, DhcpServer, Lease
from repro.net.link import GIGABIT, Link, Port
from repro.net.nic import Nic
from repro.net.packet import (
    ArpPacket,
    DEFAULT_MSS,
    EthernetFrame,
    ETHERTYPE_ARP,
    ETHERTYPE_IP,
    IpPacket,
    MTU,
    PROTO_TCP,
    PROTO_UDP,
    TcpFlags,
    TcpSegment,
    UdpDatagram,
)
from repro.net.switch import Switch

__all__ = [
    "ANY_IP",
    "ArpPacket",
    "ArpService",
    "BROADCAST_MAC",
    "CapturedFrame",
    "DEFAULT_MSS",
    "DhcpMessage",
    "DhcpServer",
    "ETHERTYPE_ARP",
    "ETHERTYPE_IP",
    "EthernetFrame",
    "GIGABIT",
    "IpPacket",
    "Ipv4Address",
    "Lease",
    "Link",
    "MTU",
    "MacAddress",
    "Nic",
    "PacketCapture",
    "PROTO_TCP",
    "PROTO_UDP",
    "Port",
    "Subnet",
    "Switch",
    "TcpFlags",
    "TcpSegment",
    "UdpDatagram",
]
