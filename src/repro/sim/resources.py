"""Counting resources (e.g. CPUs) for the simulation kernel."""

from __future__ import annotations

from typing import List, Tuple

from repro.sim.core import Event, Simulator


class Resource:
    """A counting resource with FIFO queueing.

    ``request()`` returns an event that succeeds when a slot is granted;
    call ``release()`` exactly once per grant.
    """

    def __init__(self, sim: Simulator, capacity: int, name: str = ""):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self.in_use = 0
        self._waiters: List[Event] = []

    @property
    def available(self) -> int:
        return self.capacity - self.in_use

    def request(self) -> Event:
        event = self.sim.event(f"{self.name}.request")
        if self.in_use < self.capacity:
            self.in_use += 1
            event.succeed()
        else:
            self._waiters.append(event)
        return event

    def release(self) -> None:
        if self.in_use <= 0:
            raise RuntimeError(f"resource {self.name}: release underflow")
        while self._waiters:
            waiter = self._waiters.pop(0)
            if not waiter.triggered:
                waiter.succeed()
                return
        self.in_use -= 1

    def cancel(self, grant: Event) -> None:
        """Withdraw a request (e.g. the requester was killed).

        If the grant already went through, the slot is released; otherwise
        the waiter is removed so it can never be handed a slot it will
        not use.
        """
        if grant.triggered:
            self.release()
            return
        if grant in self._waiters:
            self._waiters.remove(grant)


class Semaphore:
    """A counting semaphore usable from simulation processes."""

    def __init__(self, sim: Simulator, value: int = 0, name: str = ""):
        self.sim = sim
        self.value = value
        self.name = name
        self._waiters: List[Tuple[int, Event]] = []

    def post(self, amount: int = 1) -> None:
        self.value += amount
        self._wake()

    def wait(self, amount: int = 1) -> Event:
        event = self.sim.event(f"{self.name}.wait")
        self._waiters.append((amount, event))
        self._wake()
        return event

    def _wake(self) -> None:
        while self._waiters:
            amount, event = self._waiters[0]
            if event.triggered:
                self._waiters.pop(0)
                continue
            if self.value < amount:
                return
            self._waiters.pop(0)
            self.value -= amount
            event.succeed()
