"""On-the-wire message formats: Ethernet, ARP, IPv4, TCP, UDP.

These are plain immutable dataclasses rather than byte blobs — the simulator
never needs real serialisation, but sizes are modelled so links can account
for transmission time the way a gigabit NIC would.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from enum import IntFlag
from functools import cached_property
from typing import Optional, Tuple, Union

from repro.net.addresses import Ipv4Address, MacAddress

ETHERNET_HEADER_BYTES = 18  # dst + src + type + FCS
IP_HEADER_BYTES = 20
TCP_HEADER_BYTES = 20
UDP_HEADER_BYTES = 8
ARP_BODY_BYTES = 28
#: Standard Ethernet MTU (IP payload budget), as in the paper's testbed.
MTU = 1500
#: Maximum TCP segment payload given the MTU.
DEFAULT_MSS = MTU - IP_HEADER_BYTES - TCP_HEADER_BYTES

ETHERTYPE_IP = 0x0800
ETHERTYPE_ARP = 0x0806

PROTO_TCP = 6
PROTO_UDP = 17

_frame_ids = itertools.count(1)


class TcpFlags(IntFlag):
    """TCP header flags."""

    NONE = 0
    FIN = 1
    SYN = 2
    RST = 4
    PSH = 8
    ACK = 16


#: Plain-int flag masks for the per-segment hot path. ``IntFlag``
#: operators dispatch through enum machinery (``__and__`` + member
#: ``__call__``) which showed up as whole percents of simcore runtime;
#: ``int & int`` is a single C-level op. ``TcpSegment.flags`` accepts
#: either form — ``describe()`` re-wraps for display.
TCP_FIN = 1
TCP_SYN = 2
TCP_RST = 4
TCP_PSH = 8
TCP_ACK = 16


class TcpSegment:
    """A TCP segment; ``seq`` numbers the first payload byte.

    A plain ``__slots__`` class, not a dataclass: segments are created
    once per transmission on the simulator's hottest path, so ``size``
    and ``seq_len`` are precomputed ints and construction is a handful
    of slot stores. Instances are treated as immutable by convention.
    """

    __slots__ = ("src_port", "dst_port", "seq", "ack", "flags", "window",
                 "payload", "size", "seq_len")

    def __init__(self, src_port: int, dst_port: int, seq: int, ack: int,
                 flags: int, window: int, payload: bytes = b""):
        self.src_port = src_port
        self.dst_port = dst_port
        self.seq = seq
        self.ack = ack
        self.flags = flags
        self.window = window
        self.payload = payload
        length = len(payload)
        #: Wire size in bytes (header + payload).
        self.size = TCP_HEADER_BYTES + length
        #: Sequence space consumed: payload bytes plus SYN/FIN.
        if flags & 3:               # SYN and/or FIN each consume one
            length += (1 if flags & TCP_SYN else 0) \
                + (1 if flags & TCP_FIN else 0)
        self.seq_len = length

    def describe(self) -> str:
        names = [flag.name for flag in TcpFlags
                 if flag and self.flags & flag]
        return (f"TCP {self.src_port}->{self.dst_port} "
                f"[{'|'.join(names) or '.'}] seq={self.seq} ack={self.ack} "
                f"len={len(self.payload)}")

    def __repr__(self) -> str:
        return f"<{self.describe()}>"


@dataclass(frozen=True)
class UdpDatagram:
    """A UDP datagram."""

    src_port: int
    dst_port: int
    payload: object = b""
    payload_size: Optional[int] = None

    @cached_property
    def size(self) -> int:
        if self.payload_size is not None:
            return UDP_HEADER_BYTES + self.payload_size
        if isinstance(self.payload, (bytes, bytearray)):
            return UDP_HEADER_BYTES + len(self.payload)
        return UDP_HEADER_BYTES + 64


class IpPacket:
    """An IPv4 packet carrying TCP or UDP (plain slots, hot path)."""

    __slots__ = ("src", "dst", "protocol", "payload", "ttl", "size")

    def __init__(self, src: Ipv4Address, dst: Ipv4Address, protocol: int,
                 payload: Union[TcpSegment, UdpDatagram], ttl: int = 64):
        self.src = src
        self.dst = dst
        self.protocol = protocol
        self.payload = payload
        self.ttl = ttl
        self.size = IP_HEADER_BYTES + payload.size

    def __repr__(self) -> str:
        return (f"<IpPacket {self.src}->{self.dst} "
                f"proto={self.protocol} {self.size}B>")


ARP_REQUEST = 1
ARP_REPLY = 2


@dataclass(frozen=True)
class ArpPacket:
    """An ARP request/reply (also used for gratuitous ARP announcements)."""

    operation: int
    sender_mac: MacAddress
    sender_ip: Ipv4Address
    target_mac: Optional[MacAddress]
    target_ip: Ipv4Address

    @cached_property
    def size(self) -> int:
        return ARP_BODY_BYTES


class EthernetFrame:
    """An Ethernet frame. ``frame_id`` makes traces unambiguous."""

    __slots__ = ("src", "dst", "ethertype", "payload", "frame_id", "size")

    def __init__(self, src: MacAddress, dst: MacAddress, ethertype: int,
                 payload: Union[IpPacket, ArpPacket],
                 frame_id: Optional[int] = None):
        self.src = src
        self.dst = dst
        self.ethertype = ethertype
        self.payload = payload
        self.frame_id = next(_frame_ids) if frame_id is None else frame_id
        self.size = ETHERNET_HEADER_BYTES + payload.size

    def with_payload(self, payload) -> "EthernetFrame":
        return EthernetFrame(src=self.src, dst=self.dst,
                             ethertype=self.ethertype, payload=payload,
                             frame_id=self.frame_id)

    def __repr__(self) -> str:
        return (f"<EthernetFrame #{self.frame_id} {self.src}->{self.dst} "
                f"{self.size}B>")


def tcp_frame(src_mac: MacAddress, dst_mac: MacAddress,
              src_ip: Ipv4Address, dst_ip: Ipv4Address,
              segment: TcpSegment) -> EthernetFrame:
    """Convenience constructor for a full TCP-in-IP-in-Ethernet frame."""
    packet = IpPacket(src=src_ip, dst=dst_ip, protocol=PROTO_TCP,
                      payload=segment)
    return EthernetFrame(src=src_mac, dst=dst_mac, ethertype=ETHERTYPE_IP,
                         payload=packet)


def connection_key(packet: IpPacket) -> Tuple:
    """The 4-tuple identifying a TCP connection, from the receiver's side."""
    segment = packet.payload
    return (packet.dst, segment.dst_port, packet.src, segment.src_port)
