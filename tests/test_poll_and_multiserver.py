"""poll() semantics and the event-driven multi-client kv server."""

import pytest

from repro.apps.kvserver import KvClient, KvServerMulti
from repro.cruz.cluster import CruzCluster
from repro.simos.program import PhasedProgram
from repro.simos.syscalls import Exit, sys


def make_cluster(n, **kwargs):
    kwargs.setdefault("time_wait_s", 0.5)
    return CruzCluster(n, **kwargs)


class PollOnce(PhasedProgram):
    """Polls a pipe with a timeout; records readiness and timing."""

    initial_phase = "pipe"

    def __init__(self, timeout):
        super().__init__()
        self.timeout = timeout
        self.result = None
        self.finished_at = None

    def phase_pipe(self, result):
        self.goto("poll")
        return sys("pipe")

    def phase_poll(self, result):
        self.rfd, self.wfd = result
        self.goto("done")
        return sys("poll", [self.rfd], timeout=self.timeout)

    def phase_done(self, result):
        self.result = result
        self.goto("stamp")
        return sys("gettime")

    def phase_stamp(self, result):
        self.finished_at = result
        return Exit(0)


def test_poll_timeout_expires_with_empty_result():
    cluster = make_cluster(1)
    proc = cluster.nodes[0].spawn(PollOnce(timeout=0.5))
    cluster.run()
    assert proc.program.result == []
    assert proc.program.finished_at == pytest.approx(0.5, abs=0.01)


def test_poll_zero_timeout_is_nonblocking():
    cluster = make_cluster(1)
    proc = cluster.nodes[0].spawn(PollOnce(timeout=0.0))
    cluster.run()
    assert proc.program.result == []
    assert proc.program.finished_at < 0.01


def test_poll_wakes_on_pipe_data():
    class Waker(PhasedProgram):
        initial_phase = "sleep"

        def __init__(self, target):
            super().__init__()
            self.target = target

        def phase_sleep(self, result):
            self.goto("poke")
            return sys("sleep", 0.3)

        def phase_poke(self, result):
            pipe = self.target.fds.get(self.target.program.wfd).obj
            pipe.buffer.extend(b"!")
            pipe.wake_readers()
            return Exit(0)

    cluster = make_cluster(1)
    poller = cluster.nodes[0].spawn(PollOnce(timeout=None))
    cluster.run_for(0.1)
    cluster.nodes[0].spawn(Waker(poller))
    cluster.run()
    assert poller.program.result == [poller.program.rfd]
    # Waker spawned at t=0.1 and sleeps 0.3 before poking.
    assert poller.program.finished_at == pytest.approx(0.4, abs=0.05)


def client_requests(tag, n):
    reqs = [{"op": "put", "key": f"{tag}{i}", "value": f"{tag}:{i}"}
            for i in range(n)]
    reqs += [{"op": "get", "key": f"{tag}{i}"} for i in range(n)]
    return reqs


def test_multi_server_serves_concurrent_clients():
    cluster = make_cluster(3)
    pod = cluster.create_pod(0, "kvm")
    server = pod.spawn(KvServerMulti())
    clients = []
    for index, tag in enumerate(("a", "b", "c")):
        node = cluster.nodes[1] if index % 2 else cluster.nodes[2]
        clients.append((tag, node.spawn(
            KvClient(str(pod.ip), client_requests(tag, 40),
                     think_time_s=0.001 * (index + 1)))))
    cluster.run_until(
        lambda: all(not c.is_alive for _t, c in clients),
        limit=120, step=0.1)
    for tag, client in clients:
        assert client.exit_code == 0
        gets = client.program.responses[40:]
        assert [r["value"] for r in gets] == \
            [f"{tag}:{i}" for i in range(40)]
    assert server.program.clients_accepted == 3
    assert server.program.requests_served == 3 * 80


def test_multi_server_survives_live_migration_with_three_clients():
    """Migration must preserve ALL concurrent connections at once."""
    cluster = make_cluster(3)
    pod = cluster.create_pod(0, "kvm")
    pod.spawn(KvServerMulti())
    clients = []
    for index, tag in enumerate(("x", "y", "z")):
        node = cluster.nodes[2] if index % 2 else cluster.coordinator_node
        clients.append((tag, node.spawn(
            KvClient(str(pod.ip), client_requests(tag, 60),
                     think_time_s=0.002))))
    cluster.run_for(0.05)
    assert all(0 < c.program.index < 120 for _t, c in clients)
    new_pod = cluster.migrate_pod(pod, target_node_index=1)
    cluster.run_until(
        lambda: all(not c.is_alive for _t, c in clients),
        limit=240, step=0.25)
    for tag, client in clients:
        assert client.exit_code == 0
        gets = client.program.responses[60:]
        assert [r["value"] for r in gets] == \
            [f"{tag}:{i}" for i in range(60)]
    server = new_pod.processes()[0]
    assert server.program.requests_served == 3 * 120


def test_multi_server_checkpoint_while_blocked_in_poll():
    cluster = make_cluster(2)
    pod = cluster.create_pod(0, "kvm")
    proc = pod.spawn(KvServerMulti())
    cluster.run_for(0.5)  # idle: blocked in poll with no clients
    assert proc.current_syscall is not None
    assert proc.current_syscall.name == "poll"
    from repro.cruz.netstate import CruzSocketCodec
    from repro.zap.checkpoint import CheckpointEngine, scrub_pod_network
    from repro.zap.restart import RestartEngine
    from repro.zap.virtualization import uninstall_pod
    engine = CheckpointEngine(CruzSocketCodec())
    task = cluster.sim.process(engine.checkpoint(pod, resume=False))
    image = cluster.sim.run_until_complete(task, limit=1e6)
    scrub_pod_network(pod)
    pod.kill_all()
    uninstall_pod(pod)
    restore = cluster.sim.process(
        RestartEngine(CruzSocketCodec()).restart(
            image, cluster.nodes[1], resume=True))
    new_pod = cluster.sim.run_until_complete(restore, limit=1e6)
    # A client can connect to the restored poll loop.
    client = cluster.coordinator_node.spawn(
        KvClient(str(new_pod.ip), [{"op": "put", "key": "k", "value": 9},
                                   {"op": "get", "key": "k"}]))
    cluster.run_until(lambda: not client.is_alive, limit=60, step=0.1)
    assert client.exit_code == 0
    assert client.program.responses[-1]["value"] == 9
