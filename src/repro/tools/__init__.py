"""Operator tooling: cluster introspection and reporting."""

from repro.tools.inspect import (
    checkpoint_report,
    format_table,
    netstat,
    pod_report,
    ps,
    round_report,
)

__all__ = [
    "checkpoint_report",
    "format_table",
    "netstat",
    "pod_report",
    "ps",
    "round_report",
]
