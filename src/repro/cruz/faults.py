"""Fault injection: control-plane datagram faults and data-plane chaos.

The reliability machinery in :class:`repro.cruz.protocol.ReliableEndpoint`
only earns its keep if rounds *commit* under a lossy control plane, so the
torture tests drive every coordinator/agent datagram (protocol messages
and ACKs alike) through a :class:`ControlFaultInjector` seeded from the
cluster's :class:`repro.sim.rand.RandomStreams` — the same seed always
injects the same faults at the same instants.

Faults are described by :class:`FaultPlan` rules, matched in order against
each outgoing datagram by message kind and epoch. One uniform draw per
matching plan partitions the probability mass ``[drop | duplicate |
delay | pass]``, so the categories are mutually exclusive per datagram and
the expected loss rate equals ``drop`` exactly. Delayed (and the second
copy of duplicated) datagrams are re-injected after ``delay_s`` plus a
uniform jitter, which also reorders them relative to later traffic.

Beyond the control plane, :class:`ChaosInjector` schedules *data-plane*
faults against the whole cluster on the simulator clock: node crashes
(power loss), link flaps, and network partitions — all from one seeded
schedule, so a chaos run replays bit-for-bit from its seed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, FrozenSet, List, Optional, Sequence

from repro.cruz.protocol import ControlMessage
from repro.net.packet import IpPacket
from repro.sim.core import Simulator


@dataclass
class FaultPlan:
    """One fault rule for matching control messages.

    Probabilities are per-datagram and mutually exclusive (a single draw
    decides drop vs duplicate vs delay vs clean delivery), so
    ``drop + duplicate + delay`` must not exceed 1.
    """

    drop: float = 0.0
    duplicate: float = 0.0
    delay: float = 0.0
    #: Base re-injection delay for delayed/duplicated copies.
    delay_s: float = 2e-3
    #: Extra uniform [0, jitter_s) delay — produces reordering.
    jitter_s: float = 3e-3
    #: Restrict to these message kinds (None = every kind, ACKs included).
    kinds: Optional[FrozenSet[str]] = None
    #: Restrict to these epochs (None = every epoch).
    epochs: Optional[FrozenSet[int]] = None
    #: Stop injecting after this many faults (None = unlimited).
    max_faults: Optional[int] = None
    #: Faults charged against ``max_faults`` so far.
    injected: int = field(default=0)

    def __post_init__(self) -> None:
        if self.drop + self.duplicate + self.delay > 1.0 + 1e-9:
            raise ValueError("fault probabilities must sum to <= 1")
        if self.kinds is not None:
            self.kinds = frozenset(self.kinds)
        if self.epochs is not None:
            self.epochs = frozenset(self.epochs)

    def matches(self, message: ControlMessage) -> bool:
        if self.kinds is not None and message.kind not in self.kinds:
            return False
        if self.epochs is not None and message.epoch not in self.epochs:
            return False
        return self.max_faults is None or self.injected < self.max_faults


class ControlFaultInjector:
    """Applies :class:`FaultPlan` rules to outgoing control datagrams.

    Wired between :class:`~repro.cruz.protocol.ReliableEndpoint` and the
    UDP stack: ``apply(message, transmit)`` either returns ``False`` (the
    endpoint delivers normally) or takes ownership of delivery — dropping
    the datagram, sending it twice, or scheduling it late.
    """

    def __init__(self, sim: Simulator, rng):
        self.sim = sim
        self.rng = rng
        self.plans: List[FaultPlan] = []
        #: Model-checker hook (``repro.analysis.oracle``): when set, the
        #: oracle *decides* each datagram's fate (a branchable choice
        #: point) instead of the seeded probability draw; plans are
        #: bypassed entirely for the run.
        self.oracle = None
        self.dropped = 0
        self.duplicated = 0
        self.delayed = 0
        self.passed = 0

    def add_plan(self, plan: FaultPlan) -> FaultPlan:
        self.plans.append(plan)
        return plan

    def clear(self) -> None:
        self.plans.clear()

    @property
    def faults_injected(self) -> int:
        return self.dropped + self.duplicated + self.delayed

    def _reinject_delay(self, plan: FaultPlan) -> float:
        return plan.delay_s + self.rng.random() * plan.jitter_s

    def apply(self, message: ControlMessage,
              transmit: Callable[[], None]) -> bool:
        """Returns True when the injector handled (or ate) the datagram."""
        if self.oracle is not None:
            if self.oracle.fault(message, transmit, self):
                return True
            self.passed += 1
            return False
        for plan in self.plans:
            if not plan.matches(message):
                continue
            draw = self.rng.random()
            if draw < plan.drop:
                plan.injected += 1
                self.dropped += 1
                return True
            if draw < plan.drop + plan.duplicate:
                plan.injected += 1
                self.duplicated += 1
                transmit()
                self.sim.call_later(self._reinject_delay(plan), transmit)
                return True
            if draw < plan.drop + plan.duplicate + plan.delay:
                plan.injected += 1
                self.delayed += 1
                self.sim.call_later(self._reinject_delay(plan), transmit)
                return True
            break  # matched, drew "clean": first matching plan decides
        self.passed += 1
        return False


class Partition:
    """A two-sided network partition, enforced at the links.

    Frames whose IP source and destination fall on opposite sides are
    dropped by the member nodes' links (counted in
    ``Link.frames_dropped`` like any data-plane loss). Membership is
    captured at install time from each side's node addresses plus the
    pods currently registered there; ARP and other non-IP traffic is
    left alone (reachability leaks nothing — data does not cross).
    """

    def __init__(self, cluster, group_a: Sequence[int],
                 group_b: Sequence[int]):
        self.cluster = cluster
        self.group_a = tuple(group_a)
        self.group_b = tuple(group_b)
        self._ips_a = set()
        self._ips_b = set()
        #: link -> the drop_fn it had before the partition.
        self._previous: List = []
        self.healed = False

    def _side_ips(self, indices: Sequence[int]):
        ips = set()
        for index in indices:
            node = self.cluster.nodes[index]
            ips.add(node.stack.eth0.ip)
            agents = getattr(self.cluster, "agents", ())
            if index < len(agents):
                for pod in agents[index].pods.values():
                    ips.add(pod.ip)
        return ips

    def _crosses(self, frame) -> bool:
        packet = frame.payload
        if not isinstance(packet, IpPacket):
            return False
        return ((packet.src in self._ips_a and packet.dst in self._ips_b)
                or (packet.src in self._ips_b
                    and packet.dst in self._ips_a))

    def install(self) -> None:
        # Membership is captured now (not at schedule time) so pods
        # created in the meantime are partitioned with their nodes.
        self._ips_a = self._side_ips(self.group_a)
        self._ips_b = self._side_ips(self.group_b)
        for index in self.group_a + self.group_b:
            link = self.cluster.links[index]
            previous = link.drop_fn
            self._previous.append((link, previous))

            def drop(frame, _previous=previous):
                if self._crosses(frame):
                    return True
                return _previous(frame) if _previous is not None \
                    else False

            link.drop_fn = drop

    def heal(self) -> None:
        if self.healed:
            return
        self.healed = True
        for link, previous in self._previous:
            link.drop_fn = previous


class ChaosInjector:
    """Seeded data-plane fault schedules: crashes, flaps, partitions.

    All randomness comes from one named stream of the cluster's seeded
    :class:`~repro.sim.rand.RandomStreams`, and every draw happens at
    *schedule* time (fixed program order), so a chaos run replays
    bit-for-bit from its seed. Executed events are recorded in ``log``
    with their simulated timestamps.
    """

    def __init__(self, cluster, rng=None):
        self.cluster = cluster
        self.sim: Simulator = cluster.sim
        self.rng = rng if rng is not None \
            else cluster.random.stream("chaos")
        self.log: List[dict] = []
        self.node_crashes = 0
        self.link_flaps = 0
        self.partitions = 0
        self.pod_kills = 0

    def _record(self, kind: str, **details) -> None:
        self.log.append({"at": self.sim.now, "kind": kind, **details})

    # -- node power ---------------------------------------------------------

    def schedule_node_crash(self, node_index: int, at: float,
                            revive_after: Optional[float] = None,
                            jitter_s: float = 0.0) -> float:
        """Crash a node at ``at`` (+ seeded jitter); optionally revive.

        Returns the actual crash time so callers can line further chaos
        up against it.
        """
        crash_at = at + (self.rng.random() * jitter_s if jitter_s else 0.0)

        def crash() -> None:
            self.node_crashes += 1
            self._record("crash_node", node=node_index)
            self.cluster.crash_node(node_index)

        self.sim.call_at(crash_at, crash)
        if revive_after is not None:
            def revive() -> None:
                self._record("revive_node", node=node_index)
                self.cluster.revive_node(node_index)

            self.sim.call_at(crash_at + revive_after, revive)
        return crash_at

    def schedule_node_crash_mid_round(self, node_index: int, after: float,
                                      within_s: float = 0.006,
                                      poll_s: float = 0.001,
                                      revive_after: Optional[float] = None,
                                      ) -> None:
        """Crash a node *during* a checkpoint round — the worst moment.

        Arms at ``after``; once the coordinator has a round in flight,
        crashes ``node_index`` a seeded ``[0, within_s)`` into it. Round
        start times drift with workload timing, so a fixed-clock crash
        cannot reliably land mid-save; polling the coordinator's
        in-flight set (every ``poll_s``, event-driven and deterministic)
        can. The offset is drawn at schedule time like every other
        chaos draw.
        """
        offset = self.rng.random() * within_s

        def trigger():
            if self.sim.now < after:
                yield self.sim.timeout(after - self.sim.now)
            coordinator = self.cluster.coordinator
            while not coordinator.in_flight_epochs():
                yield self.sim.timeout(poll_s)
            epochs = coordinator.in_flight_epochs()
            yield self.sim.timeout(offset)
            self.node_crashes += 1
            self._record("crash_node", node=node_index, mid_round=epochs)
            self.cluster.crash_node(node_index)
            if revive_after is not None:
                yield self.sim.timeout(revive_after)
                self._record("revive_node", node=node_index)
                self.cluster.revive_node(node_index)

        self.sim.process(trigger(), name=f"chaos-crash-node{node_index}")

    # -- pods ---------------------------------------------------------------

    def schedule_pod_kill(self, pod_name: str, at: float,
                          jitter_s: float = 0.0) -> float:
        """Destroy one named pod at ``at`` (+ seeded jitter), silently.

        The pod dies without FIN/RST to its peers and without taking the
        node down — the proxy-backend-kill chaos mode: a serving backend
        vanishes mid-request and the proxy must detect it by probe
        timeout, shed or re-dispatch its in-flight work, and re-admit the
        backend after an external restore. Returns the actual kill time.
        """
        kill_at = at + (self.rng.random() * jitter_s if jitter_s else 0.0)

        def kill() -> None:
            for agent in self.cluster.agents:
                pod = agent.pods.get(pod_name)
                if pod is not None:
                    self.pod_kills += 1
                    self._record("kill_pod", pod=pod_name,
                                 node=agent.node.name)
                    self.cluster.destroy_pod(pod)
                    return
            self._record("kill_pod_miss", pod=pod_name)

        self.sim.call_at(kill_at, kill)
        return kill_at

    def canary_divergence(self, key: str, value: str = "corrupted"):
        """A canary-verify-failure hook for ``serve.rollout``.

        Returns a callable that silently flips ``key`` in every kv store
        of the pod it is given — applied to a freshly restored canary
        *before* the read-back probe, it makes the restored replica
        diverge from the fleet so the rollout's verification must catch
        it and roll back. The corruption is recorded in ``log`` like any
        other injected fault.
        """

        def corrupt(pod) -> None:
            self._record("canary_corrupt", pod=pod.name, key=key)
            for proc in pod.processes():
                store = getattr(proc.program, "store", None)
                if isinstance(store, dict):
                    store[key] = value

        return corrupt

    def schedule_heartbeat_mute(self, node_index: int, at: float,
                                duration_s: float,
                                jitter_s: float = 0.0) -> float:
        """Silence one agent's liveness beacons for ``duration_s``.

        The node stays fully alive — pods keep running, the data plane
        and control plane keep answering — only the heartbeat path goes
        quiet, so the supervisor *suspects* (and, if silence outlasts its
        lease, wrongly declares) a healthy node. This is the eviction
        scenario: with ``evict_on_suspect`` the suspect node's pods must
        be live-migrated away before the declaration, with zero lost
        acknowledged data. Returns the actual mute time.
        """
        start = at + (self.rng.random() * jitter_s if jitter_s else 0.0)

        def mute() -> None:
            self._record("mute_heartbeats", node=node_index)
            self.cluster.agents[node_index].mute_heartbeats = True

        def unmute() -> None:
            self._record("unmute_heartbeats", node=node_index)
            self.cluster.agents[node_index].mute_heartbeats = False

        self.sim.call_at(start, mute)
        self.sim.call_at(start + duration_s, unmute)
        return start

    # -- links --------------------------------------------------------------

    def schedule_link_flap(self, node_index: int, at: float,
                           duration_s: float,
                           jitter_s: float = 0.0) -> float:
        """Take one node's link down for ``duration_s``; returns start."""
        start = at + (self.rng.random() * jitter_s if jitter_s else 0.0)

        def down() -> None:
            self.link_flaps += 1
            self._record("link_down", node=node_index)
            self.cluster.links[node_index].down = True

        def up() -> None:
            self._record("link_up", node=node_index)
            self.cluster.links[node_index].down = False

        self.sim.call_at(start, down)
        self.sim.call_at(start + duration_s, up)
        return start

    # -- partitions ---------------------------------------------------------

    def schedule_partition(self, group_a: Sequence[int],
                           group_b: Sequence[int], at: float,
                           duration_s: float) -> Partition:
        """Partition two node groups for ``duration_s`` seconds."""
        partition = Partition(self.cluster, group_a, group_b)

        def install() -> None:
            self.partitions += 1
            self._record("partition", group_a=list(partition.group_a),
                         group_b=list(partition.group_b))
            partition.install()

        def heal() -> None:
            self._record("heal", group_a=list(partition.group_a),
                         group_b=list(partition.group_b))
            partition.heal()

        self.sim.call_at(at, install)
        self.sim.call_at(at + duration_s, heal)
        return partition
