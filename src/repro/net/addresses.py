"""MAC and IPv4 address value types.

Addresses are immutable and hashable so they can key ARP caches, switch
learning tables, and connection demux maps.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.errors import NetworkError


@dataclass(frozen=True, order=True)
class MacAddress:
    """A 48-bit Ethernet address."""

    value: int

    def __post_init__(self):
        if not 0 <= self.value < 1 << 48:
            raise NetworkError(f"MAC out of range: {self.value:#x}")

    @classmethod
    def parse(cls, text: str) -> "MacAddress":
        parts = text.split(":")
        if len(parts) != 6:
            raise NetworkError(f"bad MAC {text!r}")
        return cls(int("".join(parts), 16))

    @classmethod
    def ordinal(cls, index: int, prefix: int = 0x02_00_00) -> "MacAddress":
        """Deterministically numbered locally-administered MAC."""
        return cls((prefix << 24) | index)

    @property
    def is_broadcast(self) -> bool:
        return self.value == (1 << 48) - 1

    def __str__(self) -> str:
        raw = f"{self.value:012x}"
        return ":".join(raw[i:i + 2] for i in range(0, 12, 2))


BROADCAST_MAC = MacAddress((1 << 48) - 1)


@dataclass(frozen=True, order=True)
class Ipv4Address:
    """A 32-bit IPv4 address."""

    value: int

    def __post_init__(self):
        if not 0 <= self.value < 1 << 32:
            raise NetworkError(f"IPv4 out of range: {self.value:#x}")

    @classmethod
    def parse(cls, text: str) -> "Ipv4Address":
        parts = text.split(".")
        if len(parts) != 4:
            raise NetworkError(f"bad IPv4 {text!r}")
        value = 0
        for part in parts:
            octet = int(part)
            if not 0 <= octet <= 255:
                raise NetworkError(f"bad IPv4 {text!r}")
            value = (value << 8) | octet
        return cls(value)

    def in_subnet(self, network: "Ipv4Address", prefix_len: int) -> bool:
        mask = ((1 << prefix_len) - 1) << (32 - prefix_len) if prefix_len \
            else 0
        return (self.value & mask) == (network.value & mask)

    def __str__(self) -> str:
        return ".".join(str((self.value >> shift) & 0xFF)
                        for shift in (24, 16, 8, 0))


ANY_IP = Ipv4Address(0)


@dataclass(frozen=True)
class Subnet:
    """An IPv4 subnet with a deterministic host-address allocator."""

    network: Ipv4Address
    prefix_len: int

    def __contains__(self, address: Ipv4Address) -> bool:
        return address.in_subnet(self.network, self.prefix_len)

    def host(self, index: int) -> Ipv4Address:
        size = 1 << (32 - self.prefix_len)
        if not 0 < index < size - 1:
            raise NetworkError(f"host index {index} outside subnet")
        return Ipv4Address(self.network.value + index)

    def hosts(self, start: int = 1) -> Iterator[Ipv4Address]:
        size = 1 << (32 - self.prefix_len)
        for index in range(start, size - 1):
            yield self.host(index)

    def __str__(self) -> str:
        return f"{self.network}/{self.prefix_len}"
