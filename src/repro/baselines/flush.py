"""The channel-flushing coordinated checkpoint baseline.

MPVM, CoCheck and LAM-MPI "flush all the messages that are in flight
between the application's processes during checkpoint" by exchanging
markers on every pairwise channel — O(N²) messages — because they have no
way to capture in-kernel TCP state (§2, §5.2). This module implements that
protocol over the same substrate so the comparison benchmarks measure, not
assert, the difference:

* the coordinator notifies every agent (N messages);
* every agent stops its pod, then sends a flush *marker to every other
  agent* and waits for all N-1 inbound markers (N·(N-1) messages);
* every agent then waits for its pod's channels to drain — all sent data
  acknowledged, nothing in flight — which with a stopped peer can only
  happen through TCP's own delivery of what was already in the pipe;
* only then does it take the local checkpoint and report done.

With empty channels there is no TCP state worth saving, which is why these
systems could get away with closing and re-establishing connections at
restart. Restart re-establishment costs another O(N²) messages (modelled
in :data:`RESTART_RECONNECT_MESSAGES_PER_PAIR`).
"""

from __future__ import annotations

from typing import Dict, Generator, List, Optional

from repro.cruz.netstate import CruzSocketCodec
from repro.cruz.protocol import ControlMessage, RoundStats
from repro.cruz.storage import ImageStore
from repro.errors import CoordinationError
from repro.net.addresses import Ipv4Address
from repro.simos.kernel import Node
from repro.simos.sockets import TcpSocket
from repro.zap.checkpoint import CheckpointEngine, pod_sockets
from repro.zap.pod import Pod

FLUSH_AGENT_PORT = 7611
FLUSH_COORDINATOR_PORT = 7612

FLUSH_CHECKPOINT = "FLUSH_CHECKPOINT"
FLUSH_MARKER = "FLUSH_MARKER"
FLUSH_DONE = "FLUSH_DONE"
FLUSH_CONTINUE = "FLUSH_CONTINUE"
FLUSH_CONTINUE_DONE = "FLUSH_CONTINUE_DONE"

#: How often an agent re-checks whether its channels have drained.
DRAIN_POLL_INTERVAL = 0.002
#: Connection re-establishment at restart: SYN/SYNACK/ACK plus the
#: library-level endpoint exchange, per direction of each pair.
RESTART_RECONNECT_MESSAGES_PER_PAIR = 4


class FlushAgent:
    """Per-node agent implementing the flush-based protocol."""

    def __init__(self, node: Node, store: ImageStore):
        self.node = node
        self.store = store
        # Same chunk-backed save path as the Cruz agents: the baselines
        # must differ only in coordination protocol, not storage cost.
        self.engine = CheckpointEngine(CruzSocketCodec(), store=store)
        self.pods: Dict[str, Pod] = {}
        self.peer_ips: List[Ipv4Address] = []
        self._markers: Dict[int, Dict] = {}
        self._continues: Dict[int, Dict] = {}
        self.messages_sent = 0
        node.stack.udp.bind(FLUSH_AGENT_PORT, self._on_datagram)

    def register_pod(self, pod: Pod) -> None:
        self.pods[pod.name] = pod

    def _send(self, ip: Ipv4Address, port: int,
              message: ControlMessage) -> None:
        self.messages_sent += 1
        self.node.trace.emit(self.node.sim.now, "flush_msg",
                             node=self.node.name, kind=message.kind,
                             epoch=message.epoch)
        self.node.stack.udp.send(self.node.stack.eth0.ip, FLUSH_AGENT_PORT,
                                 ip, port, message,
                                 payload_size=message.size)

    def _on_datagram(self, payload, src_ip, _src_port, _dst_ip) -> None:
        if not isinstance(payload, ControlMessage):
            return
        if payload.kind == FLUSH_MARKER:
            # Ingesting a marker costs agent CPU, like any other message.
            self.node.sim.call_later(
                self.node.costs.agent_message_handling,
                self._ingest_marker, payload)
            return
        if payload.kind == FLUSH_CONTINUE:
            state = self._continues.get(payload.epoch)
            if state is not None and not state["event"].triggered:
                state["event"].succeed()
            return
        if payload.kind == FLUSH_CHECKPOINT:
            self.node.sim.process(
                self._do_checkpoint(payload, src_ip),
                name=f"flush-agent@{self.node.name}")

    def _ingest_marker(self, payload: ControlMessage) -> None:
        state = self._marker_state(payload.epoch)
        state["received"].add(payload.node_name)
        event = state.get("event")
        if event is not None and not event.triggered and \
                len(state["received"]) >= state["needed"]:
            event.succeed()

    def _marker_state(self, epoch: int) -> Dict:
        state = self._markers.get(epoch)
        if state is None:
            state = {"received": set(), "needed": 0, "event": None}
            self._markers[epoch] = state
        return state

    def _do_checkpoint(self, message: ControlMessage,
                       coordinator_ip: Ipv4Address) -> Generator:
        sim, costs = self.node.sim, self.node.costs
        pod = self.pods[message.pod_name]
        started = sim.now
        # Stop the pod so no *new* data enters the channels.
        pod.stop_all()
        yield sim.timeout(
            costs.signal_delivery * len(pod.live_processes()))
        # Exchange markers with every other participant: O(N^2) overall.
        others = [ip for ip in self.peer_ips
                  if ip != self.node.stack.eth0.ip]
        for ip in others:
            yield sim.timeout(costs.agent_message_handling)
            self._send(ip, FLUSH_AGENT_PORT, ControlMessage(
                kind=FLUSH_MARKER, epoch=message.epoch,
                node_name=self.node.name))
        state = self._marker_state(message.epoch)
        state["needed"] = len(others)
        if len(state["received"]) < state["needed"]:
            state["event"] = sim.event(f"markers({message.epoch})")
            yield state["event"]
        # Drain: wait until nothing is unacknowledged on any pod channel.
        yield from self._drain_channels(pod)
        drained_at = sim.now
        # Local checkpoint (channels are empty; socket state is trivial).
        image = yield from self.engine.checkpoint(pod, resume=False)
        self._send(coordinator_ip, FLUSH_COORDINATOR_PORT, ControlMessage(
            kind=FLUSH_DONE, epoch=message.epoch, pod_name=pod.name,
            node_name=self.node.name,
            local_checkpoint_s=sim.now - drained_at,
            local_continue_s=drained_at - started))
        cont = {"event": sim.event(f"flush-continue({message.epoch})")}
        self._continues[message.epoch] = cont
        yield cont["event"]
        resume_started = sim.now
        pod.continue_all()
        self._send(coordinator_ip, FLUSH_COORDINATOR_PORT, ControlMessage(
            kind=FLUSH_CONTINUE_DONE, epoch=message.epoch,
            pod_name=pod.name, node_name=self.node.name,
            local_continue_s=sim.now - resume_started))
        self._markers.pop(message.epoch, None)
        self._continues.pop(message.epoch, None)

    def _drain_channels(self, pod: Pod) -> Generator:
        sim = self.node.sim
        while True:
            busy = False
            for sock in pod_sockets(pod):
                if isinstance(sock, TcpSocket) and \
                        sock.connection is not None:
                    connection = sock.connection
                    if connection.tcb.flight_size > 0 or \
                            connection.send_buffer.pending:
                        busy = True
                        break
            if not busy:
                return
            yield sim.timeout(DRAIN_POLL_INTERVAL)


class FlushCoordinator:
    """Coordinator for the flush-based baseline."""

    def __init__(self, node: Node, agents: List[FlushAgent],
                 timeout_s: float = 120.0):
        self.node = node
        self.agents = agents
        self.timeout_s = timeout_s
        self._epoch = 1000  # distinct from Cruz epochs in shared traces
        self.rounds: List[RoundStats] = []
        self._collectors: Dict[int, Dict[str, Dict]] = {}
        node.stack.udp.bind(FLUSH_COORDINATOR_PORT, self._on_datagram)
        peer_ips = [agent.node.stack.eth0.ip for agent in agents]
        for agent in agents:
            agent.peer_ips = list(peer_ips)

    def _send(self, ip: Ipv4Address, message: ControlMessage) -> None:
        self.node.trace.emit(self.node.sim.now, "flush_msg",
                             node=self.node.name, kind=message.kind,
                             epoch=message.epoch)
        self.node.stack.udp.send(
            self.node.stack.eth0.ip, FLUSH_COORDINATOR_PORT,
            ip, FLUSH_AGENT_PORT, message, payload_size=message.size)

    def _on_datagram(self, payload, _src_ip, _src_port, _dst_ip) -> None:
        if not isinstance(payload, ControlMessage):
            return
        collector = self._collectors.get(payload.epoch, {}).get(payload.kind)
        if collector is None:
            return
        collector["received"][payload.pod_name] = payload
        if set(collector["received"]) >= collector["expected"] and \
                not collector["event"].triggered:
            collector["event"].succeed(dict(collector["received"]))

    def checkpoint(self, app) -> Generator:
        """Coordinated flush-based checkpoint of a DistributedApp."""
        sim, costs = self.node.sim, self.node.costs
        self._epoch += 1
        epoch = self._epoch
        members = app.members
        expected = {pod_name for _ip, pod_name in members}
        stats = RoundStats(epoch=epoch, kind="FLUSH_CHECKPOINT",
                           n_nodes=len(members), started_at=sim.now)
        done = self._expect(epoch, FLUSH_DONE, expected)
        continue_done = self._expect(epoch, FLUSH_CONTINUE_DONE, expected)
        for ip, pod_name in members:
            yield sim.timeout(costs.coordinator_message_handling)
            self._send(ip, ControlMessage(
                kind=FLUSH_CHECKPOINT, epoch=epoch, pod_name=pod_name))
            stats.messages_sent += 1
        dones = yield from self._wait(done, stats)
        stats.latency_s = sim.now - stats.started_at
        stats.max_local_op_s = max(
            m.local_checkpoint_s for m in dones.values())
        for ip, _pod_name in members:
            yield sim.timeout(costs.coordinator_message_handling)
            self._send(ip, ControlMessage(kind=FLUSH_CONTINUE, epoch=epoch))
            stats.messages_sent += 1
        yield from self._wait(continue_done, stats)
        stats.total_s = sim.now - stats.started_at
        stats.committed = True
        self.rounds.append(stats)
        self._collectors.pop(epoch, None)
        return stats

    def _expect(self, epoch: int, kind: str, pod_names) -> object:
        event = self.node.sim.event(f"flush-collect({kind},{epoch})")
        self._collectors.setdefault(epoch, {})[kind] = {
            "expected": set(pod_names), "received": {}, "event": event}
        return event

    def _wait(self, event, stats: RoundStats) -> Generator:
        sim = self.node.sim
        timer = sim.timeout(self.timeout_s)
        outcome = yield sim.any_of([event, timer])
        if event not in outcome:
            raise CoordinationError(
                f"flush round {stats.epoch} timed out")
        stats.messages_received += len(event.value)
        return event.value


def install_flush_baseline(cluster) -> FlushCoordinator:
    """Attach the baseline protocol to an existing CruzCluster."""
    agents = [FlushAgent(node, cluster.store)
              for node in cluster.nodes[:cluster.n_app_nodes]]
    coordinator = FlushCoordinator(cluster.coordinator_node, agents)
    for app in cluster.apps.values():
        for pod in app.pods:
            for agent in agents:
                if agent.node is pod.node:
                    agent.register_pod(pod)
    cluster.flush_agents = agents
    cluster.flush_coordinator = coordinator
    return coordinator


def flush_checkpoint_app(cluster, app, limit: float = 1e6) -> RoundStats:
    """Convenience mirror of :meth:`CruzCluster.checkpoint_app`."""
    if not hasattr(cluster, "flush_coordinator"):
        install_flush_baseline(cluster)
    for pod in app.pods:
        for agent in cluster.flush_agents:
            if agent.node is pod.node:
                agent.register_pod(pod)
    task = cluster.sim.process(cluster.flush_coordinator.checkpoint(app))
    return cluster.sim.run_until_complete(task, limit=limit)


def restart_message_estimate(n_nodes: int) -> int:
    """Messages a flush-based restart needs to rebuild all channels."""
    pairs = n_nodes * (n_nodes - 1) // 2
    return pairs * RESTART_RECONNECT_MESSAGES_PER_PAIR + 2 * n_nodes
