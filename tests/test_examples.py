"""Every shipped example must run clean end-to-end."""

import importlib
import sys

import pytest

sys.path.insert(0, "examples")


@pytest.mark.parametrize("module_name", [
    "quickstart",
    "weather_fault_tolerance",
    "maintenance_drain",
    "streaming_timeline",
    "pagerank_suspend_resume",
])
def test_example_runs(module_name, capsys):
    module = importlib.import_module(module_name)
    module.main()
    out = capsys.readouterr().out
    assert out  # narrated transcript was produced
    assert "Traceback" not in out
