"""Zap's syscall interposition layer.

"The virtualization layer intercepts system calls to expose only virtual
identifiers" (§2). Per the Cruz extensions (§4.2):

* ``bind`` — the wrapper "replaces the network address argument with the IP
  address of the pod's VIF", confining listeners to the pod address;
* ``connect`` — the wrapper "invokes bind prior to the original function",
  so outgoing connections originate from the pod address;
* ``ioctl(SIOCGIFHWADDR)`` — "intercepted to return the fake MAC address",
  keeping DHCP-based leases stable across migration.

PID and SysV-IPC identifiers are translated both ways so physical ids never
leak into pod processes — the property that lets Zap restart a pod even when
its old PIDs are taken (§2).
"""

from __future__ import annotations

from dataclasses import replace
from typing import Any

from repro.errors import PodError, SyscallError
from repro.simos.kernel import SyscallInterposer
from repro.simos.process import ProcessControlBlock
from repro.simos.syscalls import SIOCGIFHWADDR, Syscall
from repro.zap.pod import Pod


class ZapInterposer(SyscallInterposer):
    """The per-pod wrapper around the syscall table."""

    def __init__(self, pod: Pod):
        self.pod = pod
        self.intercept_count = 0

    # -- argument rewriting ------------------------------------------------

    def rewrite(self, proc: ProcessControlBlock, call: Syscall) -> Syscall:
        self.intercept_count += 1
        handler = getattr(self, f"_rw_{call.name}", None)
        if handler is None:
            return call
        return handler(proc, call)

    def _rw_bind(self, proc, call: Syscall) -> Syscall:
        fd, _ip, port = call.args
        # Confine the socket to the pod's VIF address regardless of what
        # the application asked for (INADDR_ANY or otherwise).
        return replace(call, args=(fd, self.pod.ip, port))

    def _rw_connect(self, proc, call: Syscall) -> Syscall:
        kwargs = dict(call.kwargs)
        kwargs["bind_ip"] = self.pod.ip
        return replace(call, kwargs=kwargs)

    def _rw_sendto(self, proc, call: Syscall) -> Syscall:
        kwargs = dict(call.kwargs)
        kwargs.setdefault("src_ip", self.pod.ip)
        return replace(call, kwargs=kwargs)

    def _rw_ioctl(self, proc, call: Syscall) -> Syscall:
        request, arg = call.args
        if request == SIOCGIFHWADDR and self.pod.vif is not None:
            # Pod processes only see the pod's VIF, whatever name they use.
            return replace(call, args=(request, self.pod.vif.name))
        return call

    def _rw_kill(self, proc, call: Syscall) -> Syscall:
        vpid, sig = call.args
        try:
            return replace(call, args=(self.pod.pid_of(vpid), sig))
        except PodError:
            raise SyscallError("ESRCH", f"vpid {vpid}")

    def _rw_waitpid(self, proc, call: Syscall) -> Syscall:
        (vpid,) = call.args
        try:
            return replace(call, args=(self.pod.pid_of(vpid),))
        except PodError:
            raise SyscallError("ECHILD", f"vpid {vpid}")

    def _rw_shm_read(self, proc, call: Syscall) -> Syscall:
        vid = call.args[0]
        return replace(call, args=(self._phys(self.pod.vshm, vid),
                                   *call.args[1:]))

    def _rw_shm_write(self, proc, call: Syscall) -> Syscall:
        vid = call.args[0]
        return replace(call, args=(self._phys(self.pod.vshm, vid),
                                   *call.args[1:]))

    def _rw_semop(self, proc, call: Syscall) -> Syscall:
        vid = call.args[0]
        return replace(call, args=(self._phys(self.pod.vsem, vid),
                                   *call.args[1:]))

    def _rw_shmget(self, proc, call: Syscall) -> Syscall:
        key, size = call.args
        # Pod-private key namespace: two pods using key 5 must not collide.
        return replace(call, args=(self._namespaced_key(key), size))

    def _rw_semget(self, proc, call: Syscall) -> Syscall:
        key = call.args[0]
        rest = call.args[1:]
        return replace(call, args=(self._namespaced_key(key), *rest))

    def _namespaced_key(self, key: int) -> int:
        return (self.pod.pod_id << 32) | (key & 0xFFFFFFFF)

    @staticmethod
    def _phys(table, vid: int) -> int:
        physical = table.get(vid)
        if physical is None:
            raise SyscallError("EINVAL", f"virtual ipc id {vid}")
        return physical

    # -- result translation ---------------------------------------------------

    def translate_result(self, proc: ProcessControlBlock, call: Syscall,
                         result: Any) -> Any:
        handler = getattr(self, f"_tr_{call.name}", None)
        if handler is None:
            return result
        return handler(proc, call, result)

    def _tr_getpid(self, proc, call, result) -> int:
        return self.pod.vpid_of(result)

    def _tr_getppid(self, proc, call, result) -> int:
        if result == 0:
            return 0
        try:
            return self.pod.vpid_of(result)
        except PodError:
            return 0  # parent outside the pod appears as init

    def _tr_spawn(self, proc, call, result) -> int:
        return self.pod.vpid_of(result)

    def _tr_fork(self, proc, call, result):
        role, pid = result
        if role == "parent":
            return (role, self.pod.vpid_of(pid))
        return result

    def _tr_shmget(self, proc, call, result) -> int:
        return self.pod.virtual_ipc_id(self.pod.vshm, result)

    def _tr_semget(self, proc, call, result) -> int:
        return self.pod.virtual_ipc_id(self.pod.vsem, result)

    def _tr_ioctl(self, proc, call, result):
        request = call.args[0]
        if request == SIOCGIFHWADDR and self.pod.vif is not None:
            return self.pod.vif.identity_mac
        return result

    def _tr_getsockname(self, proc, call, result):
        return result  # pod addresses are already network-visible (§4.2)


def install_pod(pod: Pod) -> ZapInterposer:
    """Attach the pod's VIF and register its interposer with the kernel."""
    interposer = ZapInterposer(pod)
    pod.node.interposers[pod.pod_id] = interposer
    if pod.vif is None:
        pod.attach()
    return interposer


def uninstall_pod(pod: Pod) -> None:
    pod.node.interposers.pop(pod.pod_id, None)
    # Kernel-side pod-exit path: reclaims the pod's SysV IPC namespace
    # and (under CRUZ_SANITIZE) checks pause/resume pairing and leaks.
    pod.node.on_pod_exit(pod)
    pod.detach()
