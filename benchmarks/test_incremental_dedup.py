"""§5.2 incremental/dedup checkpointing: bytes stored per epoch (slm).

The chunk store makes the optimisation measurable as real byte movement:
full mode rewrites every chunk each epoch, dedup mode skips chunks whose
content hash is already stored, incremental mode additionally skips even
hashing clean pages. slm touches only its grid each step, so with extra
untouched workspace well under 100% of the pages dirty between epochs —
dedup and incremental epochs must store strictly less than full ones.
"""

from repro.apps.slm import slm_factory
from repro.bench.harness import render_table
from repro.cruz.cluster import CruzCluster
from repro.simos.memory import PAGE_SIZE

N_RANKS = 2
EPOCHS = 3
#: Untouched per-rank workspace so only a fraction of pages stay dirty.
WORKSPACE_MB = 8.0


def run_epochs(mode):
    cluster = CruzCluster(N_RANKS)
    # Default per-step compute (1 ms) so steps — and grid touches —
    # actually happen between epochs; the workspace is never written.
    app = cluster.launch_app_factory(
        "slm", N_RANKS,
        slm_factory(N_RANKS, global_rows=16, cols=2048, steps=10_000,
                    memory_mb_per_rank=WORKSPACE_MB))
    cluster.run_for(0.3)
    store = cluster.store
    per_epoch = []
    for _epoch in range(EPOCHS):
        before = store.stats["bytes_written"]
        cluster.checkpoint_app(
            app, incremental=(mode == "incremental"),
            dedup=(mode == "dedup"))
        per_epoch.append(store.stats["bytes_written"] - before)
        # Long enough to clear the post-checkpoint TCP backoff and make
        # real forward progress (grid touches) before the next epoch.
        cluster.run_for(0.5)
    return per_epoch


def test_incremental_dedup_bytes_per_epoch(benchmark, show):
    results = benchmark.pedantic(
        lambda: {mode: run_epochs(mode)
                 for mode in ("full", "dedup", "incremental")},
        rounds=1, iterations=1)
    rows = [[epoch + 1] + [f"{results[mode][epoch] / (1 << 20):.2f} MB"
                           for mode in ("full", "dedup", "incremental")]
            for epoch in range(EPOCHS)]
    show(render_table(
        "bytes stored per checkpoint epoch (slm, "
        f"{WORKSPACE_MB:.0f} MB untouched workspace/rank)",
        ["epoch", "full", "dedup", "incremental"], rows))
    full, dedup, incremental = (results["full"], results["dedup"],
                                results["incremental"])
    # Epoch 1 is a cold store: every mode writes the whole state.
    assert dedup[0] >= full[0] * 0.9
    # Steady state: the untouched workspace pages dedup away, so dedup
    # and incremental store strictly less than full every epoch.
    workspace_bytes = int(WORKSPACE_MB * (1 << 20))
    for epoch in range(1, EPOCHS):
        assert dedup[epoch] < full[epoch]
        assert incremental[epoch] < full[epoch]
        # At least the workspace is never re-stored (per rank).
        assert full[epoch] - dedup[epoch] >= \
            N_RANKS * (workspace_bytes - PAGE_SIZE)
        assert full[epoch] - incremental[epoch] >= \
            N_RANKS * (workspace_bytes - PAGE_SIZE)
