"""A small message-passing library over simulated TCP sockets.

Deliberately CR-oblivious: no hooks, no checkpoint callbacks, no channel
flushing — the library is exactly the kind of code MPVM/CoCheck/LAM-MPI had
to *modify* and Cruz does not (§2, §5).
"""

from repro.mpi.api import MpiProgram

__all__ = ["MpiProgram"]
