"""Experiment harnesses regenerating the paper's tables and figures."""

from repro.bench.fig5 import Fig5Point, fig5_shape_holds, run_fig5
from repro.bench.fig6 import Fig6Result, fig6_shape_holds, run_fig6
from repro.bench.harness import Stat, paper_vs_measured, render_table
from repro.bench.messages import (
    MessagePoint,
    messages_shape_holds,
    run_messages,
)
from repro.bench.optimization import (
    OptimizationResult,
    optimization_shape_holds,
    run_optimization,
)
from repro.bench.overhead import (
    OverheadResult,
    overhead_shape_holds,
    run_overhead,
)

__all__ = [
    "Fig5Point",
    "Fig6Result",
    "MessagePoint",
    "OptimizationResult",
    "OverheadResult",
    "Stat",
    "fig5_shape_holds",
    "fig6_shape_holds",
    "messages_shape_holds",
    "optimization_shape_holds",
    "overhead_shape_holds",
    "paper_vs_measured",
    "render_table",
    "run_fig5",
    "run_fig6",
    "run_messages",
    "run_optimization",
    "run_overhead",
]
