"""Point-to-point links with bandwidth, latency, and fault injection.

A link connects two :class:`Port` endpoints. Each direction is an independent
FIFO: frames serialise at the link bandwidth and then propagate after the
fixed latency, matching store-and-forward Ethernet behaviour closely enough
for the paper's timing results.

Delivery is **batched** per direction: in-flight frames wait in the
direction's pending deque and a single armed arrival event walks it,
delivering every frame that is due as one ordered batch — so a
back-to-back burst on a busy direction occupies one slot in the
simulator queue instead of one per frame. An optional coalescing window
(``coalesce_s``, the NIC interrupt-moderation analogue) holds the
arrival event open a little longer so more of the burst lands in one
batch; each frame is then delivered within ``[arrival, arrival +
coalesce_s]``, never early. ``direct=True`` restores the pre-batching
one-event-per-frame scheduling (the legacy scheduler preset).
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Optional, Tuple

from repro.errors import NetworkError
from repro.net.packet import EthernetFrame
from repro.sim.core import Simulator

GIGABIT = 1_000_000_000.0


class Port:
    """One attachment point: something that can emit and accept frames."""

    def __init__(self, name: str,
                 receive: Callable[[EthernetFrame, "Port"], None]):
        self.name = name
        self._receive = receive
        self.link: Optional["Link"] = None
        self.frames_in = 0
        self.frames_out = 0

    def deliver(self, frame: EthernetFrame) -> None:
        self.frames_in += 1
        self._receive(frame, self)

    def transmit(self, frame: EthernetFrame) -> None:
        if self.link is None:
            raise NetworkError(f"port {self.name} is not cabled")
        self.frames_out += 1
        self.link.send(frame, self)

    def __repr__(self) -> str:
        return f"<Port {self.name}>"


class _Direction:
    """One direction of a full-duplex link: its serialisation horizon,
    the frames in flight, and the single armed arrival event.

    State is held as plain attributes on a per-direction object — keyed
    by identity of the *direction*, not by ``id(port)`` in a shared dict
    (allocation addresses are the CRZ006 hazard class: not stable, not
    checkpointable, and silently aliasing after a free/realloc).
    """

    __slots__ = ("source", "destination", "busy_until", "pending", "armed",
                 "batches", "frames")

    def __init__(self, source: Port, destination: Port):
        self.source = source
        self.destination = destination
        self.busy_until = 0.0
        #: (arrival_time, frame) in FIFO order.
        self.pending: Deque[Tuple[float, EthernetFrame]] = deque()
        self.armed = False
        self.batches = 0
        self.frames = 0


class Link:
    """A full-duplex cable between two ports.

    With a telemetry hub attached (``trace=``), dropped frames feed the
    ``link.frames_dropped`` counter (labelled per link) and up/down
    transitions are recorded as ``link.down``/``link.up`` span instants
    plus the ``link.links_down`` gauge — so chaos runs show data-plane
    loss in ``repro trace`` output. ``link.down = True`` keeps working as
    a plain attribute assignment.
    """

    def __init__(self, sim: Simulator, a: Port, b: Port,
                 bandwidth_bps: float = GIGABIT,
                 latency_s: float = 5e-6,
                 drop_fn: Optional[Callable[[EthernetFrame], bool]] = None,
                 name: str = "", trace=None,
                 coalesce_s: float = 0.0, direct: bool = False):
        if a.link is not None or b.link is not None:
            raise NetworkError("port already cabled")
        self.sim = sim
        self.a = a
        self.b = b
        self.bandwidth_bps = bandwidth_bps
        self.latency_s = latency_s
        self.drop_fn = drop_fn
        self.name = name or f"{a.name}<->{b.name}"
        self.trace = trace
        self._down = False
        self.frames_dropped = 0
        self.coalesce_s = coalesce_s
        self.direct = direct
        self.a_to_b = _Direction(a, b)
        self.b_to_a = _Direction(b, a)
        a.link = self
        b.link = self

    @property
    def down(self) -> bool:
        return self._down

    @down.setter
    def down(self, value: bool) -> None:
        value = bool(value)
        if value == self._down:
            return
        self._down = value
        if self.trace is not None:
            self.trace.metrics.gauge("link.links_down").add(
                1 if value else -1)
            self.trace.spans.instant(
                "link.down" if value else "link.up", link=self.name)
            self.trace.emit(self.sim.now,
                            "link_down" if value else "link_up",
                            link=self.name)

    def _drop(self, frame: EthernetFrame) -> None:
        self.frames_dropped += 1
        if self.trace is not None:
            self.trace.metrics.counter("link.frames_dropped").inc(
                label=self.name)

    def send(self, frame: EthernetFrame, source: Port) -> None:
        """Queue ``frame`` for transmission from ``source``'s side."""
        if source is self.a:
            direction = self.a_to_b
        elif source is self.b:
            direction = self.b_to_a
        else:
            raise NetworkError(f"{source!r} is not on link {self.name}")
        if self._down or (self.drop_fn is not None
                          and self.drop_fn(frame)):
            self._drop(frame)
            return
        now = self.sim.now
        start = direction.busy_until
        if start < now:
            start = now
        finish = start + frame.size * 8.0 / self.bandwidth_bps
        direction.busy_until = finish
        arrival = finish + self.latency_s
        if self.direct:
            self.sim.call_at(arrival, self._arrive, frame,
                             direction.destination)
            return
        direction.pending.append((arrival, frame))
        if not direction.armed:
            # Arm for the *head* pending arrival: during a re-entrant
            # send (a deliver callback transmitting back-to-back) older
            # frames may still be queued ahead of this one.
            direction.armed = True
            due = direction.pending[0][0] + self.coalesce_s
            self.sim.defer_at(due if due > now else now,
                              self._deliver, direction)

    def _arrive(self, frame: EthernetFrame, destination: Port) -> None:
        if self._down:
            self._drop(frame)
            return
        destination.deliver(frame)

    def _deliver(self, direction: _Direction) -> None:
        """Deliver every pending frame that is due, as one ordered batch."""
        direction.armed = False
        now = self.sim.now
        pending = direction.pending
        destination = direction.destination
        delivered = 0
        while pending and pending[0][0] <= now:
            _arrival, frame = pending.popleft()
            delivered += 1
            if self._down:
                self._drop(frame)
            else:
                destination.deliver(frame)
        if delivered:
            direction.batches += 1
            direction.frames += delivered
        if pending and not direction.armed:
            # Frames queued behind the batch (or armed by a re-entrant
            # send during delivery): keep exactly one event in flight.
            direction.armed = True
            self.sim.defer_at(pending[0][0] + self.coalesce_s,
                              self._deliver, direction)
