"""The user-level library baseline: what it can do, and everything it
cannot (the §2 comparison as tests)."""

import pytest

from repro.baselines.userlevel import (
    UnsupportedResource,
    UserLevelCheckpointer,
)
from repro.cluster import Cluster
from repro.simos.process import SIGCONT, SIGKILL

from tests.programs import ComputeLoop, EchoServer, PipeProducer, Sleeper


class RelinkedComputeLoop(ComputeLoop):
    """A compute program 're-linked' against the checkpoint library."""

    checkpointable_with_library = True


def make_cluster(n=2):
    return Cluster(n, time_wait_s=0.5)


def test_userlevel_checkpoints_relinked_compute_job():
    cluster = make_cluster()
    node = cluster.nodes[0]
    proc = node.spawn(RelinkedComputeLoop(iterations=40, work_s=0.01))
    cluster.run_for(0.15)
    checkpointer = UserLevelCheckpointer()
    image = checkpointer.checkpoint_process(proc)
    node.signal_now(proc.pid, SIGKILL)
    restored = checkpointer.restore_process(image, cluster.nodes[1])
    cluster.run()
    assert restored.exit_code == 0
    assert restored.program.done == 40


def test_userlevel_requires_application_modification():
    """Unmodified applications are rejected — the transparency gap."""
    cluster = make_cluster()
    node = cluster.nodes[0]
    proc = node.spawn(ComputeLoop(iterations=40, work_s=0.01))
    cluster.run_for(0.1)
    with pytest.raises(UnsupportedResource, match="re-linked"):
        UserLevelCheckpointer().checkpoint_process(proc)


def test_userlevel_refuses_sockets():
    class RelinkedEchoServer(EchoServer):
        checkpointable_with_library = True

    cluster = make_cluster()
    node = cluster.nodes[0]
    ip = str(node.stack.eth0.ip)
    proc = node.spawn(RelinkedEchoServer(port=8000, bind_ip=ip))
    cluster.run_for(0.1)
    with pytest.raises(UnsupportedResource, match="sockets"):
        UserLevelCheckpointer().checkpoint_process(proc)


def test_userlevel_refuses_pipes():
    class RelinkedPipeUser(PipeProducer):
        checkpointable_with_library = True

    from tests.programs import SlowPipeline

    class RelinkedSlowPipeline(SlowPipeline):
        checkpointable_with_library = True

    cluster = make_cluster()
    node = cluster.nodes[0]
    proc = node.spawn(RelinkedSlowPipeline())
    cluster.run_for(0.3)  # sleeping with a loaded pipe
    with pytest.raises(UnsupportedResource, match="pipes"):
        UserLevelCheckpointer().checkpoint_process(proc)
    del RelinkedPipeUser


def test_userlevel_refuses_multiprocess_jobs():
    cluster = make_cluster()
    node = cluster.nodes[0]
    procs = [node.spawn(RelinkedComputeLoop(iterations=10, work_s=0.01))
             for _ in range(2)]
    cluster.run_for(0.02)
    with pytest.raises(UnsupportedResource, match="single process"):
        UserLevelCheckpointer().checkpoint_job(procs)


def test_userlevel_does_not_preserve_pids_unlike_zap():
    """Restored processes get fresh PIDs; PID-dependent state breaks.
    Zap's vPID namespace is exactly what removes this failure mode."""
    cluster = make_cluster()
    node = cluster.nodes[0]
    proc = node.spawn(RelinkedComputeLoop(iterations=50, work_s=0.01))
    cluster.run_for(0.1)
    image = UserLevelCheckpointer().checkpoint_process(proc)
    node.signal_now(proc.pid, SIGCONT)
    target = cluster.nodes[1]
    # The original pid is already taken on the target node.
    for _ in range(image.original_pid + 3):
        target.spawn(Sleeper(100.0))
    restored = UserLevelCheckpointer().restore_process(image, target)
    assert restored.pid != image.original_pid
