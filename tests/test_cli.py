"""CLI smoke tests."""

import json

import pytest

from repro.cli import build_parser, main, to_jsonable


def test_parser_knows_all_commands():
    parser = build_parser()
    for command in ("demo", "fig5", "fig6", "messages", "overhead",
                    "fig4", "trace"):
        args = parser.parse_args([command])
        assert callable(args.fn)
        assert args.json is False


def test_cli_requires_a_command(capsys):
    with pytest.raises(SystemExit):
        main([])


def test_cli_overhead_runs(capsys):
    assert main(["overhead"]) == 0
    out = capsys.readouterr().out
    assert "overhead" in out
    assert "< 0.5" in out
    # The shape checks are printed, not just computed.
    assert "overhead_below_half_percent" in out
    assert "PASS" in out


def test_cli_fig5_small_runs(capsys):
    assert main(["fig5", "--nodes", "2", "3", "--rounds", "2"]) == 0
    out = capsys.readouterr().out
    assert "Fig 5" in out


def test_cli_demo_runs(capsys):
    assert main(["demo"]) == 0
    out = capsys.readouterr().out
    assert "migration was transparent" in out


def test_cli_messages_small_runs(capsys):
    assert main(["messages", "--nodes", "2", "4"]) == 0
    out = capsys.readouterr().out
    assert "O(N)" in out


def test_cli_trace_summary_reports_coverage(capsys):
    assert main(["trace", "--nodes", "2", "--rounds", "1",
                 "--interval", "0.2", "--memory-mb", "4"]) == 0
    out = capsys.readouterr().out
    assert "Span summary" in out
    assert "agent.local" in out
    assert "spans cover" in out


def test_cli_trace_chrome_emits_parseable_json(capsys):
    assert main(["trace", "--nodes", "2", "--rounds", "1",
                 "--interval", "0.2", "--memory-mb", "4",
                 "--format", "chrome"]) == 0
    out = capsys.readouterr().out
    doc = json.loads(out)  # pure JSON on stdout, nothing else
    events = doc["traceEvents"]
    assert any(e.get("ph") == "X" and e["name"] == "round"
               for e in events)
    assert any(e.get("ph") == "M" for e in events)


def test_cli_trace_chrome_writes_out_file(tmp_path, capsys):
    out_file = tmp_path / "trace.json"
    assert main(["trace", "--nodes", "2", "--rounds", "1",
                 "--interval", "0.2", "--memory-mb", "4",
                 "--format", "chrome", "--out", str(out_file)]) == 0
    assert capsys.readouterr().out == ""  # stdout stays clean
    doc = json.loads(out_file.read_text())
    assert doc["traceEvents"]


def test_cli_trace_json_summary(capsys):
    assert main(["trace", "--nodes", "2", "--rounds", "1",
                 "--interval", "0.2", "--memory-mb", "4",
                 "--json"]) == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc["command"] == "trace"
    assert doc["coverage"][0] >= 0.95
    assert doc["rounds"][0]["committed"] is True
    assert "store.saves" in doc["metrics"]


def test_cli_fig5_json_output(capsys):
    assert main(["fig5", "--nodes", "2", "3", "--rounds", "2",
                 "--json"]) == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc["command"] == "fig5"
    assert doc["shape"]["passed"] is True
    assert [p["n_nodes"] for p in doc["points"]] == [2, 3]
    assert doc["points"][0]["latency"]["n"] == 2


def test_cli_overhead_json_output(capsys):
    assert main(["overhead", "--json"]) == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc["command"] == "overhead"
    assert doc["overhead_fraction"] < 0.005
    checks = {c["name"]: c["ok"] for c in doc["shape"]["checks"]}
    assert checks["overhead_below_half_percent"] is True


def test_to_jsonable_handles_the_harness_types():
    from repro.bench.harness import ShapeReport, Stat

    report = ShapeReport("t")
    report.check("c", True, value=1.5, expect="e")
    nan_stat = Stat.of([])
    payload = to_jsonable({
        "stat": Stat.of([1.0, 3.0]),
        "report": report,
        "nan": nan_stat,
        "seq": (1, "two", None),
        "other": {1: {2.5}},
    })
    assert payload["stat"] == {"mean": 2.0, "std": 1.0, "n": 2}
    assert payload["report"]["checks"][0]["name"] == "c"
    assert payload["nan"]["mean"] is None  # NaN -> null, strict JSON
    assert payload["seq"] == [1, "two", None]
    assert payload["other"] == {"1": "{2.5}"}  # last-resort stringify
    json.dumps(payload, allow_nan=False)


# -- analysis commands (lint / sanitize / analyze) -------------------------


def test_exit_code_convention_constants():
    from repro.cli import EXIT_OK, EXIT_USAGE, EXIT_VIOLATIONS

    assert (EXIT_OK, EXIT_VIOLATIONS, EXIT_USAGE) == (0, 1, 2)


def test_parser_knows_the_analysis_commands():
    parser = build_parser()
    for argv in (["lint"], ["sanitize", "fig5-small"],
                 ["analyze", "determinism"]):
        args = parser.parse_args(argv)
        assert callable(args.fn)
        assert args.json is False


def test_cli_lint_is_clean_on_the_tree(capsys):
    assert main(["lint"]) == 0
    assert "0 violation(s)" in capsys.readouterr().out


def test_cli_lint_flags_injected_wallclock(tmp_path, capsys):
    bad = tmp_path / "leaky.py"
    bad.write_text("import time\n\ndef now():\n    return time.time()\n")
    assert main(["lint", str(bad)]) == 1
    out = capsys.readouterr().out
    assert "CRZ001" in out
    assert f"{bad}:4:" in out


def test_cli_lint_json_carries_violations_and_catalog(tmp_path, capsys):
    bad = tmp_path / "leaky.py"
    bad.write_text("import random\n\ndef pick(xs):\n"
                   "    return random.choice(xs)\n")
    assert main(["lint", str(bad), "--json"]) == 1
    doc = json.loads(capsys.readouterr().out)
    assert doc["command"] == "lint"
    assert doc["violations"][0]["code"] == "CRZ002"
    assert "CRZ002" in doc["rules"]


def test_cli_sanitize_fig5_small_is_clean(capsys):
    assert main(["sanitize", "fig5-small"]) == 0
    assert "sanitizer: clean" in capsys.readouterr().out


def test_cli_sanitize_rejects_unknown_workload(capsys):
    with pytest.raises(SystemExit) as excinfo:
        main(["sanitize", "bogus"])
    assert excinfo.value.code == 2


def test_cli_analyze_rejects_unknown_check(capsys):
    with pytest.raises(SystemExit) as excinfo:
        main(["analyze", "entropy"])
    assert excinfo.value.code == 2


def test_cli_analyze_determinism_passes(capsys):
    assert main(["analyze", "determinism", "--nodes", "2",
                 "--rounds", "1"]) == 0
    out = capsys.readouterr().out
    assert "PASS" in out


def test_cli_analyze_determinism_json(capsys):
    assert main(["analyze", "determinism", "--nodes", "2",
                 "--rounds", "1", "--json"]) == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc["command"] == "analyze"
    assert doc["deterministic"] is True
    assert doc["divergences"] == []


def test_parser_knows_chaos():
    parser = build_parser()
    args = parser.parse_args(["chaos", "--seed", "3"])
    assert callable(args.fn)
    assert args.seed == 3 and args.json is False


def test_cli_chaos_self_heals(capsys):
    assert main(["chaos", "--seed", "7"]) == 0
    out = capsys.readouterr().out
    assert "chaos: PASS" in out
    assert "mttr=" in out
    assert "sanitizer: clean" in out


def test_cli_chaos_json_reports_mttr_phases(capsys):
    assert main(["chaos", "--seed", "7", "--json"]) == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc["command"] == "chaos"
    assert doc["ok"] is True
    assert doc["mttr_s"] > 0
    phases = doc["result"]["failovers"][0]["phases"]
    assert set(phases) == {"detect", "verify", "place", "restart",
                           "total"}
    assert phases["detect"] > 0 and phases["restart"] > 0
    assert doc["result"]["sanitizer_violations"] == 0
    assert doc["result"]["rounds_aborted"] >= 1
