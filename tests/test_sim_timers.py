"""Hashed timer wheel, lazy RTO restart, and batched link delivery."""

from repro.errors import SimulationError
import pytest

from repro.net.link import Link, Port
from repro.net.packet import EthernetFrame
from repro.net.addresses import MacAddress
from repro.sim.core import Simulator
from repro.sim.timers import (
    DEFAULT_GRANULARITY,
    DirectTimers,
    TimerWheel,
    timers_for,
)

from tests.helpers import make_pair
from tests.test_tcp_connection import SinkApp, SourceApp, establish


# ---------------------------------------------------------------------------
# Wheel semantics
# ---------------------------------------------------------------------------

def test_wheel_fires_rounded_up_to_slot():
    sim = Simulator()
    wheel = timers_for(sim)
    assert isinstance(wheel, TimerWheel)
    fired = []
    wheel.after(0.0101, lambda: fired.append(sim.now))
    sim.run()
    assert len(fired) == 1
    # At most one slot late, never early.
    assert 0.0101 <= fired[0] <= 0.0101 + DEFAULT_GRANULARITY


def test_wheel_slot_sharing_one_event_many_timers():
    sim = Simulator()
    wheel = timers_for(sim)
    fired = []
    for k in range(100):
        # All within one granularity window: they share a slot.
        wheel.after(0.010, fired.append, k)
    sim.run()
    assert fired == list(range(100))          # arming order within a slot
    assert wheel.stats()["slot_events"] <= 2  # not one event per timer


def test_wheel_cancel_prevents_fire_and_counts():
    sim = Simulator()
    wheel = timers_for(sim)
    fired = []
    keep = wheel.after(0.01, fired.append, "keep")
    drop = wheel.after(0.01, fired.append, "drop")
    drop.cancel()
    assert keep.active and not drop.active
    sim.run()
    assert fired == ["keep"]
    stats = wheel.stats()
    assert stats["fired"] == 1
    assert stats["cancelled"] == 1


def test_wheel_rearm_into_same_slot_during_fire():
    sim = Simulator()
    wheel = timers_for(sim)
    fired = []

    def again():
        fired.append(sim.now)
        if len(fired) < 3:
            wheel.after(0.0, again)           # re-arms into the live slot

    wheel.after(0.01, again)
    sim.run()
    assert len(fired) == 3


def test_wheel_rejects_negative_delay():
    sim = Simulator()
    wheel = timers_for(sim)
    with pytest.raises(SimulationError):
        wheel.after(-0.1, lambda: None)


def test_direct_timers_shim_matches_handle_api():
    sim = Simulator(slotted_timers=False)
    timers = timers_for(sim)
    assert isinstance(timers, DirectTimers)
    assert timers.LAZY_RESTART is False
    fired = []
    keep = timers.after(0.25, fired.append, "keep")
    drop = timers.after(0.25, fired.append, "drop")
    assert keep.active and drop.active
    drop.cancel()
    assert not drop.active
    sim.run()
    assert fired == ["keep"]
    assert sim.now == 0.25                    # exact, unquantised deadline
    assert not keep.active


# ---------------------------------------------------------------------------
# Lazy RTO restart (mod_timer discipline) at the TCP layer
# ---------------------------------------------------------------------------

def test_rtx_restart_is_lazy_under_the_wheel():
    """Per-ACK RTO restarts are deadline bumps, not fresh wheel arms."""
    arms = {}
    acked = {}
    for lazy in (True, False):
        sim, wire, a, b = make_pair()
        client, server = establish(sim, a, b)
        client._lazy_restart = lazy
        SinkApp(sim, server)
        before = client._timers.armed
        SourceApp(sim, client, b"x" * 40000)
        sim.run(until=sim.now + 2.0)
        arms[lazy] = client._timers.armed - before
        acked[lazy] = client.tcb.snd_una - client.tcb.iss
    assert acked[True] == acked[False] > 40000  # identical transfer
    # Eager restart pays one wheel arm per restarting ACK; lazy restart
    # pays none (its arms are the delayed-ACK and handshake timers both
    # runs share).
    assert arms[True] < arms[False], arms


def test_lazy_restart_still_retransmits_at_the_bumped_deadline():
    sim, wire, a, b = make_pair()
    client, server = establish(sim, a, b)
    SinkApp(sim, server)
    # Drop every data segment from the client after the bump window so
    # the (lazily maintained) RTO is the only recovery path.
    state = {"drops": 0}

    def drop_data(packet):
        if packet.src == a[0] and len(packet.payload.payload) > 0:
            state["drops"] += 1
            return True
        return False

    client.send(b"y" * 500)
    sim.run(until=sim.now + 0.05)              # segment + ACK exchange
    wire.drop_fn = drop_data
    client.send(b"z" * 500)
    deadline = client._rtx_deadline
    sim.run(until=deadline + 1.0)
    wire.drop_fn = None
    sim.run(until=sim.now + 10.0)
    assert state["drops"] >= 1
    assert client.tcb.snd_una == client.tcb.snd_nxt  # recovered via RTO


# ---------------------------------------------------------------------------
# Batched link delivery
# ---------------------------------------------------------------------------

class _Payload:
    """Minimal frame payload: a size and an identifying note."""

    __slots__ = ("size", "note")

    def __init__(self, note, size=1486):
        self.note = note
        self.size = size


def _frame(k, size=1486):
    return EthernetFrame(src=MacAddress.ordinal(1),
                         dst=MacAddress.ordinal(2), ethertype=0x0800,
                         payload=_Payload(str(k), size))


def test_link_burst_delivers_in_order_as_batches():
    sim = Simulator()
    got = []
    a = Port("a", lambda frame, port: None)
    b = Port("b", lambda frame, port: got.append(frame.payload.note))
    # A coalescing window wider than the per-frame serialisation time:
    # the burst lands as a handful of batches, not one event per frame.
    link = Link(sim, a, b, bandwidth_bps=1e9, latency_s=5e-6,
                coalesce_s=1e-3)
    for k in range(50):
        a.transmit(_frame(k))
    sim.run()
    assert got == [str(k) for k in range(50)]
    direction = link.a_to_b
    assert direction.frames == 50
    assert direction.batches < 10


def test_link_direct_mode_matches_batched_delivery_times():
    results = {}
    for direct in (False, True):
        sim = Simulator(queue="calendar" if not direct else "heap",
                        lightweight=not direct)
        got = []
        a = Port("a", lambda frame, port: None)
        b = Port("b",
                 lambda frame, port: got.append((sim.now,
                                                 frame.payload.note)))
        Link(sim, a, b, bandwidth_bps=1e9, latency_s=5e-6, direct=direct)
        for k in range(20):
            a.transmit(_frame(k))
        sim.run()
        results[direct] = got
    assert results[False] == results[True]


def test_link_coalescing_never_delivers_early():
    sim = Simulator()
    got = []
    a = Port("a", lambda frame, port: None)
    b = Port("b", lambda frame, port: got.append(sim.now))
    coalesce = 2.0 ** -15
    Link(sim, a, b, bandwidth_bps=1e9, latency_s=5e-6,
         coalesce_s=coalesce)
    frame = _frame(0)
    earliest = frame.size * 8.0 / 1e9 + 5e-6
    a.transmit(frame)
    sim.run()
    assert len(got) == 1
    assert earliest <= got[0] <= earliest + coalesce


def test_link_down_drops_pending_frames():
    sim = Simulator()
    got = []
    a = Port("a", lambda frame, port: None)
    b = Port("b", lambda frame, port: got.append(frame.payload.note))
    link = Link(sim, a, b)
    a.transmit(_frame(0))
    link.down = True
    sim.run()
    assert got == []
    assert link.frames_dropped == 1
