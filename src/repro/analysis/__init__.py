"""CruzSan: static determinism lint + runtime invariant sanitizer.

Cruz's correctness argument rests on invariants the code must hold at
every instant (the §5.1 TCP sequence invariant, chunk-store refcount
soundness, WAL epoch monotonicity, netfilter rules never outliving a
round).  This package checks them mechanically:

* :mod:`repro.analysis.lint` — AST lint with repo-specific rules
  (``repro lint``), each with a code, a fix-hint and
  ``# cruz: noqa[RULE]`` suppression;
* :mod:`repro.analysis.sanitize` — pluggable runtime invariant checkers
  hung off existing hooks (``CRUZ_SANITIZE=1`` / ``repro sanitize``),
  violations annotated with the enclosing telemetry span;
* :mod:`repro.analysis.determinism` — a schedule-race detector that
  runs a workload twice with perturbed same-timestamp tie-breaking and
  diffs RoundStats plus a state hash (``repro analyze determinism``).

See docs/ANALYSIS.md for the rule catalog and hook points.
"""

from repro.analysis.lint import LintViolation, lint_paths, lint_source
from repro.analysis.sanitize import Sanitizer, Violation

__all__ = [
    "LintViolation",
    "Sanitizer",
    "Violation",
    "lint_paths",
    "lint_source",
]
