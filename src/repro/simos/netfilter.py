"""A netfilter-style packet filter.

The coordinated checkpoint protocol's only OS hook (§5): "the Agent can add
a netfilter rule which ensures that all traffic to or from the local pod is
silently dropped". Rules are evaluated on both the input and output hooks of
a node's IP stack.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.net.addresses import Ipv4Address
from repro.net.packet import IpPacket

INPUT = "INPUT"
OUTPUT = "OUTPUT"

_rule_ids = itertools.count(1)


@dataclass
class Rule:
    """Drop traffic matching an address (either direction) and hook."""

    ip: Optional[Ipv4Address] = None   # None matches every packet
    hooks: tuple = (INPUT, OUTPUT)
    rule_id: int = field(default_factory=lambda: next(_rule_ids))
    matched: int = 0

    def matches(self, packet: IpPacket, hook: str) -> bool:
        if hook not in self.hooks:
            return False
        if self.ip is None:
            return True
        return packet.src == self.ip or packet.dst == self.ip


class Netfilter:
    """An ordered drop-rule chain with counters."""

    def __init__(self):
        self.rules: List[Rule] = []
        self.dropped: Dict[str, int] = {INPUT: 0, OUTPUT: 0}
        self.passed: Dict[str, int] = {INPUT: 0, OUTPUT: 0}
        #: Bumped on rule changes; invalidates the stack's route cache.
        self.version = 0

    def add_rule(self, rule: Rule) -> int:
        self.rules.append(rule)
        self.version += 1
        return rule.rule_id

    def drop_all_for(self, ip: Ipv4Address) -> int:
        """The §5 Agent rule: silently drop all traffic to/from ``ip``."""
        return self.add_rule(Rule(ip=ip))

    def remove_rule(self, rule_id: int) -> bool:
        for index, rule in enumerate(self.rules):
            if rule.rule_id == rule_id:
                del self.rules[index]
                self.version += 1
                return True
        return False

    def allows(self, packet: IpPacket, hook: str) -> bool:
        for rule in self.rules:
            if rule.matches(packet, hook):
                rule.matched += 1
                self.dropped[hook] += 1
                return False
        self.passed[hook] += 1
        return True
