"""Sequence-number-accurate TCP (and minimal UDP) for the simulated cluster."""

from repro.tcp.buffers import BufferedSegment, ReceiveBuffer, SendBuffer
from repro.tcp.connection import TcpConnection
from repro.tcp.options import SocketOptions
from repro.tcp.stack import Listener, TcpStack
from repro.tcp.state import (
    MIN_RTO,
    TcpState,
    TransmissionControlBlock,
)
from repro.tcp.udp import UdpStack

__all__ = [
    "BufferedSegment",
    "Listener",
    "MIN_RTO",
    "ReceiveBuffer",
    "SendBuffer",
    "SocketOptions",
    "TcpConnection",
    "TcpStack",
    "TcpState",
    "TransmissionControlBlock",
    "UdpStack",
]
