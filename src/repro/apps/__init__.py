"""Application workloads: the paper's benchmarks plus demonstration apps."""

from repro.apps.compute import ComputeBound, compute_factory
from repro.apps.dhcp_client import DhcpClient
from repro.apps.kvproxy import KvProxy
from repro.apps.kvserver import (
    KvClient,
    KvServer,
    KvServerMulti,
    KvSessionClient,
    build_session_script,
)
from repro.apps.pagerank import (
    PageRankRank,
    build_link_matrix,
    pagerank_factory,
    reference_pagerank,
)
from repro.apps.ring import RingWorker, ring_factory, validate_ring
from repro.apps.slm import (
    SlmRank,
    initial_field,
    reference_solution,
    slm_factory,
)
from repro.apps.tcpstream import (
    StreamReceiver,
    StreamSender,
    stream_factory,
)

__all__ = [
    "ComputeBound",
    "DhcpClient",
    "KvClient",
    "KvProxy",
    "KvServer",
    "KvServerMulti",
    "KvSessionClient",
    "PageRankRank",
    "RingWorker",
    "SlmRank",
    "StreamReceiver",
    "StreamSender",
    "build_session_script",
    "compute_factory",
    "build_link_matrix",
    "initial_field",
    "reference_solution",
    "pagerank_factory",
    "reference_pagerank",
    "ring_factory",
    "slm_factory",
    "stream_factory",
    "validate_ring",
]
