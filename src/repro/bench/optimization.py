"""Fig. 4 harness: the early-resume optimisation.

With the blocking Fig. 2 protocol every node stays stopped until *all*
nodes have saved; with Fig. 4 each node resumes as soon as its own save is
done (and communication is known to be disabled everywhere). The benefit
shows on nodes whose state is small relative to the slowest node's.

Measured with a communication-free compute app (for a tightly coupled app
the paper itself notes fast nodes would just stall at the first message to
a still-blocked peer).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.apps.compute import compute_factory
from repro.cruz.cluster import CruzCluster


@dataclass
class OptimizationResult:
    """Per-pod pause durations under each protocol."""

    blocking_pause_s: Dict[str, float]
    optimized_pause_s: Dict[str, float]
    blocking_round_total_s: float
    optimized_round_total_s: float

    @property
    def max_blocking_pause(self) -> float:
        return max(self.blocking_pause_s.values())

    @property
    def min_optimized_pause(self) -> float:
        return min(self.optimized_pause_s.values())


def _pause_durations(cluster, epoch_filter=None) -> Dict[str, float]:
    paused = {}
    durations = {}
    for record in cluster.trace.records:
        if record.category == "pod_paused":
            paused[record.detail["pod"]] = record.time
        elif record.category == "pod_resumed":
            pod = record.detail["pod"]
            if pod in paused:
                durations[pod] = record.time - paused.pop(pod)
    return durations


def run_optimization(n_nodes: int = 4,
                     state_mb: List[float] = (100.0, 5.0, 5.0, 5.0),
                     ) -> OptimizationResult:
    """One blocking and one optimised round over unequal state sizes."""

    def one_round(optimized: bool):
        cluster = CruzCluster(n_nodes, trace_enabled=True)
        app = cluster.launch_app_factory(
            "cb", n_nodes,
            compute_factory(iterations=1_000_000, work_s=0.001,
                            state_mb_per_rank=list(state_mb)))
        cluster.run_for(0.2)
        stats = cluster.checkpoint_app(app, optimized=optimized)
        return _pause_durations(cluster), stats.total_s

    blocking, blocking_total = one_round(optimized=False)
    optimized, optimized_total = one_round(optimized=True)
    return OptimizationResult(
        blocking_pause_s=blocking, optimized_pause_s=optimized,
        blocking_round_total_s=blocking_total,
        optimized_round_total_s=optimized_total)


def optimization_shape_holds(result: OptimizationResult) -> dict:
    blocking = result.blocking_pause_s
    optimized = result.optimized_pause_s
    slowest = max(blocking, key=blocking.get)
    fast_pods = [pod for pod in blocking if pod != slowest]
    return {
        # Blocking: everyone pauses for about the slowest node's save.
        "blocking_all_wait": all(
            blocking[pod] > 0.9 * blocking[slowest] for pod in blocking),
        # Optimised: small-state pods resume much earlier.
        "optimized_fast_pods_resume_early": all(
            optimized[pod] < 0.5 * blocking[pod] for pod in fast_pods),
        # The slowest pod cannot do better than its own save time.
        "slowest_unchanged": optimized[slowest] > 0.5 * blocking[slowest],
    }
