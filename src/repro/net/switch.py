"""A learning Ethernet switch.

Implements source-address learning with flooding for unknown/broadcast
destinations — all that is needed for the paper's single-subnet cluster and
for gratuitous-ARP-driven re-learning after a pod migrates to another port.

Forwarding is batched: ingress frames wait in one FIFO of (due, frame,
ingress) and a single armed drain event forwards every frame that is due
— a burst delivered to the switch at one instant (e.g. by a batched link
direction) is forwarded by one event instead of one per frame.
``direct=True`` restores per-frame forwarding events (the legacy
scheduler preset).

Frames from *different* ingress ports can arrive at the same simulated
instant (symmetric paths, equal frame sizes), and the order their
delivery callbacks run is the event queue's tie-break — a policy correct
code must be indifferent to. The drain therefore forwards same-due
frames in (due, ingress port) order rather than callback order: per
ingress the link direction is already FIFO, so this canonical order is
the same under every tie-break, and two tied frames crossing the same
egress link serialise identically in a fifo and a lifo run.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Tuple

from repro.net.addresses import MacAddress
from repro.net.link import Port
from repro.net.packet import EthernetFrame
from repro.sim.core import Simulator


class Switch:
    """A store-and-forward learning switch."""

    def __init__(self, sim: Simulator, name: str = "switch",
                 forwarding_latency_s: float = 3e-6,
                 direct: bool = False):
        self.sim = sim
        self.name = name
        self.forwarding_latency_s = forwarding_latency_s
        self.direct = direct
        self.ports: List[Port] = []
        self._port_index: Dict[Port, int] = {}
        self.table: Dict[MacAddress, Port] = {}
        self.frames_forwarded = 0
        self.frames_flooded = 0
        self.drain_batches = 0
        self._pending: Deque[Tuple[float, EthernetFrame, Port]] = deque()
        self._armed = False

    def new_port(self) -> Port:
        port = Port(f"{self.name}.p{len(self.ports)}", self._on_frame)
        self._port_index[port] = len(self.ports)
        self.ports.append(port)
        return port

    def _on_frame(self, frame: EthernetFrame, ingress: Port) -> None:
        self.table[frame.src] = ingress
        if self.direct:
            self.sim.call_later(
                self.forwarding_latency_s, self._forward, frame, ingress)
            return
        due = self.sim.now + self.forwarding_latency_s
        self._pending.append((due, frame, ingress))
        if not self._armed:
            self._armed = True
            self.sim.defer_at(due, self._drain)

    def _drain(self) -> None:
        """Forward every due frame; keep one event armed for the rest."""
        self._armed = False
        now = self.sim.now
        pending = self._pending
        batch = []
        while pending and pending[0][0] <= now:
            batch.append(pending.popleft())
        if batch:
            if len(batch) > 1:
                # Same-due frames from different ingress ports were
                # appended in delivery-callback order — the tie-break's
                # choice, not ours. Sort into the canonical (due,
                # ingress) order; the stable sort keeps each ingress
                # port's own FIFO order intact.
                index = self._port_index
                batch.sort(key=lambda entry: (entry[0], index[entry[2]]))
            for _due, frame, ingress in batch:
                self._forward(frame, ingress)
            self.drain_batches += 1
        if pending and not self._armed:
            self._armed = True
            due = pending[0][0]
            self.sim.defer_at(due if due > now else now, self._drain)

    def _forward(self, frame: EthernetFrame, ingress: Port) -> None:
        egress = None if frame.dst.is_broadcast else self.table.get(frame.dst)
        if egress is not None and egress is not ingress:
            self.frames_forwarded += 1
            egress.transmit(frame)
            return
        if egress is ingress:
            # Destination hangs off the port the frame came from; a real
            # switch filters this, it never re-floods.
            return
        self.frames_flooded += 1
        for port in self.ports:
            if port is not ingress and port.link is not None:
                port.transmit(frame)

    def forget(self, mac: MacAddress) -> None:
        self.table.pop(mac, None)
