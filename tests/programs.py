"""Small application programs used across the test suite.

All of them follow the checkpointable state-machine discipline: every bit of
mutable state is an instance attribute.
"""

from __future__ import annotations

from repro.errors import SyscallError
from repro.simos.program import PhasedProgram, Program
from repro.simos.syscalls import Exit, MSG_PEEK, sys


class ComputeLoop(PhasedProgram):
    """Do ``iterations`` chunks of CPU work, logging each."""

    name = "compute-loop"
    initial_phase = "work"

    def __init__(self, iterations: int, work_s: float = 0.01):
        super().__init__()
        self.iterations = iterations
        self.work_s = work_s
        self.done = 0

    def phase_work(self, result):
        if self.done >= self.iterations:
            return Exit(0)
        self.done += 1
        return sys("compute", self.work_s)


class Sleeper(Program):
    name = "sleeper"

    def __init__(self, duration: float):
        self.duration = duration
        self.slept = False

    def step(self, result):
        if not self.slept:
            self.slept = True
            return sys("sleep", self.duration)
        return Exit(0)


class EchoServer(PhasedProgram):
    """Accept one connection and echo everything until EOF."""

    name = "echo-server"
    initial_phase = "socket"

    def __init__(self, port: int, bind_ip=None):
        super().__init__()
        self.port = port
        self.bind_ip = bind_ip
        self.fd = None
        self.conn_fd = None
        self.bytes_echoed = 0
        self.chunk = b""

    def phase_socket(self, result):
        self.goto("bind")
        return sys("socket", "tcp")

    def phase_bind(self, result):
        self.fd = result
        self.goto("listen")
        return sys("bind", self.fd, self.bind_ip, self.port)

    def phase_listen(self, result):
        self.goto("accept")
        return sys("listen", self.fd, 8)

    def phase_accept(self, result):
        self.goto("read")
        return sys("accept", self.fd)

    def phase_read(self, result):
        if isinstance(result, tuple):  # fresh from accept
            self.conn_fd = result[0]
        self.goto("reply")
        return sys("recv", self.conn_fd, 65536)

    def phase_reply(self, result):
        if result == b"":
            self.goto("finish")
            return sys("close", self.conn_fd)
        self.chunk = result
        self.bytes_echoed += len(result)
        self.goto("after_reply")
        return sys("send", self.conn_fd, self.chunk)

    def phase_after_reply(self, result):
        sent = result
        if sent < len(self.chunk):
            self.chunk = self.chunk[sent:]
            self.goto("after_reply")
            return sys("send", self.conn_fd, self.chunk)
        self.goto("reply")
        return sys("recv", self.conn_fd, 65536)

    def phase_finish(self, result):
        return Exit(0)


class EchoClient(PhasedProgram):
    """Send each message, collect its echo, record the replies.

    Uses non-blocking sends interleaved with blocking receives so that
    arbitrarily large messages cannot deadlock against an echoing peer.
    """

    name = "echo-client"
    initial_phase = "socket"

    def __init__(self, server_ip: str, port: int, messages):
        super().__init__()
        self.server_ip = server_ip
        self.port = port
        self.messages = [bytes(m) for m in messages]
        self.replies = []
        self.fd = None
        self.index = 0
        self.buffer = b""
        self.unsent = b""

    def phase_socket(self, result):
        self.goto("connect")
        return sys("socket", "tcp")

    def phase_connect(self, result):
        self.fd = result
        self.unsent = self.messages[0] if self.messages else b""
        self.goto("pump")
        return sys("connect", self.fd, self.server_ip, self.port)

    def phase_pump(self, result):
        if isinstance(result, SyscallError):
            if result.errno != "EAGAIN":
                return Exit(1)
            # Send buffer full: the echo pipeline is saturated; drain it.
            return sys("recv", self.fd, 65536)
        if isinstance(result, int):
            self.unsent = self.unsent[result:]
        elif isinstance(result, bytes):
            if result == b"":
                return Exit(1)  # peer closed early
            self.buffer += result
        expected = self.messages[self.index]
        if len(self.buffer) >= len(expected):
            self.replies.append(self.buffer[:len(expected)])
            self.buffer = self.buffer[len(expected):]
            self.index += 1
            if self.index >= len(self.messages):
                self.goto("finish")
                return sys("close", self.fd)
            self.unsent = self.messages[self.index]
        if self.unsent:
            from repro.simos.syscalls import MSG_DONTWAIT
            return sys("send", self.fd, self.unsent, flags=MSG_DONTWAIT)
        return sys("recv", self.fd, 65536)

    def phase_finish(self, result):
        return Exit(0)


class PipeProducer(PhasedProgram):
    name = "pipe-producer"
    initial_phase = "write"

    def __init__(self, wfd: int, payload: bytes):
        super().__init__()
        self.wfd = wfd
        self.remaining = payload

    def phase_write(self, result):
        if isinstance(result, int):
            self.remaining = self.remaining[result:]
        if not self.remaining:
            self.goto("finish")
            return sys("close", self.wfd)
        return sys("write", self.wfd, self.remaining)

    def phase_finish(self, result):
        return Exit(0)


class PipeConsumer(PhasedProgram):
    name = "pipe-consumer"
    initial_phase = "read"

    def __init__(self, rfd: int):
        super().__init__()
        self.rfd = rfd
        self.received = b""

    def phase_read(self, result):
        if isinstance(result, bytes):
            if result == b"":
                return Exit(0)
            self.received += result
        return sys("read", self.rfd, 4096)


class ShmIncrementer(PhasedProgram):
    """Increment a shared counter under a semaphore, ``rounds`` times."""

    name = "shm-incrementer"
    initial_phase = "setup_shm"

    def __init__(self, key: int, rounds: int, work_s: float = 0.0):
        super().__init__()
        self.key = key
        self.rounds = rounds
        self.work_s = work_s
        self.shmid = None
        self.semid = None
        self.done = 0
        self.value = None

    def phase_setup_shm(self, result):
        self.goto("setup_sem")
        return sys("shmget", self.key, 4096)

    def phase_setup_sem(self, result):
        self.shmid = result
        self.goto("acquire")
        return sys("semget", self.key, 1)

    def phase_acquire(self, result):
        self.semid = result
        if self.done >= self.rounds:
            return Exit(0)
        self.goto("fetch")
        return sys("semop", self.semid, -1)

    def phase_fetch(self, result):
        self.goto("store")
        return sys("shm_read", self.shmid, "counter")

    def phase_store(self, result):
        self.value = (result or 0) + 1
        self.goto("release")
        return sys("shm_write", self.shmid, "counter", self.value)

    def phase_release(self, result):
        self.done += 1
        self.goto("work")
        return sys("semop", self.semid, +1)

    def phase_work(self, result):
        self.goto("acquire_next")
        if self.work_s > 0:
            return sys("compute", self.work_s)
        return sys("gettime")

    def phase_acquire_next(self, result):
        if self.done >= self.rounds:
            return Exit(0)
        self.goto("fetch")
        return sys("semop", self.semid, -1)


class SlowPipeline(PhasedProgram):
    """Writes into a pipe, sleeps, then reads it back (pipe-state tests)."""

    name = "slow-pipeline"
    initial_phase = "pipe"

    def __init__(self):
        super().__init__()
        self.got = None
        self.rfd = None
        self.wfd = None

    def phase_pipe(self, result):
        self.goto("write")
        return sys("pipe")

    def phase_write(self, result):
        self.rfd, self.wfd = result
        self.goto("sleep")
        return sys("write", self.wfd, b"buffered-in-kernel")

    def phase_sleep(self, result):
        self.goto("read")
        return sys("sleep", 1.0)

    def phase_read(self, result):
        self.goto("done")
        return sys("read", self.rfd, 100)

    def phase_done(self, result):
        self.got = result
        return Exit(0)


class FailingProgram(Program):
    """Issues a syscall that fails, records the errno, exits."""

    name = "failing"

    def __init__(self):
        self.errno = None
        self.asked = False

    def step(self, result):
        if not self.asked:
            self.asked = True
            return sys("recv", 999, 100)  # EBADF
        if isinstance(result, SyscallError):
            self.errno = result.errno
        return Exit(0)


class PeekThenRead(PhasedProgram):
    """recv with MSG_PEEK then a consuming recv; used for §4.1 semantics."""

    name = "peek-then-read"
    initial_phase = "socket"

    def __init__(self, port: int):
        super().__init__()
        self.port = port
        self.fd = None
        self.conn_fd = None
        self.peeked = None
        self.consumed = None

    def phase_socket(self, result):
        self.goto("bind")
        return sys("socket", "tcp")

    def phase_bind(self, result):
        self.fd = result
        self.goto("listen")
        return sys("bind", self.fd, None, self.port)

    def phase_listen(self, result):
        self.goto("accept")
        return sys("listen", self.fd)

    def phase_accept(self, result):
        self.goto("peek")
        return sys("accept", self.fd)

    def phase_peek(self, result):
        self.conn_fd = result[0]
        self.goto("read")
        return sys("recv", self.conn_fd, 5, flags=MSG_PEEK)

    def phase_read(self, result):
        self.peeked = result
        self.goto("finish")
        return sys("recv", self.conn_fd, 100)

    def phase_finish(self, result):
        self.consumed = result
        return Exit(0)
