"""Cluster introspection: ``ps``, ``netstat`` and checkpoint reports.

These functions return plain data (lists of dicts) so tests can assert on
them, plus a :func:`format_table` renderer for human output — the same
split real operator tools use.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.cluster import Cluster
from repro.simos.kernel import Node
from repro.simos.sockets import TcpSocket, UdpSocket


def ps(node: Node) -> List[Dict[str, Any]]:
    """Process listing for one node (physical and virtual identities)."""
    rows = []
    for pid in sorted(node.processes):
        proc = node.processes[pid]
        pod = proc.pod
        rows.append({
            "pid": proc.pid,
            "vpid": pod.pid_to_vpid.get(proc.pid) if pod is not None
            else None,
            "pod": pod.name if pod is not None else "",
            "name": proc.name,
            "state": proc.state.value,
            "stopped": proc.stopped,
            "syscall": str(proc.current_syscall)
            if proc.current_syscall else "",
            "cpu_s": round(proc.cpu_seconds, 6),
            "syscalls": proc.syscall_count,
            "exit_code": proc.exit_code,
        })
    return rows


def netstat(node: Node) -> List[Dict[str, Any]]:
    """Connection/listener listing for one node's TCP stack."""
    rows = []
    stack = node.stack
    for (ip, port), listener in sorted(
            stack.tcp.listeners.items(),
            key=lambda item: (item[0][1], str(item[0][0]))):
        rows.append({
            "proto": "tcp", "state": "LISTEN",
            "local": f"{ip}:{port}", "remote": "*:*",
            "sendq": 0, "recvq": len(listener.accept_queue),
            "retransmits": 0,
        })
    for key in sorted(stack.tcp.connections,
                      key=lambda k: (str(k[0]), k[1], str(k[2]), k[3])):
        connection = stack.tcp.connections[key]
        tcb = connection.tcb
        rows.append({
            "proto": "tcp", "state": tcb.state.value,
            "local": f"{tcb.local_ip}:{tcb.local_port}",
            "remote": f"{tcb.remote_ip}:{tcb.remote_port}",
            "sendq": connection.send_buffer.used,
            "recvq": connection.available,
            "retransmits": connection.segments_retransmitted,
        })
    return rows


def pod_report(cluster: Cluster) -> List[Dict[str, Any]]:
    """Every pod on every node, with addresses and process counts."""
    rows = []
    for node in cluster.nodes:
        for interface in node.stack.interfaces.all():
            if interface.pod_id is None:
                continue
            pod = None
            for proc in node.processes.values():
                if proc.pod is not None and \
                        proc.pod.pod_id == interface.pod_id:
                    pod = proc.pod
                    break
            rows.append({
                "node": node.name,
                "vif": interface.name,
                "pod": pod.name if pod is not None else "?",
                "ip": str(interface.ip),
                "wire_mac": str(interface.mac),
                "identity_mac": str(interface.identity_mac),
                "processes": len(pod.live_processes())
                if pod is not None else 0,
            })
    return rows


def checkpoint_report(store, pod_names: List[str]) -> List[Dict[str, Any]]:
    """Stored checkpoint inventory for a set of pods."""
    rows = []
    for name in pod_names:
        try:
            versions = store.versions(name)
        except Exception:  # noqa: BLE001
            versions = []
        for version in versions:
            try:
                image = store.load(name, version)
            except Exception:  # noqa: BLE001
                continue
            rows.append({
                "pod": name,
                "version": version,
                "taken_at": round(image.taken_at, 3),
                "processes": len(image.processes),
                "sockets": image.sockets_captured,
                "state_mb": round(image.state_bytes / (1 << 20), 2),
            })
    return rows


def round_report(rounds) -> List[Dict[str, Any]]:
    """Per-phase latency breakdown of coordination rounds.

    One row per round, built from :class:`RoundStats.phase_s` (the span
    timeline's critical-path view): total latency plus each phase's
    share, in milliseconds.
    """
    phase_names: List[str] = []
    for stats in rounds:
        for name in stats.phase_s:
            if name not in phase_names:
                phase_names.append(name)
    rows = []
    for stats in rounds:
        row: Dict[str, Any] = {
            "epoch": stats.epoch,
            "kind": stats.kind,
            "latency_ms": round(stats.latency_s * 1000, 3),
        }
        for name in phase_names:
            row[name] = round(stats.phase_s.get(name, 0.0) * 1000, 3)
        rows.append(row)
    return rows


def format_table(rows: List[Dict[str, Any]],
                 columns: Optional[List[str]] = None) -> str:
    """Render dict-rows as an aligned text table."""
    if not rows:
        return "(empty)"
    if columns is None:
        columns = list(rows[0].keys())
    cells = [[str(row.get(col, "")) for col in columns] for row in rows]
    widths = [max(len(col), *(len(line[i]) for line in cells))
              for i, col in enumerate(columns)]
    out = ["  ".join(col.ljust(w) for col, w in zip(columns, widths))]
    out.append("  ".join("-" * w for w in widths))
    for line in cells:
        out.append("  ".join(cell.ljust(w)
                             for cell, w in zip(line, widths)))
    return "\n".join(out)
