"""Deterministic discrete-event simulation kernel.

The kernel is deliberately small: an event queue ordered by ``(time, priority,
sequence)``, one-shot :class:`Event` objects with success/failure callbacks,
and generator-based :class:`SimProcess` coroutines in the style of simpy.

Everything in the reproduction — NICs, the TCP engine, OS schedulers, the
checkpoint coordinator — runs on one :class:`Simulator`. Determinism matters
because the paper's correctness argument (§5.1) is about *arbitrary*
interleavings; seeded runs let tests replay a specific interleaving.
"""

from __future__ import annotations

import math
from typing import Any, Callable, Dict, Generator, Iterable, List, Optional

from repro.errors import SimulationError
from repro.sim.eventq import make_queue

#: Priority used for ordinary events.
NORMAL = 1
#: Priority for urgent events (delivered before normal events at equal time).
URGENT = 0


class Event:
    """A one-shot occurrence with an optional value or exception.

    An event starts *pending*, becomes *triggered* when scheduled for
    processing, and is *processed* once its callbacks have run.
    """

    __slots__ = ("sim", "callbacks", "_value", "_ok", "_processed", "name",
                 "_qentry")

    _PENDING = object()

    def __init__(self, sim: "Simulator", name: str = ""):
        self.sim = sim
        self.name = name
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = Event._PENDING
        self._ok = True
        self._processed = False
        #: Back-pointer to this event's queue entry while scheduled, so
        #: :meth:`Simulator.cancel` can reclaim the slot in O(1).
        self._qentry = None

    @property
    def triggered(self) -> bool:
        return self._value is not Event._PENDING

    @property
    def processed(self) -> bool:
        return self._processed

    @property
    def ok(self) -> bool:
        if not self.triggered:
            raise SimulationError("event not yet triggered")
        return self._ok

    @property
    def value(self) -> Any:
        if not self.triggered:
            raise SimulationError("event not yet triggered")
        return self._value

    def succeed(self, value: Any = None, delay: float = 0.0) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self.triggered:
            raise SimulationError(f"event {self.name!r} already triggered")
        self._value = value
        self._ok = True
        self.sim._schedule_event(self, delay)
        return self

    def fail(self, exception: BaseException, delay: float = 0.0) -> "Event":
        """Trigger the event with an exception.

        A waiting process will see the exception raised at its ``yield``.
        """
        if self.triggered:
            raise SimulationError(f"event {self.name!r} already triggered")
        if not isinstance(exception, BaseException):
            raise SimulationError("fail() requires an exception instance")
        self._value = exception
        self._ok = False
        self.sim._schedule_event(self, delay)
        return self

    def __repr__(self) -> str:
        state = "processed" if self._processed else (
            "triggered" if self.triggered else "pending")
        return f"<Event {self.name or hex(id(self))} {state}>"


class Timeout(Event):
    """An event that fires after a fixed simulated delay."""

    __slots__ = ()

    def __init__(self, sim: "Simulator", delay: float, value: Any = None):
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        # A static name: formatting f"timeout({delay})" per event was a
        # measurable tax on the call_later hot path; __repr__ still
        # shows the deadline via the queue entry when one is attached.
        super().__init__(sim, name="timeout")
        self._value = value
        self._ok = True
        sim._schedule_event(self, delay)


class AnyOf(Event):
    """Triggers when the first of ``events`` triggers.

    The value is a dict mapping the triggered events (possibly more than one
    if several fire at the same instant) to their values.
    """

    __slots__ = ("events",)

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim, name="any_of")
        self.events = list(events)
        if not self.events:
            raise SimulationError("AnyOf requires at least one event")
        for event in self.events:
            if event.callbacks is not None:
                event.callbacks.append(self._collect)
            else:
                self._collect(event)

    def _collect(self, event: Event) -> None:
        if self.triggered:
            return
        if not event._ok:
            self.fail(event._value)
            return
        done = {ev: ev._value for ev in self.events
                if ev.processed and ev._ok}
        done[event] = event._value
        self.succeed(done)


class AllOf(Event):
    """Triggers when every event in ``events`` has triggered successfully."""

    __slots__ = ("events", "_remaining")

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim, name="all_of")
        self.events = list(events)
        self._remaining = 0
        for event in self.events:
            if event.callbacks is not None:
                self._remaining += 1
                event.callbacks.append(self._collect)
            elif not event._ok:
                self.fail(event._value)
                return
        if self._remaining == 0 and not self.triggered:
            self.succeed({ev: ev._value for ev in self.events})

    def _collect(self, event: Event) -> None:
        if self.triggered:
            return
        if not event._ok:
            self.fail(event._value)
            return
        self._remaining -= 1
        if self._remaining == 0:
            self.succeed({ev: ev._value for ev in self.events})


class Interrupt(Exception):
    """Raised inside a process that another process interrupted."""

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class SimProcess(Event):
    """A generator-based coroutine driven by the simulator.

    The generator yields :class:`Event` instances; the process resumes when
    the yielded event triggers, receiving its value (or exception). The
    process object is itself an event that triggers when the generator
    returns, carrying the return value.
    """

    __slots__ = ("_generator", "_waiting_on")

    def __init__(self, sim: "Simulator", generator: Generator,
                 name: str = ""):
        super().__init__(sim, name=name or getattr(
            generator, "__name__", "process"))
        self._generator = generator
        self._waiting_on: Optional[Event] = None
        init = Event(sim, name=f"init({self.name})")
        init.callbacks.append(self._resume)
        init.succeed()

    @property
    def is_alive(self) -> bool:
        return not self.triggered

    def interrupt(self, cause: Any = None) -> None:
        """Raise :class:`Interrupt` inside the process at its current yield."""
        if self.triggered:
            raise SimulationError(f"cannot interrupt finished {self!r}")
        poke = Event(self.sim, name=f"interrupt({self.name})")
        poke._value = Interrupt(cause)
        poke._ok = False
        # Detach from whatever we were waiting on; the stale callback is
        # removed so the original event cannot resume us twice.
        target = self._waiting_on
        if target is not None and target.callbacks is not None \
                and self._resume in target.callbacks:
            target.callbacks.remove(self._resume)
        self._waiting_on = None
        poke.callbacks.append(self._resume)
        self.sim._schedule_event(poke, 0.0, priority=URGENT)

    def _resume(self, event: Event) -> None:
        self._waiting_on = None
        try:
            if event._ok:
                target = self._generator.send(event._value)
            else:
                target = self._generator.throw(event._value)
        except StopIteration as stop:
            if not self.triggered:
                self.succeed(stop.value)
            return
        except BaseException as exc:  # noqa: BLE001 - propagate to waiters
            if not self.triggered:
                self.fail(exc)
                return
            raise
        if not isinstance(target, Event):
            raise SimulationError(
                f"process {self.name!r} yielded {target!r}, not an Event")
        self._waiting_on = target
        if target.callbacks is not None:
            # Pending or scheduled-but-unprocessed: wait for processing.
            target.callbacks.append(self._resume)
        else:
            # Already processed: resume on the next tick with its value.
            immediate = Event(self.sim, name="chain")
            immediate._value = target._value
            immediate._ok = target._ok
            immediate.callbacks.append(self._resume)
            self.sim._schedule_event(immediate, 0.0)


class _Callback:
    """A bare deferred call: the lightweight alternative to an Event.

    The kernel's internal hot paths (frame delivery, switch drains,
    timer-wheel slots) schedule tens of thousands of fire-and-forget
    callbacks that nothing ever waits on or cancels. Carrying a full
    :class:`Event` for each — seven attributes, a callbacks list, a
    closure — was a measurable slice of simcore runtime. A ``_Callback``
    is just ``(fn, args)`` in the queue entry; the run loop invokes it
    directly.
    """

    __slots__ = ("fn", "args")

    def __init__(self, fn: Callable, args: tuple):
        self.fn = fn
        self.args = args


class Simulator:
    """The discrete-event scheduler.

    All times are floats in **seconds** of simulated time.
    """

    #: Tie-break policies for events sharing (time, priority): "fifo"
    #: pops them in scheduling order, "lifo" newest-first. Correct code
    #: must be indifferent — the determinism analyzer runs a workload
    #: under both and diffs the results (a schedule-race detector).
    TIEBREAKS = ("fifo", "lifo")

    def __init__(self, tiebreak: str = "fifo", queue: str = "calendar",
                 slotted_timers: bool = True, lightweight: bool = True,
                 leaky_cancel: bool = False, oracle: Any = None):
        if tiebreak not in self.TIEBREAKS:
            raise SimulationError(f"unknown tiebreak {tiebreak!r}")
        self._now = 0.0
        self._queue = make_queue(
            queue, sequence_sign=1 if tiebreak == "fifo" else -1)
        self._running = False
        self.tiebreak = tiebreak
        #: Schedule oracle (``repro.analysis.oracle``): when set, every
        #: pop routes through :meth:`_pop_choice` so the oracle decides
        #: among same-``(time, priority)`` ties. ``None`` (the default)
        #: keeps the original hot loop — the queue's signed sequence is
        #: then the whole tie-break policy, exactly as before the hook.
        self._oracle = oracle
        #: Whether high-churn timers (TCP) use the hashed timer wheel
        #: (``repro.sim.timers``) or exact per-timer events; the wheel
        #: attaches itself here lazily on first use.
        self.slotted_timers = slotted_timers
        self.timers = None
        #: ``defer()`` scheduling style: lightweight bare-callback
        #: entries (no Event object) when True, full pre-refactor
        #: ``call_later`` Timeouts when False (the legacy preset).
        self.lightweight = lightweight
        #: Pre-refactor ``cancel`` semantics for the legacy baseline:
        #: strip callbacks but leave the entry queued until its pop
        #: time — the leak this refactor fixed, reproduced on purpose so
        #: the simcore benchmark measures against the honest original.
        self.leaky_cancel = leaky_cancel

    @property
    def now(self) -> float:
        return self._now

    # -- event factory helpers -------------------------------------------

    def event(self, name: str = "") -> Event:
        return Event(self, name)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        return Timeout(self, delay, value)

    def process(self, generator: Generator, name: str = "") -> SimProcess:
        return SimProcess(self, generator, name)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def call_at(self, when: float, fn: Callable, *args: Any) -> Event:
        """Run ``fn(*args)`` at absolute simulated time ``when``."""
        if when < self._now:
            raise SimulationError(
                f"cannot schedule at {when} < now {self._now}")
        return self.call_later(when - self._now, fn, *args)

    def call_later(self, delay: float, fn: Callable, *args: Any) -> Event:
        """Run ``fn(*args)`` after ``delay``. Returns a cancellable event."""
        event = Timeout(self, delay)
        event.callbacks.append(lambda ev: fn(*args))
        return event

    def defer(self, delay: float, fn: Callable, *args: Any) -> None:
        """Run ``fn(*args)`` after ``delay`` — fire-and-forget.

        The lightweight sibling of :meth:`call_later`: no Event object,
        no closure, nothing to wait on or cancel. Under the legacy
        preset (``lightweight=False``) it degrades to ``call_later`` so
        the benchmark baseline keeps the pre-refactor cost model.
        """
        if delay < 0:
            raise SimulationError(f"cannot defer by {delay} < 0")
        if self.lightweight:
            self._queue.push(self._now + delay, NORMAL,
                             _Callback(fn, args))
        else:
            self.call_later(delay, fn, *args)

    def defer_at(self, when: float, fn: Callable, *args: Any) -> None:
        """Absolute-time :meth:`defer` (see :meth:`call_at`)."""
        if when < self._now:
            raise SimulationError(
                f"cannot schedule at {when} < now {self._now}")
        if self.lightweight:
            self._queue.push(when, NORMAL, _Callback(fn, args))
        else:
            self.call_later(when - self._now, fn, *args)

    def cancel(self, event: Event) -> None:
        """Cancel a scheduled event: reclaim its queue slot, strip callbacks.

        The entry is tombstoned in O(1) and reclaimed lazily (or by the
        queue's threshold-triggered compaction), so a churn of
        armed-then-cancelled timers keeps the queue bounded instead of
        accumulating dead events until their pop time. With
        ``leaky_cancel=True`` (the legacy benchmark baseline) the entry
        is left in the queue to pop as a no-op at its original time —
        the pre-refactor behaviour, reproduced deliberately.
        """
        if not self.leaky_cancel:
            entry = event._qentry
            if entry is not None:
                self._queue.cancel(entry)
                event._qentry = None
        if not event._processed:
            event.callbacks = []

    # -- scheduling internals --------------------------------------------

    def set_oracle(self, oracle: Any) -> None:
        """Install (or clear) the schedule oracle.

        Takes effect on the next :meth:`run`/:meth:`step` call — a loop
        already inside :meth:`run` keeps the pop path it started with.
        """
        self._oracle = oracle

    @property
    def oracle(self) -> Any:
        return self._oracle

    def _pop_choice(self, limit: float) -> Optional[Any]:
        """Oracle-mediated pop: collect the (time, priority) tie set,
        let the oracle pick one member, reinsert the rest.

        Entries tie iff they share the head's exact time and priority;
        collection stops at the first entry with a different priority
        (queue order guarantees nothing after it can still tie). The
        tie set is presented in queue order, so an oracle returning 0
        is bit-identical to no oracle at all.
        """
        queue = self._queue
        first = queue.pop_due(limit)
        if first is None:
            return None
        when = first[0]
        ties = [first]
        while True:
            peer = queue.pop_due(when)
            if peer is None:
                break
            if peer[1] != first[1]:
                queue.reinsert(peer)
                break
            ties.append(peer)
        if len(ties) == 1:
            return first
        chosen = ties.pop(self._oracle.choose(ties, when))
        for entry in ties:
            queue.reinsert(entry)
        return chosen

    def _schedule_event(self, event: Event, delay: float,
                        priority: int = NORMAL) -> None:
        event._qentry = self._queue.push(self._now + delay, priority, event)

    def step(self) -> None:
        """Process the single next event."""
        if self._oracle is None:
            entry = self._queue.pop()
        else:
            entry = self._pop_choice(math.inf)
            if entry is None:
                raise IndexError("pop from an empty event queue")
        when = entry[0]
        target = entry[3]
        if when < self._now:
            raise SimulationError("event queue went backwards")
        self._now = when
        if target.__class__ is _Callback:
            target.fn(*target.args)
            return
        target._qentry = None
        callbacks = target.callbacks
        target.callbacks = None
        target._processed = True
        for callback in callbacks:
            callback(target)

    def run(self, until: Optional[float] = None) -> None:
        """Run until the queue drains or simulated time passes ``until``."""
        if self._running:
            raise SimulationError("simulator is not re-entrant")
        self._running = True
        limit = math.inf if until is None else until
        try:
            # Inlined step(): one pop_due call per event replaces the
            # len/peek/pop triple — this loop is the simulator's single
            # hottest path. With an oracle installed the pop routes
            # through _pop_choice instead; selecting the callable once
            # here keeps the no-oracle path free of per-event branches.
            queue = self._queue
            pop_due = queue.pop_due if self._oracle is None \
                else self._pop_choice
            while True:
                entry = pop_due(limit)
                if entry is None:
                    break
                when = entry[0]
                target = entry[3]
                if when < self._now:
                    raise SimulationError("event queue went backwards")
                self._now = when
                if target.__class__ is _Callback:
                    target.fn(*target.args)
                    continue
                target._qentry = None
                callbacks = target.callbacks
                target.callbacks = None
                target._processed = True
                for callback in callbacks:
                    callback(target)
            if until is not None and until > self._now:
                self._now = until
        finally:
            self._running = False

    def run_until_complete(self, process: SimProcess,
                           limit: float = 1e9) -> Any:
        """Run until ``process`` finishes; return its value or raise."""
        while not process.triggered:
            if not len(self._queue):
                raise SimulationError(
                    f"deadlock: {process.name!r} cannot finish")
            if self._queue.peek() > limit:
                raise SimulationError(
                    f"time limit {limit} exceeded waiting for "
                    f"{process.name!r}")
            self.step()
        if not process._ok:
            raise process._value
        return process._value

    def peek(self) -> float:
        """Time of the next live event, or ``inf`` if the queue is empty."""
        return self._queue.peek()

    def stats(self) -> Dict[str, Any]:
        """Scheduler counters: queue live/dead/pushed/popped, timer wheel.

        ``popped`` counts live events actually processed — the events/sec
        numerator of the simcore benchmark; ``cancelled``/``dead_popped``
        make cancellation churn visible; ``peak_live`` bounds queue
        growth (the 100k-timer cancellation regression test watches it).
        """
        stats: Dict[str, Any] = {"now": self._now,
                                 "tiebreak": self.tiebreak}
        stats.update(self._queue.stats())
        if self.timers is not None:
            stats["timers"] = self.timers.stats()
        return stats
