"""Unit tests for simulation resources (CPU pool, semaphore)."""

import pytest

from repro.sim.core import Simulator
from repro.sim.resources import Resource, Semaphore


def test_resource_grants_up_to_capacity():
    sim = Simulator()
    resource = Resource(sim, 2, name="cpu")
    grants = [resource.request() for _ in range(3)]
    assert grants[0].triggered and grants[1].triggered
    assert not grants[2].triggered
    resource.release()
    assert grants[2].triggered
    assert resource.in_use == 2


def test_resource_release_underflow_raises():
    sim = Simulator()
    resource = Resource(sim, 1)
    with pytest.raises(RuntimeError, match="underflow"):
        resource.release()


def test_resource_cancel_pending_request():
    sim = Simulator()
    resource = Resource(sim, 1)
    first = resource.request()
    waiting = resource.request()
    resource.cancel(waiting)
    resource.release()  # must NOT go to the cancelled waiter
    assert resource.available == 1
    del first


def test_resource_cancel_granted_releases():
    sim = Simulator()
    resource = Resource(sim, 1)
    grant = resource.request()
    assert resource.available == 0
    resource.cancel(grant)
    assert resource.available == 1


def test_resource_capacity_validation():
    sim = Simulator()
    with pytest.raises(ValueError):
        Resource(sim, 0)


def test_semaphore_fifo_wakeup():
    sim = Simulator()
    semaphore = Semaphore(sim, value=0)
    first = semaphore.wait(1)
    second = semaphore.wait(1)
    semaphore.post()
    assert first.triggered and not second.triggered
    semaphore.post()
    assert second.triggered


def test_semaphore_bulk_wait():
    sim = Simulator()
    semaphore = Semaphore(sim, value=0)
    big = semaphore.wait(3)
    semaphore.post(2)
    assert not big.triggered
    semaphore.post(1)
    assert big.triggered
    assert semaphore.value == 0
