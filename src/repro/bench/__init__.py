"""Experiment harnesses regenerating the paper's tables and figures."""

from repro.bench.fig5 import (
    Fig5Point,
    fig5_shape_holds,
    fig5_shape_report,
    round_span_metrics,
    run_fig5,
)
from repro.bench.fig6 import (
    Fig6Result,
    fig6_shape_holds,
    fig6_shape_report,
    run_fig6,
)
from repro.bench.harness import (
    ShapeCheck,
    ShapeReport,
    Stat,
    paper_vs_measured,
    render_table,
)
from repro.bench.messages import (
    MessagePoint,
    messages_shape_holds,
    messages_shape_report,
    run_messages,
)
from repro.bench.optimization import (
    OptimizationResult,
    optimization_shape_holds,
    optimization_shape_report,
    run_optimization,
)
from repro.bench.overhead import (
    OverheadResult,
    overhead_shape_holds,
    overhead_shape_report,
    run_overhead,
)

__all__ = [
    "Fig5Point",
    "Fig6Result",
    "MessagePoint",
    "OptimizationResult",
    "OverheadResult",
    "ShapeCheck",
    "ShapeReport",
    "Stat",
    "fig5_shape_holds",
    "fig5_shape_report",
    "fig6_shape_holds",
    "fig6_shape_report",
    "messages_shape_holds",
    "messages_shape_report",
    "optimization_shape_holds",
    "optimization_shape_report",
    "overhead_shape_holds",
    "overhead_shape_report",
    "paper_vs_measured",
    "render_table",
    "round_span_metrics",
    "run_fig5",
    "run_fig6",
    "run_messages",
    "run_optimization",
    "run_overhead",
]
