"""Fig. 5 harness: checkpoint latency and coordination overhead vs nodes.

Paper setup (§6): the slm benchmark on 2–8 dual-PIII nodes, checkpoints
every 8 s of execution, coordinator on a separate node. Reported results:

* Fig. 5(a) — total checkpoint latency ≈ 1 s for every node count,
  dominated by writing the application's memory image to disk;
* Fig. 5(b) — coordination overhead 350–550 µs, growing ≈ 50 µs/node
  beyond 4 nodes;
* restart performance "similar" (stated, figure omitted for space).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.apps.slm import slm_factory
from repro.bench.harness import Stat
from repro.cruz.cluster import CruzCluster


@dataclass
class Fig5Point:
    """One node-count's measurements across several checkpoint rounds."""

    n_nodes: int
    latency: Stat            # seconds (Fig. 5a)
    overhead: Stat           # seconds (Fig. 5b)
    local_save: Stat         # seconds (the disk-bound component)
    restart_latency: Stat    # seconds (§6: "similar", figure omitted)
    messages_per_round: float


def run_fig5(node_counts: Sequence[int] = (2, 4, 6, 8),
             rounds: int = 5,
             memory_mb_per_rank: float = 100.0,
             checkpoint_interval_s: float = 2.0,
             steps: int = 100000,
             total_work_s: float = 1e6,
             optimized: bool = False) -> List[Fig5Point]:
    """Measure checkpoint and restart rounds for each node count.

    The slm job is sized so it never finishes during the measurement
    (matching the paper's methodology of measuring during a long run);
    per-rank memory is constant so the local save is ~1 s at 100 MB/s.
    """
    points = []
    for n_nodes in node_counts:
        cluster = CruzCluster(n_nodes, trace_enabled=True)
        app = cluster.launch_app_factory(
            "slm", n_nodes,
            slm_factory(n_nodes, global_rows=8 * n_nodes, cols=32,
                        steps=steps, total_work_s=total_work_s,
                        memory_mb_per_rank=memory_mb_per_rank))
        cluster.run_for(0.5)  # mesh up, steady state
        checkpoint_rounds = []
        message_counts = []
        for _ in range(rounds):
            cluster.run_for(checkpoint_interval_s)
            before = cluster.coordination_message_count()
            stats = cluster.checkpoint_app(app, optimized=optimized)
            message_counts.append(
                cluster.coordination_message_count() - before)
            checkpoint_rounds.append(stats)
        # Restart measurement: crash and restart from the last image.
        cluster.crash_app(app)
        restart_stats = cluster.restart_app(app)
        points.append(Fig5Point(
            n_nodes=n_nodes,
            latency=Stat.of([r.latency_s for r in checkpoint_rounds]),
            overhead=Stat.of(
                [r.coordination_overhead_s for r in checkpoint_rounds]),
            local_save=Stat.of(
                [r.max_local_op_s for r in checkpoint_rounds]),
            restart_latency=Stat.of([restart_stats.latency_s]),
            messages_per_round=sum(message_counts) / len(message_counts)))
    return points


def fig5_shape_holds(points: List[Fig5Point]) -> dict:
    """The paper's qualitative claims as checkable predicates."""
    latencies = [p.latency.mean for p in points]
    overheads = [p.overhead.mean for p in points]
    return {
        # 5(a): latency is ~constant (disk-bound), around a second.
        "latency_flat": max(latencies) < 1.3 * min(latencies),
        "latency_is_seconds_scale": all(0.3 < v < 3.0 for v in latencies),
        # 5(a): latency is dominated by the local save.
        "save_dominates": all(
            p.local_save.mean > 0.95 * p.latency.mean for p in points),
        # 5(b): overhead is microseconds, far below the latency.
        "overhead_microseconds": all(
            1e-5 < v < 5e-3 for v in overheads),
        # 5(b): overhead grows with node count.
        "overhead_grows": overheads[-1] > overheads[0],
        # restart comparable to checkpoint.
        "restart_similar": all(
            0.3 * p.latency.mean < p.restart_latency.mean
            < 3.0 * p.latency.mean for p in points),
    }
