"""Cross-node networking through the full stack: syscalls down to frames."""

import pytest

from repro.cluster import Cluster
from repro.net.dhcp import DHCP_CLIENT_PORT, DHCP_SERVER_PORT, DhcpMessage
from repro.simos.netstack import BROADCAST_IP
from repro.simos.program import PhasedProgram
from repro.simos.syscalls import Exit, SIOCGIFHWADDR, sys

from tests.programs import EchoClient, EchoServer, PeekThenRead


def make_cluster(n=2, **kwargs):
    kwargs.setdefault("time_wait_s", 0.5)
    return Cluster(n, **kwargs)


def node_ip(cluster, index):
    return str(cluster.nodes[index].stack.eth0.ip)


def test_echo_between_nodes():
    cluster = make_cluster()
    server = cluster.nodes[0].spawn(EchoServer(port=7000))
    messages = [b"hello", b"world", b"x" * 5000]
    client = cluster.nodes[1].spawn(
        EchoClient(node_ip(cluster, 0), 7000, messages))
    cluster.run()
    assert client.exit_code == 0
    assert client.program.replies == messages
    assert server.program.bytes_echoed == sum(len(m) for m in messages)


def test_echo_on_same_node_uses_loopback():
    cluster = make_cluster(n=1)
    node = cluster.nodes[0]
    node.spawn(EchoServer(port=7000))
    client = node.spawn(EchoClient(node_ip(cluster, 0), 7000, [b"ping"]))
    frames_before = cluster.nodes[0].stack.nic.tx_frames
    cluster.run()
    assert client.program.replies == [b"ping"]
    # Loopback traffic never hits the wire.
    assert cluster.nodes[0].stack.nic.tx_frames == frames_before


def test_msg_peek_through_syscall_layer():
    cluster = make_cluster()
    server = cluster.nodes[0].spawn(PeekThenRead(port=7100))
    cluster.nodes[1].spawn(
        EchoClient(node_ip(cluster, 0), 7100, [b"abcdefgh"]))
    cluster.run_for(5)
    assert server.program.peeked == b"abcde"
    # The consuming read sees the same bytes from the start.
    assert server.program.consumed.startswith(b"abcde")


def test_netfilter_blocks_and_unblocks_node_traffic():
    cluster = make_cluster()
    server_node, client_node = cluster.nodes
    server_ip = server_node.stack.eth0.ip
    server_node.spawn(EchoServer(port=7200))
    client = client_node.spawn(
        EchoClient(str(server_ip), 7200, [b"delayed"]))

    rule_id = client_node.stack.netfilter.drop_all_for(server_ip)
    cluster.run_for(1.0)
    assert client.program.replies == []  # blocked

    client_node.stack.netfilter.remove_rule(rule_id)
    cluster.run_for(30.0)
    assert client.program.replies == [b"delayed"]
    assert client_node.stack.netfilter.dropped["OUTPUT"] > 0


def test_arp_resolution_happens_once_per_destination():
    cluster = make_cluster()
    cluster.nodes[0].spawn(EchoServer(port=7300))
    client = cluster.nodes[1].spawn(
        EchoClient(node_ip(cluster, 0), 7300, [b"a", b"b", b"c"]))
    cluster.run()
    assert client.program.replies == [b"a", b"b", b"c"]
    arp_cache = cluster.nodes[1].stack.arp.cache
    assert cluster.nodes[0].stack.eth0.ip in arp_cache


def test_ioctl_returns_interface_mac():
    class AskMac(PhasedProgram):
        initial_phase = "ask"

        def __init__(self):
            super().__init__()
            self.mac = None

        def phase_ask(self, result):
            self.goto("done")
            return sys("ioctl", SIOCGIFHWADDR, "eth0")

        def phase_done(self, result):
            self.mac = result
            return Exit(0)

    cluster = make_cluster(n=1)
    proc = cluster.nodes[0].spawn(AskMac())
    cluster.run()
    assert proc.program.mac == cluster.nodes[0].stack.nic.primary_mac


class UdpPinger(PhasedProgram):
    initial_phase = "socket"

    def __init__(self, bind_ip, dst_ip, dst_port):
        super().__init__()
        self.bind_ip = bind_ip
        self.dst_ip = dst_ip
        self.dst_port = dst_port
        self.reply = None

    def phase_socket(self, result):
        self.goto("bind")
        return sys("socket", "udp")

    def phase_bind(self, result):
        self.fd = result
        self.goto("send")
        return sys("bind", self.fd, self.bind_ip, 9001)

    def phase_send(self, result):
        self.goto("recv")
        return sys("sendto", self.fd, b"ping", self.dst_ip, self.dst_port)

    def phase_recv(self, result):
        self.goto("done")
        return sys("recvfrom", self.fd)

    def phase_done(self, result):
        self.reply = result
        return Exit(0)


class UdpPonger(PhasedProgram):
    initial_phase = "socket"

    def __init__(self, bind_ip, port):
        super().__init__()
        self.bind_ip = bind_ip
        self.port = port

    def phase_socket(self, result):
        self.goto("bind")
        return sys("socket", "udp")

    def phase_bind(self, result):
        self.fd = result
        self.goto("recv")
        return sys("bind", self.fd, self.bind_ip, self.port)

    def phase_recv(self, result):
        self.goto("reply")
        return sys("recvfrom", self.fd)

    def phase_reply(self, result):
        payload, src_ip, src_port = result
        self.goto("done")
        return sys("sendto", self.fd, b"pong:" + payload, src_ip, src_port)

    def phase_done(self, result):
        return Exit(0)


def test_udp_round_trip_between_nodes():
    cluster = make_cluster()
    cluster.nodes[0].spawn(UdpPonger(node_ip(cluster, 0), 9000))
    pinger = cluster.nodes[1].spawn(
        UdpPinger(node_ip(cluster, 1), node_ip(cluster, 0), 9000))
    cluster.run()
    payload, ip, port = pinger.program.reply
    assert payload == b"pong:ping"
    assert ip == node_ip(cluster, 0)
    assert port == 9000


def test_dhcp_server_answers_broadcast_discover():
    cluster = make_cluster(n=2)
    cluster.add_dhcp_server(node_index=0, pool_start=700)
    client_node = cluster.nodes[1]
    got = []
    client_node.stack.udp.bind(
        DHCP_CLIENT_PORT,
        lambda payload, src, sport, dst: got.append(payload))
    mac = client_node.stack.nic.primary_mac
    client_node.stack.udp.send(
        client_node.stack.eth0.ip, DHCP_CLIENT_PORT,
        BROADCAST_IP, DHCP_SERVER_PORT,
        DhcpMessage(kind="DISCOVER", xid=1, chaddr=mac), payload_size=300)
    cluster.run_for(1.0)
    assert got and got[0].kind == "OFFER"
    assert got[0].yiaddr is not None


def test_runtime_overhead_outside_pod_is_zero():
    """Sanity for the cost model: no pod => no virtualisation surcharge."""
    cluster = make_cluster(n=1)
    node = cluster.nodes[0]
    from tests.programs import ComputeLoop
    proc = node.spawn(ComputeLoop(iterations=10, work_s=0.01))
    cluster.run()
    expected = 0.1 + 11 * cluster.costs.syscall_time
    assert cluster.sim.now == pytest.approx(expected, rel=0.01)
