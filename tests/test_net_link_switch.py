"""Tests for links, NICs and the learning switch."""

import pytest

from repro.errors import NetworkError
from repro.net.addresses import BROADCAST_MAC, Ipv4Address, MacAddress
from repro.net.link import GIGABIT, Link, Port
from repro.net.nic import Nic
from repro.net.packet import (
    ETHERTYPE_IP,
    EthernetFrame,
    IpPacket,
    PROTO_TCP,
    TcpFlags,
    TcpSegment,
)
from repro.net.switch import Switch
from repro.sim.core import Simulator


def _frame(src: MacAddress, dst: MacAddress, payload_len: int = 100):
    segment = TcpSegment(src_port=1, dst_port=2, seq=0, ack=0,
                         flags=TcpFlags.ACK, window=0,
                         payload=b"x" * payload_len)
    packet = IpPacket(src=Ipv4Address(1), dst=Ipv4Address(2),
                      protocol=PROTO_TCP, payload=segment)
    return EthernetFrame(src=src, dst=dst, ethertype=ETHERTYPE_IP,
                         payload=packet)


def _capture_port(name, sink):
    return Port(name, lambda frame, port: sink.append(frame))


def test_link_delivers_with_latency_and_serialisation():
    sim = Simulator()
    received = []
    a = _capture_port("a", [])
    b = _capture_port("b", received)
    Link(sim, a, b, bandwidth_bps=GIGABIT, latency_s=10e-6)
    frame = _frame(MacAddress.ordinal(1), MacAddress.ordinal(2))
    a.transmit(frame)
    sim.run()
    assert received == [frame]
    expected = frame.size * 8 / GIGABIT + 10e-6
    assert sim.now == pytest.approx(expected)


def test_link_fifo_serialisation_queues_frames():
    sim = Simulator()
    received = []
    a = _capture_port("a", [])
    b = _capture_port("b", received)
    Link(sim, a, b, bandwidth_bps=GIGABIT, latency_s=0.0)
    f1 = _frame(MacAddress.ordinal(1), MacAddress.ordinal(2), 1000)
    f2 = _frame(MacAddress.ordinal(1), MacAddress.ordinal(2), 1000)
    a.transmit(f1)
    a.transmit(f2)
    sim.run()
    # Second frame finishes at 2x the serialisation time of one frame.
    assert sim.now == pytest.approx(2 * f1.size * 8 / GIGABIT)
    assert received == [f1, f2]


def test_link_down_drops():
    sim = Simulator()
    received = []
    a = _capture_port("a", [])
    b = _capture_port("b", received)
    link = Link(sim, a, b)
    link.down = True
    a.transmit(_frame(MacAddress.ordinal(1), MacAddress.ordinal(2)))
    sim.run()
    assert received == []
    assert link.frames_dropped == 1


def test_link_drop_fn():
    sim = Simulator()
    received = []
    a = _capture_port("a", [])
    b = _capture_port("b", received)
    Link(sim, a, b, drop_fn=lambda frame: True)
    a.transmit(_frame(MacAddress.ordinal(1), MacAddress.ordinal(2)))
    sim.run()
    assert received == []


def test_port_requires_cable():
    port = Port("lonely", lambda f, p: None)
    with pytest.raises(NetworkError):
        port.transmit(_frame(MacAddress.ordinal(1), MacAddress.ordinal(2)))


def test_nic_filters_by_mac():
    sim = Simulator()
    nic = Nic(sim, "eth0", MacAddress.ordinal(1))
    got = []
    nic.rx_handler = lambda frame, n: got.append(frame)
    nic._on_frame(_frame(MacAddress.ordinal(9), MacAddress.ordinal(2)), None)
    assert got == []
    assert nic.rx_filtered == 1
    nic._on_frame(_frame(MacAddress.ordinal(9), MacAddress.ordinal(1)), None)
    assert len(got) == 1


def test_nic_accepts_broadcast_and_promiscuous():
    sim = Simulator()
    nic = Nic(sim, "eth0", MacAddress.ordinal(1))
    assert nic.accepts(_frame(MacAddress.ordinal(9), BROADCAST_MAC))
    other = _frame(MacAddress.ordinal(9), MacAddress.ordinal(3))
    assert not nic.accepts(other)
    nic.promiscuous = True
    assert nic.accepts(other)


def test_nic_multi_mac_vif_support():
    sim = Simulator()
    nic = Nic(sim, "eth0", MacAddress.ordinal(1))
    vif_mac = MacAddress.ordinal(42)
    nic.add_mac(vif_mac)
    assert nic.accepts(_frame(MacAddress.ordinal(9), vif_mac))
    nic.remove_mac(vif_mac)
    assert not nic.accepts(_frame(MacAddress.ordinal(9), vif_mac))


def test_nic_without_multi_mac_rejects_extra():
    sim = Simulator()
    nic = Nic(sim, "eth0", MacAddress.ordinal(1),
              supports_multiple_macs=False)
    with pytest.raises(NetworkError):
        nic.add_mac(MacAddress.ordinal(2))


def test_nic_cannot_drop_primary_mac():
    sim = Simulator()
    nic = Nic(sim, "eth0", MacAddress.ordinal(1))
    with pytest.raises(NetworkError):
        nic.remove_mac(nic.primary_mac)


def _wire_nic_to_switch(sim, switch, mac):
    nic = Nic(sim, f"eth-{mac}", mac)
    Link(sim, nic.port, switch.new_port(), latency_s=1e-6)
    return nic


def test_switch_floods_unknown_then_learns():
    sim = Simulator()
    switch = Switch(sim)
    macs = [MacAddress.ordinal(i) for i in (1, 2, 3)]
    nics = [_wire_nic_to_switch(sim, switch, mac) for mac in macs]
    inboxes = {i: [] for i in range(3)}
    for i, nic in enumerate(nics):
        nic.rx_handler = (lambda idx: lambda frame, n:
                          inboxes[idx].append(frame))(i)

    nics[0].send(_frame(macs[0], macs[1]))
    sim.run()
    # Unknown destination: flooded; only NIC 1 accepts it.
    assert len(inboxes[1]) == 1 and not inboxes[2]
    assert switch.frames_flooded == 1

    nics[1].send(_frame(macs[1], macs[0]))
    sim.run()
    # Switch learned mac0's port from the first frame: unicast forward.
    assert len(inboxes[0]) == 1
    assert switch.frames_forwarded == 1


def test_switch_broadcast_reaches_all_but_sender():
    sim = Simulator()
    switch = Switch(sim)
    macs = [MacAddress.ordinal(i) for i in (1, 2, 3)]
    nics = [_wire_nic_to_switch(sim, switch, mac) for mac in macs]
    counts = [0, 0, 0]
    for i, nic in enumerate(nics):
        nic.rx_handler = (lambda idx: lambda frame, n:
                          counts.__setitem__(idx, counts[idx] + 1))(i)
    nics[0].send(_frame(macs[0], BROADCAST_MAC))
    sim.run()
    assert counts == [0, 1, 1]


def test_switch_forget_forces_reflood():
    sim = Simulator()
    switch = Switch(sim)
    macs = [MacAddress.ordinal(i) for i in (1, 2)]
    nics = [_wire_nic_to_switch(sim, switch, mac) for mac in macs]
    for nic in nics:
        nic.rx_handler = lambda frame, n: None
    nics[0].send(_frame(macs[0], macs[1]))
    sim.run()
    assert macs[0] in switch.table
    switch.forget(macs[0])
    assert macs[0] not in switch.table
