"""CLI smoke tests."""

import pytest

from repro.cli import build_parser, main


def test_parser_knows_all_commands():
    parser = build_parser()
    for command in ("demo", "fig5", "fig6", "messages", "overhead",
                    "fig4"):
        args = parser.parse_args([command])
        assert callable(args.fn)


def test_cli_requires_a_command(capsys):
    with pytest.raises(SystemExit):
        main([])


def test_cli_overhead_runs(capsys):
    assert main(["overhead"]) == 0
    out = capsys.readouterr().out
    assert "overhead" in out
    assert "< 0.5" in out


def test_cli_fig5_small_runs(capsys):
    assert main(["fig5", "--nodes", "2", "3", "--rounds", "2"]) == 0
    out = capsys.readouterr().out
    assert "Fig 5" in out


def test_cli_demo_runs(capsys):
    assert main(["demo"]) == 0
    out = capsys.readouterr().out
    assert "migration was transparent" in out


def test_cli_messages_small_runs(capsys):
    assert main(["messages", "--nodes", "2", "4"]) == 0
    out = capsys.readouterr().out
    assert "O(N)" in out
