"""TCP send and receive buffers.

The send buffer mirrors Linux's ``sk_buff`` write queue: it stores *packetised*
data — each entry is one segment with its sequence number. Cruz's checkpoint
walks this structure directly (Linux has no syscall to read it) and must
preserve the recorded packet boundaries on restore, because "the Linux TCP
stack expects ACK sequence numbers to correspond to packet boundaries" (§4.1).

The receive buffer performs reassembly: in-order bytes await delivery to the
application; out-of-order segments wait in a staging map.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.errors import TcpError


@dataclass
class BufferedSegment:
    """One packet's worth of sent-but-unacknowledged data."""

    seq: int
    payload: bytes
    transmit_count: int = 0
    last_sent_at: float = -1.0

    @property
    def end(self) -> int:
        return self.seq + len(self.payload)


class SendBuffer:
    """Write queue: unacknowledged segments plus not-yet-segmented bytes."""

    def __init__(self, capacity: int):
        self.capacity = capacity
        self.segments: List[BufferedSegment] = []  # [snd_una, snd_nxt)
        self.pending = bytearray()                 # accepted, not yet sent

    @property
    def unacked_bytes(self) -> int:
        return sum(len(s.payload) for s in self.segments)

    @property
    def used(self) -> int:
        return self.unacked_bytes + len(self.pending)

    @property
    def free_space(self) -> int:
        return max(0, self.capacity - self.used)

    def accept(self, data: bytes) -> int:
        """Accept up to ``free_space`` bytes from the application."""
        take = min(len(data), self.free_space)
        self.pending.extend(data[:take])
        return take

    def segmentize(self, seq: int, max_bytes: int) -> Optional[bytes]:
        """Carve the next segment (up to ``max_bytes``) out of ``pending``.

        Records the packet boundary by appending a :class:`BufferedSegment`
        starting at ``seq``. Returns the payload, or ``None`` if nothing to
        send.
        """
        if not self.pending or max_bytes <= 0:
            return None
        payload = bytes(self.pending[:max_bytes])
        del self.pending[:len(payload)]
        if self.segments and self.segments[-1].end != seq:
            raise TcpError(
                f"segment gap: expected seq {self.segments[-1].end}, "
                f"got {seq}")
        self.segments.append(BufferedSegment(seq=seq, payload=payload))
        return payload

    def acknowledge(self, ack: int) -> int:
        """Drop segments fully covered by cumulative ``ack``.

        Returns the number of segments newly acknowledged. A partial ack
        (mid-segment) trims the front segment, though with boundary-preserving
        peers acks land on segment edges.
        """
        released = 0
        while self.segments and self.segments[0].end <= ack:
            self.segments.pop(0)
            released += 1
        if self.segments and self.segments[0].seq < ack:
            head = self.segments[0]
            head.payload = head.payload[ack - head.seq:]
            head.seq = ack
        return released

    def walk(self) -> List[Tuple[int, bytes]]:
        """Checkpoint helper: the kernel-structure walk of §4.1.

        Returns ``(seq, payload)`` per packet, preserving packetisation.
        """
        return [(segment.seq, segment.payload)
                for segment in self.segments]

    def oldest_unacked(self) -> Optional[BufferedSegment]:
        return self.segments[0] if self.segments else None


class ReceiveBuffer:
    """Reassembly queue plus the in-order bytes awaiting the application."""

    def __init__(self, capacity: int, rcv_nxt: int):
        self.capacity = capacity
        self.rcv_nxt = rcv_nxt
        self.data = bytearray()
        self._out_of_order: Dict[int, bytes] = {}

    @property
    def available(self) -> int:
        """Bytes deliverable to the application right now."""
        return len(self.data)

    @property
    def window(self) -> int:
        """Advertisable receive window."""
        return max(0, self.capacity - len(self.data))

    def store(self, seq: int, payload: bytes) -> int:
        """Insert a received segment; returns bytes newly made in-order."""
        if not payload:
            return 0
        end = seq + len(payload)
        if end <= self.rcv_nxt:
            return 0  # entirely duplicate
        if seq > self.rcv_nxt:
            if seq - self.rcv_nxt + len(payload) <= self.window:
                existing = self._out_of_order.get(seq)
                if existing is None or len(existing) < len(payload):
                    self._out_of_order[seq] = payload
            return 0
        # Overlaps rcv_nxt: trim any duplicate prefix, then append.
        payload = payload[self.rcv_nxt - seq:]
        payload = payload[:self.window]
        if not payload:
            return 0
        self.data.extend(payload)
        self.rcv_nxt += len(payload)
        delivered = len(payload)
        delivered += self._drain_out_of_order()
        return delivered

    def _drain_out_of_order(self) -> int:
        moved = 0
        while True:
            match = None
            for seq in self._out_of_order:
                if seq <= self.rcv_nxt < seq + len(self._out_of_order[seq]):
                    match = seq
                    break
                if seq + len(self._out_of_order[seq]) <= self.rcv_nxt:
                    match = seq  # fully stale, discard below
                    break
            if match is None:
                return moved
            payload = self._out_of_order.pop(match)
            usable = payload[self.rcv_nxt - match:]
            usable = usable[:self.window]
            self.data.extend(usable)
            self.rcv_nxt += len(usable)
            moved += len(usable)

    def read(self, max_bytes: int, peek: bool = False) -> bytes:
        """Deliver up to ``max_bytes`` in-order bytes to the application.

        With ``peek`` (MSG_PEEK) the bytes stay buffered — this is how the
        checkpoint captures receive-buffer contents non-destructively.
        """
        chunk = bytes(self.data[:max_bytes])
        if not peek:
            del self.data[:len(chunk)]
        return chunk
