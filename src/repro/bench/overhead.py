"""Runtime-overhead harness (§6: "The runtime overhead of Cruz is
negligible (less than 0.5%) since the underlying Zap mechanism requires
nothing more than virtualizing identifiers").

Methodology: run the identical slm configuration twice — once inside pods
(every syscall pays the interposition surcharge) and once as bare
processes — and compare completion times.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.apps.slm import slm_factory
from repro.bench.harness import ShapeReport
from repro.cruz.cluster import CruzCluster


@dataclass
class OverheadResult:
    bare_runtime_s: float
    pod_runtime_s: float

    @property
    def overhead_fraction(self) -> float:
        return (self.pod_runtime_s - self.bare_runtime_s) / \
            self.bare_runtime_s


def _run_until_done(cluster, procs, limit=1e5):
    done = cluster.sim.all_of([p.exit_event for p in procs])
    cluster.sim.run_until_complete(done, limit=limit)
    return cluster.sim.now


def run_overhead(n_nodes: int = 2, steps: int = 200,
                 total_work_s: float = 4.0) -> OverheadResult:
    factory = slm_factory(n_nodes, global_rows=8 * n_nodes, cols=16,
                          steps=steps, total_work_s=total_work_s)

    # Bare: plain processes on the node addresses, no pods anywhere.
    bare = CruzCluster(n_nodes, trace_enabled=False)
    node_ips = [str(node.stack.eth0.ip) for node in
                bare.nodes[:n_nodes]]
    bare_procs = [bare.nodes[rank].spawn(factory(rank, node_ips))
                  for rank in range(n_nodes)]
    bare_runtime = _run_until_done(bare, bare_procs)

    # Pods: the same program through the Zap virtualisation layer.
    podded = CruzCluster(n_nodes, trace_enabled=False)
    app = podded.launch_app_factory("slm", n_nodes, factory)
    pod_procs = [proc for pod in app.pods for proc in pod.processes()]
    pod_runtime = _run_until_done(podded, pod_procs)

    return OverheadResult(bare_runtime_s=bare_runtime,
                          pod_runtime_s=pod_runtime)


def overhead_shape_report(result: OverheadResult) -> ShapeReport:
    report = ShapeReport("Runtime overhead shape")
    report.check("overhead_positive",
                 result.overhead_fraction >= 0.0,
                 value=result.overhead_fraction,
                 expect="virtualization costs something")
    report.check("overhead_below_half_percent",
                 result.overhead_fraction < 0.005,
                 value=result.overhead_fraction,
                 expect="< 0.5% (§6)")
    return report


def overhead_shape_holds(result: OverheadResult) -> dict:
    """Deprecated: use :func:`overhead_shape_report`."""
    return overhead_shape_report(result).as_dict()
