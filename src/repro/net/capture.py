"""Packet capture: a tcpdump-style tap on links.

Attach a :class:`PacketCapture` to any :class:`~repro.net.link.Link` to
record every frame that crosses it (including dropped ones, marked as
such) — the tool that makes "why did this connection stall" questions
answerable in tests and examples.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.net.link import Link
from repro.net.packet import (
    ArpPacket,
    EthernetFrame,
    IpPacket,
    TcpSegment,
    UdpDatagram,
)


@dataclass(frozen=True)
class CapturedFrame:
    time: float
    frame: EthernetFrame
    dropped: bool
    link: str

    def describe(self) -> str:
        payload = self.frame.payload
        drop = " [DROPPED]" if self.dropped else ""
        if isinstance(payload, ArpPacket):
            body = (f"ARP op={payload.operation} "
                    f"{payload.sender_ip} -> {payload.target_ip}")
        elif isinstance(payload, IpPacket):
            inner = payload.payload
            if isinstance(inner, TcpSegment):
                body = f"{payload.src} -> {payload.dst} {inner.describe()}"
            elif isinstance(inner, UdpDatagram):
                body = (f"UDP {payload.src}:{inner.src_port} -> "
                        f"{payload.dst}:{inner.dst_port} "
                        f"len={inner.size}")
            else:
                body = f"IP {payload.src} -> {payload.dst}"
        else:
            body = "?"
        return f"{self.time*1000:10.3f} ms  {self.link:<18} {body}{drop}"


class PacketCapture:
    """Records traffic on one or more links."""

    def __init__(self,
                 predicate: Optional[Callable[[EthernetFrame], bool]]
                 = None, max_frames: int = 100_000):
        self.predicate = predicate
        self.max_frames = max_frames
        self.frames: List[CapturedFrame] = []
        self._links: List[Link] = []

    def attach(self, link: Link) -> None:
        """Wrap the link's send path to record every frame."""
        self._links.append(link)
        original_send = link.send
        capture = self

        def tapped_send(frame: EthernetFrame, source) -> None:
            dropped_before = link.frames_dropped
            original_send(frame, source)
            dropped = link.frames_dropped > dropped_before
            if capture.predicate is None or capture.predicate(frame):
                if len(capture.frames) < capture.max_frames:
                    capture.frames.append(CapturedFrame(
                        time=link.sim.now, frame=frame,
                        dropped=dropped, link=link.name))

        link.send = tapped_send

    def tcp_segments(self):
        """Iterate (record, ip_packet, tcp_segment) for TCP frames."""
        for record in self.frames:
            payload = record.frame.payload
            if isinstance(payload, IpPacket) and \
                    isinstance(payload.payload, TcpSegment):
                yield record, payload, payload.payload

    def dropped_count(self) -> int:
        return sum(1 for record in self.frames if record.dropped)

    def dump(self, limit: int = 50) -> str:
        lines = [record.describe() for record in self.frames[:limit]]
        if len(self.frames) > limit:
            lines.append(f"... {len(self.frames) - limit} more frames")
        return "\n".join(lines)
