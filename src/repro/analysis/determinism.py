"""``repro analyze determinism``: a schedule-race detector.

The simulator's event queue breaks (time, priority) ties by insertion
sequence.  Correct code must not depend on that arbitrary order: any two
tie-break policies must produce bit-identical results.  This module runs
the same workload twice — once under the FIFO schedule oracle, once
under LIFO (newest-first among same-timestamp, same-priority events) —
and diffs the per-round :class:`RoundStats` plus a hash of the final
store state.  Divergence means some component consumed the queue's
arbitrary ordering (a schedule race).

Since CruzMC this detector is the trivial two-point instance of the
model checker's schedule exploration: fifo and lifo are the two constant
:class:`~repro.analysis.oracle.ScheduleOracle` policies, run through the
same scheduler hook every explored interleaving uses (see
:func:`repro.analysis.mc.run_policy`).  `repro mc` explores the space
*between* those two points.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Dict, List


@dataclass
class DeterminismReport:
    """The two fingerprints and every path where they disagree."""

    workload: str
    divergences: List[str] = field(default_factory=list)
    fingerprints: Dict[str, Dict[str, Any]] = field(default_factory=dict)

    @property
    def deterministic(self) -> bool:
        return not self.divergences

    def render(self) -> str:
        head = (f"determinism[{self.workload}]: "
                + ("PASS — tie-break perturbation is invisible"
                   if self.deterministic
                   else f"FAIL — {len(self.divergences)} divergence(s)"))
        lines = [head]
        lines.extend(f"  {path}" for path in self.divergences)
        return "\n".join(lines)


def _canonical(value: Any) -> str:
    return json.dumps(value, sort_keys=True, default=repr)


def state_hash(cluster) -> str:
    """A digest of the externally visible end state: the chunk store's
    refcounts, every pod's stored versions, and the simulation clock."""
    store = cluster.store
    state = {
        "refcounts": sorted(store.refcounts().items()),
        "versions": {pod_name: store.versions(pod_name)
                     for pod_name in sorted(store._latest)},
        "wal_epochs": store.rounds.epochs(),
        "sim_time": round(cluster.sim.now, 12),
    }
    return hashlib.sha256(_canonical(state).encode()).hexdigest()


def fingerprint(tiebreak: str, nodes: int = 2, rounds: int = 2,
                interval_s: float = 0.2,
                memory_mb: float = 4.0, seed: int = 0) -> Dict[str, Any]:
    """Run the fig5-small workload under one tie-break policy and
    reduce it to a comparable fingerprint."""
    from repro.analysis import mc

    return mc.run_policy(tiebreak, nodes=nodes, rounds=rounds,
                         interval_s=interval_s, memory_mb=memory_mb,
                         seed=seed)


def _diff(a: Any, b: Any, path: str, out: List[str]) -> None:
    if isinstance(a, dict) and isinstance(b, dict):
        for key in sorted(set(a) | set(b)):
            _diff(a.get(key), b.get(key), f"{path}.{key}", out)
        return
    if isinstance(a, list) and isinstance(b, list) and len(a) == len(b):
        for index, (left, right) in enumerate(zip(a, b)):
            _diff(left, right, f"{path}[{index}]", out)
        return
    if a != b:
        out.append(f"{path}: fifo={a!r} lifo={b!r}")


def run_determinism_check(nodes: int = 2, rounds: int = 2,
                          interval_s: float = 0.2,
                          memory_mb: float = 4.0,
                          seeds: int = 1) -> DeterminismReport:
    """The fig5-small workload, twice, with perturbed tie-breaking.

    ``seeds`` sweeps the check over that many RNG seeds (0..seeds-1):
    each seed shifts the workload's random streams, exposing races that
    only materialize under particular timings.  Seed 0 reproduces the
    single-seed check exactly; extra seeds add ``fifo@seed<N>`` /
    ``lifo@seed<N>`` fingerprints and ``seed<N> ``-prefixed divergences.
    """
    workload = (f"fig5-small[n={nodes}]" if seeds <= 1
                else f"fig5-small[n={nodes},seeds={seeds}]")
    report = DeterminismReport(workload=workload)
    for seed in range(max(1, seeds)):
        fifo = fingerprint("fifo", nodes=nodes, rounds=rounds,
                           interval_s=interval_s, memory_mb=memory_mb,
                           seed=seed)
        lifo = fingerprint("lifo", nodes=nodes, rounds=rounds,
                           interval_s=interval_s, memory_mb=memory_mb,
                           seed=seed)
        suffix = f"@seed{seed}" if seed else ""
        prefix = f"seed{seed} " if seed else ""
        report.fingerprints[f"fifo{suffix}"] = fifo
        report.fingerprints[f"lifo{suffix}"] = lifo
        divergences: List[str] = []
        _diff(fifo["rounds"], lifo["rounds"], "rounds", divergences)
        if fifo["state_hash"] != lifo["state_hash"]:
            divergences.append(
                f"state_hash: fifo={fifo['state_hash'][:16]} "
                f"lifo={lifo['state_hash'][:16]}")
        report.divergences.extend(prefix + d for d in divergences)
    return report
