"""A TCP load-balancing proxy fronting a replicated kv fleet.

The serving tier of the paper's motivating scenario (§1): clients talk
to one stable address while Cruz checkpoints, migrates and fails over
the pods *behind* it. The proxy is itself an ordinary
:class:`~repro.simos.program.PhasedProgram` in its own pod — it gets
checkpointed and restored like everything else, so all of its state
(windows, in-flight tables, the replication log) must live in plain
picklable attributes.

Design (one event loop, one syscall per step):

* **poll → wake → tick → act.** ``poll`` watches the listen socket,
  every client and every live backend with a bounded timeout; ``wake``
  turns ready fds into queued actions; ``tick`` (time from ``gettime``)
  runs housekeeping — reconnects due, ``connstat`` for in-flight
  nonblocking connects, health probes, suspect/down transitions, queue
  expiry and dispatch; ``act`` drains the action queue, one syscall per
  action, routing each result back through a handler.

* **Health.** Every backend response refreshes liveness; periodic pings
  probe idle links. ``suspect`` (no traffic for ``suspect_after_s``)
  stops new reads; ``down`` (``down_after_s``, chosen to ride out a
  checkpoint pause plus one retransmit) clears the connection and
  re-dials with capped exponential backoff + jitter from the injected
  seeded rng. Connects are nonblocking (``connect(..., nonblock=True)``
  + ``connstat``) so one dead backend never stalls the loop.

* **Writes** are stamped with a proxy sequence number, appended to a
  bounded replication log and fanned to every attached backend; the
  client is answered on the *first* ack (which also advances
  ``committed_seq``). A backend that (re)connects starts ``syncing``:
  a ping learns its applied high-water seq, the gap is replayed from
  the log (server-side rid dedup absorbs overlap) and it is promoted
  to ``up`` only once fully caught up — until then it serves no reads.

* **Reads** go to the least-outstanding ``up`` backend whose
  ``acked_seq`` has reached ``committed_seq`` (read-your-writes), ties
  to the lowest index. Saturation (per-backend windows full, bounded
  pending queue full or entry expired) sheds with a typed
  ``{"ok": False, "code": 503, "error": "shed"}`` — never unbounded
  buffering, never a silent hang.

* **Exactly-once.** Completed writes are remembered in a bounded
  rid → response cache; a retried rid replays the cached answer. A rid
  still in flight re-homes to the retrying client's new connection
  (the reconnect-after-deadline path), so a mid-write failover applies
  the write once and still answers the client.

* **Admin plane** (ops ``admin.*`` on the client port) powers the
  canary rollout: ``drain``/``undrain`` (stop new traffic to one
  backend; undrain resyncs if it missed writes), ``status``,
  ``probe`` (a read pinned to one backend, bypassing eligibility) and
  ``reset`` (force-close the proxy side before restoring an *older*
  image whose TCP state would not match).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.apps.kvserver import KV_PORT, encode, try_decode
from repro.simos.program import PhasedProgram
from repro.simos.syscalls import MSG_DONTWAIT, Exit, sys

#: Backend states that hold an attached TCP connection.
ATTACHED = ("syncing", "up", "suspect")
#: Backend states eligible for write fan-out (syncing backends catch up
#: via ordered log replay instead — interleaving direct sends with
#: replay could apply same-key writes out of order).
FANOUT = ("up", "suspect")

WRITE_OPS = ("put", "delete")
READ_OPS = ("get", "count")


def shed_response(rid) -> dict:
    return {"ok": False, "code": 503, "error": "shed", "rid": rid}


class KvProxy(PhasedProgram):
    """Least-outstanding-requests TCP proxy over N kv backends."""

    name = "kv-proxy"
    initial_phase = "socket"

    def __init__(self, backend_ips: List[str], rng,
                 port: int = KV_PORT, backend_port: int = KV_PORT,
                 tick_s: float = 0.005, window: int = 32,
                 pending_cap: int = 256, queue_timeout_s: float = 1.0,
                 probe_interval_s: float = 0.05,
                 suspect_after_s: float = 0.2,
                 down_after_s: float = 0.8,
                 connect_timeout_s: float = 3.0,
                 backoff_base_s: float = 0.05,
                 backoff_cap_s: float = 1.0,
                 wlog_cap: int = 8192, recent_cap: int = 8192):
        super().__init__()
        self.port = port
        self.backend_port = backend_port
        self.rng = rng
        self.tick_s = tick_s
        self.window = window
        self.pending_cap = pending_cap
        self.queue_timeout_s = queue_timeout_s
        self.probe_interval_s = probe_interval_s
        self.suspect_after_s = suspect_after_s
        self.down_after_s = down_after_s
        self.connect_timeout_s = connect_timeout_s
        self.backoff_base_s = backoff_base_s
        self.backoff_cap_s = backoff_cap_s
        self.wlog_cap = wlog_cap
        self.recent_cap = recent_cap
        self.backends: List[dict] = [
            self._new_backend(ip) for ip in backend_ips]
        self.by_fd: Dict[int, int] = {}
        self.fd = None
        self.now = 0.0
        #: fd -> {"rx", "tx"} per client connection.
        self.clients: Dict[int, dict] = {}
        self.actions: List[tuple] = []
        self.current: Optional[tuple] = None
        self.flush_tried: List[tuple] = []
        #: Queued requests waiting for an eligible backend.
        self.pending: List[dict] = []
        #: rid -> replicated-write record (seq, client, waiting, acks).
        self.wrecs: Dict[str, dict] = {}
        #: rid -> in-flight read record (client, backend, request).
        self.rrecs: Dict[str, dict] = {}
        #: Bounded ordered replication log of stamped write requests.
        self.wlog: List[dict] = []
        #: rid -> response cache for completed writes (retry dedup).
        self.recent: Dict[str, dict] = {}
        self.recent_order: List[str] = []
        self.seq = 0
        self.committed_seq = 0
        self.auto_rid = 0
        self.probe_seq = 0
        # Counters surfaced through admin.status and the SLO recorder.
        self.clients_accepted = 0
        self.writes = 0
        self.reads = 0
        self.sheds = 0
        self.dups_served = 0
        self.rehomed = 0
        self.redispatched = 0
        self.backend_downs = 0
        self.backend_reconnects = 0
        self.promotions = 0
        self.sync_replays = 0
        self.wlog_gaps = 0

    @staticmethod
    def _new_backend(ip: str) -> dict:
        return {
            "ip": ip,
            "fd": None,
            "state": "down",
            "drained": False,
            "rx": b"",
            "tx": b"",
            "inflight": {},        # rid -> write|read|sync|probe|sync_ping
            "outstanding": 0,      # write/read/sync entries only
            "acked_seq": 0,
            "last_pong": 0.0,
            "ping_due": 0.0,
            "attempts": 0,
            "next_connect_at": 0.0,
            "connect_deadline": 0.0,
        }

    # -- event loop ------------------------------------------------------

    def phase_socket(self, result):
        self.goto("bind")
        return sys("socket", "tcp")

    def phase_bind(self, result):
        self.fd = result
        self.goto("listen")
        return sys("bind", self.fd, None, self.port)

    def phase_listen(self, result):
        self.goto("clock")
        return sys("listen", self.fd, 64)

    def phase_clock(self, result):
        self.goto("tick")
        return sys("gettime")

    def phase_tick(self, result):
        self.now = result
        self._tick()
        self.goto("act")
        return self.phase_act(None)

    def phase_act(self, result):
        while True:
            if not self.actions:
                self._queue_flushes()
                if not self.actions:
                    break
            self.current = self.actions.pop(0)
            call = self._begin(self.current)
            if call is not None:
                self.goto("acted")
                return call
        del self.flush_tried[:]
        self.goto("wake")
        return sys("poll", self._poll_fds(), timeout=self.tick_s)

    def phase_acted(self, result):
        call = self._finish(self.current, result)
        if call is not None:
            return call
        self.goto("act")
        return self.phase_act(None)

    def phase_wake(self, result):
        if isinstance(result, list):
            for fd in result:
                if fd == self.fd:
                    self.actions.append(("accept",))
                elif fd in self.by_fd:
                    self.actions.append(("recv_backend", self.by_fd[fd]))
                elif fd in self.clients:
                    self.actions.append(("recv_client", fd))
        self.goto("clock")
        return sys("gettime")

    def _poll_fds(self) -> List[int]:
        fds = [self.fd] + sorted(self.clients)
        for backend in self.backends:
            if backend["fd"] is not None and backend["state"] in ATTACHED:
                fds.append(backend["fd"])
        return fds

    # -- action execution ------------------------------------------------

    def _begin(self, action):
        kind = action[0]
        if kind == "accept":
            return sys("accept", self.fd)
        if kind == "recv_client":
            fd = action[1]
            if fd not in self.clients:
                return None
            return sys("recv", fd, 65536, flags=MSG_DONTWAIT)
        if kind == "recv_backend":
            backend = self.backends[action[1]]
            if backend["fd"] is None:
                return None
            return sys("recv", backend["fd"], 65536, flags=MSG_DONTWAIT)
        if kind == "connect_socket":
            return sys("socket", "tcp")
        if kind == "connstat":
            backend = self.backends[action[1]]
            if backend["state"] != "connecting" or backend["fd"] is None:
                return None
            return sys("connstat", backend["fd"])
        if kind == "flush_c":
            record = self.clients.get(action[1])
            if record is None or not record["tx"]:
                return None
            return sys("send", action[1], record["tx"],
                       flags=MSG_DONTWAIT)
        if kind == "flush_b":
            backend = self.backends[action[1]]
            if backend["fd"] is None or not backend["tx"] \
                    or backend["state"] not in ATTACHED:
                return None
            return sys("send", backend["fd"], backend["tx"],
                       flags=MSG_DONTWAIT)
        if kind == "close":
            return sys("close", action[1])
        return None

    def _finish(self, action, result):
        from repro.errors import SyscallError
        kind = action[0]
        failed = isinstance(result, SyscallError)
        if kind == "accept":
            if not failed and isinstance(result, tuple):
                fd = result[0]
                self.clients[fd] = {"rx": b"", "tx": b""}
                self.clients_accepted += 1
        elif kind == "recv_client":
            fd = action[1]
            if failed or result is None:
                pass
            elif result == b"":
                self._client_gone(fd)
            else:
                self._on_client_data(fd, result)
        elif kind == "recv_backend":
            index = action[1]
            if failed or result is None:
                pass
            elif result == b"":
                self._backend_down(index)
            else:
                self._on_backend_data(index, result)
        elif kind == "connect_socket":
            index = action[1]
            backend = self.backends[index]
            backend["fd"] = result
            self.by_fd[result] = index
            self.current = ("connect_issue", index)
            return sys("connect", result, backend["ip"],
                       self.backend_port, nonblock=True)
        elif kind == "connect_issue":
            index = action[1]
            if failed:
                self._backend_down(index)
            else:
                self.backends[index]["connect_deadline"] = \
                    self.now + self.connect_timeout_s
        elif kind == "connstat":
            index = action[1]
            if result == "established":
                self._backend_established(index)
            elif result == "failed":
                self._backend_down(index)
        elif kind == "flush_c":
            fd = action[1]
            record = self.clients.get(fd)
            if record is None:
                pass
            elif isinstance(result, int):
                record["tx"] = record["tx"][result:]
            elif failed and result.errno != "EAGAIN":
                self._client_gone(fd)
        elif kind == "flush_b":
            index = action[1]
            backend = self.backends[index]
            if isinstance(result, int):
                backend["tx"] = backend["tx"][result:]
            elif failed and result.errno != "EAGAIN":
                self._backend_down(index)
        return None

    def _queue_flushes(self) -> None:
        for fd in sorted(self.clients):
            key = ("c", fd)
            if self.clients[fd]["tx"] and key not in self.flush_tried:
                self.flush_tried.append(key)
                self.actions.append(("flush_c", fd))
        for index, backend in enumerate(self.backends):
            key = ("b", index)
            if backend["tx"] and backend["fd"] is not None \
                    and backend["state"] in ATTACHED \
                    and key not in self.flush_tried:
                self.flush_tried.append(key)
                self.actions.append(("flush_b", index))

    # -- housekeeping ----------------------------------------------------

    def _tick(self) -> None:
        for index, backend in enumerate(self.backends):
            state = backend["state"]
            if state == "down":
                if self.now >= backend["next_connect_at"]:
                    backend["state"] = "connecting"
                    backend["connect_deadline"] = \
                        self.now + self.connect_timeout_s
                    self.backend_reconnects += 1
                    self.actions.append(("connect_socket", index))
            elif state == "connecting":
                if backend["fd"] is None:
                    continue
                if self.now > backend["connect_deadline"]:
                    self._backend_down(index)
                else:
                    self.actions.append(("connstat", index))
            else:
                idle = self.now - backend["last_pong"]
                if idle > self.down_after_s:
                    self._backend_down(index)
                    continue
                if idle > self.suspect_after_s and state == "up":
                    backend["state"] = "suspect"
                if self.now >= backend["ping_due"]:
                    self._send_probe(index)
        if self.pending:
            self._service_pending()

    def _service_pending(self) -> None:
        keep = []
        for entry in self.pending:
            if self.now - entry["at"] > self.queue_timeout_s:
                self.sheds += 1
                self._reply(entry["client"],
                            shed_response(entry["request"].get("rid")))
            elif entry["kind"] == "write":
                if not self._fan_write(entry):
                    keep.append(entry)
            else:
                if not self._dispatch_read(entry):
                    keep.append(entry)
        self.pending = keep

    def _send_probe(self, index: int) -> None:
        backend = self.backends[index]
        rid = f"pb{index}-{self.probe_seq}"
        self.probe_seq += 1
        backend["inflight"][rid] = "probe"
        backend["tx"] += encode({"op": "ping", "rid": rid})
        backend["ping_due"] = self.now + self.probe_interval_s

    # -- backend lifecycle -----------------------------------------------

    def _backend_established(self, index: int) -> None:
        backend = self.backends[index]
        backend["state"] = "syncing"
        backend["attempts"] = 0
        backend["last_pong"] = self.now
        backend["ping_due"] = self.now + self.probe_interval_s
        rid = f"sp{index}-{self.probe_seq}"
        self.probe_seq += 1
        backend["inflight"][rid] = "sync_ping"
        backend["tx"] += encode({"op": "ping", "rid": rid})

    def _backend_down(self, index: int, reset: bool = False) -> None:
        backend = self.backends[index]
        if backend["fd"] is not None:
            self.by_fd.pop(backend["fd"], None)
            self.actions.append(("close", backend["fd"]))
            backend["fd"] = None
        inflight = backend["inflight"]
        backend["inflight"] = {}
        backend["outstanding"] = 0
        backend["rx"] = b""
        backend["tx"] = b""
        # The next incarnation may be *older* (restored from an earlier
        # image); its true high-water seq is relearned from the sync
        # ping, never carried over. Replay overlap is absorbed by
        # server-side rid dedup.
        backend["acked_seq"] = 0
        for rid in list(inflight):
            flavor = inflight[rid]
            if flavor in ("write", "sync"):
                wrec = self.wrecs.get(rid)
                if wrec is not None and index in wrec["waiting"]:
                    wrec["waiting"].remove(index)
                    if not wrec["waiting"] and wrec["acks"] > 0:
                        del self.wrecs[rid]
                # acks == 0 with nobody waiting: the record stays; the
                # log replay on reconnect applies and acks it.
            elif flavor == "read":
                rrec = self.rrecs.get(rid)
                if rrec is not None and rrec["backend"] == index:
                    del self.rrecs[rid]
                    if rrec.get("pinned"):
                        self._reply(rrec["client"],
                                    {"ok": False, "code": 503,
                                     "error": "backend-lost", "rid": rid})
                    else:
                        self.redispatched += 1
                        self.pending.insert(0, {
                            "kind": "read", "client": rrec["client"],
                            "request": rrec["request"], "at": self.now})
        backend["state"] = "down"
        if reset:
            backend["attempts"] = 0
            backend["next_connect_at"] = self.now
        else:
            self.backend_downs += 1
            backend["attempts"] += 1
            delay = min(self.backoff_cap_s, self.backoff_base_s *
                        2 ** min(backend["attempts"] - 1, 8))
            backend["next_connect_at"] = \
                self.now + delay * (0.5 + self.rng.random())

    def _maybe_promote(self, index: int) -> None:
        backend = self.backends[index]
        if backend["state"] != "syncing":
            return
        for flavor in backend["inflight"].values():
            if flavor in ("sync", "sync_ping"):
                return
        if backend["acked_seq"] >= self.seq:
            backend["state"] = "up"
            self.promotions += 1
        else:
            self._start_replay(index)

    def _start_replay(self, index: int) -> None:
        backend = self.backends[index]
        missing = [entry for entry in self.wlog
                   if entry["seq"] > backend["acked_seq"]
                   and entry["rid"] not in backend["inflight"]]
        if not missing:
            if self.wlog and self.wlog[0]["seq"] > \
                    backend["acked_seq"] + 1:
                # The gap predates the bounded log: unrecoverable by
                # replay. Counted, retried (a fresh checkpoint image
                # usually closes it after the next failover).
                self.wlog_gaps += 1
            return
        for entry in missing:
            rid = entry["rid"]
            backend["inflight"][rid] = "sync"
            backend["outstanding"] += 1
            backend["tx"] += encode(entry)
            wrec = self.wrecs.get(rid)
            if wrec is not None and index not in wrec["waiting"]:
                wrec["waiting"].append(index)
        self.sync_replays += len(missing)

    # -- client traffic --------------------------------------------------

    def _on_client_data(self, fd: int, data: bytes) -> None:
        record = self.clients.get(fd)
        if record is None:
            return
        record["rx"] += data
        request, record["rx"] = try_decode(record["rx"])
        while request is not None:
            self._handle_client_request(fd, request)
            record = self.clients.get(fd)
            if record is None:
                return
            request, record["rx"] = try_decode(record["rx"])

    def _handle_client_request(self, fd: int, request: dict) -> None:
        op = request.get("op")
        if isinstance(op, str) and op.startswith("admin."):
            self._handle_admin(fd, op, request)
            return
        rid = request.get("rid")
        if rid is None:
            rid = f"i{self.auto_rid}"
            self.auto_rid += 1
            request = dict(request)
            request["rid"] = rid
        if op == "ping":
            self._reply(fd, {"ok": True, "pong": True, "rid": rid})
            return
        if rid in self.recent:
            self.dups_served += 1
            self._reply(fd, self.recent[rid])
            return
        if rid in self.wrecs:
            # The write is still in flight: the client timed out and
            # reconnected — re-home the eventual response.
            self.wrecs[rid]["client"] = fd
            self.rehomed += 1
            return
        if rid in self.rrecs:
            self.rrecs[rid]["client"] = fd
            self.rehomed += 1
            return
        entry = {"client": fd, "request": request, "at": self.now}
        if op in WRITE_OPS:
            self.writes += 1
            entry["kind"] = "write"
            if not self._fan_write(entry):
                self._enqueue(entry)
        elif op in READ_OPS:
            self.reads += 1
            entry["kind"] = "read"
            if not self._dispatch_read(entry):
                self._enqueue(entry)
        else:
            self._reply(fd, {"ok": False, "code": 400,
                             "error": f"bad op {op!r}", "rid": rid})

    def _enqueue(self, entry: dict) -> None:
        if len(self.pending) >= self.pending_cap:
            self.sheds += 1
            self._reply(entry["client"],
                        shed_response(entry["request"].get("rid")))
            return
        self.pending.append(entry)

    def _fan_write(self, entry: dict) -> bool:
        request = entry["request"]
        rid = request["rid"]
        if rid in self.wrecs or rid in self.recent:
            return True
        targets = [index for index, backend in enumerate(self.backends)
                   if backend["fd"] is not None
                   and backend["state"] in FANOUT
                   and not backend["drained"]]
        if not targets:
            return False
        self.seq += 1
        stamped = dict(request)
        stamped["seq"] = self.seq
        self.wlog.append(stamped)
        if len(self.wlog) > self.wlog_cap:
            self.wlog.pop(0)
        self.wrecs[rid] = {"seq": self.seq, "client": entry["client"],
                           "request": stamped,
                           "waiting": list(targets), "acks": 0}
        frame = encode(stamped)
        for index in targets:
            backend = self.backends[index]
            backend["inflight"][rid] = "write"
            backend["outstanding"] += 1
            backend["tx"] += frame
        return True

    def _dispatch_read(self, entry: dict) -> bool:
        request = entry["request"]
        rid = request["rid"]
        if rid in self.rrecs or rid in self.recent:
            return True
        best = None
        for index, backend in enumerate(self.backends):
            if backend["fd"] is None or backend["state"] != "up" \
                    or backend["drained"]:
                continue
            if backend["acked_seq"] < self.committed_seq:
                continue
            if backend["outstanding"] >= self.window:
                continue
            if best is None or backend["outstanding"] < \
                    self.backends[best]["outstanding"]:
                best = index
        if best is None:
            return False
        backend = self.backends[best]
        self.rrecs[rid] = {"client": entry["client"], "backend": best,
                           "request": request}
        backend["inflight"][rid] = "read"
        backend["outstanding"] += 1
        backend["tx"] += encode(request)
        return True

    def _reply(self, fd: Optional[int], response: dict) -> None:
        record = self.clients.get(fd) if fd is not None else None
        if record is None:
            return
        record["tx"] += encode(response)

    def _remember(self, rid: str, response: dict) -> None:
        if rid in self.recent:
            return
        self.recent[rid] = response
        self.recent_order.append(rid)
        if len(self.recent_order) > self.recent_cap:
            self.recent.pop(self.recent_order.pop(0), None)

    def _client_gone(self, fd: int) -> None:
        self.clients.pop(fd, None)
        self.actions.append(("close", fd))
        for wrec in self.wrecs.values():
            if wrec["client"] == fd:
                wrec["client"] = None
        for rrec in self.rrecs.values():
            if rrec["client"] == fd:
                rrec["client"] = None
        for entry in self.pending:
            if entry["client"] == fd:
                entry["client"] = None

    # -- backend traffic -------------------------------------------------

    def _on_backend_data(self, index: int, data: bytes) -> None:
        backend = self.backends[index]
        backend["rx"] += data
        response, backend["rx"] = try_decode(backend["rx"])
        while response is not None:
            self._handle_backend_response(index, response)
            response, backend["rx"] = try_decode(backend["rx"])
        self._maybe_promote(index)

    def _handle_backend_response(self, index: int,
                                 response: dict) -> None:
        backend = self.backends[index]
        backend["last_pong"] = self.now
        if backend["state"] == "suspect":
            backend["state"] = "up"
        seq = response.get("seq")
        if isinstance(seq, int) and seq > backend["acked_seq"]:
            backend["acked_seq"] = seq
        rid = response.get("rid")
        if rid is None:
            return
        flavor = backend["inflight"].pop(rid, None)
        if flavor in ("write", "read", "sync"):
            backend["outstanding"] -= 1
        if rid in self.wrecs:
            wrec = self.wrecs[rid]
            if index in wrec["waiting"]:
                wrec["waiting"].remove(index)
            wrec["acks"] += 1
            if wrec["acks"] == 1:
                if wrec["seq"] > self.committed_seq:
                    self.committed_seq = wrec["seq"]
                clean = {key: value for key, value in response.items()
                         if key != "dup"}
                self._remember(rid, clean)
                self._reply(wrec["client"], clean)
            if not wrec["waiting"]:
                del self.wrecs[rid]
        elif rid in self.rrecs and self.rrecs[rid]["backend"] == index:
            rrec = self.rrecs.pop(rid)
            self._reply(rrec["client"], response)
        if flavor == "sync_ping":
            self._start_replay(index)

    # -- admin plane -----------------------------------------------------

    def _handle_admin(self, fd: int, op: str, request: dict) -> None:
        rid = request.get("rid")
        if op == "admin.status":
            self._reply(fd, {"ok": True, "rid": rid,
                             "seq": self.seq,
                             "committed_seq": self.committed_seq,
                             "pending": len(self.pending),
                             "counters": self.counters(),
                             "backends": [self._backend_view(backend)
                                          for backend in self.backends]})
            return
        index = request.get("backend")
        if not isinstance(index, int) or \
                not 0 <= index < len(self.backends):
            self._reply(fd, {"ok": False, "code": 400,
                             "error": "bad backend", "rid": rid})
            return
        backend = self.backends[index]
        if op == "admin.drain":
            backend["drained"] = True
            self._reply(fd, {"ok": True, "rid": rid,
                             "outstanding": backend["outstanding"]})
        elif op == "admin.undrain":
            backend["drained"] = False
            if backend["state"] == "up" and \
                    backend["acked_seq"] < self.seq:
                backend["state"] = "syncing"
                self._maybe_promote(index)
            self._reply(fd, {"ok": True, "rid": rid,
                             "state": backend["state"]})
        elif op == "admin.probe":
            if rid is None:
                rid = f"i{self.auto_rid}"
                self.auto_rid += 1
            if backend["fd"] is None or backend["state"] not in ATTACHED:
                self._reply(fd, {"ok": False, "code": 503,
                                 "error": "backend-unavailable",
                                 "rid": rid})
                return
            probe = {"op": "get", "key": request["key"], "rid": rid}
            self.rrecs[rid] = {"client": fd, "backend": index,
                               "request": probe, "pinned": True}
            backend["inflight"][rid] = "read"
            backend["outstanding"] += 1
            backend["tx"] += encode(probe)
        elif op == "admin.reset":
            self._backend_down(index, reset=True)
            self._reply(fd, {"ok": True, "rid": rid})
        else:
            self._reply(fd, {"ok": False, "code": 400,
                             "error": f"bad op {op!r}", "rid": rid})

    def _backend_view(self, backend: dict) -> dict:
        return {"ip": backend["ip"], "state": backend["state"],
                "drained": backend["drained"],
                "outstanding": backend["outstanding"],
                "acked_seq": backend["acked_seq"]}

    def counters(self) -> dict:
        return {"clients_accepted": self.clients_accepted,
                "writes": self.writes, "reads": self.reads,
                "sheds": self.sheds, "dups_served": self.dups_served,
                "rehomed": self.rehomed,
                "redispatched": self.redispatched,
                "backend_downs": self.backend_downs,
                "backend_reconnects": self.backend_reconnects,
                "promotions": self.promotions,
                "sync_replays": self.sync_replays,
                "wlog_gaps": self.wlog_gaps}

    def phase_finish(self, result):
        return Exit(0)
