"""``repro bench migration``: pre-copy vs stop-and-copy pause windows.

Runs the fig5-sized slm workload (100 MB per rank) and migrates one pod
mid-run under both modes, on otherwise identical fresh clusters:

* ``stop_and_copy`` — the legacy baseline: the pod is isolated behind
  the netfilter drop rule for the whole migration, so the
  client-visible pause is the full image write plus the full image
  read (~1.7 s at fig5 scale);
* ``precopy`` — the live path: iterative incremental rounds stream the
  image (and the target prefetches it) while the pod keeps running;
  the pause covers only the final dirty delta plus the cold remainder.

Both runs must finish the application bit-exact against the analytic
reference — the migration is only "transparent" if the answer is the
answer. The pre-copy run is repeated under the LIFO event tie-break and
diffed field-for-field against FIFO, so the benchmark doubles as a
determinism probe for the whole migration path.

``--save`` records the run to ``benchmarks/BENCH_migration.json``;
``--compare`` re-runs and fails when the pause ratio exceeds the
explicit floor (pause < 25% of stop-and-copy), pre-copy needs more than
5 rounds to converge, the tie-break runs diverge, or — when the
workload matches the committed baseline — the measured ratio drifts
above the baseline's by more than the tolerance. All quantities are
simulated seconds, so they travel across machines.
"""

from __future__ import annotations

from typing import Dict, List, Optional

DEFAULT_BASELINE = "benchmarks/BENCH_migration.json"
#: The headline floor: client-visible pause under pre-copy must be
#: below this fraction of the stop-and-copy pause on the same workload.
DEFAULT_MAX_PAUSE_RATIO = 0.25
#: Pre-copy must converge (dirty bytes under threshold) within this
#: many rounds on the fig5 workload.
DEFAULT_MAX_ROUNDS = 5
#: Allowed relative drift above the committed baseline's pause ratio.
DEFAULT_TOLERANCE = 0.25


def run_mode(live: bool,
             seed: int = 7,
             app_nodes: int = 3,
             ranks: int = 2,
             steps: int = 200,
             rows_per_rank: int = 4,
             cols: int = 16,
             total_work_s: float = 20.0,
             memory_mb_per_rank: float = 100.0,
             migrate_at: float = 1.0,
             pod_rank: int = 0,
             target_node_index: Optional[int] = None,
             tiebreak: str = "fifo",
             limit_s: float = 120.0) -> Dict[str, object]:
    """One migration on a fresh cluster; returns its measurements.

    Launches the slm app, lets it reach steady state, migrates rank
    ``pod_rank``'s pod to ``target_node_index`` (default: the last
    application node, which the default placement leaves empty), then
    runs the app to completion and verifies the final field bit-exact.
    """
    import hashlib

    import numpy as np

    from repro.analysis.determinism import state_hash
    from repro.apps.slm import reference_solution, slm_factory
    from repro.cruz.cluster import CruzCluster

    rows = rows_per_rank * ranks
    cluster = CruzCluster(app_nodes, seed=seed, sanitize=True,
                          tiebreak=tiebreak)
    app = cluster.launch_app_factory(
        "slm", ranks,
        slm_factory(ranks, global_rows=rows, cols=cols, steps=steps,
                    total_work_s=total_work_s,
                    memory_mb_per_rank=memory_mb_per_rank))
    if target_node_index is None:
        target_node_index = app_nodes - 1
    cluster.run_for(migrate_at)
    pod = app.pods[pod_rank]
    source_node = pod.node.name
    cluster.migrate_pod(pod, target_node_index, live=live)
    report = cluster.last_migration

    def done() -> bool:
        programs = cluster.app_programs(app)
        return (len(programs) == ranks
                and all(p.step_count >= steps for p in programs))

    cluster.run_until(done, limit=limit_s)
    cluster.run_for(0.2)  # drain retransmits and trailing ACKs

    programs = sorted(cluster.app_programs(app), key=lambda p: p.rank)
    final = np.vstack([p.q for p in programs])
    expected = reference_solution(rows, cols, steps)
    sanitizer = cluster.trace.sanitizer
    sanitizer.check_store(cluster.store, time=cluster.sim.now,
                          context="final", deep=True)
    return {
        "mode": report.mode,
        "tiebreak": tiebreak,
        "source_node": source_node,
        "target_node": report.target_node,
        "pause_window_s": report.pause_window_s,
        "precopy_rounds": report.precopy_rounds,
        "converged": report.converged,
        "warm_bytes": report.warm_bytes,
        "total_bytes_moved": report.total_bytes_moved,
        "rounds": [dict(entry) for entry in report.to_dict()["rounds"]],
        "sim_time_s": round(cluster.sim.now, 9),
        "output_correct": bool(np.array_equal(final, expected)),
        "field_hash": hashlib.sha256(
            np.ascontiguousarray(final).tobytes()).hexdigest(),
        "state_hash": state_hash(cluster),
        "sanitizer_violations": len(sanitizer.violations),
    }


def run_suite(seed: int = 7,
              app_nodes: int = 3,
              ranks: int = 2,
              steps: int = 200,
              rows_per_rank: int = 4,
              cols: int = 16,
              total_work_s: float = 20.0,
              memory_mb_per_rank: float = 100.0,
              migrate_at: float = 1.0) -> Dict[str, object]:
    """Both modes on identical workloads, plus the tie-break probe."""
    from repro.analysis.determinism import _diff

    workload = {
        "seed": seed, "app_nodes": app_nodes, "ranks": ranks,
        "steps": steps, "rows_per_rank": rows_per_rank, "cols": cols,
        "total_work_s": total_work_s,
        "memory_mb_per_rank": memory_mb_per_rank,
        "migrate_at": migrate_at,
    }
    results = {}
    for label, kwargs in (
            ("stop_and_copy", {"live": False}),
            ("precopy", {"live": True}),
            ("precopy_lifo", {"live": True, "tiebreak": "lifo"})):
        print(f"migration: {label} "
              f"({memory_mb_per_rank:.0f} MB/rank, {ranks} ranks)...",
              flush=True)
        results[label] = run_mode(**dict(workload, **kwargs))
    divergences: List[str] = []
    _diff(results["precopy"], results["precopy_lifo"], "migration",
          divergences)
    # The tie-break axis itself is the one field allowed to differ.
    divergences = [d for d in divergences if "tiebreak" not in d]
    stop_pause = float(results["stop_and_copy"]["pause_window_s"])
    pre_pause = float(results["precopy"]["pause_window_s"])
    ratio = pre_pause / stop_pause if stop_pause > 0 else float("inf")
    return {
        "suite": "migration",
        "workload": workload,
        "stop_and_copy": results["stop_and_copy"],
        "precopy": results["precopy"],
        "pause_ratio": round(ratio, 6),
        "precopy_rounds": results["precopy"]["precopy_rounds"],
        "divergences": divergences,
    }


def render(report: Dict[str, object]) -> List[str]:
    stop = report["stop_and_copy"]
    pre = report["precopy"]
    lines = [
        f"stop-and-copy: pause={stop['pause_window_s'] * 1e3:9.3f}ms  "
        f"moved={stop['total_bytes_moved'] / 1e6:7.2f}MB  "
        f"correct={stop['output_correct']}",
        f"pre-copy:      pause={pre['pause_window_s'] * 1e3:9.3f}ms  "
        f"moved={pre['total_bytes_moved'] / 1e6:7.2f}MB  "
        f"rounds={pre['precopy_rounds']} converged={pre['converged']} "
        f"warm={pre['warm_bytes'] / 1e6:.2f}MB "
        f"correct={pre['output_correct']}",
    ]
    for entry in pre["rounds"]:
        lines.append(
            f"  round {entry['index']}: "
            f"dirty={entry['dirty_bytes_before'] / 1e6:7.2f}MB "
            f"wrote={entry['written_bytes'] / 1e6:7.2f}MB "
            f"stop={entry['stop_s'] * 1e3:.3f}ms "
            f"took={entry['round_s'] * 1e3:.3f}ms")
    lines.append(
        f"pause ratio: {report['pause_ratio']:.4f} "
        f"(floor {DEFAULT_MAX_PAUSE_RATIO})")
    if report["divergences"]:
        lines.append(f"tie-break divergences: {report['divergences']}")
    else:
        lines.append("tie-break: fifo and lifo runs are bit-identical")
    return lines


def evaluate(report: Dict[str, object],
             baseline: Optional[Dict[str, object]],
             max_pause_ratio: float = DEFAULT_MAX_PAUSE_RATIO,
             max_rounds: int = DEFAULT_MAX_ROUNDS,
             tolerance: float = DEFAULT_TOLERANCE) -> List[str]:
    """Pure comparison: list of failure messages (empty = pass)."""
    failures = []
    for label in ("stop_and_copy", "precopy"):
        row = report[label]
        if not row["output_correct"]:
            failures.append(f"{label}: final field is not bit-exact")
        if row["sanitizer_violations"]:
            failures.append(
                f"{label}: {row['sanitizer_violations']} sanitizer "
                f"violation(s)")
    ratio = float(report["pause_ratio"])
    if ratio >= max_pause_ratio:
        failures.append(
            f"pre-copy pause is {ratio:.2%} of stop-and-copy "
            f"(floor {max_pause_ratio:.0%})")
    if not report["precopy"]["converged"]:
        failures.append("pre-copy did not converge below the dirty "
                        "threshold")
    rounds = int(report["precopy_rounds"])
    if rounds > max_rounds:
        failures.append(
            f"pre-copy took {rounds} rounds (limit {max_rounds})")
    if report["divergences"]:
        failures.append(
            f"fifo/lifo divergence: {report['divergences'][:3]}")
    from repro.bench.harness import workload_matches

    if workload_matches(report, baseline, "migration"):
        recorded = float(baseline.get("pause_ratio", 0.0))
        ceiling = recorded * (1.0 + tolerance)
        if recorded > 0 and ratio > ceiling:
            failures.append(
                f"pause ratio {ratio:.4f} drifted more than "
                f"{tolerance:.0%} above the committed baseline's "
                f"{recorded:.4f}")
    return failures


def save_baseline(baseline_path: str = DEFAULT_BASELINE,
                  **workload) -> int:
    from repro.bench.harness import baseline_cli
    return baseline_cli(
        baseline_path=baseline_path, save=True, suite="migration",
        run=lambda: run_suite(**workload),
        evaluate=evaluate,
        render=lambda report, _baseline: render(report),
        vet_before_save=True)


def check(baseline_path: str = DEFAULT_BASELINE,
          max_pause_ratio: float = DEFAULT_MAX_PAUSE_RATIO,
          max_rounds: int = DEFAULT_MAX_ROUNDS,
          tolerance: float = DEFAULT_TOLERANCE,
          **workload) -> int:
    from repro.bench.harness import baseline_cli
    return baseline_cli(
        baseline_path=baseline_path, save=False, suite="migration",
        run=lambda: run_suite(**workload),
        evaluate=lambda report, baseline: evaluate(
            report, baseline, max_pause_ratio=max_pause_ratio,
            max_rounds=max_rounds, tolerance=tolerance),
        render=lambda report, _baseline: render(report))
