"""Socket kernel objects bridging the syscall layer to TCP/UDP.

The TCP socket carries the *alternate buffer* of §4.1: on restart, Cruz
parks the checkpointed receive-buffer bytes here, outside TCP, and the
interposed ``recv`` drains it before touching the real receive buffer. When
every socket's alternate buffer is empty the interception is dropped (a
plain flag here; the Zap layer flips it).
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.errors import SyscallError
from repro.net.addresses import ANY_IP, Ipv4Address
from repro.sim.core import Simulator
from repro.simos.files import KernelObject, WouldBlock
from repro.simos.netstack import NetworkStack
from repro.simos.syscalls import (
    MSG_PEEK,
    SO_CORK,
    SO_KEEPALIVE,
    SO_NODELAY,
    SO_RCVBUF,
    SO_REUSEADDR,
    SO_SNDBUF,
)
from repro.tcp.connection import TcpConnection
from repro.tcp.options import SocketOptions
from repro.tcp.stack import Listener


class TcpSocket(KernelObject):
    """A stream socket in one of: fresh, bound, listening, connected."""

    kind = "tcp_socket"

    def __init__(self, sim: Simulator, stack: NetworkStack):
        super().__init__(sim)
        self.stack = stack
        self.options = SocketOptions()
        self.bound: Optional[Tuple[Ipv4Address, int]] = None
        self.listener: Optional[Listener] = None
        self.connection: Optional[TcpConnection] = None
        self.closed = False
        #: §4.1 alternate buffer: restored receive data delivered first.
        self.alternate = bytearray()
        self.recv_intercepted = False

    # -- state transitions ------------------------------------------------

    def bind(self, ip: Ipv4Address, port: int) -> None:
        if self.bound is not None:
            raise SyscallError("EINVAL", "socket already bound")
        self.bound = (ip, port)

    def listen(self, backlog: int) -> None:
        if self.listener is not None or self.connection is not None:
            raise SyscallError("EINVAL", "socket busy")
        if self.bound is None:
            raise SyscallError("EINVAL", "listen before bind")
        ip, port = self.bound
        self.listener = self.stack.tcp.listen(
            ip, port, backlog=backlog, options=self.options)

    def start_connect(self, remote_ip: Ipv4Address,
                      remote_port: int) -> TcpConnection:
        if self.connection is not None:
            raise SyscallError("EISCONN", "socket already connected")
        local_ip, local_port = self.bound if self.bound is not None \
            else (ANY_IP, None)
        if local_ip == ANY_IP:
            iface = self.stack.eth0
            if iface.ip is None:
                raise SyscallError("EADDRNOTAVAIL", "node has no address")
            local_ip = iface.ip
        self.connection = self.stack.tcp.connect(
            local_ip, remote_ip, remote_port,
            local_port=local_port if local_port else None,
            options=self.options)
        self._wire_connection()
        return self.connection

    def adopt(self, connection: TcpConnection) -> None:
        """Wrap an accepted or restored connection."""
        self.connection = connection
        self.bound = (connection.tcb.local_ip, connection.tcb.local_port)
        self.options = connection.tcb.options
        self._wire_connection()

    def _wire_connection(self) -> None:
        self.connection.on_readable.append(self.wake_readers)
        self.connection.on_writable.append(self.wake_writers)

        def on_close():
            self.wake_readers()
            self.wake_writers()

        self.connection.on_close.append(on_close)

    # -- data path -------------------------------------------------------

    def send(self, data: bytes) -> int:
        conn = self._require_connection()
        accepted = conn.send(data)
        if accepted == 0:
            raise WouldBlock
        return accepted

    def recv(self, max_bytes: int, flags: int = 0) -> bytes:
        """The interposable receive path.

        Order per §4.1: drain the alternate buffer first; fall through to
        the real receive buffer only when it is empty.
        """
        peek = bool(flags & MSG_PEEK)
        if self.alternate:
            chunk = bytes(self.alternate[:max_bytes])
            if not peek:
                del self.alternate[:len(chunk)]
                if not self.alternate:
                    # "the interception of the socket read system call is
                    # removed when the alternate buffers ... become empty"
                    self.recv_intercepted = False
            # A checkpoint taken now must concatenate alternate + TCP
            # buffers; recv never mixes them in one call (keeps ordering).
            return chunk
        conn = self._require_connection()
        chunk = conn.read(max_bytes, peek=peek)
        if chunk:
            return chunk
        if conn.peer_closed or conn.state.value in ("CLOSED", "TIME_WAIT"):
            return b""
        raise WouldBlock

    def recv_available(self) -> int:
        conn = self.connection
        backlog = len(self.alternate)
        if conn is not None:
            backlog += conn.available
        return backlog

    def close(self) -> None:
        if self.closed:
            return
        self.closed = True
        if self.listener is not None:
            self.listener.close()
        if self.connection is not None:
            self.connection.close()
        self.wake_readers()
        self.wake_writers()

    # -- options -----------------------------------------------------------

    _OPTION_FIELDS = {
        SO_NODELAY: ("nagle_enabled", True),   # inverted
        SO_CORK: ("cork", False),
        SO_SNDBUF: ("send_buffer_bytes", False),
        SO_RCVBUF: ("recv_buffer_bytes", False),
        SO_KEEPALIVE: ("keepalive", False),
        SO_REUSEADDR: ("reuse_addr", False),
    }

    def set_option(self, option: str, value) -> None:
        field_info = self._OPTION_FIELDS.get(option)
        if field_info is None:
            raise SyscallError("ENOPROTOOPT", option)
        field, inverted = field_info
        if inverted:
            value = not value
        self.options = self.options.set(**{field: value})
        if self.connection is not None:
            self.connection.tcb.options = \
                self.connection.tcb.options.set(**{field: value})
            if option in (SO_NODELAY, SO_CORK):
                self.connection._output()  # flush anything Nagle/CORK held
            if option == SO_KEEPALIVE and value:
                self.connection.start_keepalive()

    def get_option(self, option: str):
        field_info = self._OPTION_FIELDS.get(option)
        if field_info is None:
            raise SyscallError("ENOPROTOOPT", option)
        field, inverted = field_info
        options = self.connection.tcb.options if self.connection is not None \
            else self.options
        value = getattr(options, field)
        return (not value) if inverted else value

    def _require_connection(self) -> TcpConnection:
        if self.connection is None:
            raise SyscallError("ENOTCONN", "socket not connected")
        return self.connection


class UdpSocket(KernelObject):
    """A datagram socket."""

    kind = "udp_socket"

    def __init__(self, sim: Simulator, stack: NetworkStack):
        super().__init__(sim)
        self.stack = stack
        self.bound: Optional[Tuple[Ipv4Address, int]] = None
        self.queue = []
        self.closed = False

    def bind(self, ip: Ipv4Address, port: int) -> None:
        if self.bound is not None:
            raise SyscallError("EINVAL", "socket already bound")
        self.stack.udp.bind(port, self._on_datagram)
        self.bound = (ip, port)

    def _on_datagram(self, payload, src_ip, src_port, dst_ip) -> None:
        self.queue.append((payload, src_ip, src_port))
        self.wake_readers()

    def sendto(self, payload, dst_ip: Ipv4Address, dst_port: int,
               src_ip: Optional[Ipv4Address] = None,
               payload_size: Optional[int] = None) -> None:
        if src_ip is None:
            src_ip = self.bound[0] if self.bound is not None else ANY_IP
        src_port = self.bound[1] if self.bound is not None else 0
        self.stack.udp.send(src_ip, src_port, dst_ip, dst_port, payload,
                            payload_size=payload_size)

    def recvfrom(self):
        if not self.queue:
            raise WouldBlock
        return self.queue.pop(0)

    def close(self) -> None:
        if self.closed:
            return
        self.closed = True
        if self.bound is not None:
            self.stack.udp.unbind(self.bound[1])
        self.wake_readers()
