"""The per-node kernel: processes, syscall dispatch, scheduling.

A :class:`Node` owns one :class:`~repro.simos.netstack.NetworkStack`, an IPC
namespace, a CPU pool, and a process table. Application programs run as
explicit state machines; the kernel drives each through a simulation
coroutine that executes its syscalls, blocking on events where Unix would
block.

The Zap layer hooks in through ``interposer_for``: if the owning pod
provides an interposer, every syscall is passed through it for rewriting
(bind/connect/ioctl, §4.2) and every result for translation (virtual PIDs).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Generator, Optional, Union

from repro.errors import SyscallError
from repro.net.addresses import ANY_IP, Ipv4Address
from repro.net.nic import Nic
from repro.sim.core import Interrupt, SimProcess, Simulator
from repro.sim.resources import Resource
from repro.sim.trace import Trace
from repro.simos.costs import CostModel, DEFAULT_COSTS
from repro.simos.files import (
    Descriptor,
    Pipe,
    RegularFile,
    WouldBlock,
)
from repro.simos.filesystem import SharedFileSystem
from repro.simos.ipc import IpcNamespace
from repro.simos.netstack import NetworkStack
from repro.simos.process import (
    ProcessControlBlock,
    ProcessState,
    SIGKILL,
)
from repro.simos.program import Program
from repro.simos.sockets import TcpSocket, UdpSocket
from repro.tcp.state import SYNCHRONISED_STATES, TcpState
from repro.simos.syscalls import (
    Exit,
    MSG_DONTWAIT,
    SIOCGIFHWADDR,
    Syscall,
)


def as_ip(value: Union[str, Ipv4Address, None]) -> Ipv4Address:
    if value is None:
        return ANY_IP
    if isinstance(value, Ipv4Address):
        return value
    return Ipv4Address.parse(value)


class SyscallInterposer:
    """Interface the Zap layer implements to wrap the syscall table."""

    def rewrite(self, proc: ProcessControlBlock,
                call: Syscall) -> Syscall:
        return call

    def translate_result(self, proc: ProcessControlBlock, call: Syscall,
                         result: Any) -> Any:
        return result


class Node:
    """One machine of the cluster."""

    def __init__(self, sim: Simulator, name: str, nic: Nic,
                 fs: SharedFileSystem, costs: CostModel = DEFAULT_COSTS,
                 trace: Optional[Trace] = None, cpus: int = 2,
                 time_wait_s: float = 60.0, iss_seed: int = 1):
        self.sim = sim
        self.name = name
        self.fs = fs
        self.costs = costs
        self.trace = trace if trace is not None else Trace(enabled=False)
        self.stack = NetworkStack(sim, name, nic, time_wait_s=time_wait_s,
                                  iss_seed=iss_seed)
        # TCP connections report retransmit/drain telemetry into the
        # node's trace hub (spans + typed metrics).
        self.stack.tcp.telemetry = self.trace
        self.ipc = IpcNamespace(sim)
        self.cpu = Resource(sim, cpus, name=f"{name}.cpu")
        self.processes: Dict[int, ProcessControlBlock] = {}
        self._next_pid = 1
        self._tasks: Dict[int, SimProcess] = {}
        self._handlers: Dict[str, Callable] = {
            name[len("_sys_"):]: getattr(self, name)
            for name in dir(self) if name.startswith("_sys_")}
        #: pod_id -> interposer; registered by the Zap layer.
        self.interposers: Dict[int, SyscallInterposer] = {}

    # ------------------------------------------------------------------
    # Process management
    # ------------------------------------------------------------------

    def allocate_pid(self) -> int:
        pid = self._next_pid
        self._next_pid += 1
        return pid

    def reserve_pid(self, pid: int) -> None:
        """Force the allocator past ``pid`` (used by tests simulating
        pid-collision scenarios)."""
        self._next_pid = max(self._next_pid, pid + 1)

    def spawn(self, program: Program, name: str = "", pod=None,
              ppid: int = 0, pid: Optional[int] = None,
              resume_syscall: Optional[Syscall] = None,
              tgid: Optional[int] = None) -> ProcessControlBlock:
        """Create a process and start running it."""
        if pid is None:
            pid = self.allocate_pid()
        elif pid in self.processes:
            raise SyscallError("EEXIST", f"pid {pid} in use")
        else:
            self.reserve_pid(pid)
        proc = ProcessControlBlock(self.sim, pid, program, name=name,
                                   ppid=ppid, tgid=tgid)
        proc.resume_syscall = resume_syscall
        if pod is not None:
            proc.pod = pod
        self.processes[pid] = proc
        task = self.sim.process(self._loop(proc), name=f"{self.name}:pid"
                                                       f"{pid}")
        self._tasks[pid] = task
        return proc

    def kill(self, pid: int, sig: str) -> None:
        proc = self.processes.get(pid)
        if proc is None:
            raise SyscallError("ESRCH", f"pid {pid}")
        self.sim.call_later(self.costs.signal_delivery,
                            self._deliver_signal, proc, sig)

    def signal_now(self, pid: int, sig: str) -> None:
        """Immediate (same-instant) signal delivery, used by the kernel
        itself (e.g. the checkpoint path stopping a pod)."""
        proc = self.processes.get(pid)
        if proc is None:
            raise SyscallError("ESRCH", f"pid {pid}")
        self._deliver_signal(proc, sig)

    def _deliver_signal(self, proc: ProcessControlBlock, sig: str) -> None:
        proc.signal(sig)
        if sig in (SIGKILL, "SIGTERM"):
            task = self._tasks.get(proc.pid)
            if task is not None and task.is_alive:
                task.interrupt("killed")

    def reap(self, pid: int) -> None:
        """Remove a zombie (or force-remove any process record)."""
        proc = self.processes.pop(pid, None)
        self._tasks.pop(pid, None)
        if proc is not None and proc.exit_code is None:
            proc.mark_exited(-9)

    def interposer_for(
            self, proc: ProcessControlBlock) -> Optional[SyscallInterposer]:
        if proc.pod is None:
            return None
        return self.interposers.get(proc.pod.pod_id)

    # ------------------------------------------------------------------
    # The process execution loop
    # ------------------------------------------------------------------

    def _stop_gate(self, proc: ProcessControlBlock) -> Generator:
        while proc.stopped and not proc.killed:
            proc.state = ProcessState.STOPPED
            yield proc.wait_continue()
        if not proc.killed:
            proc.state = ProcessState.RUNNABLE

    def _loop(self, proc: ProcessControlBlock) -> Generator:
        result: Any = proc.initial_result
        call: Optional[Syscall] = proc.resume_syscall
        proc.resume_syscall = None
        exit_code = 0
        try:
            while True:
                yield from self._stop_gate(proc)
                if proc.killed:
                    exit_code = -9
                    break
                if call is None:
                    try:
                        step = proc.program.step(result)
                    except Exception as exc:  # noqa: BLE001 - app crash
                        # An application bug kills the process, not the
                        # node (the kernel survives a segfault).
                        proc.crash_exception = exc
                        self.trace.emit(
                            self.sim.now, "proc_crash", node=self.name,
                            pid=proc.pid, error=repr(exc))
                        exit_code = -11  # SIGSEGV-style
                        break
                    if isinstance(step, Exit):
                        exit_code = step.code
                        break
                    call = step
                proc.current_syscall = call
                proc.syscall_count += 1
                try:
                    result = yield from self._execute(proc, call)
                except SyscallError as err:
                    result = err
                proc.current_syscall = None
                call = None
        except Interrupt:
            exit_code = -9
        finally:
            self._cleanup(proc)
            if self.trace.sanitizer is not None:
                self.trace.sanitizer.check_process_exit(
                    self.name, proc, time=self.sim.now)
        proc.mark_exited(exit_code)
        return exit_code

    def _cleanup(self, proc: ProcessControlBlock) -> None:
        for fd in proc.fds.fds():
            try:
                self._close_descriptor(proc.fds.remove(fd))
            except SyscallError:  # cruz: noqa[CRZ003]
                # Teardown double-close (e.g. both pipe ends already
                # gone) is benign; the descriptor was removed above.
                pass

    def _close_descriptor(self, descriptor: Descriptor) -> None:
        obj = descriptor.obj
        if isinstance(obj, Pipe):
            if "r" in descriptor.mode:
                obj.close_side("r")
            if "w" in descriptor.mode:
                obj.close_side("w")
        elif isinstance(obj, (TcpSocket, UdpSocket)):
            obj.close()

    def _execute(self, proc: ProcessControlBlock,
                 call: Syscall) -> Generator:
        interposer = self.interposer_for(proc)
        if interposer is not None:
            call = interposer.rewrite(proc, call)
        handler = self._handlers.get(call.name)
        if handler is None:
            raise SyscallError("ENOSYS", call.name)
        cost = self.costs.syscall_time
        if interposer is not None:
            cost += self.costs.pod_syscall_overhead
        yield self.sim.timeout(cost)
        result = yield from handler(proc, call)
        if interposer is not None:
            result = interposer.translate_result(proc, call, result)
        return result

    def _blocking(self, proc: ProcessControlBlock, attempt: Callable,
                  wait: Callable) -> Generator:
        """Run ``attempt`` until it stops raising WouldBlock."""
        while True:
            try:
                return attempt()
            except WouldBlock:
                proc.state = ProcessState.BLOCKED
                yield wait()
                yield from self._stop_gate(proc)
                if proc.killed:
                    raise SyscallError("EINTR", "killed")

    # ------------------------------------------------------------------
    # fd helpers
    # ------------------------------------------------------------------

    def _descriptor(self, proc: ProcessControlBlock, fd: int) -> Descriptor:
        return proc.fds.get(fd)

    def _tcp_socket(self, proc: ProcessControlBlock, fd: int) -> TcpSocket:
        obj = self._descriptor(proc, fd).obj
        if not isinstance(obj, TcpSocket):
            raise SyscallError("ENOTSOCK", f"fd {fd}")
        return obj

    def _udp_socket(self, proc: ProcessControlBlock, fd: int) -> UdpSocket:
        obj = self._descriptor(proc, fd).obj
        if not isinstance(obj, UdpSocket):
            raise SyscallError("ENOTSOCK", f"fd {fd}")
        return obj

    # ------------------------------------------------------------------
    # Syscall handlers. Each is a generator: ``yield`` to block, ``return``
    # the result.
    # ------------------------------------------------------------------

    # -- time & CPU ------------------------------------------------------

    def _sys_compute(self, proc, call) -> Generator:
        (seconds,) = call.args
        grant = self.cpu.request()
        try:
            yield grant
        except BaseException:
            # Killed while queued for a CPU: withdraw the request so the
            # slot is never granted to a dead process.
            self.cpu.cancel(grant)
            raise
        try:
            yield self.sim.timeout(seconds)
        finally:
            self.cpu.release()
        proc.cpu_seconds += seconds
        return None

    def _sys_sleep(self, proc, call) -> Generator:
        (seconds,) = call.args
        yield self.sim.timeout(seconds)
        return None

    def _sys_gettime(self, proc, call) -> Generator:
        return self.sim.now
        yield  # pragma: no cover - makes this a generator

    # -- identity ----------------------------------------------------------

    def _sys_getpid(self, proc, call) -> Generator:
        return proc.pid
        yield  # pragma: no cover

    def _sys_getppid(self, proc, call) -> Generator:
        return proc.ppid
        yield  # pragma: no cover

    # -- process control ---------------------------------------------------

    def _sys_spawn(self, proc, call) -> Generator:
        (program,) = call.args
        name = call.kwargs.get("name", "")
        child = self.spawn(program, name=name, pod=proc.pod,
                           ppid=proc.pid)
        for fd in call.kwargs.get("inherit_fds", ()):
            descriptor = proc.fds.get(fd)
            child.fds.install_at(
                fd, Descriptor(descriptor.obj, descriptor.mode))
            if isinstance(descriptor.obj, Pipe):
                if "r" in descriptor.mode:
                    descriptor.obj.readers += 1
                if "w" in descriptor.mode:
                    descriptor.obj.writers += 1
        if proc.pod is not None:
            proc.pod.adopt(child)
        return child.pid
        yield  # pragma: no cover

    def _sys_fork(self, proc, call) -> Generator:
        """fork() — duplicate the calling process.

        The parent's step receives ``("parent", child_pid)``; the child —
        a deep copy of the program, memory accounting and descriptor
        table — receives ``("child", 0)`` as its first result. Sockets
        and pipes are shared objects, as on Unix.
        """
        import copy
        child_program = copy.deepcopy(proc.program)
        child = self.spawn(child_program, name=proc.name, pod=proc.pod,
                           ppid=proc.pid)
        child.initial_result = ("child", 0)
        child.memory = proc.memory.snapshot()
        for fd, descriptor in proc.fds.items():
            child.fds.install_at(
                fd, Descriptor(descriptor.obj, descriptor.mode))
            if isinstance(descriptor.obj, Pipe):
                if "r" in descriptor.mode:
                    descriptor.obj.readers += 1
                if "w" in descriptor.mode:
                    descriptor.obj.writers += 1
        if proc.pod is not None:
            proc.pod.adopt(child)
        return ("parent", child.pid)
        yield  # pragma: no cover

    def _sys_kill(self, proc, call) -> Generator:
        pid, sig = call.args
        self.kill(pid, sig)
        return None
        yield  # pragma: no cover

    def _sys_waitpid(self, proc, call) -> Generator:
        (pid,) = call.args
        target = self.processes.get(pid)
        if target is None:
            raise SyscallError("ECHILD", f"pid {pid}")
        code = yield target.exit_event
        return code

    def _sys_log(self, proc, call) -> Generator:
        (message,) = call.args
        self.trace.emit(self.sim.now, "app", node=self.name,
                        pid=proc.pid, message=message,
                        **call.kwargs)
        return None
        yield  # pragma: no cover

    # -- memory accounting ---------------------------------------------------

    def _sys_mmap(self, proc, call) -> Generator:
        name, nbytes = call.args
        proc.memory.allocate(name, nbytes)
        return None
        yield  # pragma: no cover

    def _sys_munmap(self, proc, call) -> Generator:
        (name,) = call.args
        proc.memory.free(name)
        return None
        yield  # pragma: no cover

    def _sys_mtouch(self, proc, call) -> Generator:
        (name,) = call.args
        proc.memory.touch(name, call.kwargs.get("fraction", 1.0))
        return None
        yield  # pragma: no cover

    # -- pipes and files -----------------------------------------------------

    def _sys_pipe(self, proc, call) -> Generator:
        pipe = Pipe(self.sim)
        rfd = proc.fds.install(Descriptor(pipe, mode="r"))
        wfd = proc.fds.install(Descriptor(pipe, mode="w"))
        return (rfd, wfd)
        yield  # pragma: no cover

    def _sys_open(self, proc, call) -> Generator:
        path, mode = call.args
        regular = RegularFile(self.sim, self.fs, path, mode)
        return proc.fds.install(Descriptor(regular, mode=mode))
        yield  # pragma: no cover

    def _sys_read(self, proc, call) -> Generator:
        fd, nbytes = call.args
        descriptor = self._descriptor(proc, fd)
        obj = descriptor.obj
        if isinstance(obj, RegularFile):
            return obj.read(nbytes)
        if isinstance(obj, Pipe):
            if "r" not in descriptor.mode:
                raise SyscallError("EBADF", "not open for reading")
            result = yield from self._blocking(
                proc, lambda: obj.read(nbytes), obj.wait_readable)
            return result
        raise SyscallError("EBADF", f"fd {fd} not readable")

    def _sys_write(self, proc, call) -> Generator:
        fd, data = call.args
        descriptor = self._descriptor(proc, fd)
        obj = descriptor.obj
        if isinstance(obj, RegularFile):
            if data:
                # Stable-storage writes pay disk latency + bandwidth (the
                # message-logging baseline's overhead is exactly this).
                yield self.sim.timeout(
                    self.costs.disk_op_latency +
                    len(data) / self.costs.disk_write_bandwidth)
            return obj.write(data)
        if isinstance(obj, Pipe):
            if "w" not in descriptor.mode:
                raise SyscallError("EBADF", "not open for writing")
            result = yield from self._blocking(
                proc, lambda: obj.write(data), obj.wait_writable)
            return result
        raise SyscallError("EBADF", f"fd {fd} not writable")

    def _sys_seek(self, proc, call) -> Generator:
        fd, offset = call.args
        obj = self._descriptor(proc, fd).obj
        if not isinstance(obj, RegularFile):
            raise SyscallError("ESPIPE", f"fd {fd}")
        return obj.seek(offset)
        yield  # pragma: no cover

    def _sys_unlink(self, proc, call) -> Generator:
        (path,) = call.args
        self.fs.unlink(path)
        return None
        yield  # pragma: no cover

    def _sys_close(self, proc, call) -> Generator:
        (fd,) = call.args
        self._close_descriptor(proc.fds.remove(fd))
        return None
        yield  # pragma: no cover

    # -- sockets ---------------------------------------------------------

    def _sys_socket(self, proc, call) -> Generator:
        kind = call.args[0] if call.args else "tcp"
        if kind == "tcp":
            sock: Any = TcpSocket(self.sim, self.stack)
        elif kind == "udp":
            sock = UdpSocket(self.sim, self.stack)
        else:
            raise SyscallError("EINVAL", f"socket type {kind}")
        return proc.fds.install(Descriptor(sock))
        yield  # pragma: no cover

    def _sys_bind(self, proc, call) -> Generator:
        fd, ip, port = call.args
        obj = self._descriptor(proc, fd).obj
        if isinstance(obj, (TcpSocket, UdpSocket)):
            obj.bind(as_ip(ip), port)
            return None
        raise SyscallError("ENOTSOCK", f"fd {fd}")
        yield  # pragma: no cover

    def _sys_listen(self, proc, call) -> Generator:
        fd = call.args[0]
        backlog = call.args[1] if len(call.args) > 1 else 16
        self._tcp_socket(proc, fd).listen(backlog)
        return None
        yield  # pragma: no cover

    def _sys_accept(self, proc, call) -> Generator:
        (fd,) = call.args
        sock = self._tcp_socket(proc, fd)
        if sock.listener is None:
            raise SyscallError("EINVAL", "accept on non-listening socket")
        connection = yield sock.listener.accept()
        yield from self._stop_gate(proc)
        child = TcpSocket(self.sim, self.stack)
        child.adopt(connection)
        newfd = proc.fds.install(Descriptor(child))
        tcb = connection.tcb
        return (newfd, (str(tcb.remote_ip), tcb.remote_port))

    def _sys_connect(self, proc, call) -> Generator:
        fd, ip, port = call.args
        sock = self._tcp_socket(proc, fd)
        bind_ip = call.kwargs.get("bind_ip")
        if bind_ip is not None and sock.bound is None:
            # The Zap connect wrapper: "invokes bind prior to the original
            # function" so the socket originates from the pod's VIF (§4.2).
            local_ip = as_ip(bind_ip)
            sock.bind(local_ip, self.stack.tcp.allocate_port(local_ip))
        connection = sock.start_connect(as_ip(ip), port)
        if call.kwargs.get("nonblock"):
            # O_NONBLOCK connect: the handshake proceeds in the
            # background; the caller watches it with ``connstat`` (an
            # event-driven daemon must never stall its whole loop on one
            # peer's handshake timeout).
            return None
        try:
            yield connection.established_event
        except Exception as exc:  # refused (RST) or handshake timeout
            sock.connection = None
            raise SyscallError("ECONNREFUSED", str(exc))
        yield from self._stop_gate(proc)
        return None

    def _sys_connstat(self, proc, call) -> Generator:
        """connstat(fd) -> "connecting" | "established" | "failed".

        The SO_ERROR-after-nonblocking-connect idiom. A socket whose
        in-flight handshake was torn down (refused, handshake timeout, or
        a checkpoint/restore that scrubbed the embryo — an unsynchronised
        connection is restored as merely *bound*) reports "failed"; the
        caller closes the fd and retries with a fresh socket.
        """
        (fd,) = call.args
        sock = self._tcp_socket(proc, fd)
        connection = sock.connection
        if connection is None:
            return "failed"
        state = connection.tcb.state
        if state in SYNCHRONISED_STATES:
            return "established"
        if state in (TcpState.SYN_SENT, TcpState.SYN_RCVD):
            return "connecting"
        sock.connection = None  # CLOSED embryo: reusable after re-socket
        return "failed"
        yield  # pragma: no cover

    def _sys_send(self, proc, call) -> Generator:
        fd, data = call.args
        flags = call.kwargs.get("flags", 0)
        sock = self._tcp_socket(proc, fd)
        if flags & MSG_DONTWAIT:
            try:
                return sock.send(data)
            except WouldBlock:
                raise SyscallError("EAGAIN", "send would block")
        result = yield from self._blocking(
            proc, lambda: sock.send(data), sock.wait_writable)
        return result

    def _sys_recv(self, proc, call) -> Generator:
        fd, max_bytes = call.args
        flags = call.kwargs.get("flags", 0)
        sock = self._tcp_socket(proc, fd)
        if flags & MSG_DONTWAIT:
            try:
                return sock.recv(max_bytes, flags)
            except WouldBlock:
                raise SyscallError("EAGAIN", "recv would block")
        result = yield from self._blocking(
            proc, lambda: sock.recv(max_bytes, flags), sock.wait_readable)
        return result

    def _sys_sendto(self, proc, call) -> Generator:
        fd, payload, ip, port = call.args
        sock = self._udp_socket(proc, fd)
        sock.sendto(payload, as_ip(ip), port,
                    src_ip=call.kwargs.get("src_ip"),
                    payload_size=call.kwargs.get("size"))
        return None
        yield  # pragma: no cover

    def _sys_recvfrom(self, proc, call) -> Generator:
        (fd,) = call.args
        sock = self._udp_socket(proc, fd)
        result = yield from self._blocking(
            proc, sock.recvfrom, sock.wait_readable)
        payload, src_ip, src_port = result
        return (payload, str(src_ip), src_port)

    def _sys_poll(self, proc, call) -> Generator:
        """poll(fds, timeout=None) -> list of fds readable right now.

        A socket is "readable" when data (or a pending accept, or EOF)
        is available; a pipe when it has bytes or its writers are gone.
        ``timeout`` of None blocks until something is ready; a number
        bounds the wait (0 = pure poll).
        """
        (fds,) = call.args
        timeout = call.kwargs.get("timeout")

        def ready_now():
            ready = []
            for fd in fds:
                obj = self._descriptor(proc, fd).obj
                if isinstance(obj, TcpSocket):
                    if obj.recv_available() > 0:
                        ready.append(fd)
                    elif obj.listener is not None and \
                            obj.listener.accept_queue:
                        ready.append(fd)
                    elif obj.connection is not None and (
                            obj.connection.peer_closed or
                            obj.connection.state.value in
                            ("CLOSED", "TIME_WAIT")):
                        ready.append(fd)
                elif isinstance(obj, UdpSocket):
                    if obj.queue:
                        ready.append(fd)
                elif isinstance(obj, Pipe):
                    if obj.buffer or obj.writers == 0:
                        ready.append(fd)
            return ready

        deadline = None if timeout is None else self.sim.now + timeout
        while True:
            ready = ready_now()
            if ready:
                return ready
            if deadline is not None and self.sim.now >= deadline:
                return []
            proc.state = ProcessState.BLOCKED
            waiters = []
            for fd in fds:
                obj = self._descriptor(proc, fd).obj
                if isinstance(obj, TcpSocket) and obj.listener is not None:
                    waiters.append(obj.listener.wait_pending())
                waiters.append(obj.wait_readable())
            if deadline is not None:
                waiters.append(self.sim.timeout(
                    max(0.0, deadline - self.sim.now)))
            yield self.sim.any_of(waiters)
            yield from self._stop_gate(proc)
            if proc.killed:
                raise SyscallError("EINTR", "killed")

    def _sys_setsockopt(self, proc, call) -> Generator:
        fd, option, value = call.args
        self._tcp_socket(proc, fd).set_option(option, value)
        return None
        yield  # pragma: no cover

    def _sys_getsockopt(self, proc, call) -> Generator:
        fd, option = call.args
        return self._tcp_socket(proc, fd).get_option(option)
        yield  # pragma: no cover

    def _sys_getsockname(self, proc, call) -> Generator:
        (fd,) = call.args
        sock = self._tcp_socket(proc, fd)
        if sock.connection is not None:
            tcb = sock.connection.tcb
            return (str(tcb.local_ip), tcb.local_port)
        if sock.bound is not None:
            ip, port = sock.bound
            return (str(ip), port)
        raise SyscallError("EINVAL", "socket has no name")
        yield  # pragma: no cover

    def _sys_getpeername(self, proc, call) -> Generator:
        (fd,) = call.args
        sock = self._tcp_socket(proc, fd)
        if sock.connection is None:
            raise SyscallError("ENOTCONN", "no peer")
        tcb = sock.connection.tcb
        return (str(tcb.remote_ip), tcb.remote_port)
        yield  # pragma: no cover

    # -- SysV IPC ------------------------------------------------------------

    def _sys_shmget(self, proc, call) -> Generator:
        key, size = call.args
        return self.ipc.shmget(key, size)
        yield  # pragma: no cover

    def _sys_shm_write(self, proc, call) -> Generator:
        shmid, field, value = call.args
        self.ipc.shm_lookup(shmid).payload[field] = value
        return None
        yield  # pragma: no cover

    def _sys_shm_read(self, proc, call) -> Generator:
        shmid, field = call.args
        return self.ipc.shm_lookup(shmid).payload.get(field)
        yield  # pragma: no cover

    def _sys_semget(self, proc, call) -> Generator:
        key = call.args[0]
        initial = call.args[1] if len(call.args) > 1 else 0
        return self.ipc.semget(key, initial)
        yield  # pragma: no cover

    def _sys_semop(self, proc, call) -> Generator:
        semid, delta = call.args
        semaphore = self.ipc.sem_lookup(semid)
        if not semaphore.op(delta):
            proc.state = ProcessState.BLOCKED
            waiter = semaphore.wait_event(delta)
            try:
                yield waiter
            except BaseException:
                semaphore.cancel_wait(waiter)
                raise
            yield from self._stop_gate(proc)
        return None

    def on_pod_exit(self, pod) -> None:
        """Reclaim a departing pod's SysV IPC and run pod-exit checks.

        Pod-private shm/sem keys embed the pod id in their top bits
        (``key >> 32``), so everything the pod ever created is found
        here and released — segments must not outlive the pod (their
        contents live on in checkpoint images, and a restart re-creates
        them via ``restore_shm``/``restore_sem``). The sanitizer then
        verifies the pause/resume pairing and that nothing in the pod's
        key namespace survived.
        """
        for shmid in [segment.shmid for segment in self.ipc.shm.values()
                      if segment.key >> 32 == pod.pod_id]:
            self.ipc.shm_remove(shmid)
        for semid in [sem.semid for sem in self.ipc.sem.values()
                      if sem.key >> 32 == pod.pod_id]:
            self.ipc.sem_remove(semid)
        if self.trace.sanitizer is not None:
            self.trace.sanitizer.check_pod_exit(pod, time=self.sim.now)

    # -- device control --------------------------------------------------------

    def _sys_ioctl(self, proc, call) -> Generator:
        request, arg = call.args
        if request == SIOCGIFHWADDR:
            interface = self.stack.interfaces.get(arg)
            return interface.mac
        raise SyscallError("EINVAL", f"ioctl {request}")
        yield  # pragma: no cover

    def __repr__(self) -> str:
        return f"<Node {self.name} procs={len(self.processes)}>"
