"""Address Resolution Protocol.

One :class:`ArpService` per host network stack. It answers requests for any
IP the host currently owns (including pod VIF addresses) and supports
gratuitous announcements, which Cruz uses after migration to repoint the
subnet at the pod's new MAC/port (§4.2).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.net.addresses import BROADCAST_MAC, Ipv4Address, MacAddress
from repro.net.packet import (
    ARP_REPLY,
    ARP_REQUEST,
    ArpPacket,
    ETHERTYPE_ARP,
    EthernetFrame,
)
from repro.sim.core import Event, Simulator


class ArpService:
    """ARP cache + request/reply handling for one host."""

    def __init__(self, sim: Simulator,
                 send_frame: Callable[[EthernetFrame], None],
                 owned_addresses: Callable[[], Dict[Ipv4Address, MacAddress]],
                 request_timeout_s: float = 0.5):
        self.sim = sim
        self._send_frame = send_frame
        self._owned_addresses = owned_addresses
        self.request_timeout_s = request_timeout_s
        self.cache: Dict[Ipv4Address, MacAddress] = {}
        self._pending: Dict[Ipv4Address, List[Event]] = {}
        #: Bumped on every cache mutation; the network stack's route
        #: cache keys its validity on this (plus interface/netfilter
        #: versions), so gratuitous ARP after a migration invalidates
        #: stale cached routes immediately.
        self.version = 0

    def lookup(self, ip: Ipv4Address) -> Optional[MacAddress]:
        return self.cache.get(ip)

    def resolve(self, ip: Ipv4Address,
                source_mac: MacAddress,
                source_ip: Ipv4Address) -> Event:
        """Return an event that succeeds with the MAC for ``ip``.

        Fails with :class:`TimeoutError` if no reply arrives in time.
        """
        event = self.sim.event(name=f"arp({ip})")
        cached = self.cache.get(ip)
        if cached is not None:
            event.succeed(cached)
            return event
        waiters = self._pending.setdefault(ip, [])
        waiters.append(event)
        if len(waiters) == 1:
            request = ArpPacket(
                operation=ARP_REQUEST, sender_mac=source_mac,
                sender_ip=source_ip, target_mac=None, target_ip=ip)
            self._send_frame(EthernetFrame(
                src=source_mac, dst=BROADCAST_MAC,
                ethertype=ETHERTYPE_ARP, payload=request))
            self.sim.call_later(self.request_timeout_s, self._expire, ip)
        return event

    def _expire(self, ip: Ipv4Address) -> None:
        waiters = self._pending.pop(ip, [])
        for event in waiters:
            if not event.triggered:
                event.fail(TimeoutError(f"ARP timeout for {ip}"))

    def handle(self, packet: ArpPacket) -> None:
        """Process a received ARP packet (request or reply)."""
        # Learn the sender mapping opportunistically; this is also how
        # gratuitous ARP announcements take effect.
        self.cache[packet.sender_ip] = packet.sender_mac
        self.version += 1
        waiters = self._pending.pop(packet.sender_ip, [])
        for event in waiters:
            if not event.triggered:
                event.succeed(packet.sender_mac)
        if packet.operation != ARP_REQUEST:
            return
        owned = self._owned_addresses()
        mac = owned.get(packet.target_ip)
        if mac is None:
            return
        reply = ArpPacket(
            operation=ARP_REPLY, sender_mac=mac,
            sender_ip=packet.target_ip, target_mac=packet.sender_mac,
            target_ip=packet.sender_ip)
        self._send_frame(EthernetFrame(
            src=mac, dst=packet.sender_mac,
            ethertype=ETHERTYPE_ARP, payload=reply))

    def announce(self, ip: Ipv4Address, mac: MacAddress) -> None:
        """Send a gratuitous ARP so switches and caches re-learn ``ip``."""
        packet = ArpPacket(
            operation=ARP_REPLY, sender_mac=mac, sender_ip=ip,
            target_mac=BROADCAST_MAC, target_ip=ip)
        self._send_frame(EthernetFrame(
            src=mac, dst=BROADCAST_MAC,
            ethertype=ETHERTYPE_ARP, payload=packet))

    def evict(self, ip: Ipv4Address) -> None:
        self.cache.pop(ip, None)
        self.version += 1
