"""Single-pod restart from a checkpoint image.

Restart "re-creates these processes and restores their execution state,
mostly by invoking system calls. While the re-created OS resources have
different identifiers inside the operating system, Zap's virtualization
layer masks this difference" (§2) — so a pod restarts correctly even when
its old physical PIDs are taken on the target node.
"""

from __future__ import annotations

from typing import Dict, Generator, Optional

from repro.errors import CheckpointError
from repro.simos.files import Descriptor, Pipe, RegularFile
from repro.simos.kernel import Node
from repro.simos.process import SIGSTOP
from repro.zap.image import (
    CheckpointImage,
    FdImage,
    fetch_fraction,
    thaw_object,
)
from repro.zap.pod import Pod
from repro.zap.socket_codec import SocketCodec
from repro.zap.virtualization import install_pod


class RestartEngine:
    """Recreates pods from :class:`CheckpointImage` objects."""

    def __init__(self, codec: SocketCodec):
        self.codec = codec

    def restart(self, image: CheckpointImage, node: Node,
                resume: bool = True,
                own_wire_mac: Optional[bool] = None,
                warm_bytes: int = 0) -> Generator:
        """A simulation coroutine; its value is the recreated pod.

        ``warm_bytes`` — bytes of the image already staged on the target
        (a pre-copy migration prefetches chunk rounds while the source
        keeps running); only the cold remainder is charged against the
        disk read bandwidth.
        """
        sim, costs = node.sim, node.costs
        # Read the image back from storage. A placed (sharded) image
        # streams in parallel from every surviving replica; the fetch
        # fraction is the busiest source disk's share of the bytes
        # (exactly 1.0 for local or single-disk images).
        cold_bytes = max(0, image.state_bytes - warm_bytes)
        fraction = fetch_fraction(image.chunk_sources, node.name)
        yield sim.timeout(costs.restart_fixed +
                          cold_bytes * fraction / costs.disk_read_bandwidth)
        pod = self.instantiate(image, node, own_wire_mac=own_wire_mac)
        sanitizer = node.trace.sanitizer
        if sanitizer is not None:
            sanitizer.check_restored_memory(image, pod, time=sim.now)
        if image.sockets_captured:
            yield sim.timeout(
                costs.socket_capture_time * image.sockets_captured)
        node.trace.emit(sim.now, "restart", node=node.name,
                        pod=pod.name, processes=len(image.processes))
        if resume:
            self.resume(pod, image)
        return pod

    def instantiate(self, image: CheckpointImage, node: Node,
                    own_wire_mac: Optional[bool] = None) -> Pod:
        """Recreate the pod and all its processes, stopped."""
        use_own_mac = image.own_wire_mac if own_wire_mac is None \
            else own_wire_mac
        if use_own_mac and not node.stack.nic.supports_multiple_macs:
            use_own_mac = False
        mac = image.mac if use_own_mac else node.stack.nic.primary_mac
        pod = Pod(node, image.pod_name, ip=image.ip, mac=mac,
                  own_wire_mac=use_own_mac, fake_mac=image.fake_mac)
        install_pod(pod)
        pod._next_vpid = image.next_vpid
        pod._next_vipc = image.next_vipc

        self._restore_ipc(pod, image)
        pipes = self._restore_pipes(image)
        vpid_to_proc = {}
        for proc_image in image.processes:
            program = thaw_object(proc_image.program_blob)
            proc = pod.spawn(program, name=proc_image.name,
                             vpid=proc_image.vpid,
                             resume_syscall=proc_image.resume_syscall)
            proc.initial_result = proc_image.initial_result
            # Keep the pod quiescent until the caller resumes it.
            proc.signal(SIGSTOP)
            proc.memory = proc_image.memory.snapshot()
            for fd_image in proc_image.fds:
                self._restore_fd(pod, proc, fd_image, pipes)
            vpid_to_proc[proc_image.vpid] = proc
        # Parent links (vPIDs are preserved; physical ppids re-derived).
        for proc_image in image.processes:
            if proc_image.parent_vpid in vpid_to_proc:
                vpid_to_proc[proc_image.vpid].ppid = \
                    vpid_to_proc[proc_image.parent_vpid].pid
        return pod

    @staticmethod
    def resume(pod: Pod, image: CheckpointImage) -> None:
        """SIGCONT everything that was not user-stopped at checkpoint."""
        user_stopped = {p.vpid for p in image.processes
                        if p.was_stopped_by_user}
        for proc in pod.live_processes():
            if pod.vpid_of(proc.pid) not in user_stopped:
                pod.node.signal_now(proc.pid, "SIGCONT")

    # -- pieces ------------------------------------------------------------

    def _restore_ipc(self, pod: Pod, image: CheckpointImage) -> None:
        node = pod.node
        for shm_image in image.shm:
            key = (pod.pod_id << 32) | shm_image.app_key
            physical = node.ipc.restore_shm(
                key, shm_image.size, thaw_object(shm_image.payload_blob))
            pod.vshm[shm_image.vid] = physical
        for sem_image in image.sem:
            key = (pod.pod_id << 32) | sem_image.app_key
            physical = node.ipc.restore_sem(key, sem_image.value)
            pod.vsem[sem_image.vid] = physical

    def _restore_pipes(self, image: CheckpointImage) -> Dict[int, Pipe]:
        pipes: Dict[int, Pipe] = {}
        for pipe_image in image.pipes:
            pipe = Pipe(sim=None)  # sim injected below
            pipes[pipe_image.index] = (pipe, pipe_image)
        return pipes

    def _restore_fd(self, pod: Pod, proc, fd_image: FdImage,
                    pipes: Dict) -> None:
        node = pod.node
        if fd_image.kind == "file":
            detail = fd_image.detail
            regular = RegularFile(node.sim, node.fs, detail["path"],
                                  detail["file_mode"])
            regular.offset = detail["offset"]
            proc.fds.install_at(fd_image.fd,
                                Descriptor(regular, fd_image.mode))
            return
        if fd_image.kind == "pipe":
            entry = pipes[fd_image.detail["pipe_index"]]
            pipe, pipe_image = entry
            if pipe.sim is None:
                pipe.sim = node.sim
                pipe.buffer = bytearray(pipe_image.buffer)
                pipe.readers = pipe_image.readers
                pipe.writers = pipe_image.writers
            proc.fds.install_at(fd_image.fd,
                                Descriptor(pipe, fd_image.mode))
            return
        if fd_image.kind == "tcp_socket":
            sock = self.codec.restore_tcp(node, pod, fd_image.detail)
            proc.fds.install_at(fd_image.fd,
                                Descriptor(sock, fd_image.mode))
            return
        if fd_image.kind == "udp_socket":
            sock = self.codec.restore_udp(node, pod, fd_image.detail)
            proc.fds.install_at(fd_image.fd,
                                Descriptor(sock, fd_image.mode))
            return
        raise CheckpointError(f"unknown fd kind {fd_image.kind!r}")
