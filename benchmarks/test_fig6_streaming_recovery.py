"""Fig. 6: effect of dropped packets on a TCP stream across a checkpoint.

Paper: rate drops to zero at checkpoint start; checkpoint completes after
~120 ms; a short receiver-drain pulse follows; the sender recovers from the
filter-dropped packets via TCP retransmission ~100 ms later, after which
the stream runs at its prior rate.
"""

from repro.bench.fig6 import fig6_shape_holds, run_fig6
from repro.bench.harness import paper_vs_measured, render_table


def test_fig6_streaming_recovery(benchmark, show):
    result = benchmark.pedantic(run_fig6, rounds=1, iterations=1)
    shape = fig6_shape_holds(result)

    # A compact rendition of the rate-vs-time curve.
    rows = []
    for t, rate in result.series:
        if -0.02 <= t <= result.recovery_time_s + 0.05 and \
                abs(round(t * 1000) % 20) < 1:
            rows.append([f"{t*1000:+.0f} ms", f"{rate/1e6:8.1f} Mb/s"])
    show(render_table("Fig 6 — receive rate around a checkpoint",
                      ["t (ckpt start = 0)", "rate"], rows))
    show(paper_vs_measured("Fig 6 shape", [
        ("rate drops to zero", "yes",
         "yes" if shape["rate_drops_to_zero"] else "no",
         shape["rate_drops_to_zero"]),
        ("checkpoint duration", "~120 ms",
         f"{result.checkpoint_duration_s*1000:.0f} ms",
         shape["checkpoint_is_100ms_scale"]),
        ("receiver drain pulse after resume", "short pulse",
         f"at {result.pulse_time_s*1000:.0f} ms",
         shape["drain_pulse_after_resume"]),
        ("sender recovery after checkpoint", "~100 ms",
         f"{result.outage_after_checkpoint_s*1000:.0f} ms",
         shape["recovery_within_rto_scale"]),
        ("rate restored to normal", "yes",
         "yes" if shape["rate_restored"] else "no",
         shape["rate_restored"]),
    ]))
    assert all(shape.values()), shape
