"""The Checkpoint Coordinator (Fig. 2).

Runs on a node distinct from the application nodes (§6). The protocol is
the minimum for atomic commit — O(N) messages total, versus the O(N²)
channel-flush protocols of MPVM/CoCheck/LAM-MPI (§5.2):

* Step 1: send ``<checkpoint>`` to every Agent.
* Step 2: wait for ``<done>`` from all (Fig. 5a's latency metric ends at
  the last ``<done>``).
* Step 3: send ``<continue>``.
* Step 4: wait for ``<continue-done>`` from all.

A round that times out (crashed agent, lost pod) is aborted on every node,
so a half-taken checkpoint is never committed — two-phase-commit semantics.
"""

from __future__ import annotations

from typing import Dict, Generator, List, Optional, Set, Tuple

from repro.cruz import protocol
from repro.cruz.protocol import (
    AGENT_PORT,
    COORDINATOR_PORT,
    ControlMessage,
    RoundStats,
)
from repro.errors import CoordinationError
from repro.net.addresses import Ipv4Address
from repro.simos.kernel import Node
from repro.zap.pod import Pod

#: (agent node eth0 IP, pod name) pairs — one per application node.
Members = List[Tuple[Ipv4Address, str]]


class DistributedApp:
    """A named set of pods, one per application node."""

    def __init__(self, name: str, pods: List[Pod]):
        self.name = name
        self.pods = list(pods)

    @property
    def members(self) -> Members:
        return [(pod.node.stack.eth0.ip, pod.name) for pod in self.pods]

    def __repr__(self) -> str:
        return f"<DistributedApp {self.name} pods={len(self.pods)}>"


class CheckpointCoordinator:
    """Drives coordinated checkpoint and restart rounds."""

    def __init__(self, node: Node, timeout_s: float = 60.0):
        self.node = node
        self.timeout_s = timeout_s
        self._epoch = 0
        self.rounds: List[RoundStats] = []
        #: epoch -> kind -> (expected node-name set, received messages,
        #: completion event)
        self._collectors: Dict[int, Dict[str, Dict]] = {}
        self._abort_seen: Dict[int, str] = {}
        node.stack.udp.bind(COORDINATOR_PORT, self._on_datagram)

    # -- transport ----------------------------------------------------------

    def _send(self, agent_ip: Ipv4Address, message: ControlMessage) -> None:
        self.node.trace.emit(self.node.sim.now, "coord_msg",
                             node=self.node.name, kind=message.kind,
                             epoch=message.epoch)
        self.node.stack.udp.send(
            self.node.stack.eth0.ip, COORDINATOR_PORT,
            agent_ip, AGENT_PORT, message, payload_size=message.size)

    def _on_datagram(self, payload, _src_ip, _src_port, _dst_ip) -> None:
        if not isinstance(payload, ControlMessage):
            return
        if payload.kind == protocol.ABORT:
            self._abort_seen[payload.epoch] = payload.reason
            for collector in self._collectors.get(payload.epoch,
                                                  {}).values():
                if not collector["event"].triggered:
                    collector["event"].fail(
                        CoordinationError(payload.reason))
            return
        collector = self._collectors.get(payload.epoch, {}).get(payload.kind)
        if collector is None:
            return
        collector["received"][payload.pod_name] = payload
        if set(collector["received"]) >= collector["expected"] and \
                not collector["event"].triggered:
            collector["event"].succeed(dict(collector["received"]))

    def _expect(self, epoch: int, kind: str, pod_names: Set[str]):
        event = self.node.sim.event(f"collect({kind},{epoch})")
        self._collectors.setdefault(epoch, {})[kind] = {
            "expected": set(pod_names), "received": {}, "event": event}
        return event

    def _collect(self, event, stats: RoundStats) -> Generator:
        """Wait for a collector event with the round timeout."""
        sim = self.node.sim
        timer = sim.timeout(self.timeout_s)
        outcome = yield sim.any_of([event, timer])
        if event in outcome:
            stats.messages_received += len(event.value)
            # Processing each reply costs coordinator CPU.
            yield sim.timeout(self.node.costs.coordinator_message_handling
                              * len(event.value))
            return event.value
        raise CoordinationError(
            f"round {stats.epoch}: timed out waiting for agents")

    # -- rounds ------------------------------------------------------------

    def checkpoint(self, app: DistributedApp, optimized: bool = False,
                   incremental: bool = False,
                   dedup: bool = False,
                   early_network: bool = False,
                   concurrent: bool = False) -> Generator:
        """Coordinated checkpoint; value is the round's RoundStats.

        ``early_network`` re-enables each node's communication as soon as
        its socket state is captured and all nodes are known to have
        disabled theirs — it therefore requires ``optimized`` (§5.2).
        ``concurrent`` resumes computation behind the filter during the
        disk write (the copy-on-write optimisation).
        """
        if early_network and not optimized:
            raise CoordinationError(
                "early_network requires the optimized (Fig 4) protocol: "
                "a node may only unfilter once all nodes have disabled "
                "communication")
        return (yield from self._run_round(
            app, protocol.CHECKPOINT, optimized=optimized,
            incremental=incremental, dedup=dedup,
            early_network=early_network,
            concurrent=concurrent))

    def restart(self, app_name: str, members: Members,
                version: int = 0) -> Generator:
        """Coordinated restart of ``app_name`` onto the given agents."""
        return (yield from self._run_round(
            DistributedApp(app_name, []), protocol.RESTART,
            members=members, version=version))

    def _run_round(self, app: DistributedApp, kind: str,
                   optimized: bool = False, incremental: bool = False,
                   dedup: bool = False,
                   members: Optional[Members] = None,
                   version: int = 0, early_network: bool = False,
                   concurrent: bool = False) -> Generator:
        sim, costs = self.node.sim, self.node.costs
        self._epoch += 1
        epoch = self._epoch
        members = members if members is not None else app.members
        expected_pods = {pod_name for _ip, pod_name in members}
        stats = RoundStats(epoch=epoch, kind=kind, n_nodes=len(members),
                           started_at=sim.now)
        if optimized:
            disabled_event = self._expect(
                epoch, protocol.COMM_DISABLED, expected_pods)
        done_event = self._expect(epoch, protocol.DONE, expected_pods)
        continue_done_event = None
        if not optimized:
            continue_done_event = self._expect(
                epoch, protocol.CONTINUE_DONE, expected_pods)

        try:
            # Step 1: notify every Agent.
            for agent_ip, pod_name in members:
                yield sim.timeout(costs.coordinator_message_handling)
                self._send(agent_ip, ControlMessage(
                    kind=kind, epoch=epoch, pod_name=pod_name,
                    optimized=optimized, incremental=incremental,
                    dedup=dedup,
                    version=version, early_network=early_network,
                    concurrent=concurrent))
                stats.messages_sent += 1
            if optimized:
                # Fig. 4: continue as soon as communication is disabled
                # everywhere; agents resume independently after their save.
                yield from self._collect(disabled_event, stats)
                for agent_ip, _pod in members:
                    yield sim.timeout(costs.coordinator_message_handling)
                    self._send(agent_ip, ControlMessage(
                        kind=protocol.CONTINUE, epoch=epoch))
                    stats.messages_sent += 1
                dones = yield from self._collect(done_event, stats)
                stats.latency_s = sim.now - stats.started_at
                stats.total_s = stats.latency_s
                self._fill_local_ops(stats, dones.values())
            else:
                # Step 2: wait for all <done>.
                dones = yield from self._collect(done_event, stats)
                stats.latency_s = sim.now - stats.started_at
                self._fill_local_ops(stats, dones.values())
                # Step 3: allow everyone to resume.
                for agent_ip, _pod in members:
                    yield sim.timeout(costs.coordinator_message_handling)
                    self._send(agent_ip, ControlMessage(
                        kind=protocol.CONTINUE, epoch=epoch))
                    stats.messages_sent += 1
                # Step 4: wait for all <continue-done>.
                final = yield from self._collect(continue_done_event, stats)
                stats.total_s = sim.now - stats.started_at
                stats.max_local_continue_s = max(
                    (m.local_continue_s for m in final.values()),
                    default=0.0)
            stats.committed = True
        except CoordinationError:
            stats.aborted = True
            for agent_ip, _pod in members:
                self._send(agent_ip, ControlMessage(
                    kind=protocol.ABORT, epoch=epoch,
                    reason="coordinator abort"))
                stats.messages_sent += 1
            raise
        finally:
            self.rounds.append(stats)
            self._collectors.pop(epoch, None)
            self.node.trace.emit(
                sim.now, "round", node=self.node.name, kind=kind,
                epoch=epoch, latency=stats.latency_s,
                overhead=stats.coordination_overhead_s,
                committed=stats.committed)
        return stats

    @staticmethod
    def _fill_local_ops(stats: RoundStats, messages) -> None:
        messages = list(messages)
        stats.max_local_op_s = max(
            (m.local_checkpoint_s for m in messages), default=0.0)
        continue_s = max((m.local_continue_s for m in messages),
                         default=0.0)
        stats.max_local_continue_s = max(stats.max_local_continue_s,
                                         continue_s)
        stats.new_chunk_bytes = sum(m.new_chunk_bytes for m in messages)
        stats.total_chunk_bytes = sum(m.total_chunk_bytes
                                      for m in messages)

