"""Image verification and global-consistency checking, including
deliberately corrupted inputs (the checker must actually catch things)."""

import pickle
from dataclasses import replace

import pytest

from repro.cruz.consistency import (
    check_app_checkpoint,
    check_global_consistency,
)
from repro.zap.verify import verify_image, verify_images

from tests.test_cruz_coordination import (
    make_cluster,
    ring_app,
)


def checkpointed_images(n=3, padding=2048):
    cluster = make_cluster(n)
    app = ring_app(cluster, n, max_token=100000, padding=padding)
    cluster.run_for(0.3)
    stats = cluster.checkpoint_app(app)
    assert stats.committed
    images = [cluster.store.load(pod.name) for pod in app.pods]
    return cluster, app, images


def test_committed_images_verify_clean():
    _cluster, _app, images = checkpointed_images()
    outcome = verify_images(images)
    assert outcome["ok"], {
        name: report.problems
        for name, report in outcome["reports"].items()}
    assert all(report.checks_run > 0
               for report in outcome["reports"].values())


def test_committed_images_are_globally_consistent():
    _cluster, _app, images = checkpointed_images()
    report = check_global_consistency(images)
    # A 3-ring has 3 connections = 6 directed channels.
    assert len(report.channels) == 6
    assert report.ok, [c.reason for c in report.channels if not c.ok]
    assert not report.unmatched_endpoints


def test_consistency_via_store_helper():
    cluster, app, _images = checkpointed_images()
    report = check_app_checkpoint(cluster.store,
                                  [pod.name for pod in app.pods])
    assert report.ok


def streaming_images():
    """Images of a max-rate stream: send buffers are guaranteed full."""
    from repro.apps.tcpstream import stream_factory
    cluster = make_cluster(2)
    app = cluster.launch_app_factory(
        "stream", 2, stream_factory(total_bytes=1 << 62))
    cluster.run_for(0.3)
    stats = cluster.checkpoint_app(app)
    assert stats.committed
    return [cluster.store.load(pod.name) for pod in app.pods]


def _connected_details(images):
    for image in images:
        for proc in image.processes:
            for fd_image in proc.fds:
                if fd_image.kind == "tcp_socket" and \
                        fd_image.detail.get("kind") == "connected":
                    yield image, fd_image.detail


def test_consistency_checker_catches_lost_message():
    """A receiver whose rcv_nxt exceeds what the sender can retransmit
    (lost in-flight data) must be flagged as unrecoverable."""
    images = streaming_images()
    # Find the bulk sender (has buffered data) and advance its peer's
    # rcv_nxt past the retransmittable range, simulating a checkpoint
    # that failed to save part of the send buffer.
    details = list(_connected_details(images))
    sender = max((d for _i, d in details),
                 key=lambda d: sum(len(p) for _s, p in d["send_segments"]))
    assert sender["send_segments"], "stream sender should hold data"
    effective = sender["tcb"].snd_una + sum(
        len(p) for _s, p in sender["send_segments"])
    for _image, detail in details:
        if detail is sender:
            continue
        detail["tcb"] = replace(detail["tcb"], rcv_nxt=effective + 1000)
    report = check_global_consistency(images)
    assert not report.ok
    assert any("unrecoverable" in c.reason
               for c in report.channels if not c.ok)


def test_consistency_checker_catches_rolled_back_receiver():
    """Rewind a receiver's rcv_nxt below the sender's snd_una."""
    _cluster, _app, images = checkpointed_images()
    changed = False
    for image in images:
        for proc in image.processes:
            for fd_image in proc.fds:
                detail = fd_image.detail
                if fd_image.kind == "tcp_socket" and \
                        detail.get("kind") == "connected":
                    detail["tcb"] = replace(
                        detail["tcb"],
                        rcv_nxt=max(0, detail["tcb"].rcv_nxt - 10**6))
                    changed = True
                    break
            if changed:
                break
        if changed:
            break
    assert changed
    report = check_global_consistency(images)
    assert not report.ok
    assert any("missing from the sender" in c.reason
               for c in report.channels if not c.ok)


def test_verify_catches_duplicate_vpids():
    _cluster, _app, images = checkpointed_images(n=2)
    image = images[0]
    image.processes.append(image.processes[0])
    report = verify_image(image)
    assert not report.ok
    assert any("duplicate" in p for p in report.problems)


def test_verify_catches_unrewound_tcb():
    _cluster, _app, images = checkpointed_images(n=2)
    for image in images:
        for proc in image.processes:
            for fd_image in proc.fds:
                detail = fd_image.detail
                if fd_image.kind == "tcp_socket" and \
                        detail.get("kind") == "connected":
                    detail["tcb"] = replace(
                        detail["tcb"],
                        snd_nxt=detail["tcb"].snd_una + 999)
                    report = verify_image(image)
                    assert not report.ok
                    assert any("not rewound" in p
                               for p in report.problems)
                    return
    pytest.fail("no connected socket found")


def test_verify_catches_boundary_gap():
    images = streaming_images()
    for image, detail in _connected_details(images):
        if len(detail["send_segments"]) >= 2:
            seq, payload = detail["send_segments"][1]
            detail["send_segments"][1] = (seq + 3, payload)
            report = verify_image(image)
            assert not report.ok
            assert any("boundary gap" in p for p in report.problems)
            return
    pytest.fail("max-rate stream should have >= 2 buffered packets")


def test_verify_catches_corrupt_program_blob():
    _cluster, _app, images = checkpointed_images(n=2)
    image = images[0]
    image.processes[0].program_blob = b"not a pickle"
    report = verify_image(image)
    assert not report.ok
    assert any("does not deserialise" in p for p in report.problems)


def test_verify_catches_missing_pipe():
    from tests.test_zap_checkpoint import engines, run_coroutine
    from tests.test_zap_virtualization import make_pod
    from tests.programs import SlowPipeline
    from repro.cluster import Cluster
    cluster = Cluster(1, time_wait_s=0.5)
    pod = make_pod(cluster)
    pod.spawn(SlowPipeline())
    cluster.run_for(0.5)
    ckpt, _ = engines()
    image = run_coroutine(cluster, ckpt.checkpoint(pod, resume=True))
    assert verify_image(image).ok
    image.pipes.clear()
    report = verify_image(image)
    assert not report.ok
    assert any("missing pipe" in p for p in report.problems)
