"""The determinism lint (``repro lint``): every rule, and self-hosting."""

import textwrap

from repro.analysis.lint import (
    RULES,
    LintViolation,
    lint_paths,
    lint_source,
)


def lint(snippet, path="src/repro/example.py"):
    return lint_source(textwrap.dedent(snippet), path=path)


def codes(snippet, path="src/repro/example.py"):
    return [v.code for v in lint(snippet, path=path)]


# -- CRZ001: wall clock ---------------------------------------------------


def test_wallclock_time_module_flagged():
    assert codes("""
        import time

        def stamp():
            return time.time()
    """) == ["CRZ001"]


def test_wallclock_variants_flagged():
    snippet = """
        import time
        import datetime
        from datetime import datetime as dt

        def stamps():
            return (time.monotonic(), time.perf_counter_ns(),
                    datetime.datetime.now(), datetime.date.today())
    """
    assert codes(snippet) == ["CRZ001"] * 4


def test_wallclock_allowed_in_rand_module():
    snippet = """
        import time

        def seed():
            return time.time_ns()
    """
    assert codes(snippet, path="src/repro/sim/rand.py") == []
    # The exemption is per-file: the same code elsewhere is flagged.
    assert codes(snippet, path="src/repro/sim/clock.py") == ["CRZ001"]


def test_sim_clock_not_flagged():
    assert codes("""
        def stamp(sim):
            return sim.now
    """) == []


# -- CRZ002: unseeded random ----------------------------------------------


def test_global_random_flagged():
    assert codes("""
        import random

        def pick(items):
            return random.choice(items)
    """) == ["CRZ002"]


def test_seeded_random_instance_allowed():
    assert codes("""
        import random

        def stream(seed):
            return random.Random(seed)
    """) == []


def test_unseeded_random_instance_flagged():
    assert codes("""
        import random

        def stream():
            return random.Random()
    """) == ["CRZ002"]


# -- CRZ003: swallowed exception ------------------------------------------


def test_except_pass_flagged_on_except_line():
    violations = lint("""
        def close(fd):
            try:
                fd.close()
            except OSError:
                pass
    """)
    assert [v.code for v in violations] == ["CRZ003"]
    # Flagged at the ``except`` line, so that is where noqa goes.
    assert violations[0].line == 5


def test_except_with_handling_not_flagged():
    assert codes("""
        def close(fd, log):
            try:
                fd.close()
            except OSError as error:
                log.append(error)
    """) == []


# -- CRZ004: netfilter pairing --------------------------------------------


def test_unpaired_drop_all_for_flagged():
    assert codes("""
        def pause(node, pod):
            rule_id = node.stack.netfilter.drop_all_for(pod.ip)
            return rule_id
    """) == ["CRZ004"]


def test_drop_all_for_with_finally_removal_allowed():
    assert codes("""
        def pause(node, pod):
            rule_id = node.stack.netfilter.drop_all_for(pod.ip)
            try:
                work(pod)
            finally:
                node.stack.netfilter.remove_rule(rule_id)
    """) == []


def test_finally_in_other_function_does_not_excuse():
    assert codes("""
        def pause(node, pod):
            return node.stack.netfilter.drop_all_for(pod.ip)

        def unpause(node, rule_id):
            try:
                pause_done(node)
            finally:
                node.stack.netfilter.remove_rule(rule_id)
    """) == ["CRZ004"]


# -- CRZ005: span balance -------------------------------------------------


def test_begin_without_end_flagged():
    assert codes("""
        def round(spans):
            span = spans.begin("agent.local")
            return span
    """) == ["CRZ005"]


def test_begin_with_end_allowed():
    assert codes("""
        def round(spans):
            span = spans.begin("agent.local")
            try:
                work()
            finally:
                spans.end(span)
    """) == []


def test_span_context_manager_allowed():
    assert codes("""
        def round(trace):
            with trace.spans.span("agent.local"):
                work()
    """) == []


def test_begin_on_trace_spans_attribute_flagged():
    assert codes("""
        def round(node):
            return node.trace.spans.begin("agent.local")
    """) == ["CRZ005"]


# -- CRZ006: id() ordering ------------------------------------------------


def test_sorted_by_id_flagged():
    assert codes("""
        def order(items):
            return sorted(items, key=id)
    """) == ["CRZ006"]


def test_lambda_id_key_flagged():
    assert codes("""
        def order(items):
            items.sort(key=lambda item: (id(item), item))
    """) == ["CRZ006"]


def test_id_comparison_flagged():
    assert codes("""
        def dedup(obj, seen):
            return id(obj) in seen
    """) == ["CRZ006"]


def test_id_in_heap_entry_flagged():
    assert codes("""
        from heapq import heappush

        def push(heap, item):
            heappush(heap, (0, id(item), item))
    """) == ["CRZ006"]


def test_stable_key_not_flagged():
    assert codes("""
        def order(items):
            return sorted(items, key=lambda item: item.name)
    """) == []


# -- CRZ007: deprecated store.chunks --------------------------------------


def test_store_chunks_access_flagged():
    assert codes("""
        def count(store):
            return store.chunks.bytes_written
    """) == ["CRZ007"]


def test_store_attribute_chunks_access_flagged():
    assert codes("""
        def count(self):
            return len(self.cluster.store.chunks.refcounts)
    """) == ["CRZ007"]


def test_facade_and_other_chunks_receivers_not_flagged():
    assert codes("""
        def fine(store, plan):
            store.stats["bytes_written"]
            store.refcounts()
            store.backend.holders("cid")
            return plan.chunks
    """) == []


# -- CRZ008: unbounded retry loops -----------------------------------------


def test_unpaced_retry_loop_flagged():
    assert codes("""
        def retry_forever(self, message):
            while True:
                self.endpoint.send(message)
    """) == ["CRZ008"]


def test_retransmit_variants_flagged():
    snippet = """
        def storm_a(self):
            while True:
                self.retransmit()

        def storm_b(sock, data, addr):
            while True:
                sock.sendto(data, addr)
    """
    assert codes(snippet) == ["CRZ008", "CRZ008"]


def test_paced_retry_loop_not_flagged():
    # The heartbeat pattern: an infinite loop is fine when each lap
    # yields on a timer.
    assert codes("""
        def heartbeat_loop(self):
            while True:
                yield self.sim.timeout(self.interval_s)
                self.endpoint.send_unreliable(self.beat())
    """) == []


def test_bounded_retry_loop_not_flagged():
    # protocol.RetryPolicy's shape: a for-range budget, not while True.
    assert codes("""
        def retransmit_loop(self, message):
            for attempt in range(self.policy.max_retries):
                self.send(message)
                yield self.sim.timeout(self.policy.backoff(attempt))
    """) == []


def test_send_inside_nested_def_not_attributed_to_loop():
    # A closure defined in the loop sends on its own schedule; the loop
    # itself is a plain dispatcher.
    assert codes("""
        def dispatcher(self):
            while True:
                def flush():
                    self.endpoint.send(self.pending)
                self.callbacks.append(flush)
                if self.done:
                    break
    """) == []


def test_non_sending_infinite_loop_not_flagged():
    assert codes("""
        def drain(queue):
            while True:
                entry = queue.pop_due(1.0)
                if entry is None:
                    break
    """) == []


def test_crz008_noqa_with_reason_suppresses():
    assert codes("""
        def blast(self, message):
            # paced by the caller's token bucket
            while True:  # cruz: noqa[CRZ008]
                self.send(message)
    """) == []


# -- noqa suppression ------------------------------------------------------


def test_bare_noqa_suppresses_everything_on_the_line():
    assert codes("""
        import time

        def stamp():
            return time.time()  # cruz: noqa
    """) == []


def test_coded_noqa_suppresses_only_listed_rules():
    snippet = """
        import time
        import random

        def stamp():
            return time.time()  # cruz: noqa[CRZ001]

        def pick(items):
            return random.choice(items)  # cruz: noqa[CRZ001]
    """
    assert codes(snippet) == ["CRZ002"]


def test_noqa_must_sit_on_the_flagged_line():
    assert codes("""
        import time

        # cruz: noqa[CRZ001]
        def stamp():
            return time.time()
    """) == ["CRZ001"]


# -- rendering and catalog -------------------------------------------------


def test_render_includes_location_code_and_hint():
    violation = LintViolation(path="src/repro/x.py", line=3, col=4,
                              code="CRZ001")
    text = violation.render()
    assert text.startswith("src/repro/x.py:3:4 CRZ001 ")
    assert RULES["CRZ001"][0] in text
    assert RULES["CRZ001"][1] in text


def test_every_rule_has_title_and_hint():
    for code, (title, hint) in RULES.items():
        assert code.startswith("CRZ")
        assert title and hint


# -- injected wall-clock acceptance case + self-hosting -------------------


def test_injected_wallclock_file_is_flagged(tmp_path):
    bad = tmp_path / "leaky.py"
    bad.write_text(textwrap.dedent("""
        import time

        def now():
            return time.time()
    """))
    violations = lint_paths([bad])
    assert [v.code for v in violations] == ["CRZ001"]
    assert violations[0].path == str(bad)


def test_repro_tree_is_lint_clean():
    assert lint_paths() == []
