"""Shared benchmark utilities: result records, shape reports, tables."""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence


@dataclass
class Stat:
    """Mean and standard deviation of a sample, paper-style (µ ± σ)."""

    mean: float
    std: float
    n: int

    @classmethod
    def of(cls, values: Sequence[float]) -> "Stat":
        if not values:
            return cls(float("nan"), float("nan"), 0)
        mean = sum(values) / len(values)
        var = sum((v - mean) ** 2 for v in values) / len(values)
        return cls(mean, math.sqrt(var), len(values))

    def scaled(self, factor: float) -> "Stat":
        return Stat(self.mean * factor, self.std * factor, self.n)

    def __str__(self) -> str:
        return f"{self.mean:.3g} ± {self.std:.2g}"


@dataclass
class ShapeCheck:
    """One named predicate of a figure's qualitative shape."""

    name: str
    ok: bool
    #: The measured quantity behind the verdict (whatever is most useful
    #: to show a human: a float, a list of means, ...).
    value: Any = None
    #: What the paper says the value should look like.
    expect: str = ""


class ShapeReport:
    """Named pass/fail checks for one benchmark's qualitative shape.

    This is the unified result convention for every ``bench`` harness:
    build with :meth:`check`, inspect with ``report["check_name"]`` or
    :meth:`as_dict` (the legacy ``*_shape_holds`` dict), render with
    :meth:`render`, serialize with :meth:`to_jsonable`.
    """

    def __init__(self, title: str = ""):
        self.title = title
        self.checks: List[ShapeCheck] = []

    def check(self, name: str, ok: bool, value: Any = None,
              expect: str = "") -> bool:
        self.checks.append(ShapeCheck(name, bool(ok), value, expect))
        return ok

    @property
    def passed(self) -> bool:
        return all(c.ok for c in self.checks)

    def __getitem__(self, name: str) -> bool:
        for check in self.checks:
            if check.name == name:
                return check.ok
        raise KeyError(name)

    def __len__(self) -> int:
        return len(self.checks)

    def as_dict(self) -> Dict[str, bool]:
        """The legacy ``{check_name: bool}`` mapping."""
        return {c.name: c.ok for c in self.checks}

    def to_jsonable(self) -> Dict[str, Any]:
        return {
            "title": self.title,
            "passed": self.passed,
            "checks": [{"name": c.name, "ok": c.ok, "value": c.value,
                        "expect": c.expect} for c in self.checks],
        }

    def render(self) -> str:
        rows = []
        for c in self.checks:
            value = "" if c.value is None else (
                f"{c.value:.4g}" if isinstance(c.value, float)
                else str(c.value))
            rows.append([c.name, "PASS" if c.ok else "FAIL", value,
                         c.expect])
        verdict = "all checks pass" if self.passed else "CHECKS FAILED"
        return render_table(
            self.title or "shape checks",
            ["check", "verdict", "measured", "expected"],
            rows, note=verdict)


def render_table(title: str, headers: List[str],
                 rows: Iterable[Sequence], note: str = "") -> str:
    """A fixed-width table for benchmark output."""
    rows = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = [f"== {title} =="]
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    if note:
        lines.append(note)
    return "\n".join(lines)


def paper_vs_measured(title: str, rows: List[tuple],
                      note: str = "") -> str:
    """Render 'quantity / paper / measured / verdict' comparison rows."""
    table_rows = []
    for quantity, paper, measured, holds in rows:
        table_rows.append([quantity, paper, measured,
                           "OK" if holds else "MISMATCH"])
    return render_table(title, ["quantity", "paper", "measured", "shape"],
                        table_rows, note=note)
