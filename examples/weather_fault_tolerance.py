#!/usr/bin/env python
"""Fault tolerance for a parallel weather model (the paper's §1 use case).

The slm semi-Lagrangian model runs across 2 nodes under an LSF-style
scheduler taking coordinated checkpoints every simulated second. Mid-run,
a node "loses power"; the scheduler rolls the job back to the last
committed checkpoint on spare nodes. The final field is bit-identical to a
failure-free run — the MPI-like library is never modified and never
reconnects anything.

Run:  python examples/weather_fault_tolerance.py
"""

import numpy as np

from repro.apps.slm import reference_solution, slm_factory
from repro.cruz.cluster import CruzCluster
from repro.lsf import JobScheduler, JobSpec, JobState

ROWS, COLS, STEPS = 32, 32, 120


def main():
    cluster = CruzCluster(n_app_nodes=4)
    scheduler = JobScheduler(cluster)

    job = scheduler.submit(JobSpec(
        name="weather",
        factory=slm_factory(2, global_rows=ROWS, cols=COLS, steps=STEPS,
                            total_work_s=12.0, memory_mb_per_rank=20),
        n_ranks=2,
        checkpoint_interval_s=1.0,
        node_indices=[0, 1]))
    print("job 'weather' running on node0+node1, checkpoint every 1 s")

    cluster.run_for(3.2)
    print(f"t={cluster.sim.now:.1f}s  checkpoints so far: "
          f"{job.checkpoints_taken}")

    print("node0 fails (power loss)...")
    scheduler.fail_node(0)
    scheduler.recover_job("weather", node_indices=[2, 3])
    print(f"t={cluster.sim.now:.1f}s  job rolled back to checkpoint "
          f"v{cluster.store.latest_version('weather-r0')} on node2+node3")

    scheduler.wait_for("weather")
    assert job.state == JobState.FINISHED

    ranks = sorted(cluster.app_programs(job.app), key=lambda r: r.rank)
    field = np.vstack([r.q for r in ranks])
    expected = reference_solution(ROWS, COLS, STEPS)
    np.testing.assert_array_equal(field, expected)
    print(f"t={cluster.sim.now:.1f}s  job finished; result is "
          f"bit-identical to the failure-free reference "
          f"(mass drift: {abs(field.sum() - expected.sum()):.1e})")
    for event in job.events:
        print("   ", event)


if __name__ == "__main__":
    main()
