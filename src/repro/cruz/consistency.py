"""Global-consistency checking across a coordinated checkpoint (§5.1).

The paper proves that the coordination protocol preserves the TCP
invariant ``unack_nxt <= rcv_nxt <= snd_nxt`` for every connection in any
committed global checkpoint. This module *checks* that proof's conclusion
against actual image sets — the tool you want before trusting a rollback,
and the oracle the property tests use.

For each TCP channel present in two images (matching 4-tuples in opposite
orientation), we verify, in both directions:

* ``sender.snd_una <= receiver.rcv_nxt`` — nothing the receiver consumed
  is unknown to the sender (Chandy-Lamport condition 1);
* ``receiver.rcv_nxt <= sender.snd_una + len(send buffer)`` — everything
  the receiver still expects is retransmittable from the sender's saved
  send buffer (condition 2: in-flight data is recoverable).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.zap.image import CheckpointImage


@dataclass
class ChannelVerdict:
    """One direction of one TCP channel."""

    sender_pod: str
    receiver_pod: str
    four_tuple: Tuple
    snd_una: int
    effective_snd_nxt: int
    rcv_nxt: int
    ok: bool
    reason: str = ""


@dataclass
class ConsistencyReport:
    channels: List[ChannelVerdict] = field(default_factory=list)
    unmatched_endpoints: List[Tuple[str, Tuple]] = field(
        default_factory=list)

    @property
    def ok(self) -> bool:
        return all(c.ok for c in self.channels)

    def summary(self) -> str:
        good = sum(1 for c in self.channels if c.ok)
        return (f"{good}/{len(self.channels)} channel directions "
                f"consistent; {len(self.unmatched_endpoints)} endpoints "
                f"external to the checkpoint set")


def _connected_sockets(image: CheckpointImage):
    for proc in image.processes:
        for fd_image in proc.fds:
            if fd_image.kind != "tcp_socket":
                continue
            detail = fd_image.detail
            if isinstance(detail, dict) and \
                    detail.get("kind") == "connected":
                yield detail
            if isinstance(detail, dict):
                for queued in detail.get("queued", ()):
                    yield queued


def check_global_consistency(
        images: List[CheckpointImage]) -> ConsistencyReport:
    """Cross-check every TCP channel appearing in the image set."""
    report = ConsistencyReport()
    endpoints: Dict[Tuple, Tuple[str, dict]] = {}
    for image in images:
        for detail in _connected_sockets(image):
            tcb = detail["tcb"]
            key = (tcb.local_ip, tcb.local_port,
                   tcb.remote_ip, tcb.remote_port)
            endpoints[key] = (image.pod_name, detail)
    for key, (pod_name, detail) in endpoints.items():
        peer_key = (key[2], key[3], key[0], key[1])
        peer = endpoints.get(peer_key)
        if peer is None:
            report.unmatched_endpoints.append((pod_name, key))
            continue
        peer_pod, peer_detail = peer
        verdict = _check_direction(pod_name, detail, peer_pod,
                                   peer_detail, key)
        report.channels.append(verdict)
    return report


def _check_direction(sender_pod: str, sender: dict, receiver_pod: str,
                     receiver: dict, key: Tuple) -> ChannelVerdict:
    snd_una = sender["tcb"].snd_una
    buffered = sum(len(p) for _s, p in sender.get("send_segments", ()))
    effective_nxt = snd_una + buffered
    rcv_nxt = receiver["tcb"].rcv_nxt
    ok = True
    reason = ""
    if not snd_una <= rcv_nxt:
        ok = False
        reason = (f"receiver expects {rcv_nxt} but sender believes "
                  f"{snd_una} is already acknowledged: a received "
                  f"message is missing from the sender's state")
    elif not rcv_nxt <= effective_nxt:
        ok = False
        reason = (f"receiver expects {rcv_nxt} but the sender can only "
                  f"retransmit up to {effective_nxt}: in-flight data "
                  f"is unrecoverable")
    return ChannelVerdict(
        sender_pod=sender_pod, receiver_pod=receiver_pod,
        four_tuple=key, snd_una=snd_una,
        effective_snd_nxt=effective_nxt, rcv_nxt=rcv_nxt,
        ok=ok, reason=reason)


def check_app_checkpoint(store, pod_names: List[str],
                         version: Optional[int] = None
                         ) -> ConsistencyReport:
    """Load one version of each pod's image from a store and cross-check."""
    images = [store.load(name, version) for name in pod_names]
    return check_global_consistency(images)
