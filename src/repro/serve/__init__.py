"""Production-style serving under SLO: proxy fleet harness, per-request
latency accounting, and canary rolling restores.

The paper's motivating claim (§1) is that maintenance is *invisible* to
connected clients; this package quantifies that claim as a user-visible
SLO. :mod:`repro.serve.slo` turns per-request client samples into
windowed p50/p99 + error/shed/retry counts, :mod:`repro.serve.rollout`
implements the drain → restore → verify → promote/rollback canary state
machine, and :mod:`repro.serve.harness` runs the whole fleet (proxy +
replicated kv backends + sessionful clients) through checkpoint rounds,
failover, live migration, and canary restores while recording what the
clients actually experienced.
"""

from repro.serve.harness import run_serve, serve_determinism
from repro.serve.rollout import AdminClient, RolloutReport, canary_restore
from repro.serve.slo import SloRecorder

__all__ = [
    "AdminClient",
    "RolloutReport",
    "SloRecorder",
    "canary_restore",
    "run_serve",
    "serve_determinism",
]
