"""Checkpoint image storage on the network-accessible filesystem.

Zap "relies on a network-accessible file system that is accessible from any
machine on which the application may be restarted" (§2). Images are stored
*chunked and content-addressed* so the §5.2 incremental/copy-on-write
optimisations are real byte movement, not accounting:

* Every :class:`~repro.zap.image.CheckpointImage` is split into chunks —
  one page-granular chunk per memory page, plus one blob chunk per program
  image, socket state, pipe buffer and shm segment. A chunk's address is a
  content hash; a page's logical content is fully determined by its
  ``(pod, vpid, region, page, write-version)`` identity (see
  :class:`~repro.simos.memory.AddressSpace`), so an untouched page hashes
  to the same chunk in every epoch and is stored exactly once.
* A small pickled *manifest* per version records the image metadata and
  the chunk references; ``load`` reconstructs the image from it.
* Chunks are refcounted: ``discard``/``prune`` decrement and a chunk is
  deleted only when no surviving version references it.
* The version index is *derived from the filesystem* (manifests are
  scanned on first use), so a coordinator restarted on a different node
  finds every version that survives in the shared filesystem.

Save modes:

``full``          rewrite every chunk (the paper's baseline: every round
                  writes the whole state).
``dedup``         hash everything, write only chunks not already stored.
``incremental``   additionally use the dirty-page bits to skip even
                  hashing clean pages (§5.2 incremental checkpointing).
"""

from __future__ import annotations

import hashlib
import warnings
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.cruz.backend import (
    SharedFSBackend,
    StoreBackend,
    backend_config,
    backend_from_config,
)
from repro.errors import (
    CheckpointError,
    ChunkMissingError,
    VersionUnreconstructibleError,
)
from repro.simos.filesystem import SharedFileSystem
from repro.simos.memory import PAGE_SIZE, AddressSpace
from repro.zap.image import (
    CheckpointImage,
    FdImage,
    PipeImage,
    ProcessImage,
    SemImage,
    ShmImage,
    freeze_object,
    thaw_object,
)

#: fd kinds whose (potentially large) detail payloads get their own chunk.
_CHUNKED_FD_KINDS = ("tcp_socket", "udp_socket")

MANIFEST_FORMAT = 1


def blob_chunk_id(blob: bytes) -> str:
    """Content address of an opaque byte blob."""
    return hashlib.sha256(blob).hexdigest()


def page_chunk_id(pod_name: str, vpid: int, region: str,
                  page_index: int, version: int) -> str:
    """Content address of one memory page.

    The simulated address space tracks page *identity* (region, index,
    write-version) rather than byte content; the page's synthetic content
    is expanded deterministically from that identity (see
    :func:`page_chunk_payload`), so hashing the identity and hashing the
    content are equivalent.
    """
    identity = f"page|{pod_name}|{vpid}|{region}|{page_index}|{version}"
    return hashlib.sha256(identity.encode()).hexdigest()


def page_chunk_payload(cid: str) -> bytes:
    """The PAGE_SIZE bytes stored for a page chunk (seed-expanded)."""
    return bytes.fromhex(cid) * (PAGE_SIZE // 32)


def iter_page_chunks(pod_name: str, vpid: int,
                     memory: AddressSpace) -> Iterator[Tuple[str, int]]:
    """Yield ``(chunk_id, absolute_page)`` for every page of a process.

    Deterministic enumeration order — save, GC and index rebuild must all
    walk the identical sequence so refcounts balance.
    """
    for name in sorted(memory.regions):
        region = memory.regions[name]
        for index in range(region.page_count):
            page = region.base_page + index
            version = memory.page_versions.get(page, 0)
            yield (page_chunk_id(pod_name, vpid, name, index, version),
                   page)


class RoundLog:
    """Write-ahead log of coordination rounds in the shared filesystem.

    The coordinator records ``start`` before sending the first
    ``CHECKPOINT``/``RESTART`` of an epoch and decides exactly one outcome
    (``commit`` or ``abort``) per epoch; agents record ``abort`` when they
    abort unilaterally. Records are tiny pickled files next to the image
    manifests, so a coordinator restarted on any node sees every round the
    crashed one started:

    * ``in_flight()`` rounds (started, no outcome) are aborted during
      recovery and their members re-notified;
    * ``max_epoch()`` seeds the restarted coordinator's epoch counter, so
      a recovering coordinator can never reuse — and thereby resurrect —
      an epoch an agent already aborted;
    * ``decide()`` is first-writer-wins: a coordinator about to commit
      learns about a concurrent unilateral abort and fails the round
      instead, making the two-phase-commit outcome verified rather than
      assumed.
    """

    START, COMMIT, ABORT = "start", "commit", "abort"
    _OUTCOMES = (COMMIT, ABORT)

    def __init__(self, fs: SharedFileSystem,
                 root: str = "/checkpoints/.rounds"):
        self.fs = fs
        self.root = root

    def _path(self, epoch: int, record: str) -> str:
        return f"{self.root}/e{epoch:08d}.{record}"

    def _write(self, epoch: int, record: str, payload: Dict) -> None:
        blob = freeze_object(payload)
        path = self._path(epoch, record)
        self.fs.create(path)
        self.fs.write_at(path, 0, blob)

    def _read(self, epoch: int, record: str) -> Optional[Dict]:
        path = self._path(epoch, record)
        if not self.fs.exists(path):
            return None
        return thaw_object(self.fs.read_at(path, 0, self.fs.size(path)))

    # -- writing -----------------------------------------------------------

    def log_start(self, epoch: int, kind: str, members, at: float = 0.0,
                  coordinator: str = "") -> None:
        """Record a round's membership before any message is sent."""
        self._write(epoch, self.START, {
            "epoch": epoch, "kind": kind, "at": at,
            "coordinator": coordinator,
            "members": [(str(ip), pod_name) for ip, pod_name in members],
        })

    def decide(self, epoch: int, outcome: str, reason: str = "",
               source: str = "", at: float = 0.0) -> str:
        """Record ``outcome`` unless one exists; returns the winner."""
        if outcome not in self._OUTCOMES:
            raise CheckpointError(f"unknown round outcome {outcome!r}")
        existing = self.outcome(epoch)
        if existing is not None:
            return existing
        self._write(epoch, outcome, {
            "epoch": epoch, "reason": reason, "source": source, "at": at})
        return outcome

    def log_abort(self, epoch: int, reason: str = "", source: str = "",
                  at: float = 0.0) -> str:
        """Agent-side unilateral abort record (idempotent)."""
        return self.decide(epoch, self.ABORT, reason=reason,
                           source=source, at=at)

    # -- reading -----------------------------------------------------------

    def outcome(self, epoch: int) -> Optional[str]:
        for record in self._OUTCOMES:
            if self.fs.exists(self._path(epoch, record)):
                return record
        return None

    def abort_record(self, epoch: int) -> Optional[Dict]:
        return self._read(epoch, self.ABORT)

    def read_start(self, epoch: int) -> Optional[Dict]:
        return self._read(epoch, self.START)

    def epochs(self) -> List[int]:
        """Every epoch with a start record, ascending."""
        found = []
        prefix = f"{self.root}/e"
        suffix = f".{self.START}"
        for path in self.fs.listdir(prefix):
            tail = path[len(prefix):]
            if tail.endswith(suffix) and tail[:-len(suffix)].isdigit():
                found.append(int(tail[:-len(suffix)]))
        return sorted(found)

    def max_epoch(self) -> int:
        epochs = self.epochs()
        return epochs[-1] if epochs else 0

    def in_flight(self) -> List[Dict]:
        """Start records of rounds with no recorded outcome."""
        return [self.read_start(epoch) for epoch in self.epochs()
                if self.outcome(epoch) is None]


class LivenessLog:
    """Write-ahead log of node liveness transitions in the shared FS.

    The node supervisor records every death declaration and every
    rejoin (``down``/``up``) as a tiny pickled record, sequence-numbered
    so ordering survives a supervisor restart: a replacement supervisor
    constructed over the same store inherits each node's last known
    state through :meth:`last_states` instead of waiting a full lease
    period to rediscover dead nodes.
    """

    UP, DOWN = "up", "down"

    def __init__(self, fs: SharedFileSystem,
                 root: str = "/checkpoints/.liveness"):
        self.fs = fs
        self.root = root
        self._next_seq = self._scan_next_seq()

    def _scan_next_seq(self) -> int:
        highest = 0
        prefix = f"{self.root}/t"
        for path in self.fs.listdir(prefix):
            tail = path[len(prefix):]
            stem = tail.split(".", 1)[0]
            if stem.isdigit():
                highest = max(highest, int(stem))
        return highest + 1

    def log(self, node_name: str, state: str, at: float = 0.0,
            reason: str = "", source: str = "") -> Dict:
        if state not in (self.UP, self.DOWN):
            raise CheckpointError(f"unknown liveness state {state!r}")
        record = {"seq": self._next_seq, "node": node_name,
                  "state": state, "at": at, "reason": reason,
                  "source": source}
        path = f"{self.root}/t{self._next_seq:010d}.rec"
        self._next_seq += 1
        blob = freeze_object(record)
        self.fs.create(path)
        self.fs.write_at(path, 0, blob)
        return record

    def records(self) -> List[Dict]:
        """Every transition, in log order."""
        out = []
        for path in sorted(self.fs.listdir(f"{self.root}/t")):
            out.append(thaw_object(
                self.fs.read_at(path, 0, self.fs.size(path))))
        return sorted(out, key=lambda record: record["seq"])

    def transitions(self, node_name: str) -> List[Dict]:
        return [record for record in self.records()
                if record["node"] == node_name]

    def last_states(self) -> Dict[str, str]:
        """node name -> last logged ``up``/``down`` state."""
        states: Dict[str, str] = {}
        for record in self.records():
            states[record["node"]] = record["state"]
        return states


class ChunkStore:
    """Content-addressed, refcounted chunks over a pluggable backend.

    Refcounts and the byte-movement counters live here; the raw copy IO
    (where chunks physically live, how many replicas) is delegated to a
    :class:`~repro.cruz.backend.StoreBackend`.
    """

    def __init__(self, fs: SharedFileSystem,
                 root: str = "/checkpoints/.chunks",
                 backend: Optional[StoreBackend] = None):
        self.fs = fs
        self.root = root
        self.backend: StoreBackend = backend if backend is not None \
            else SharedFSBackend(fs, root=root)
        self.refcounts: Dict[str, int] = {}
        #: Optional runtime sanitizer; flags refcount underflows.
        self.sanitizer = None
        # Byte-movement counters (the measured quantities the benchmarks
        # read; distinct from the simulated-time accounting). The
        # ``chunks_written``/``bytes_written`` pair counts *logical*
        # chunk writes (one per chunk, as the single-copy layout did);
        # extra replica copies are tracked separately.
        self.chunks_written = 0
        self.bytes_written = 0
        self.bytes_deduped = 0
        self.chunks_removed = 0
        self.bytes_removed = 0
        self.replica_copies = 0
        self.replica_bytes = 0
        self.rereplicated_chunks = 0
        self.rereplicated_bytes = 0

    def contains(self, cid: str) -> bool:
        """A copy of the chunk is *readable right now*.

        Deciding dedup on availability (not mere existence) means a
        save taken while a replica node is down rewrites chunks whose
        only copies are unreachable — degraded saves self-heal.
        """
        return self.backend.available(cid)

    def write(self, cid: str, payload: bytes, force: bool = False,
              writer: Optional[str] = None) -> int:
        """Store a chunk; returns logical bytes moved (0 if dedup'd)."""
        result = self.backend.put_chunk(cid, payload, writer=writer,
                                        force=force)
        self.replica_copies += result.replica_copies
        self.replica_bytes += result.replica_bytes
        if not result.logical_write:
            self.bytes_deduped += len(payload)
            return 0
        self.chunks_written += 1
        self.bytes_written += len(payload)
        return len(payload)

    def read(self, cid: str) -> bytes:
        return self.backend.get_chunk(cid)

    def incref(self, cid: str) -> None:
        self.refcounts[cid] = self.refcounts.get(cid, 0) + 1

    def decref(self, cid: str) -> bool:
        """Drop one reference; unlink the chunk when none remain.

        Only reachable copies are unlinked — a powered-off shard's
        copies are reconciled when the node revives.
        """
        if self.sanitizer is not None and self.refcounts.get(cid, 0) <= 0:
            self.sanitizer.check_refcount_underflow(
                cid, self.refcounts.get(cid, 0))
        remaining = self.refcounts.get(cid, 0) - 1
        if remaining > 0:
            self.refcounts[cid] = remaining
            return False
        self.refcounts.pop(cid, None)
        nbytes, copies = self.backend.delete(cid)
        if copies:
            self.bytes_removed += nbytes
            self.chunks_removed += 1
        return True


@dataclass
class _PlannedChunk:
    cid: str
    nbytes: int
    write: bool
    force: bool
    #: Blob payload; None for pages (expanded from the cid on demand).
    payload: Optional[bytes] = None


@dataclass
class SavePlan:
    """What one ``save`` will move, and how the write pipelines.

    ``groups`` holds one ``(serialize_bytes, write_bytes)`` pair per
    process (plus a tail group for pipes/shm): serialization of process
    *i+1* overlaps the disk write of process *i* — the §5.2 pipeline.
    ``dest_groups`` (parallel to ``groups``) splits each group's write
    bytes per destination disk: with a sharded backend the writer's
    disk takes the primary copy of every new chunk while the replica
    copies land on other nodes' disks concurrently, so the pipeline
    bound is the *busiest* destination — which writer affinity makes
    the writer itself, reproducing the single-disk timing exactly.
    """

    mode: str
    chunks: List[_PlannedChunk] = field(default_factory=list)
    groups: List[Tuple[int, int]] = field(default_factory=list)
    dest_groups: List[Dict[str, int]] = field(default_factory=list)
    total_bytes: int = 0
    write_bytes: int = 0
    serialize_bytes: int = 0
    replica_bytes: int = 0
    chunks_total: int = 0
    chunks_new: int = 0
    writer: Optional[str] = None
    manifest: Optional[Dict[str, Any]] = None

    @property
    def dedup_ratio(self) -> float:
        """Fraction of referenced bytes NOT rewritten this save."""
        if self.total_bytes <= 0:
            return 0.0
        return 1.0 - self.write_bytes / self.total_bytes

    def schedule(self, costs) -> Tuple[float, float]:
        """(serialize_window_s, pipeline_total_s) for the cost model.

        Serialization is sequential (one CPU copies the state out); each
        group's write to a given destination disk starts as soon as both
        that group is serialized and that disk is free — the two-stage
        pipeline bound, taken over every destination in parallel.
        """
        serialized = 0.0
        free: Dict[str, float] = {}
        dest_groups = self.dest_groups if self.dest_groups else \
            [None] * len(self.groups)
        for (serialize_bytes, write_bytes), dests in zip(
                self.groups, dest_groups):
            serialized += serialize_bytes / costs.serialize_bandwidth
            if not dests:
                dests = {"disk": write_bytes}
            for dest in sorted(dests):
                free[dest] = max(serialized, free.get(dest, 0.0)) \
                    + dests[dest] / costs.disk_write_bandwidth
        pipeline = max(free.values()) if free else 0.0
        return serialized, max(pipeline, serialized)


class ImageStore:
    """Versioned, chunk-deduplicated checkpoint images.

    A facade over a pluggable :class:`~repro.cruz.backend.StoreBackend`
    that holds the chunk copies. The metadata plane (manifests, round
    WAL, liveness WAL) stays on the shared filesystem; the data plane
    (the bulky chunk space) is wherever the backend puts it — one
    shared directory (legacy) or replicated shards on the app nodes.

    The backend in use is recorded in a tiny ``.store`` file so a store
    constructed later over the same filesystem (a restarted
    coordinator) re-attaches with the same layout; a bare
    ``ImageStore(fs)`` over an *empty* filesystem defaults to the
    legacy single-shard backend.
    """

    def __init__(self, fs: SharedFileSystem, root: str = "/checkpoints",
                 metrics=None, sanitizer=None,
                 backend: Optional[StoreBackend] = None):
        self.fs = fs
        self.root = root
        if backend is None:
            backend = self._detect_backend(fs, root)
        self._chunks = ChunkStore(fs, root=f"{root}/.chunks",
                                  backend=backend)
        self._persist_backend_config()
        #: Optional runtime sanitizer; when set, every save/discard/prune
        #: is followed by a full refcount audit (see :meth:`audit`).
        self.sanitizer = sanitizer
        self._chunks.sanitizer = sanitizer
        #: Coordination-round WAL, shared (like the images) by every node.
        self.rounds = RoundLog(fs, root=f"{root}/.rounds")
        #: Node-liveness WAL (supervisor death/rejoin declarations).
        self.liveness = LivenessLog(fs, root=f"{root}/.liveness")
        self._latest: Dict[str, int] = {}
        self._attached = False
        self.last_plan: Optional[SavePlan] = None
        #: Shadow refcounts for :meth:`audit`, derived from the manifests
        #: (not from :class:`ChunkStore` bookkeeping) and maintained
        #: incrementally by :meth:`save` / :meth:`_drop_version` so the
        #: per-save sanitizer audit stays O(1)-ish instead of re-reading
        #: every manifest.  Saves made with no sanitizer attached skip
        #: the upkeep and invalidate the shadow; the next audit rebuilds
        #: it from disk.
        self._audit_expected: Dict[str, int] = {}
        self._audit_valid = True
        #: Optional :class:`repro.sim.spans.MetricsRegistry` — each save
        #: mirrors the chunk byte-movement into typed counters
        #: (``store.bytes_written`` etc.) labelled by save mode.
        self.metrics = metrics

    # -- backend facade ----------------------------------------------------

    @staticmethod
    def _detect_backend(fs: SharedFileSystem,
                        root: str) -> Optional[StoreBackend]:
        """Rebuild the backend a previous store recorded in ``.store``."""
        path = f"{root}/.store"
        if not fs.exists(path):
            return None
        record = thaw_object(fs.read_at(path, 0, fs.size(path)))
        return backend_from_config(fs, record)

    def _persist_backend_config(self) -> None:
        path = f"{self.root}/.store"
        if self.fs.exists(path):
            return
        blob = freeze_object(backend_config(self._chunks.backend))
        self.fs.create(path)
        self.fs.write_at(path, 0, blob)

    @property
    def backend(self) -> StoreBackend:
        """The chunk backend (placement, availability, replication)."""
        return self._chunks.backend

    @property
    def chunks(self) -> ChunkStore:
        """Deprecated direct access to the internal chunk store.

        Reaching past the facade couples callers to one backend's
        layout (paths, single-copy assumptions). Use ``store.backend``,
        ``store.stats`` and ``store.refcounts()`` instead. Flagged
        in-repo by CruzSan lint CRZ007.
        """
        warnings.warn(
            "ImageStore.chunks is deprecated; use store.backend, "
            "store.stats and store.refcounts() instead",
            DeprecationWarning, stacklevel=2)
        return self._chunks

    @property
    def stats(self) -> Dict[str, int]:
        """Byte-movement counters (logical writes, dedup, replicas)."""
        chunks = self._chunks
        return {
            "chunks_written": chunks.chunks_written,
            "bytes_written": chunks.bytes_written,
            "bytes_deduped": chunks.bytes_deduped,
            "chunks_removed": chunks.chunks_removed,
            "bytes_removed": chunks.bytes_removed,
            "replica_copies": chunks.replica_copies,
            "replica_bytes": chunks.replica_bytes,
            "rereplicated_chunks": chunks.rereplicated_chunks,
            "rereplicated_bytes": chunks.rereplicated_bytes,
        }

    def refcounts(self) -> Dict[str, int]:
        """A copy of the chunk refcount table (cid -> references)."""
        self._ensure_attached()
        return dict(self._chunks.refcounts)

    # -- paths and the persistent index -----------------------------------

    def _manifest_path(self, pod_name: str, version: int) -> str:
        return f"{self.root}/{pod_name}/v{version:06d}.manifest"

    def _ensure_attached(self) -> None:
        """Rebuild the version index and chunk refcounts from the FS.

        Runs once per store instance. A coordinator restarted on another
        node constructs a fresh ImageStore over the same shared
        filesystem; scanning the surviving manifests recovers everything
        the in-memory index held.
        """
        if self._attached:
            return
        self._attached = True
        for path in self.fs.listdir(f"{self.root}/"):
            if not path.endswith(".manifest"):
                continue
            manifest = thaw_object(
                self.fs.read_at(path, 0, self.fs.size(path)))
            meta = manifest["meta"]
            pod_name, version = meta["pod_name"], meta["version"]
            self._latest[pod_name] = max(
                self._latest.get(pod_name, 0), version)
            for cid, _nbytes in self._manifest_chunk_refs(manifest):
                self._chunks.incref(cid)
                self._audit_expected[cid] = \
                    self._audit_expected.get(cid, 0) + 1

    def versions(self, pod_name: str) -> List[int]:
        """Versions whose manifests actually exist in the filesystem."""
        self._ensure_attached()
        found = []
        prefix = f"{self.root}/{pod_name}/v"
        for path in self.fs.listdir(prefix):
            tail = path[len(prefix):]
            if tail.endswith(".manifest") and \
                    tail[:-len(".manifest")].isdigit():
                found.append(int(tail[:-len(".manifest")]))
        return sorted(found)

    def latest_version(self, pod_name: str) -> int:
        self._ensure_attached()
        version = self._latest.get(pod_name)
        if version is None:
            existing = self.versions(pod_name)
            version = max(existing) if existing else 0
            self._latest[pod_name] = version
        if version == 0:
            raise CheckpointError(f"no checkpoints for pod {pod_name!r}")
        return version

    def _read_manifest(self, pod_name: str,
                       version: int) -> Optional[Dict[str, Any]]:
        path = self._manifest_path(pod_name, version)
        if not self.fs.exists(path):
            return None
        return thaw_object(self.fs.read_at(path, 0, self.fs.size(path)))

    def version_reconstructible(self, pod_name: str, version: int) -> bool:
        """Every chunk the version references has a live copy."""
        self._ensure_attached()
        manifest = self._read_manifest(pod_name, version)
        if manifest is None:
            return False
        backend = self._chunks.backend
        for cid, _nbytes in self._manifest_chunk_refs(manifest):
            if not backend.available(cid):
                return False
        return True

    def reconstructible_versions(self, pod_name: str) -> List[int]:
        """Committed versions rebuildable from *surviving* replicas.

        With the legacy shared-FS backend this equals :meth:`versions`;
        with a sharded backend, versions whose chunks lost every live
        copy to node failures drop out, and failover / migration must
        fall back to the newest version still in this list.
        """
        return [version for version in self.versions(pod_name)
                if self.version_reconstructible(pod_name, version)]

    # -- replication repair ------------------------------------------------

    def under_replicated(self) -> List[Tuple[str, Tuple[str, ...]]]:
        """(cid, live holders) below the backend's live RF target."""
        return self._chunks.backend.under_replicated()

    def rereplicate_one(self, cid: str) -> Optional[Tuple[str, int]]:
        """Repair one chunk's replication; returns (dest, bytes).

        Returns ``None`` when no repair is possible or needed any more
        (no spare up node, or the chunk was garbage-collected since the
        deficit was scanned).
        """
        backend = self._chunks.backend
        if backend.kind != "sharded":
            return None
        if self._chunks.refcounts.get(cid, 0) <= 0:
            return None
        dest = backend.repair_dest(cid)
        if dest is None:
            return None
        nbytes = backend.replicate(cid, dest)
        self._chunks.rereplicated_chunks += 1
        self._chunks.rereplicated_bytes += nbytes
        if self.metrics is not None:
            self.metrics.counter("store.rereplicated_chunks").inc()
            self.metrics.counter("store.rereplicated_bytes").inc(nbytes)
        return dest, nbytes

    def reconcile_node(self, node_name: str) -> int:
        """Drop a revived shard's copies of since-deleted chunks.

        A powered-off node misses garbage collection; on revive its
        shard may hold chunk files nothing references any more. Returns
        the number of stale copies removed.
        """
        backend = self._chunks.backend
        if backend.kind != "sharded":
            return 0
        self._ensure_attached()
        removed = 0
        for cid in backend.scan_node(node_name):
            if self._chunks.refcounts.get(cid, 0) <= 0:
                backend.delete_on(node_name, cid)
                removed += 1
        return removed

    # -- chunk planning ----------------------------------------------------

    def plan(self, image: CheckpointImage, mode: str = "full",
             writer: Optional[str] = None) -> SavePlan:
        """Split the image into chunks and decide what must be written.

        ``writer`` names the node taking the checkpoint; the backend's
        placement gives it the primary copy of every new chunk (writer
        affinity) and decides where the replicas go, and the plan's
        per-destination byte split drives the pipelined cost model.
        """
        if mode not in ("full", "dedup", "incremental"):
            raise CheckpointError(f"unknown save mode {mode!r}")
        self._ensure_attached()
        plan = SavePlan(mode=mode, writer=writer)
        backend = self._chunks.backend
        planned: set = set()
        group_dests: Dict[str, int] = {}

        def add(cid: str, nbytes: int, payload: Optional[bytes],
                must_hash: bool) -> Tuple[bool, int]:
            """Plan one chunk; returns (written?, serialize_bytes)."""
            if mode == "full":
                write = True
            else:
                write = cid not in planned and not self._chunks.contains(cid)
            planned.add(cid)
            plan.chunks.append(_PlannedChunk(
                cid=cid, nbytes=nbytes, write=write,
                force=(mode == "full"), payload=payload))
            plan.chunks_total += 1
            plan.total_bytes += nbytes
            if write:
                plan.chunks_new += 1
                plan.write_bytes += nbytes
                dests = backend.write_dests(cid, writer)
                for index, dest in enumerate(dests):
                    group_dests[dest] = group_dests.get(dest, 0) + nbytes
                    if index > 0:
                        plan.replica_bytes += nbytes
            serialize = nbytes if (must_hash or write) else 0
            plan.serialize_bytes += serialize
            return write, serialize

        manifest_procs = []
        for proc in image.processes:
            group_serialize = 0
            group_write = 0
            blob = proc.program_blob
            wrote, ser = add(blob_chunk_id(blob), len(blob), blob,
                             must_hash=True)
            group_serialize += ser
            group_write += len(blob) if wrote else 0

            fd_entries = []
            for fd_image in proc.fds:
                if fd_image.kind in _CHUNKED_FD_KINDS:
                    detail_blob = freeze_object(fd_image.detail)
                    cid = blob_chunk_id(detail_blob)
                    wrote, ser = add(cid, len(detail_blob), detail_blob,
                                     must_hash=True)
                    group_serialize += ser
                    group_write += len(detail_blob) if wrote else 0
                    fd_entries.append({
                        "fd": fd_image.fd, "kind": fd_image.kind,
                        "mode": fd_image.mode, "detail_cid": cid,
                        "detail_len": len(detail_blob)})
                else:
                    fd_entries.append({
                        "fd": fd_image.fd, "kind": fd_image.kind,
                        "mode": fd_image.mode, "detail": fd_image.detail})

            memory = proc.memory
            dirty = memory.dirty_pages
            for cid, page in iter_page_chunks(
                    image.pod_name, proc.vpid, memory):
                must_hash = mode != "incremental" or page in dirty
                wrote, ser = add(cid, PAGE_SIZE, None,
                                 must_hash=must_hash)
                group_serialize += ser
                group_write += PAGE_SIZE if wrote else 0

            plan.groups.append((group_serialize, group_write))
            plan.dest_groups.append(dict(group_dests))
            group_dests.clear()
            manifest_procs.append({
                "vpid": proc.vpid, "parent_vpid": proc.parent_vpid,
                "name": proc.name,
                "program_cid": blob_chunk_id(blob),
                "program_len": len(blob),
                "memory": memory,
                "resume_syscall": proc.resume_syscall,
                "fds": fd_entries,
                "was_stopped_by_user": proc.was_stopped_by_user,
                "initial_result": proc.initial_result,
            })

        tail_serialize = 0
        tail_write = 0
        manifest_pipes = []
        for pipe in image.pipes:
            cid = blob_chunk_id(pipe.buffer)
            wrote, ser = add(cid, len(pipe.buffer), pipe.buffer,
                             must_hash=True)
            tail_serialize += ser
            tail_write += len(pipe.buffer) if wrote else 0
            manifest_pipes.append({
                "index": pipe.index, "buffer_cid": cid,
                "buffer_len": len(pipe.buffer),
                "readers": pipe.readers, "writers": pipe.writers})
        manifest_shm = []
        for shm in image.shm:
            cid = blob_chunk_id(shm.payload_blob)
            wrote, ser = add(cid, len(shm.payload_blob), shm.payload_blob,
                             must_hash=True)
            tail_serialize += ser
            tail_write += len(shm.payload_blob) if wrote else 0
            manifest_shm.append({
                "vid": shm.vid, "app_key": shm.app_key, "size": shm.size,
                "payload_cid": cid,
                "payload_len": len(shm.payload_blob)})
        if tail_serialize or tail_write:
            plan.groups.append((tail_serialize, tail_write))
            plan.dest_groups.append(dict(group_dests))
            group_dests.clear()

        plan.manifest = {
            "format": MANIFEST_FORMAT,
            "meta": {
                "pod_name": image.pod_name, "taken_at": image.taken_at,
                "ip": image.ip, "mac": image.mac,
                "fake_mac": image.fake_mac,
                "own_wire_mac": image.own_wire_mac,
                "next_vpid": image.next_vpid,
                "next_vipc": image.next_vipc,
                "state_bytes": image.state_bytes,
                "written_bytes": image.written_bytes,
                "total_chunk_bytes": plan.total_bytes,
                "sockets_captured": image.sockets_captured,
                "version": 0,
            },
            "processes": manifest_procs,
            "pipes": manifest_pipes,
            "shm": manifest_shm,
            "sem": [(s.vid, s.app_key, s.value) for s in image.sem],
        }
        return plan

    # -- save / load -------------------------------------------------------

    def save(self, image: CheckpointImage, mode: str = "full",
             plan: Optional[SavePlan] = None,
             writer: Optional[str] = None) -> int:
        """Persist an image; returns its version number.

        Writes only the plan's new chunks (all of them in ``full`` mode),
        increments every referenced chunk's refcount, then commits the
        manifest — the version exists atomically once the manifest does.
        ``writer`` (or the plan's recorded writer) anchors placement so
        the checkpointing node keeps the primary copy of every chunk.
        """
        self._ensure_attached()
        if plan is None:
            plan = self.plan(image, mode=mode, writer=writer)
        if writer is None:
            writer = plan.writer
        chunks_before = self._chunks.chunks_written
        written_before = self._chunks.bytes_written
        deduped_before = self._chunks.bytes_deduped
        replicas_before = self._chunks.replica_bytes
        try:
            version = self.latest_version(image.pod_name) + 1
        except CheckpointError:
            version = 1
        for chunk in plan.chunks:
            if chunk.write:
                payload = chunk.payload if chunk.payload is not None \
                    else page_chunk_payload(chunk.cid)
                self._chunks.write(chunk.cid, payload, force=chunk.force,
                                   writer=writer)
            else:
                self._chunks.bytes_deduped += chunk.nbytes
            self._chunks.incref(chunk.cid)
        manifest = plan.manifest
        manifest["meta"]["version"] = version
        manifest["meta"]["written_bytes"] = image.written_bytes
        manifest["meta"]["total_chunk_bytes"] = plan.total_bytes
        blob = freeze_object(manifest)
        path = self._manifest_path(image.pod_name, version)
        self.fs.create(path)
        self.fs.write_at(path, 0, blob)
        if self.sanitizer is not None:
            for cid, _nbytes in self._manifest_chunk_refs(manifest):
                self._audit_expected[cid] = \
                    self._audit_expected.get(cid, 0) + 1
        else:
            self._audit_valid = False
        self._latest[image.pod_name] = version
        self.last_plan = plan
        if self.metrics is not None:
            self.metrics.counter("store.saves").inc(label=mode)
            self.metrics.counter("store.chunks_written").inc(
                self._chunks.chunks_written - chunks_before, label=mode)
            self.metrics.counter("store.bytes_written").inc(
                self._chunks.bytes_written - written_before, label=mode)
            self.metrics.counter("store.bytes_deduped").inc(
                self._chunks.bytes_deduped - deduped_before, label=mode)
            self.metrics.counter("store.replica_bytes_written").inc(
                self._chunks.replica_bytes - replicas_before, label=mode)
            self.metrics.histogram("store.save_write_bytes").observe(
                self._chunks.bytes_written - written_before)
        self._sanitize_audit("save")
        return version

    def load(self, pod_name: str,
             version: Optional[int] = None) -> CheckpointImage:
        self._ensure_attached()
        if version is None:
            version = self.latest_version(pod_name)
        path = self._manifest_path(pod_name, version)
        if not self.fs.exists(path):
            raise CheckpointError(
                f"no checkpoint v{version} for pod {pod_name!r}")
        manifest = thaw_object(
            self.fs.read_at(path, 0, self.fs.size(path)))
        meta = manifest["meta"]
        image = CheckpointImage(
            pod_name=meta["pod_name"], taken_at=meta["taken_at"],
            ip=meta["ip"], mac=meta["mac"], fake_mac=meta["fake_mac"],
            own_wire_mac=meta["own_wire_mac"],
            next_vpid=meta["next_vpid"], next_vipc=meta["next_vipc"],
            state_bytes=meta["state_bytes"],
            written_bytes=meta["written_bytes"],
            total_chunk_bytes=meta["total_chunk_bytes"],
            sockets_captured=meta["sockets_captured"],
            version=meta["version"])
        try:
            for entry in manifest["processes"]:
                fds = []
                for fd_entry in entry["fds"]:
                    if "detail_cid" in fd_entry:
                        detail = thaw_object(
                            self._chunks.read(fd_entry["detail_cid"]))
                    else:
                        detail = fd_entry["detail"]
                    fds.append(FdImage(fd=fd_entry["fd"],
                                       kind=fd_entry["kind"],
                                       mode=fd_entry["mode"],
                                       detail=detail))
                memory = entry["memory"]
                # Pull every page chunk back from the store (the real
                # read traffic of a restore) and verify none were lost
                # to GC or node failure.
                for cid, _page in iter_page_chunks(
                        meta["pod_name"], entry["vpid"], memory):
                    self._chunks.read(cid)
                image.processes.append(ProcessImage(
                    vpid=entry["vpid"], parent_vpid=entry["parent_vpid"],
                    name=entry["name"],
                    program_blob=self._chunks.read(entry["program_cid"]),
                    memory=memory,
                    resume_syscall=entry["resume_syscall"], fds=fds,
                    was_stopped_by_user=entry["was_stopped_by_user"],
                    initial_result=entry["initial_result"]))
            for entry in manifest["pipes"]:
                image.pipes.append(PipeImage(
                    index=entry["index"],
                    buffer=self._chunks.read(entry["buffer_cid"]),
                    readers=entry["readers"], writers=entry["writers"]))
            for entry in manifest["shm"]:
                image.shm.append(ShmImage(
                    vid=entry["vid"], app_key=entry["app_key"],
                    size=entry["size"],
                    payload_blob=self._chunks.read(entry["payload_cid"])))
        except ChunkMissingError as exc:
            raise VersionUnreconstructibleError(
                pod_name, version, missing_cid=exc.cid,
                queried_nodes=exc.queried_nodes) from exc
        for vid, app_key, value in manifest["sem"]:
            image.sem.append(SemImage(vid=vid, app_key=app_key,
                                      value=value))
        image.chunk_sources = self._chunk_sources(manifest)
        return image

    def _chunk_sources(self, manifest: Dict[str, Any]
                       ) -> Optional[List[Tuple[Tuple[str, ...], int]]]:
        """Group a manifest's chunk bytes by surviving holder set.

        The restore engine turns this into a parallel-fetch fraction:
        chunks local to the restoring node cost one local disk read,
        remote groups stream concurrently from every live replica. Only
        meaningful for placed (sharded) backends; the legacy layout
        returns ``None`` (single-disk restore, fraction 1.0).
        """
        backend = self._chunks.backend
        if backend.kind != "sharded":
            return None
        grouped: Dict[Tuple[str, ...], int] = {}
        for cid, nbytes in self._manifest_chunk_refs(manifest):
            holders = backend.live_holders(cid)
            grouped[holders] = grouped.get(holders, 0) + nbytes
        return sorted(grouped.items())

    # -- garbage collection ------------------------------------------------

    def _manifest_chunk_refs(self,
                             manifest: Dict[str, Any]
                             ) -> Iterator[Tuple[str, int]]:
        """Every (chunk id, size) reference a manifest holds, with
        multiplicity — the exact sequence save incref'd."""
        pod_name = manifest["meta"]["pod_name"]
        for entry in manifest["processes"]:
            yield entry["program_cid"], entry["program_len"]
            for fd_entry in entry["fds"]:
                if "detail_cid" in fd_entry:
                    yield fd_entry["detail_cid"], fd_entry["detail_len"]
            for cid, _page in iter_page_chunks(
                    pod_name, entry["vpid"], entry["memory"]):
                yield cid, PAGE_SIZE
        for entry in manifest["pipes"]:
            yield entry["buffer_cid"], entry["buffer_len"]
        for entry in manifest["shm"]:
            yield entry["payload_cid"], entry["payload_len"]

    def audit(self, deep: bool = False) -> List[Dict[str, Any]]:
        """Compare the manifest-derived chunk refcounts against the
        in-memory counts (and, with ``deep=True``, the chunk files).

        The shallow form uses the incrementally maintained shadow counts
        and is cheap enough to run after every save; the deep form
        re-reads every manifest from disk (cross-checking the shadow's
        own upkeep) and additionally looks for missing and orphan chunk
        files.  Returns a list of problems, empty when sound:
        refcount mismatches, dangling in-memory counts, non-positive
        counts, and (deep) references to missing chunk files plus chunk
        files nothing references.
        """
        self._ensure_attached()
        if deep or not self._audit_valid:
            deep = True
            rebuilt: Dict[str, int] = {}
            for path in self.fs.listdir(f"{self.root}/"):
                if not path.endswith(".manifest"):
                    continue
                manifest = thaw_object(
                    self.fs.read_at(path, 0, self.fs.size(path)))
                for cid, _nbytes in self._manifest_chunk_refs(manifest):
                    rebuilt[cid] = rebuilt.get(cid, 0) + 1
            self._audit_expected = rebuilt
            self._audit_valid = True
        expected = self._audit_expected
        problems: List[Dict[str, Any]] = []
        if expected != self._chunks.refcounts:
            for cid, count in sorted(expected.items()):
                actual = self._chunks.refcounts.get(cid, 0)
                if actual != count:
                    problems.append({"kind": "refcount_mismatch",
                                     "cid": cid, "expected": count,
                                     "actual": actual})
            for cid, count in sorted(self._chunks.refcounts.items()):
                if cid not in expected:
                    problems.append({"kind": "dangling_refcount",
                                     "cid": cid, "actual": count})
                if count <= 0:
                    problems.append({"kind": "nonpositive_refcount",
                                     "cid": cid, "actual": count})
        if deep:
            backend = self._chunks.backend
            # Per-shard sweep: a referenced chunk is *missing* only when
            # no shard (up or down) holds a copy — copies on a powered-
            # off node are unavailable, not lost. Orphans are audited on
            # reachable shards only; a down shard legitimately keeps
            # copies of chunks deleted while it was out.
            for cid in sorted(expected):
                if backend.total_copies(cid) == 0:
                    problems.append({"kind": "missing_chunk", "cid": cid,
                                     "expected": expected[cid]})
            if backend.kind == "sharded":
                for node in backend.up_nodes:
                    for cid in backend.scan_node(node):
                        if expected.get(cid, 0) == 0:
                            problems.append({"kind": "orphan_chunk",
                                             "cid": cid, "node": node})
            else:
                for cid in backend.scan():
                    if expected.get(cid, 0) == 0:
                        problems.append({"kind": "orphan_chunk",
                                         "cid": cid})
        return problems

    def _sanitize_audit(self, context: str) -> None:
        if self.sanitizer is not None:
            self.sanitizer.check_store(self, context=context)

    def _drop_version(self, pod_name: str, version: int) -> bool:
        """Decref a version's chunks and delete its manifest."""
        path = self._manifest_path(pod_name, version)
        if not self.fs.exists(path):
            return False
        manifest = thaw_object(
            self.fs.read_at(path, 0, self.fs.size(path)))
        for cid, _nbytes in self._manifest_chunk_refs(manifest):
            self._chunks.decref(cid)
            if self.sanitizer is not None:
                left = self._audit_expected.get(cid, 0) - 1
                if left > 0:
                    self._audit_expected[cid] = left
                else:
                    self._audit_expected.pop(cid, None)
        if self.sanitizer is None:
            self._audit_valid = False
        self.fs.unlink(path)
        return True

    def discard(self, pod_name: str, version: int) -> None:
        """Drop an uncommitted image (aborted round)."""
        self._ensure_attached()
        self._drop_version(pod_name, version)
        remaining = self.versions(pod_name)
        self._latest[pod_name] = max(remaining) if remaining else 0
        self._sanitize_audit("discard")

    def prune(self, pod_name: str, keep: int = 1) -> int:
        """Delete all but the newest ``keep`` versions; returns removed.

        Refcounting makes this safe for incremental chains: a chunk a
        kept version still references survives the removal of the older
        version that first wrote it.
        """
        self._ensure_attached()
        existing = self.versions(pod_name)
        doomed = existing[:-keep] if keep > 0 else existing
        removed = 0
        for version in doomed:
            if self._drop_version(pod_name, version):
                removed += 1
        remaining = self.versions(pod_name)
        self._latest[pod_name] = max(remaining) if remaining else 0
        self._sanitize_audit("prune")
        return removed
