"""The benchmark wall-clock regression guard (pure comparison logic)."""

import json

from repro.bench.regression import (
    Comparison,
    compare_reports,
    load_report,
)


def test_compare_flags_only_regressions_beyond_tolerance():
    baseline = {"a": 1.0, "b": 2.0, "c": 3.0}
    current = {"a": 1.1, "b": 2.5, "c": 2.0}
    rows = compare_reports(baseline, current, tolerance=0.2)
    verdicts = {row.name: row.regressed for row in rows}
    assert verdicts == {"a": False, "b": True, "c": False}


def test_compare_ignores_benchmarks_missing_from_either_side():
    rows = compare_reports({"a": 1.0, "gone": 5.0}, {"a": 1.0, "new": 9.0})
    assert [row.name for row in rows] == ["a"]


def test_ratio_handles_zero_baseline():
    row = Comparison(name="x", baseline_s=0.0, current_s=1.0,
                     tolerance=0.2)
    assert row.ratio == 1.0 and not row.regressed


def test_load_report_extracts_means(tmp_path):
    report = {"benchmarks": [
        {"name": "test_fast", "stats": {"mean": 0.5, "stddev": 0.01}},
        {"name": "test_slow", "stats": {"mean": 4.0, "stddev": 0.10}},
    ]}
    path = tmp_path / "bench.json"
    path.write_text(json.dumps(report))
    assert load_report(str(path)) == {"test_fast": 0.5, "test_slow": 4.0}


def test_committed_baseline_parses():
    """The repo ships a baseline for `python -m repro bench --compare`."""
    means = load_report("benchmarks/BENCH_fig5.json")
    assert means, "baseline must contain at least one benchmark"
    assert all(mean > 0 for mean in means.values())
