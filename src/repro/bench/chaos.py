"""``repro chaos``: the self-healing smoke test.

Runs the slm benchmark on a supervised, sanitized cluster while a seeded
:class:`~repro.cruz.faults.ChaosInjector` crashes an application node in
the middle of a coordinated checkpoint round (and later flaps a survivor's
link just long enough to exercise the failure detector's false-alarm
path). The run must heal itself with no manual intervention: the
supervisor detects the death, the in-flight round aborts cleanly, the
dead node's pods restart on survivors from the last *committed* version,
and the application finishes with bit-exact output.

Everything is derived from the seed — the same ``--seed`` replays the
same crash instants, the same placement and the same final field hash —
so a chaos run doubles as a determinism probe: ``chaos_determinism``
runs it under both event tie-break policies and diffs the fingerprints.
"""

from __future__ import annotations

import hashlib
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, List, Optional

import numpy as np

from repro.errors import CoordinationError


@dataclass
class ChaosResult:
    """Everything ``repro chaos`` reports (and the tests assert on)."""

    seed: int
    tiebreak: str
    sim_time_s: float = 0.0
    completed: bool = False
    output_correct: bool = False
    #: sha256 of the final global field — the bit-for-bit replay probe.
    field_hash: str = ""
    #: Store/clock digest (same scheme as ``repro analyze determinism``).
    state_hash: str = ""
    rounds_committed: int = 0
    rounds_aborted: int = 0
    deaths: List[str] = field(default_factory=list)
    false_alarms: int = 0
    #: One entry per automatic failover: MTTR and its phase breakdown.
    failovers: List[Dict[str, Any]] = field(default_factory=list)
    failover_failures: List[str] = field(default_factory=list)
    sanitizer_violations: int = 0
    sanitizer_report: str = ""
    frames_dropped: int = 0
    chaos_log: List[Dict[str, Any]] = field(default_factory=list)
    #: Suspect-state eviction mode (heartbeat mute, no real crash).
    evict_mode: bool = False
    #: One entry per suspect-state live eviction (``supervisor.evictions``).
    evictions: List[Dict[str, Any]] = field(default_factory=list)
    #: Storage-loss mode: the crashed node held chunk replicas, no pods.
    kill_replica_mode: bool = False
    #: Chunks the re-replication daemon repaired after the loss.
    rereplicated_chunks: int = 0
    #: Chunks still below target replication when the run ended.
    under_replicated_after: int = 0
    #: Every committed version still reconstructible from survivors.
    versions_reconstructible: bool = False

    @property
    def mttr_s(self) -> Optional[float]:
        """Detection-to-serving time of the first failover, seconds."""
        if not self.failovers:
            return None
        return self.failovers[0]["phases"]["total"]

    @property
    def ok(self) -> bool:
        base = (self.completed and self.output_correct
                and self.sanitizer_violations == 0
                and not self.failover_failures)
        if self.evict_mode:
            # The healthy-but-silent node's pods must have been live-
            # migrated away — every eviction succeeded, and did so while
            # the node was still merely *suspect* (bit-exact output then
            # proves no acknowledged data was lost across the move).
            return (base and bool(self.evictions)
                    and all(entry.get("ok")
                            and entry.get("before_declaration")
                            for entry in self.evictions))
        if self.kill_replica_mode:
            # Pure storage loss: the dead node hosted no pods, so no
            # failover may fire — but every committed version must stay
            # reconstructible and the re-replication daemon must have
            # repaired the chunk space back to full replication.
            return (base and not self.failovers
                    and self.versions_reconstructible
                    and self.rereplicated_chunks > 0
                    and self.under_replicated_after == 0)
        return base and bool(self.failovers)

    def render(self) -> str:
        head = "chaos: PASS" if self.ok else "chaos: FAIL"
        lines = [
            f"{head} (seed={self.seed}, tiebreak={self.tiebreak}, "
            f"t={self.sim_time_s:.3f}s)",
            f"  completed={self.completed} "
            f"output_correct={self.output_correct} "
            f"field_hash={self.field_hash[:16]}",
            f"  rounds: committed={self.rounds_committed} "
            f"aborted={self.rounds_aborted}",
            f"  deaths={self.deaths} false_alarms={self.false_alarms} "
            f"frames_dropped={self.frames_dropped}",
        ]
        for fo in self.failovers:
            phases = fo["phases"]
            lines.append(
                f"  failover[{fo['app']}]: {fo['dead_node']} -> "
                f"{fo['placement']} v{fo['version']} "
                f"attempts={fo['attempts']}")
            lines.append(
                "    mttr={total:.3f}s (detect={detect:.3f} "
                "verify={verify:.3f} place={place:.3f} "
                "restart={restart:.3f})".format(**phases))
        for entry in self.evictions:
            if entry.get("ok"):
                lines.append(
                    f"  evicted[{entry['pod']}]: {entry['from']} -> "
                    f"{entry['to']} rounds={entry['rounds']} "
                    f"pause={entry['pause_window_s'] * 1e3:.2f}ms "
                    f"before_declaration={entry['before_declaration']}")
            else:
                lines.append(
                    f"  eviction FAILED[{entry['pod']}]: "
                    f"{entry.get('reason', '?')}")
        for reason in self.failover_failures:
            lines.append(f"  failover FAILED: {reason}")
        if self.kill_replica_mode:
            lines.append(
                f"  replica loss: rereplicated="
                f"{self.rereplicated_chunks} "
                f"under_replicated={self.under_replicated_after} "
                f"reconstructible={self.versions_reconstructible}")
        lines.append(f"  {self.sanitizer_report.splitlines()[0]}")
        return "\n".join(lines)


def run_chaos(seed: int = 7,
              app_nodes: int = 3,
              ranks: int = 2,
              steps: int = 40,
              rows_per_rank: int = 4,
              cols: int = 16,
              total_work_s: float = 4.0,
              memory_mb_per_rank: float = 2.0,
              checkpoint_interval_s: float = 0.6,
              crash_node_index: int = 0,
              crash_at: Optional[float] = None,
              crash_jitter_s: float = 0.008,
              revive_after: Optional[float] = None,
              link_flap: bool = True,
              evict_on_suspect: bool = False,
              kill_replica: bool = False,
              tiebreak: str = "fifo",
              limit_s: float = 60.0) -> ChaosResult:
    """One seeded chaos run; see the module docstring for the scenario.

    The default crash lands ~10 ms into the second checkpoint round —
    mid-save, the worst moment: the round must abort (a dead node never
    writes another WAL record) and failover must fall back to the round
    that *committed*, not the one in flight.

    With ``evict_on_suspect`` the scenario changes: instead of a crash,
    the target node's *heartbeats* are muted while it stays fully alive
    (silence outlasting the death lease). The supervisor must live-
    migrate its pods to a healthy node while the node is still merely
    suspect — before the (false) death declaration — and the app must
    still finish bit-exact, proving no acknowledged data was lost.

    With ``kill_replica`` the crash targets *storage*, not compute: the
    cluster runs the sharded store at replication factor 2, and the
    victim is the last application node — which hosts chunk replicas
    but no pods under the default placement. Killing it mid-round must
    not trigger any failover; instead every committed version must stay
    reconstructible from the surviving replicas and the background
    re-replication daemon must repair the chunk space back to full
    replication before the run ends.
    """
    from repro.analysis.determinism import state_hash
    from repro.apps.slm import reference_solution, slm_factory
    from repro.cruz.cluster import CruzCluster
    from repro.cruz.faults import ChaosInjector

    rows = rows_per_rank * ranks
    result = ChaosResult(seed=seed, tiebreak=tiebreak,
                         evict_mode=evict_on_suspect,
                         kill_replica_mode=kill_replica)
    if kill_replica:
        # The victim must be a replica-only node: the default placement
        # packs the ranks onto the low-index nodes, so the last node
        # holds chunk copies (rf=2 ring successors) but no pods.
        if ranks >= app_nodes:
            raise ValueError("kill_replica needs a pod-free node: "
                             f"ranks={ranks} fills all {app_nodes} "
                             "application nodes")
        crash_node_index = app_nodes - 1
    cluster = CruzCluster(app_nodes, seed=seed, supervise=True,
                          sanitize=True, tiebreak=tiebreak,
                          evict_on_suspect=evict_on_suspect,
                          replication_factor=2 if kill_replica else None)
    app = cluster.launch_app_factory(
        "slm", ranks,
        slm_factory(ranks, global_rows=rows, cols=cols, steps=steps,
                    total_work_s=total_work_s,
                    memory_mb_per_rank=memory_mb_per_rank))

    def done() -> bool:
        programs = cluster.app_programs(app)
        return (len(programs) == ranks
                and all(p.step_count >= steps for p in programs))

    def members_alive() -> bool:
        return all(
            any(pod.name in agent.pods and not agent.crashed
                for agent in cluster.agents)
            for pod in app.pods)

    def checkpoint_daemon():
        while True:
            yield cluster.sim.timeout(checkpoint_interval_s)
            if done():
                return
            if cluster.supervisor.failover_active(app.name) \
                    or cluster.supervisor.eviction_active(app.name) \
                    or not members_alive():
                continue
            try:
                yield from cluster.coordinator.checkpoint(app)
                result.rounds_committed += 1
            except CoordinationError:
                # A chaos-aborted round: the supervisor (or the
                # coordinator's own timeout) failed it under us. The
                # next tick retries against the healed membership.
                result.rounds_aborted += 1

    cluster.sim.process(checkpoint_daemon(), name="checkpoint-daemon")

    chaos = ChaosInjector(cluster)
    if crash_at is None:
        # Arm just before the second round; fire mid-save once the
        # round is actually in flight (round starts drift with the
        # workload, so a fixed-clock crash would miss the window).
        crash_at = 2 * checkpoint_interval_s
    worst_beat_s = (cluster.heartbeat_interval_s
                    + cluster.heartbeat_jitter_s)
    if evict_on_suspect:
        # Healthy node, silent liveness path: mute long past the death
        # lease so the eviction has to beat the declaration, not wait
        # it out.
        chaos.schedule_heartbeat_mute(
            crash_node_index, at=crash_at,
            duration_s=(cluster.lease_misses + 3) * worst_beat_s)
    else:
        chaos.schedule_node_crash_mid_round(
            crash_node_index, after=crash_at, within_s=crash_jitter_s,
            revive_after=revive_after)
    if link_flap and not evict_on_suspect and not kill_replica:
        # A survivor's link drops for less than the death threshold:
        # the detector must suspect and then stand down, not declare.
        # (Skipped for the storage-loss scenario: the flap probes the
        # failure detector, which the compute-crash scenario already
        # covers, and its dropped app frames would only add
        # retransmission noise to the healing measurement.)
        flap_node = (crash_node_index + 1) % app_nodes
        flap_misses = max(1, cluster.lease_misses - 2)
        chaos.schedule_link_flap(
            flap_node, at=crash_at + 1.0,
            duration_s=flap_misses * worst_beat_s)

    try:
        cluster.run_until(done, limit=limit_s)
        result.completed = True
    except TimeoutError:
        result.completed = False
    cluster.run_for(0.2)  # drain retransmits and trailing ACKs

    result.sim_time_s = cluster.sim.now
    if result.completed:
        programs = sorted(cluster.app_programs(app),
                          key=lambda p: p.rank)
        final = np.vstack([p.q for p in programs])
        expected = reference_solution(rows, cols, steps)
        result.output_correct = bool(np.array_equal(final, expected))
        result.field_hash = hashlib.sha256(
            np.ascontiguousarray(final).tobytes()).hexdigest()

    # Deep final audit: every manifest re-read, refcounts re-derived.
    sanitizer = cluster.trace.sanitizer
    sanitizer.check_store(cluster.store, time=cluster.sim.now,
                          context="final", deep=True)
    result.sanitizer_violations = len(sanitizer.violations)
    result.sanitizer_report = sanitizer.report()

    supervisor = cluster.supervisor
    result.deaths = [death["node"] for death in supervisor.deaths]
    result.false_alarms = len(cluster.spans.query(
        "failover.detect", declared=False))
    for record in supervisor.failovers:
        entry = asdict(record)
        entry["phases"] = record.phases()
        result.failovers.append(entry)
    result.failover_failures = [str(error)
                                for error in supervisor.failures]
    result.evictions = [dict(entry) for entry in supervisor.evictions]
    dropped = cluster.metrics.counter("link.frames_dropped")
    result.frames_dropped = int(dropped.value)
    result.chaos_log = list(chaos.log)
    store = cluster.store
    result.rereplicated_chunks = int(
        store.stats.get("rereplicated_chunks", 0))
    result.under_replicated_after = len(store.under_replicated())
    result.versions_reconstructible = all(
        set(store.versions(pod.name))
        == set(store.reconstructible_versions(pod.name))
        for pod in app.pods)
    result.state_hash = state_hash(cluster)
    return result


def chaos_determinism(seed: int = 7, **kwargs) -> List[str]:
    """Run the chaos scenario under FIFO and LIFO event tie-breaking
    and return every fingerprint path where they disagree (schedule
    races); empty means the healing pipeline is deterministic."""
    from repro.analysis.determinism import _diff

    divergences: List[str] = []
    runs = {}
    for tiebreak in ("fifo", "lifo"):
        r = run_chaos(seed=seed, tiebreak=tiebreak, **kwargs)
        runs[tiebreak] = {
            "completed": r.completed,
            "output_correct": r.output_correct,
            "field_hash": r.field_hash,
            "state_hash": r.state_hash,
            "rounds": [r.rounds_committed, r.rounds_aborted],
            "deaths": r.deaths,
            "evictions": [
                {key: entry.get(key)
                 for key in ("pod", "from", "to", "ok", "rounds",
                             "pause_window_s", "before_declaration")}
                for entry in r.evictions],
            "failovers": [
                {"dead_node": fo["dead_node"],
                 "version": fo["version"],
                 "attempts": fo["attempts"],
                 "placement": fo["placement"],
                 "phases": fo["phases"]}
                for fo in r.failovers],
            "chaos_log": r.chaos_log,
            "replica": [r.rereplicated_chunks,
                        r.under_replicated_after,
                        r.versions_reconstructible],
            "sim_time": round(r.sim_time_s, 12),
        }
    _diff(runs["fifo"], runs["lifo"], "chaos", divergences)
    return divergences
