"""Failure injection: coordinator crashes, link flaps, torture runs."""

import pytest

from repro.apps.ring import validate_ring
from repro.apps.slm import reference_solution, slm_factory
from repro.errors import CoordinationError

from tests.test_cruz_coordination import (
    make_cluster,
    ring_app,
    run_app_to_completion,
    workers_of,
)


def test_coordinator_crash_mid_round_agents_abort_unilaterally():
    """Agents finish the local save, hear nothing, and abort: pods
    resume, filters drop, no image version is committed."""
    cluster = make_cluster(2, coordinator_timeout_s=300.0)
    for agent in cluster.agents:
        agent.continue_timeout_s = 2.0
    app = ring_app(cluster, 2, max_token=30000)
    cluster.run_for(0.2)
    versions_before = {pod.name: 0 for pod in app.pods}

    # Start a round, then kill the coordinator after <done> is sent but
    # before <continue>: silence its UDP handler.
    from repro.cruz.protocol import COORDINATOR_PORT
    task = cluster.sim.process(cluster.coordinator.checkpoint(app))
    cluster.run_for(0.001)  # <checkpoint> delivered, saves in progress
    cluster.coordinator_node.stack.udp.unbind(COORDINATOR_PORT)
    cluster.run_for(5.0)  # agents time out waiting for <continue>

    for agent in cluster.agents:
        assert agent.unilateral_aborts == 1
    # The pods resumed and their filters were removed.
    for index, pod in enumerate(app.pods):
        assert not cluster.nodes[index].stack.netfilter.rules
        assert any(p.is_alive for p in pod.processes())
    # No committed image exists for either pod.
    for pod in app.pods:
        with pytest.raises(Exception):
            cluster.store.latest_version(pod.name)
    del task, versions_before
    # The ring is still healthy.
    run_app_to_completion(cluster, app)
    validate_ring(workers_of(cluster, app))


def test_link_flap_during_checkpoint_round():
    """A brief link outage delays, but does not corrupt, a round."""
    cluster = make_cluster(2, coordinator_timeout_s=60.0)
    app = ring_app(cluster, 2, max_token=4000)
    cluster.run_for(0.2)
    # Take node0's link down for the whole round: every transmission of
    # <checkpoint> (original and retries) is lost, the sender exhausts
    # its retry budget and fails the round well before the 60 s round
    # timeout. A *shorter* flap would instead be ridden out by
    # retransmission (tests/test_control_faults.py).
    cluster.links[0].down = True
    with pytest.raises(CoordinationError):
        cluster.checkpoint_app(app, limit=1e6)
    cluster.links[0].down = False
    cluster.run_for(1.0)
    stats = cluster.checkpoint_app(app)
    assert stats.committed
    run_app_to_completion(cluster, app)
    validate_ring(workers_of(cluster, app))


def test_torture_random_checkpoints_and_migrations_stay_bit_identical():
    """The integration torture test: random-phase checkpoints, a crash
    + rollback, and a live migration — final slm field must still be
    bit-identical to the analytic reference."""
    import random
    rng = random.Random(20260707)
    steps = 90
    cluster = make_cluster(4)
    app = cluster.launch_app_factory(
        "slm", 2, slm_factory(2, global_rows=16, cols=24, steps=steps,
                              total_work_s=9.0), node_indices=[0, 1])
    # Several checkpoints at random instants, mixed protocols.
    for index in range(4):
        cluster.run_for(0.2 + rng.random() * 0.5)
        stats = cluster.checkpoint_app(
            app, optimized=bool(index % 2),
            early_network=bool(index % 2),
            incremental=index >= 2)
        assert stats.committed
    # Live-migrate one rank.
    cluster.migrate_pod(app.pods[0], target_node_index=2)
    cluster.run_for(0.3 + rng.random() * 0.3)
    # Crash everything and roll back to the last checkpoint.
    cluster.checkpoint_app(app)
    cluster.crash_app(app)
    cluster.restart_app(app, node_indices=[3, 1])
    run_app_to_completion(cluster, app)

    import numpy as np
    from tests.test_apps import assemble_field
    field = assemble_field(cluster.app_programs(app))
    np.testing.assert_array_equal(field,
                                  reference_solution(16, 24, steps))


def test_coordinator_crash_then_restart_recovers_via_wal():
    """A replacement coordinator re-attaches through the shared-store
    round log: it aborts the round its predecessor left in flight, never
    commits it, and resumes epoch numbering past it."""
    cluster = make_cluster(2, coordinator_timeout_s=300.0)
    for agent in cluster.agents:
        agent.continue_timeout_s = 5.0
    app = ring_app(cluster, 2, max_token=30000)
    cluster.run_for(0.2)

    task = cluster.sim.process(cluster.coordinator.checkpoint(app))
    cluster.run_for(0.001)  # <checkpoint> logged and sent, saves started
    epoch = cluster.coordinator._epoch
    assert cluster.store.rounds.outcome(epoch) is None  # in flight
    cluster.crash_coordinator()
    cluster.run_for(0.5)

    replacement = cluster.restart_coordinator()
    # Recovery decided the in-flight round: aborted, with a record.
    assert cluster.store.rounds.outcome(epoch) == "abort"
    record = cluster.store.rounds.abort_record(epoch)
    assert record["reason"] == "coordinator restart"
    cluster.run_for(2.0)
    # No half-taken checkpoint was committed.
    for pod in app.pods:
        with pytest.raises(Exception):
            cluster.store.latest_version(pod.name)
    for index, pod in enumerate(app.pods):
        assert not cluster.nodes[index].stack.netfilter.rules
        assert any(p.is_alive for p in pod.processes())
    del task
    # The replacement runs the next round under a fresh epoch.
    stats = cluster.checkpoint_app(app)
    assert stats.committed
    assert stats.epoch == epoch + 1
    assert replacement is cluster.coordinator
    run_app_to_completion(cluster, app)
    validate_ring(workers_of(cluster, app))


def test_agent_unilateral_abort_is_logged_to_wal():
    """Silent-coordinator aborts leave an abort record agents of a later
    recovery (and the verified commit) can see."""
    cluster = make_cluster(2, coordinator_timeout_s=300.0)
    for agent in cluster.agents:
        agent.continue_timeout_s = 1.0
    app = ring_app(cluster, 2, max_token=30000)
    cluster.run_for(0.2)
    task = cluster.sim.process(cluster.coordinator.checkpoint(app))
    cluster.run_for(0.001)
    epoch = cluster.coordinator._epoch
    cluster.crash_coordinator()
    cluster.run_for(3.0)  # agents time out and abort unilaterally
    assert all(agent.unilateral_aborts == 1 for agent in cluster.agents)
    record = cluster.store.rounds.abort_record(epoch)
    assert record is not None
    assert record["reason"] == "coordinator silent"
    del task


def test_abort_in_early_network_mode_removes_filters_everywhere():
    """Regression: an abort after <comm-disabled> in the optimized /
    early-network flow must remove the netfilter rules on every node,
    crashed saves included."""
    cluster = make_cluster(3, coordinator_timeout_s=2.0)
    app = ring_app(cluster, 3, max_token=100000)
    cluster.run_for(0.2)
    # Agent 2 disables comms, then its save errors out: its pod's filter
    # rule must not outlive the round.
    agent = cluster.agents[2]
    original = agent.checkpoint_engine.checkpoint

    def exploding_checkpoint(pod, **kwargs):
        raise RuntimeError("disk died mid-save")
        yield  # pragma: no cover - make it a generator

    agent.checkpoint_engine.checkpoint = exploding_checkpoint
    with pytest.raises(CoordinationError):
        cluster.checkpoint_app(app, optimized=True, early_network=True)
    agent.checkpoint_engine.checkpoint = original
    cluster.run_for(1.0)  # aborts land everywhere
    for node in cluster.nodes:
        assert not node.stack.netfilter.rules
    stats = cluster.checkpoint_app(app, optimized=True,
                                   early_network=True)
    assert stats.committed
    run_app_to_completion(cluster, app)
    validate_ring(workers_of(cluster, app))


def test_stale_epoch_checkpoint_does_not_recreate_round_state():
    """Regression: a control message for an epoch at or below the last
    completed round must be dropped, not re-create `_rounds` state."""
    from repro.cruz.protocol import CHECKPOINT, CONTINUE, ControlMessage
    cluster = make_cluster(2)
    app = ring_app(cluster, 2, max_token=50000)
    cluster.run_for(0.2)
    stats = cluster.checkpoint_app(app)
    assert stats.committed
    agent = cluster.agents[0]
    epoch = stats.epoch
    assert agent.last_completed_epoch >= epoch
    assert not agent._rounds
    versions_before = cluster.store.versions(app.pods[0].name)
    coord_ip = cluster.coordinator_node.stack.eth0.ip
    # A straggler retransmission from the completed round, bypassing the
    # endpoint's dedup cache (as after forget_epochs_below).
    agent._on_message(ControlMessage(
        kind=CHECKPOINT, epoch=epoch, pod_name=app.pods[0].name),
        coord_ip)
    agent._on_message(ControlMessage(kind=CONTINUE, epoch=epoch),
                      coord_ip)
    cluster.run_for(1.0)
    assert not agent._rounds  # no resurrected round state
    assert cluster.store.versions(app.pods[0].name) == versions_before
    run_app_to_completion(cluster, app)
    validate_ring(workers_of(cluster, app))


def test_send_failure_surfaces_as_coordination_error_with_node():
    """Regression: transport-layer exceptions (e.g. KeyError from an
    address table) must surface as CoordinationError naming the target
    node, not escape as a bare exception."""
    cluster = make_cluster(2, coordinator_timeout_s=5.0)
    app = ring_app(cluster, 2, max_token=50000)
    cluster.run_for(0.2)

    def broken_send(*_args, **_kwargs):
        raise KeyError("no route to host")

    cluster.coordinator.endpoint.send = broken_send
    with pytest.raises(CoordinationError, match="cannot send") as info:
        cluster.checkpoint_app(app)
    assert info.value.node_name == cluster.nodes[0].name
    epoch = cluster.coordinator._epoch
    assert cluster.store.rounds.outcome(epoch) == "abort"


def test_consolidation_failover_onto_single_node():
    """Restart every pod of a 2-node app on ONE surviving node: images
    verify green, TCP sessions resume, output stays bit-exact."""
    import numpy as np
    from repro.zap.verify import verify_image
    from tests.test_apps import assemble_field

    steps = 60
    cluster = make_cluster(3)
    app = cluster.launch_app_factory(
        "slm", 2, slm_factory(2, global_rows=16, cols=24, steps=steps,
                              total_work_s=6.0), node_indices=[0, 1])
    cluster.run_for(0.8)
    stats = cluster.checkpoint_app(app)
    assert stats.committed
    version = cluster.store.latest_version(app.pods[0].name)
    for pod in app.pods:
        assert verify_image(cluster.store.load(pod.name, version)).ok

    cluster.crash_app(app)
    cluster.restart_app(app, node_indices=[2, 2], version=version)
    assert all(pod.node is cluster.nodes[2] for pod in app.pods)
    assert all(pod.name in cluster.agents[2].pods for pod in app.pods)
    run_app_to_completion(cluster, app)
    field = assemble_field(cluster.app_programs(app))
    np.testing.assert_array_equal(field,
                                  reference_solution(16, 24, steps))


def test_migration_failure_rolls_back_to_source_node():
    """Regression (S1): a failed target restore must not leave the pod
    dead and ``app.pods`` dangling — it rolls back onto the source node
    and the typed error names the committed, restorable version."""
    from repro.errors import MigrationError

    cluster = make_cluster(3)
    app = ring_app(cluster, 2)
    cluster.run_for(0.2)
    victim = app.pods[0]

    def exploding_restart(image, node, resume=True):
        raise RuntimeError("target node out of memory")
        yield  # pragma: no cover - generator shape

    cluster.agents[2].restart_engine.restart = exploding_restart
    with pytest.raises(MigrationError) as info:
        cluster.migrate_pod(victim, target_node_index=2)
    error = info.value
    assert error.rolled_back
    assert error.pod_name == victim.name
    assert f"v{error.version}" in str(error)
    # The committed image the message names really is restorable.
    assert error.version in cluster.store.versions(victim.name)
    # app.pods points at the rolled-back pod, live on its source node.
    fallback = app.pods[0]
    assert fallback.name == victim.name
    assert fallback.node is cluster.nodes[0]
    assert fallback.name in cluster.agents[0].pods
    assert any(p.is_alive for p in fallback.processes())
    run_app_to_completion(cluster, app)
    validate_ring(workers_of(cluster, app))


def test_restart_mismatch_names_missing_members():
    """Regression (S2): re-pointing an app at a partial membership must
    raise, naming the missing members, and leave ``app.pods`` alone."""
    from repro.errors import RestartMismatchError

    cluster = make_cluster(2)
    app = ring_app(cluster, 2)
    cluster.run_for(0.2)
    assert cluster.checkpoint_app(app).committed
    pods_before = list(app.pods)
    cluster.crash_app(app)                 # nothing re-registered yet
    with pytest.raises(RestartMismatchError) as info:
        cluster.repoint_app(app)
    assert set(info.value.missing) == {p.name for p in pods_before}
    assert app.pods == pods_before         # untouched, not partial


def test_checkpoint_storm_every_100ms():
    """Aggressive checkpointing must not corrupt or wedge the app."""
    cluster = make_cluster(2)
    app = ring_app(cluster, 2, max_token=1500, work_per_hop_s=0.001)
    for _ in range(10):
        cluster.run_for(0.1)
        assert cluster.checkpoint_app(app).committed
    run_app_to_completion(cluster, app)
    validate_ring(workers_of(cluster, app))
    assert len(cluster.store.versions(app.pods[0].name)) == 10
