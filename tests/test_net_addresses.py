"""Tests for MAC/IPv4 value types."""

import pytest

from repro.errors import NetworkError
from repro.net.addresses import (
    BROADCAST_MAC,
    Ipv4Address,
    MacAddress,
    Subnet,
)


def test_mac_parse_roundtrip():
    mac = MacAddress.parse("02:00:00:00:00:2a")
    assert mac.value == 0x02_00_00_00_00_2A
    assert str(mac) == "02:00:00:00:00:2a"


def test_mac_ordinal_is_unique():
    assert MacAddress.ordinal(1) != MacAddress.ordinal(2)


def test_broadcast_mac():
    assert BROADCAST_MAC.is_broadcast
    assert not MacAddress.ordinal(5).is_broadcast


def test_mac_out_of_range():
    with pytest.raises(NetworkError):
        MacAddress(1 << 48)


def test_ipv4_parse_roundtrip():
    ip = Ipv4Address.parse("192.168.1.10")
    assert str(ip) == "192.168.1.10"


def test_ipv4_bad_strings():
    for bad in ("1.2.3", "1.2.3.4.5", "256.1.1.1"):
        with pytest.raises((NetworkError, ValueError)):
            Ipv4Address.parse(bad)


def test_subnet_membership():
    subnet = Subnet(Ipv4Address.parse("10.1.0.0"), 16)
    assert Ipv4Address.parse("10.1.200.3") in subnet
    assert Ipv4Address.parse("10.2.0.1") not in subnet


def test_subnet_host_allocation():
    subnet = Subnet(Ipv4Address.parse("10.1.0.0"), 24)
    assert str(subnet.host(1)) == "10.1.0.1"
    with pytest.raises(NetworkError):
        subnet.host(255)  # broadcast address


def test_subnet_hosts_iterator():
    subnet = Subnet(Ipv4Address.parse("10.1.0.0"), 29)
    hosts = list(subnet.hosts())
    assert len(hosts) == 6
    assert str(hosts[0]) == "10.1.0.1"


def test_addresses_are_hashable_and_ordered():
    a, b = Ipv4Address(1), Ipv4Address(2)
    assert a < b
    assert len({a, b, Ipv4Address(1)}) == 2
