"""Span recorder, typed metrics, and the span-derived figure numbers."""

import json

import pytest

from repro.cruz.cluster import CruzCluster
from repro.sim.spans import (
    INSTANT,
    CounterMetric,
    GaugeMetric,
    HistogramMetric,
    MetricsRegistry,
    SpanRecorder,
    round_coverage,
    round_phases,
    union_coverage,
)
from repro.sim.trace import Trace
from tests.test_cruz_coordination import make_cluster, ring_app


class FakeClock:
    def __init__(self):
        self.t = 0.0

    def __call__(self):
        return self.t

    def advance(self, dt):
        self.t += dt


@pytest.fixture
def clock():
    return FakeClock()


@pytest.fixture
def recorder(clock):
    return SpanRecorder(clock=clock)


# -- recorder semantics ----------------------------------------------------


def test_nesting_under_interleaved_nodes(recorder, clock):
    """Per-node ambient stacks keep concurrent nodes' spans separate."""
    a_outer = recorder.begin("phase", node="a")
    clock.advance(1.0)
    b_outer = recorder.begin("phase", node="b")
    clock.advance(1.0)
    a_inner = recorder.begin("step", node="a")
    b_inner = recorder.begin("step", node="b")
    assert recorder.parent_of(a_inner) is a_outer
    assert recorder.parent_of(b_inner) is b_outer
    assert recorder.parent_of(a_outer) is None
    clock.advance(1.0)
    recorder.end(a_inner)
    recorder.end(a_outer)
    recorder.end(b_inner)
    recorder.end(b_outer)
    assert a_outer.duration == 3.0
    assert a_inner.duration == 1.0
    assert recorder.children_of(b_outer) == [b_inner]


def test_non_lifo_end_closes_open_descendants(recorder, clock):
    outer = recorder.begin("outer", node="n")
    inner = recorder.begin("inner", node="n")
    leaf = recorder.begin("leaf", node="n")
    clock.advance(2.0)
    recorder.end(outer)  # inner and leaf are still open
    assert not inner.is_open and not leaf.is_open
    assert inner.end == leaf.end == outer.end == 2.0
    # The stack is clean: a new span is not parented to dead spans.
    fresh = recorder.begin("fresh", node="n")
    assert recorder.parent_of(fresh) is None


def test_end_is_idempotent_and_merges_attrs(recorder, clock):
    span = recorder.begin("s", node="n", epoch=3)
    clock.advance(1.0)
    recorder.end(span, committed=True)
    clock.advance(5.0)
    recorder.end(span)  # no effect on the timestamp
    assert span.end == 1.0
    assert span.attrs == {"epoch": 3, "committed": True}


def test_attach_false_keeps_span_off_the_stack(recorder, clock):
    base = recorder.begin("base", node="n")
    wait = recorder.begin("wait", node="n", attach=False, parent=base)
    other = recorder.begin("other", node="n")
    # ``other`` nests under base, not under the detached wait span.
    assert recorder.parent_of(wait) is base
    assert recorder.parent_of(other) is base
    recorder.end(wait)
    recorder.end(base)


def test_instant_parents_to_the_stack_top(recorder, clock):
    recorder.instant("lonely", node="n")
    outer = recorder.begin("outer", node="n")
    mark = recorder.instant("mark", node="n", seq=7)
    assert recorder.parent_of(mark) is outer
    assert mark.kind == INSTANT
    assert mark.end == mark.start and mark.duration == 0.0
    assert recorder.query("lonely")[0].parent_id is None


def test_effective_attr_inherits_and_query_matches_ancestors(
        recorder, clock):
    outer = recorder.begin("agent.local", node="n", epoch=4)
    inner = recorder.begin("zap.serialize", node="n")
    clock.advance(1.0)
    recorder.end(inner)
    recorder.end(outer)
    assert recorder.effective_attr(inner, "epoch") == 4
    assert recorder.effective_attr(inner, "missing", -1) == -1
    assert recorder.query("zap.serialize", epoch=4) == [inner]
    assert recorder.query("zap.serialize", epoch=5) == []
    assert recorder.query(node="n", epoch=4) == [outer, inner]


def test_one_requires_a_unique_match(recorder, clock):
    recorder.begin("dup", node="n", epoch=1)
    recorder.begin("dup", node="n", epoch=1)
    with pytest.raises(LookupError):
        recorder.one("dup", epoch=1)
    with pytest.raises(LookupError):
        recorder.one("absent")


def test_disabled_recorder_hands_back_usable_spans(clock):
    recorder = SpanRecorder(clock=clock, enabled=False)
    span = recorder.begin("s", node="n")
    clock.advance(2.0)
    recorder.end(span)
    assert span.duration == 2.0  # measurable...
    assert recorder.spans == []  # ...but not retained
    assert recorder.query("s") == []
    assert recorder.to_chrome()["traceEvents"] == []


# -- exporters -------------------------------------------------------------


def test_chrome_export_round_trips_through_json(recorder, clock):
    outer = recorder.begin("round", node="node0", epoch=1)
    clock.advance(0.5)
    recorder.instant("tcp.retransmit", node="node0", seq=9)
    inner = recorder.begin("coord.request", node="node0")
    clock.advance(0.25)
    recorder.end(inner)
    recorder.end(outer)

    blob = json.dumps(recorder.to_chrome())
    doc = json.loads(blob)
    events = doc["traceEvents"]
    complete = [e for e in events if e["ph"] == "X"]
    instants = [e for e in events if e["ph"] == "i"]
    meta = [e for e in events if e["ph"] == "M"]
    assert len(complete) == 2 and len(instants) == 1 and len(meta) == 1
    assert meta[0]["args"]["name"] == "node0"

    by_name = {e["name"]: e for e in complete}
    assert by_name["round"]["dur"] == pytest.approx(0.75e6)
    assert by_name["coord.request"]["ts"] == pytest.approx(0.5e6)
    assert by_name["round"]["cat"] == "round"
    assert by_name["coord.request"]["cat"] == "coord"
    # The hierarchy survives the flat format via args.
    assert by_name["coord.request"]["args"]["parent_id"] == \
        by_name["round"]["args"]["span_id"]


def test_summary_rows_aggregate_per_name(recorder, clock):
    for duration in (1.0, 3.0):
        span = recorder.begin("work", node="n")
        clock.advance(duration)
        recorder.end(span)
    open_span = recorder.begin("open", node="n")
    rows = recorder.summary_rows()
    assert [r["span"] for r in rows] == ["work"]  # open spans excluded
    assert rows[0]["count"] == 2
    assert rows[0]["total_s"] == 4.0
    assert rows[0]["mean_s"] == 2.0
    assert rows[0]["max_s"] == 3.0
    recorder.end(open_span)


def test_union_coverage_merges_overlaps():
    assert union_coverage([(0.0, 1.0)], 0.0, 2.0) == 0.5
    assert union_coverage([(0.0, 1.5), (1.0, 2.0)], 0.0, 2.0) == 1.0
    assert union_coverage([(-5.0, 0.5), (1.5, 9.0)], 0.0, 2.0) == 0.5
    assert union_coverage([], 0.0, 2.0) == 0.0
    assert union_coverage([(0.0, 1.0)], 1.0, 1.0) == 0.0


# -- typed metrics ---------------------------------------------------------


def test_counter_accumulates_and_rejects_decrease():
    counter = CounterMetric("c")
    counter.inc()
    counter.inc(2, label="a")
    counter.inc(3, label="b")
    assert counter.value == 6
    assert counter.labelled("a") == 2
    assert counter.labelled("missing") == 0
    with pytest.raises(ValueError):
        counter.inc(-1)


def test_gauge_moves_both_ways():
    gauge = GaugeMetric("g")
    gauge.set(5)
    gauge.add(-2)
    assert gauge.value == 3


def test_histogram_nearest_rank_percentiles():
    hist = HistogramMetric("h")
    for value in range(1, 101):  # 1..100
        hist.observe(float(value))
    assert hist.count == 100
    assert hist.mean == pytest.approx(50.5)
    assert hist.percentile(50) == 50.0
    assert hist.percentile(99) == 99.0
    assert hist.percentile(100) == 100.0
    assert hist.percentile(0.5) == 1.0  # rank clamps to the first sample
    with pytest.raises(ValueError):
        hist.percentile(0)
    with pytest.raises(ValueError):
        hist.percentile(101)
    assert HistogramMetric("empty").percentile(50) == 0.0


def test_registry_is_get_or_create_and_type_checked():
    registry = MetricsRegistry()
    counter = registry.counter("x")
    assert registry.counter("x") is counter
    with pytest.raises(TypeError):
        registry.gauge("x")
    registry.gauge("depth").set(4)
    registry.histogram("lat").observe(0.5)
    snap = registry.snapshot()
    assert snap["x"]["type"] == "counter"
    assert snap["depth"] == {"type": "gauge", "value": 4}
    assert snap["lat"]["count"] == 1 and snap["lat"]["p50"] == 0.5
    assert registry.names() == ["depth", "lat", "x"]


def test_trace_count_is_backed_by_the_registry():
    trace = Trace(enabled=True)
    trace.emit(0.0, "msg", node="n0", nbytes=10)
    trace.emit(1.0, "msg", node="n1", nbytes=20)
    trace.emit(2.0, "other")
    assert trace.count("msg") == 2
    assert trace.metrics.counter("trace.emits").value == 3
    assert len(trace.records) == 3


def test_disabled_trace_still_counts_but_retains_nothing():
    trace = Trace(enabled=False)
    trace.emit(0.0, "msg")
    trace.emit(1.0, "msg")
    assert trace.count("msg") == 2
    assert trace.records == []
    assert trace.spans.enabled is False


# -- instrumented cluster runs ---------------------------------------------


def checkpointed_cluster(n_nodes=2):
    cluster = make_cluster(n_nodes)
    app = ring_app(cluster, n_nodes, max_token=100000)
    for pod in app.pods:
        pod.processes()[0].memory.allocate("grid", 8 << 20)
    cluster.run_for(0.2)
    stats = cluster.checkpoint_app(app)
    assert stats.committed
    return cluster, app, stats


def test_round_spans_cover_the_latency_window():
    cluster, _, stats = checkpointed_cluster()
    coverage = round_coverage(cluster.spans, stats.epoch)
    assert coverage >= 0.95
    # And the umbrella round span brackets the whole protocol.
    round_span = cluster.spans.one("round", epoch=stats.epoch)
    assert round_span.duration >= stats.latency_s


def test_round_stats_carry_the_phase_breakdown():
    cluster, _, stats = checkpointed_cluster()
    phases = stats.phase_s
    assert phases == round_phases(cluster.spans, stats.epoch)
    for name in ("coord.request", "coord.wait_done", "agent.local",
                 "agent.pod_pause", "zap.serialize"):
        assert name in phases, name
    # The local phase is the critical path of the round's latency.
    assert phases["agent.local"] == stats.max_local_op_s
    assert phases["coord.wait_done"] <= stats.latency_s


def test_pause_span_matches_the_trace_records():
    """agent.pod_pause opens at the pod_paused emit and closes at
    pod_resumed — span timeline and flat records agree exactly."""
    cluster, _, stats = checkpointed_cluster()
    paused = {r.node: r.time for r in cluster.trace.select("pod_paused")}
    resumed = {r.node: r.time
               for r in cluster.trace.select("pod_resumed")}
    spans = cluster.spans.query("agent.pod_pause", epoch=stats.epoch)
    assert len(spans) == len(paused) > 0
    for span in spans:
        assert span.start == paused[span.node]
        assert span.end == resumed[span.node]


def test_store_metrics_accumulate_per_mode():
    cluster, app, _ = checkpointed_cluster()
    saves = cluster.metrics.counter("store.saves")
    assert saves.value >= 2  # one save per pod
    assert cluster.metrics.counter("store.bytes_written").value > 0
    assert cluster.metrics.histogram("store.save_write_bytes").count >= 2
    cluster.run_for(0.1)
    before = saves.value
    cluster.checkpoint_app(app)
    assert saves.value > before


def test_run_until_stops_at_the_triggering_event():
    """The event-aware run_until notices the predicate right after the
    event batch that made it true, without overshooting by step."""
    cluster = make_cluster(2)
    fired = []
    cluster.sim.call_later(0.05, lambda: fired.append(cluster.sim.now))
    cluster.run_until(lambda: bool(fired), limit=10.0, step=5.0)
    assert fired == [0.05]
    # A full coarse step past the event would put now at >= 5.0.
    assert cluster.sim.now < 1.0


def test_run_until_falls_back_to_step_on_an_empty_queue():
    cluster = make_cluster(2)
    target = cluster.sim.now + 1.0
    # Drain all pending activity first so the queue can go quiet.
    cluster.run_until(lambda: cluster.sim.now >= target, limit=30.0,
                      step=0.25)
    assert cluster.sim.now >= target
    with pytest.raises(TimeoutError):
        cluster.run_until(lambda: False, limit=cluster.sim.now + 0.5,
                          step=0.25)


# -- the figures, rebuilt on spans, stay bit-identical ---------------------


def test_fig5_span_numbers_match_roundstats_bit_for_bit():
    """The span-derived Fig. 5 statistics equal the coordinator's own
    RoundStats bookkeeping exactly — recording changes nothing."""
    from repro.bench.fig5 import run_fig5
    from repro.bench.harness import Stat

    points = run_fig5(node_counts=(2,), rounds=2)
    (point,) = points
    assert len(point.rounds) == 2
    expect_latency = Stat.of([r.latency_s for r in point.rounds])
    expect_local = Stat.of([r.max_local_op_s for r in point.rounds])
    expect_overhead = Stat.of([r.latency_s - r.max_local_op_s
                               for r in point.rounds])
    assert point.latency == expect_latency
    assert point.local_save == expect_local
    assert point.overhead == expect_overhead
    assert point.restart_round is not None
    assert point.restart_latency == \
        Stat.of([point.restart_round.latency_s])
