"""Pipes, files, shared memory, semaphores."""

import pytest

from repro.cluster import Cluster
from repro.errors import SyscallError
from repro.simos.program import PhasedProgram
from repro.simos.syscalls import Exit, sys

from tests.programs import PipeConsumer, PipeProducer, ShmIncrementer


def make_cluster(n=1):
    return Cluster(n, time_wait_s=0.5)


class PipeParent(PhasedProgram):
    """Creates a pipe, spawns producer and consumer children sharing it."""

    initial_phase = "pipe"

    def __init__(self, payload: bytes):
        super().__init__()
        self.payload = payload
        self.rfd = None
        self.wfd = None
        self.consumer = None
        self.producer_pid = None
        self.consumer_pid = None

    def phase_pipe(self, result):
        self.goto("spawn_producer")
        return sys("pipe")

    def phase_spawn_producer(self, result):
        self.rfd, self.wfd = result
        self.goto("spawn_consumer")
        return sys("spawn", PipeProducer(self.wfd, self.payload),
                   inherit_fds=[self.wfd])

    def phase_spawn_consumer(self, result):
        self.producer_pid = result
        self.consumer = PipeConsumer(self.rfd)
        self.goto("close_w")
        return sys("spawn", self.consumer, inherit_fds=[self.rfd])

    def phase_close_w(self, result):
        self.consumer_pid = result
        # Parent must drop its own pipe ends so EOF propagates.
        self.goto("close_r")
        return sys("close", self.wfd)

    def phase_close_r(self, result):
        self.goto("wait")
        return sys("close", self.rfd)

    def phase_wait(self, result):
        self.goto("done")
        return sys("waitpid", self.consumer_pid)

    def phase_done(self, result):
        return Exit(0)


def test_pipe_producer_consumer_with_eof():
    cluster = make_cluster()
    payload = bytes(range(251)) * 1000  # > pipe capacity: forces blocking
    proc = cluster.nodes[0].spawn(PipeParent(payload))
    cluster.run()
    assert proc.exit_code == 0
    assert proc.program.consumer.received == payload


def test_pipe_write_after_reader_close_is_epipe():
    class Epipe(PhasedProgram):
        initial_phase = "pipe"

        def __init__(self):
            super().__init__()
            self.errno = None

        def phase_pipe(self, result):
            self.goto("close_reader")
            return sys("pipe")

        def phase_close_reader(self, result):
            self.rfd, self.wfd = result
            self.goto("write")
            return sys("close", self.rfd)

        def phase_write(self, result):
            self.goto("check")
            return sys("write", self.wfd, b"doomed")

        def phase_check(self, result):
            if isinstance(result, SyscallError):
                self.errno = result.errno
            return Exit(0)

    cluster = make_cluster()
    proc = cluster.nodes[0].spawn(Epipe())
    cluster.run()
    assert proc.program.errno == "EPIPE"


class FileRoundtrip(PhasedProgram):
    initial_phase = "open_w"

    def __init__(self, path: str, data: bytes):
        super().__init__()
        self.path = path
        self.data = data
        self.fd = None
        self.read_back = None

    def phase_open_w(self, result):
        self.goto("write")
        return sys("open", self.path, "w")

    def phase_write(self, result):
        self.fd = result
        self.goto("seek")
        return sys("write", self.fd, self.data)

    def phase_seek(self, result):
        self.goto("read")
        return sys("seek", self.fd, 0)

    def phase_read(self, result):
        self.goto("close")
        return sys("read", self.fd, len(self.data) * 2)

    def phase_close(self, result):
        self.read_back = result
        self.goto("done")
        return sys("close", self.fd)

    def phase_done(self, result):
        return Exit(0)


def test_file_write_seek_read():
    cluster = make_cluster()
    proc = cluster.nodes[0].spawn(FileRoundtrip("/data/test.bin", b"hello"))
    cluster.run()
    assert proc.program.read_back == b"hello"
    assert cluster.fs.read_at("/data/test.bin", 0, 100) == b"hello"


def test_filesystem_shared_across_nodes():
    cluster = make_cluster(n=2)
    writer = cluster.nodes[0].spawn(
        FileRoundtrip("/shared/x", b"from-node0"))
    cluster.run()
    assert writer.exit_code == 0

    class Reader(PhasedProgram):
        initial_phase = "open"

        def __init__(self):
            super().__init__()
            self.content = None

        def phase_open(self, result):
            self.goto("read")
            return sys("open", "/shared/x", "r")

        def phase_read(self, result):
            self.fd = result
            self.goto("done")
            return sys("read", self.fd, 100)

        def phase_done(self, result):
            self.content = result
            return Exit(0)

    reader = cluster.nodes[1].spawn(Reader())
    cluster.run()
    assert reader.program.content == b"from-node0"


def test_open_missing_file_is_enoent():
    cluster = make_cluster()

    class OpenMissing(PhasedProgram):
        initial_phase = "open"

        def __init__(self):
            super().__init__()
            self.errno = None

        def phase_open(self, result):
            self.goto("check")
            return sys("open", "/nope", "r")

        def phase_check(self, result):
            if isinstance(result, SyscallError):
                self.errno = result.errno
            return Exit(0)

    proc = cluster.nodes[0].spawn(OpenMissing())
    cluster.run()
    assert proc.program.errno == "ENOENT"


def test_shared_memory_and_semaphore_mutual_exclusion():
    cluster = make_cluster()
    node = cluster.nodes[0]
    rounds = 25
    workers = [node.spawn(ShmIncrementer(key=7, rounds=rounds))
               for _ in range(4)]
    cluster.run()
    assert all(w.exit_code == 0 for w in workers)
    shmid = node.ipc.shmget(7, 4096)
    assert node.ipc.shm_lookup(shmid).payload["counter"] == 4 * rounds


def test_semaphore_blocks_until_posted():
    cluster = make_cluster()
    node = cluster.nodes[0]

    class Waiter(PhasedProgram):
        initial_phase = "get"

        def __init__(self):
            super().__init__()
            self.finished_at = None

        def phase_get(self, result):
            self.goto("wait")
            return sys("semget", 99, 0)

        def phase_wait(self, result):
            self.semid = result
            self.goto("stamp")
            return sys("semop", self.semid, -1)

        def phase_stamp(self, result):
            self.goto("done")
            return sys("gettime")

        def phase_done(self, result):
            self.finished_at = result
            return Exit(0)

    class Poster(PhasedProgram):
        initial_phase = "sleep"

        def phase_sleep(self, result):
            self.goto("get")
            return sys("sleep", 1.0)

        def phase_get(self, result):
            self.goto("post")
            return sys("semget", 99, 0)

        def phase_post(self, result):
            self.semid = result
            self.goto("done")
            return sys("semop", self.semid, +1)

        def phase_done(self, result):
            return Exit(0)

    waiter = node.spawn(Waiter())
    node.spawn(Poster())
    cluster.run()
    assert waiter.program.finished_at == pytest.approx(1.0, abs=0.01)


def test_ipc_ids_stable_by_key():
    cluster = make_cluster()
    node = cluster.nodes[0]
    a = node.ipc.shmget(1, 100)
    b = node.ipc.shmget(1, 100)
    assert a == b
    node.ipc.shm_remove(a)
    c = node.ipc.shmget(1, 100)
    assert c != a  # new physical id after removal
