"""Exception hierarchy for the Cruz reproduction.

Every layer raises subclasses of :class:`ReproError` so callers can catch
library failures without also swallowing programming errors.
"""


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class SimulationError(ReproError):
    """The discrete-event kernel was used incorrectly."""


class NetworkError(ReproError):
    """Link/switch/NIC level failure (bad frame, unknown device, ...)."""


class TcpError(NetworkError):
    """TCP protocol violation or misuse of a connection object."""


class ConnectionResetError_(TcpError):
    """The peer reset the connection (RST received)."""


class SyscallError(ReproError):
    """A simulated system call failed.

    Carries a Unix-style ``errno`` name (e.g. ``"EBADF"``) so application
    programs can dispatch on it the way real code dispatches on errno.
    """

    def __init__(self, errno, message=""):
        super().__init__(f"{errno}: {message}" if message else errno)
        self.errno = errno


class CheckpointError(ReproError):
    """Single-node (pod) checkpoint or restart failed."""


class CoordinationError(ReproError):
    """The distributed checkpoint/restart protocol failed or timed out."""


class PodError(ReproError):
    """Pod management failure (unknown pod, double attach, ...)."""
