"""The TCP streaming benchmark of §6 (Fig. 6).

A transmitting pod sends data through one TCP connection to a receiving pod
at maximum rate. The receiver logs every delivery through the ``log``
syscall so the harness can compute the paper's 10 ms sliding-window rate
curve around a checkpoint.
"""

from __future__ import annotations

from typing import List, Optional

from repro.simos.program import PhasedProgram
from repro.simos.syscalls import Exit, sys

STREAM_PORT = 9800
CHUNK = 65536


class StreamSender(PhasedProgram):
    """Connects to the receiver and sends as fast as TCP accepts."""

    name = "stream-sender"
    initial_phase = "socket"

    def __init__(self, receiver_ip: str, total_bytes: int,
                 port: int = STREAM_PORT):
        super().__init__()
        self.receiver_ip = receiver_ip
        self.total_bytes = total_bytes
        self.port = port
        self.sent = 0
        self.fd: Optional[int] = None

    def phase_socket(self, result):
        self.goto("connect")
        return sys("socket", "tcp")

    def phase_connect(self, result):
        self.fd = result
        self.goto("send")
        return sys("connect", self.fd, self.receiver_ip, self.port)

    def phase_send(self, result):
        if isinstance(result, int):
            self.sent += result
        if self.sent >= self.total_bytes:
            self.goto("finish")
            return sys("close", self.fd)
        chunk = min(CHUNK, self.total_bytes - self.sent)
        return sys("send", self.fd, b"\x00" * chunk)

    def phase_finish(self, result):
        return Exit(0)


class StreamReceiver(PhasedProgram):
    """Accepts one connection and drains it, logging every delivery."""

    name = "stream-receiver"
    initial_phase = "socket"

    def __init__(self, port: int = STREAM_PORT, bind_ip=None):
        super().__init__()
        self.port = port
        self.bind_ip = bind_ip
        self.received = 0
        self.fd: Optional[int] = None
        self.conn_fd: Optional[int] = None

    def phase_socket(self, result):
        self.goto("bind")
        return sys("socket", "tcp")

    def phase_bind(self, result):
        self.fd = result
        self.goto("listen")
        return sys("bind", self.fd, self.bind_ip, self.port)

    def phase_listen(self, result):
        self.goto("accept")
        return sys("listen", self.fd, 1)

    def phase_accept(self, result):
        self.goto("drain")
        return sys("accept", self.fd)

    def phase_drain(self, result):
        if isinstance(result, tuple):
            self.conn_fd = result[0]
            return sys("recv", self.conn_fd, CHUNK)
        if result == b"":
            self.goto("finish")
            return sys("close", self.conn_fd)
        self.received += len(result)
        self.goto("log")
        return sys("log", "rx", nbytes=len(result))

    def phase_log(self, result):
        self.goto("drain")
        return sys("recv", self.conn_fd, CHUNK)

    def phase_finish(self, result):
        return Exit(0)


def stream_factory(total_bytes: int, port: int = STREAM_PORT):
    """Two-rank factory: rank 0 receives, rank 1 transmits."""

    def make(rank: int, peer_ips: List[str]):
        if rank == 0:
            return StreamReceiver(port=port)
        return StreamSender(receiver_ip=peer_ips[0],
                            total_bytes=total_bytes, port=port)

    return make
