"""Per-socket options that affect data transfer.

These are part of the checkpointed socket state (§4.1 saves "various socket
options"), and the restore path temporarily overrides Nagle/CORK so that
re-issued sends keep the recorded packet boundaries.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.net.packet import DEFAULT_MSS

#: Linux 2.4 default socket buffer sizes (approximately).
DEFAULT_SEND_BUFFER = 64 * 1024
DEFAULT_RECV_BUFFER = 64 * 1024


@dataclass(frozen=True)
class SocketOptions:
    """TCP socket options relevant to transfer behaviour."""

    nagle_enabled: bool = True       # inverse of TCP_NODELAY
    cork: bool = False               # TCP_CORK
    send_buffer_bytes: int = DEFAULT_SEND_BUFFER
    recv_buffer_bytes: int = DEFAULT_RECV_BUFFER
    mss: int = DEFAULT_MSS
    keepalive: bool = False
    reuse_addr: bool = False

    def with_boundaries_pinned(self) -> "SocketOptions":
        """Options for the restore path: one send == one packet.

        Disables the Nagle algorithm and TCP_CORK, the two mechanisms that
        could coalesce or split the re-issued sends (§4.1).
        """
        return replace(self, nagle_enabled=False, cork=False)

    def set(self, **changes) -> "SocketOptions":
        return replace(self, **changes)
