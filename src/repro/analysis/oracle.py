"""Schedule oracles: the controllable half of the CruzMC model checker.

The simulator orders events by ``(time, priority, sequence)``; everything
sharing the first two keys is a **tie**, and correct code must be
indifferent to how ties are broken.  A :class:`ScheduleOracle` plugged
into :class:`repro.sim.core.Simulator` decides every tie explicitly:
``Simulator._pop_choice`` pops the whole tie set and asks the oracle for
an index.  The queue's signed-sequence policy then becomes the
*degenerate* oracle — :class:`FifoOracle` (oldest first) and
:class:`LifoOracle` (newest first) reproduce ``tiebreak="fifo"/"lifo"``
bit-identically, which is what `repro analyze determinism` now runs.

The same object doubles as the **fault oracle**: when installed on a
:class:`repro.cruz.faults.ControlFaultInjector`, every eligible control
datagram becomes a choice point (pass / drop / duplicate / crash a node /
partition the network) instead of a probability draw.

:class:`ExplorerOracle` is the recording/forcing oracle the DFS explorer
in :mod:`repro.analysis.mc` drives: it replays a forced prefix of
choices, defaults everything beyond it, and records every choice point
(with its candidate labels) so the explorer can enumerate the siblings.
It also implements the two reductions:

* **Persistent (ample) sets** — tie candidates are partitioned into
  per-node ownership classes (owner derived from the event/process
  name, or from the process a timeout resumes; unknown owners are
  conservatively *shared*, i.e. dependent with everything).  Only one
  class — deterministically the smallest — is branched; events of
  different classes commute because cross-node interaction travels as
  future timestamped message events which re-tie on their own.
* **One-step sleep sets** — after branching to candidate *j* at a tie,
  the sibling runs for candidates ``< j`` have already covered every
  ordering that starts with one of them; the immediate re-tie (same
  instant, remaining candidates) therefore skips branches that begin
  with an earlier sibling independent of the just-executed event.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.sim.core import Event as _SimEvent

#: Queue entries are ``[time, priority, signed_seq, event]`` lists — see
#: ``repro.sim.eventq``.
Entry = List[Any]

#: Fault modes an oracle can impose on a control datagram.
FAULT_PASS = "pass"
FAULT_DROP = "drop"
FAULT_DUP = "dup"
FAULT_CRASH = "crash"
FAULT_PARTITION = "partition"

_OWNER_RE = re.compile(r"@(node\d+)\b")
_NODE_ONLY_RE = re.compile(r"^node\d+$")

#: Labels that mark a tie as touching the coordination protocol; under
#: ``branch_scope="control"`` only these ties branch (application /
#: network-internal ties take the canonical order — their immunity is
#: what `analyze determinism` certifies separately).
_CONTROL_RE = re.compile(
    r"agent@|coordinator@|retx\(|save\(|restore\(|ack\(|continue\(")

#: Event names that say nothing about ownership; attribution falls
#: through to the process the event resumes.
_ANON_NAMES = frozenset({"timeout", "event", "chain", "any_of", "all_of",
                         "", "process"})


class ReplayDivergence(RuntimeError):
    """A forced choice trace no longer matches the run's choice points."""


def _owner_from_name(name: str) -> Optional[str]:
    match = _OWNER_RE.search(name)
    if match:
        return match.group(1)
    if _NODE_ONLY_RE.match(name):
        return name
    return None


def entry_info(entry: Entry) -> Tuple[str, Optional[str]]:
    """``(label, owner)`` for a queue entry.

    The label is a stable human-readable description (used in choice
    traces); the owner is the ``nodeN`` an event belongs to, or ``None``
    when unknown — unknown owners are treated as dependent with
    everything, which costs reduction but never soundness.
    """
    target = entry[3]
    if isinstance(target, _SimEvent):
        label = target.name or "event"
        owner = _owner_from_name(label)
        if owner is None or label in _ANON_NAMES:
            # Anonymous plumbing (timeouts, chains): attribute it to
            # the process whose _resume callback it will fire.
            for callback in (target.callbacks or ()):
                holder = getattr(callback, "__self__", None)
                holder_name = getattr(holder, "name", None)
                if isinstance(holder_name, str) and holder_name:
                    label = f"{label}->{holder_name}"
                    owner = _owner_from_name(holder_name)
                    break
        return label, owner
    # _Callback: a bare (fn, args) deferred call.
    fn = getattr(target, "fn", None)
    holder = getattr(fn, "__self__", None)
    holder_name = getattr(holder, "name", None)
    fn_name = getattr(fn, "__name__", "call")
    if isinstance(holder_name, str) and holder_name:
        return f"{fn_name}@{holder_name}", _owner_from_name(holder_name)
    return fn_name, None


def ample_candidates(owners: Sequence[Optional[str]]) -> List[int]:
    """Indexes of the ample class among tie candidates.

    Candidates with the same owner are mutually dependent (one class);
    an unknown owner is dependent with everything and collapses the tie
    into a single class.  When more than one class exists, the smallest
    (first-seen on size ties — deterministic) is the ample set: its
    members' orderings relative to *other* classes commute, so only
    intra-class orderings need branching here.
    """
    if any(owner is None for owner in owners):
        return list(range(len(owners)))
    groups: Dict[str, List[int]] = {}
    for index, owner in enumerate(owners):
        groups.setdefault(owner, []).append(index)
    if len(groups) == 1:
        return list(range(len(owners)))
    return min(groups.values(), key=lambda idx: (len(idx), idx[0]))


class ScheduleOracle:
    """Base oracle: canonical queue order, no faults.

    Installing this oracle is behaviourally identical to installing none
    — the tie set is presented in queue order and ``choose`` picks its
    head; every fault hook passes the datagram through.
    """

    def choose(self, ties: Sequence[Entry], now: float) -> int:
        """Pick the index of the tie member to execute next."""
        return 0

    def fault(self, message: Any, transmit: Any, injector: Any) -> bool:
        """Fault decision for one control datagram.

        Returns ``True`` when the oracle took ownership of delivery
        (dropped/duplicated it), ``False`` to deliver normally.
        """
        return False


class FifoOracle(ScheduleOracle):
    """Degenerate oracle: oldest tie first — ``tiebreak="fifo"``."""

    def choose(self, ties: Sequence[Entry], now: float) -> int:
        best = 0
        best_seq = abs(ties[0][2])
        for index in range(1, len(ties)):
            seq = abs(ties[index][2])
            if seq < best_seq:
                best, best_seq = index, seq
        return best


class LifoOracle(ScheduleOracle):
    """Degenerate oracle: newest tie first — ``tiebreak="lifo"``."""

    def choose(self, ties: Sequence[Entry], now: float) -> int:
        best = 0
        best_seq = abs(ties[0][2])
        for index in range(1, len(ties)):
            seq = abs(ties[index][2])
            if seq > best_seq:
                best, best_seq = index, seq
        return best


@dataclass
class Choice:
    """One recorded choice point of an explorer run."""

    kind: str      #: "tie" (schedule) or "fault" (datagram fate)
    options: int   #: number of alternatives the explorer may branch to
    chosen: int    #: index taken in this run
    label: str     #: stable description, e.g. the candidate names

    def to_json(self) -> Dict[str, Any]:
        return {"kind": self.kind, "options": self.options,
                "chosen": self.chosen, "label": self.label}


class ExplorerOracle(ScheduleOracle):
    """Recording/forcing oracle driven by the DFS explorer.

    Replays ``forced`` choices positionally, defaults to index 0 beyond
    them, and records every choice point in ``trace``.  Reduction
    bookkeeping (``tie_points``, ``orderings_pruned``) feeds the
    explorer's reduction-ratio metric.
    """

    def __init__(self, forced: Sequence[int] = (), *,
                 branch_scope: str = "control", por: bool = True,
                 fault_modes: Sequence[str] = (),
                 fault_kinds: Any = frozenset(),
                 fault_budget: int = 0,
                 dup_delay_s: float = 2e-3,
                 partition_duration_s: float = 0.25,
                 sleep: Sequence[str] = (),
                 sleep_owner: Optional[str] = None):
        self.forced = list(forced)
        self.branch_scope = branch_scope
        self.por = por
        self.fault_modes = tuple(fault_modes)
        self.fault_kinds = frozenset(fault_kinds)
        self.fault_budget = int(fault_budget)
        self.dup_delay_s = dup_delay_s
        self.partition_duration_s = partition_duration_s
        #: Recorded choice points, in order.
        self.trace: List[Choice] = []
        #: Per choice point: the (label, owner) of each candidate —
        #: sibling branch metadata for the explorer's sleep sets.
        self.candidates: List[List[Tuple[str, Optional[str]]]] = []
        #: Reduction statistics.
        self.tie_points = 0
        self.ties_seen = 0
        self.orderings_pruned = 0
        #: One-step sleep set: labels skipped at the branch point this
        #: run descends from, applied at the immediate re-tie only.
        #: Crash/partition modes interrupt processes at arbitrary
        #: instants (URGENT events can slip between the branch and the
        #:  re-tie), so sleep filtering stays off for those runs.
        self._sleep = set(sleep) if FAULT_CRASH not in fault_modes \
            and FAULT_PARTITION not in fault_modes else set()
        self._sleep_owner = sleep_owner
        self._sleep_at = len(self.forced)
        self.cluster = None
        self._chaos = None

    def bind(self, cluster: Any) -> None:
        """Attach the cluster so crash/partition faults can execute."""
        self.cluster = cluster

    # -- choice bookkeeping ----------------------------------------------

    def _decide(self, kind: str, options: int, label: str,
                meta: Optional[List[Tuple[str, Optional[str]]]] = None,
                ) -> int:
        index = len(self.trace)
        chosen = self.forced[index] if index < len(self.forced) else 0
        if not 0 <= chosen < options:
            raise ReplayDivergence(
                f"choice {index} ({kind} {label!r}) has {options} options "
                f"but the trace forces index {chosen}")
        self.trace.append(Choice(kind, options, chosen, label))
        self.candidates.append(meta or [])
        return chosen

    # -- schedule ties ----------------------------------------------------

    def choose(self, ties: Sequence[Entry], now: float) -> int:
        self.tie_points += 1
        self.ties_seen += len(ties)
        infos = [entry_info(entry) for entry in ties]
        if self.branch_scope != "all" and not any(
                _CONTROL_RE.search(label) for label, _ in infos):
            self.orderings_pruned += len(ties) - 1
            return 0
        if self.por:
            owners = [owner for _, owner in infos]
            cand = ample_candidates(owners)
        else:
            cand = list(range(len(ties)))
        if self._sleep and len(self.trace) == self._sleep_at:
            kept = [i for i in cand
                    if infos[i][0] not in self._sleep
                    or infos[i][1] is None
                    or self._sleep_owner is None
                    or infos[i][1] == self._sleep_owner]
            if kept:
                cand = kept
            self._sleep.clear()
        if len(cand) == 1:
            self.orderings_pruned += len(ties) - 1
            return cand[0]
        self.orderings_pruned += len(ties) - len(cand)
        meta = [infos[i] for i in cand]
        label = f"t={now:.6f} " + " | ".join(lbl for lbl, _ in meta)
        return cand[self._decide("tie", len(cand), label, meta)]

    # -- fault choice points ----------------------------------------------

    def _fault_options(self) -> List[str]:
        options = [FAULT_PASS]
        for mode in self.fault_modes:
            if mode in (FAULT_DROP, FAULT_DUP):
                options.append(mode)
            elif mode == FAULT_CRASH and self.cluster is not None:
                options.extend(
                    f"crash:{i}" for i in range(self.cluster.n_app_nodes)
                    if i not in self.cluster.dead_nodes)
            elif mode == FAULT_PARTITION and self.cluster is not None:
                options.append(FAULT_PARTITION)
        return options

    def _chaos_injector(self):
        if self._chaos is None:
            from repro.cruz.faults import ChaosInjector
            self._chaos = ChaosInjector(self.cluster)
        return self._chaos

    def fault(self, message: Any, transmit: Any, injector: Any) -> bool:
        if (not self.fault_modes or self.fault_budget <= 0
                or message.kind not in self.fault_kinds):
            return False
        options = self._fault_options()
        if len(options) == 1:
            return False
        label = (f"{message.kind} e{message.epoch} "
                 f"{message.pod_name or message.node_name or '*'}")
        mode = options[self._decide("fault", len(options), label)]
        if mode == FAULT_PASS:
            return False
        self.fault_budget -= 1
        if mode == FAULT_DROP:
            injector.dropped += 1
            return True
        if mode == FAULT_DUP:
            injector.duplicated += 1
            transmit()
            injector.sim.call_later(self.dup_delay_s, transmit)
            return True
        now = injector.sim.now
        if mode.startswith("crash:"):
            # The datagram still goes out; the fault is the node dying
            # at this exact instant.
            self._chaos_injector().schedule_node_crash(
                int(mode.split(":", 1)[1]), at=now)
            return False
        # Partition node0's side from everyone else (coordinator
        # included) starting at this instant, healing after a fixed
        # window — exercises retransmit-give-up and abort paths.
        total = len(self.cluster.nodes)
        self._chaos_injector().schedule_partition(
            [0], list(range(1, total)), at=now,
            duration_s=self.partition_duration_s)
        return False
