"""A simulated Linux-like OS per node: processes, syscalls, sockets, netfilter."""

from repro.simos.costs import CostModel, DEFAULT_COSTS
from repro.simos.filesystem import SharedFileSystem
from repro.simos.kernel import Node, SyscallInterposer, as_ip
from repro.simos.memory import AddressSpace, PAGE_SIZE
from repro.simos.netdev import Interface, InterfaceTable
from repro.simos.netfilter import INPUT, Netfilter, OUTPUT, Rule
from repro.simos.netstack import BROADCAST_IP, NetworkStack, cable
from repro.simos.process import (
    ProcessControlBlock,
    ProcessState,
    SIGCONT,
    SIGKILL,
    SIGSTOP,
    SIGTERM,
)
from repro.simos.program import PhasedProgram, Program
from repro.simos.sockets import TcpSocket, UdpSocket
from repro.simos.syscalls import (
    Exit,
    MSG_PEEK,
    SIOCGIFHWADDR,
    SO_CORK,
    SO_NODELAY,
    Syscall,
    sys,
)

__all__ = [
    "AddressSpace",
    "BROADCAST_IP",
    "CostModel",
    "DEFAULT_COSTS",
    "Exit",
    "INPUT",
    "Interface",
    "InterfaceTable",
    "MSG_PEEK",
    "Netfilter",
    "NetworkStack",
    "Node",
    "OUTPUT",
    "PAGE_SIZE",
    "PhasedProgram",
    "ProcessControlBlock",
    "ProcessState",
    "Program",
    "Rule",
    "SIGCONT",
    "SIGKILL",
    "SIGSTOP",
    "SIGTERM",
    "SIOCGIFHWADDR",
    "SO_CORK",
    "SO_NODELAY",
    "SharedFileSystem",
    "Syscall",
    "SyscallInterposer",
    "TcpSocket",
    "UdpSocket",
    "as_ip",
    "cable",
    "sys",
]
