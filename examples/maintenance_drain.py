#!/usr/bin/env python
"""Planned maintenance: drain a node without dropping connections.

Two services (a key-value store and a token-ring compute job) share
node0. The operator drains node0 for maintenance; every pod live-migrates
to other machines — IP addresses, MAC identity, open TCP connections and
in-kernel state all move along, so external clients and the ring peers
keep running.

Run:  python examples/maintenance_drain.py
"""

from repro.apps.kvserver import KvClient, KvServer
from repro.apps.ring import RingWorker, ring_factory, validate_ring
from repro.cruz.cluster import CruzCluster
from repro.lsf import JobScheduler, JobSpec


def main():
    cluster = CruzCluster(n_app_nodes=3)
    scheduler = JobScheduler(cluster)

    # Service 1: a kv store on node0 with an external client.
    kv_pod = cluster.create_pod(0, "kv")
    kv_pod.spawn(KvServer())
    requests = [{"op": "put", "key": f"k{i}", "value": i}
                for i in range(300)]
    client = cluster.coordinator_node.spawn(
        KvClient(str(kv_pod.ip), requests, think_time_s=0.005))

    # Service 2: a 3-rank token ring, rank 0 on node0.
    ring_job = scheduler.submit(JobSpec(
        name="ring",
        factory=ring_factory(3, max_token=4000, padding=128,
                             work_per_hop_s=0.001),
        n_ranks=3, node_indices=[0, 1, 2]))

    cluster.run_for(0.5)
    print(f"t={cluster.sim.now:.1f}s  node0 hosts "
          f"{sorted(cluster.agents[0].pods)}")

    print("draining node0 for maintenance...")
    moved = scheduler.drain_node(0, targets=[1, 2])
    print(f"t={cluster.sim.now:.1f}s  migrated off node0: {moved}")
    assert not cluster.agents[0].pods

    cluster.run_until(lambda: not client.is_alive, limit=120, step=0.25)
    assert client.exit_code == 0
    assert all(r["ok"] for r in client.program.responses)
    print(f"t={cluster.sim.now:.1f}s  kv client finished all "
          f"{len(client.program.responses)} requests without an error")

    scheduler.wait_for("ring")
    workers = [p for p in cluster.app_programs(ring_job.app)
               if isinstance(p, RingWorker)]
    validate_ring(workers)
    print(f"t={cluster.sim.now:.1f}s  ring finished; token sequence "
          f"intact (exactly-once, in-order) across the migration")


if __name__ == "__main__":
    main()
