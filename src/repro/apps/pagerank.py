"""Distributed PageRank: a BSP-style workload over the MPI layer.

Rank 0 builds the (deterministic) link matrix and *scatters* row blocks;
every superstep each rank computes its slice of ``M @ x`` and the slices
are combined with an *allreduce* — the bulk-synchronous pattern of graph
and linear-algebra codes, structurally different from slm's neighbour
halos and the ring's point-to-point relay.

Determinism note: the allreduce sums contributions in rank order, so the
floating-point result is exactly reproducible — tests assert *bitwise*
equality between an uninterrupted run and one that was checkpointed,
crashed, restarted or suspended mid-iteration.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.mpi.api import MpiProgram
from repro.simos.syscalls import sys


def build_link_matrix(n_vertices: int) -> np.ndarray:
    """A deterministic column-stochastic link matrix."""
    matrix = np.zeros((n_vertices, n_vertices), dtype=np.float64)
    for src in range(n_vertices):
        targets = {(src * 7 + 1) % n_vertices,
                   (src * 3 + 2) % n_vertices,
                   (src + 1) % n_vertices}
        targets.discard(src)
        for dst in targets:
            matrix[dst, src] = 1.0
    column_sums = matrix.sum(axis=0)
    column_sums[column_sums == 0] = 1.0
    return matrix / column_sums


def reference_pagerank(n_vertices: int, n_ranks: int, iterations: int,
                       damping: float = 0.85) -> np.ndarray:
    """The exact result of the distributed computation.

    Reproduces the distributed floating-point order: per-rank row-block
    products padded to full length and summed in rank order.
    """
    matrix = build_link_matrix(n_vertices)
    rows_per_rank = n_vertices // n_ranks
    x = np.full(n_vertices, 1.0 / n_vertices)
    for _ in range(iterations):
        total = None
        for rank in range(n_ranks):
            row0 = rank * rows_per_rank
            row1 = n_vertices if rank == n_ranks - 1 \
                else row0 + rows_per_rank
            pad = np.zeros(n_vertices)
            pad[row0:row1] = matrix[row0:row1] @ x
            total = pad if total is None else total + pad
        x = (1.0 - damping) / n_vertices + damping * total
    return x


class PageRankRank(MpiProgram):
    """One rank of the BSP PageRank."""

    name = "pagerank"

    def __init__(self, rank: int, peer_ips: List[str],
                 n_vertices: int = 60, iterations: int = 20,
                 damping: float = 0.85, work_s_per_iter: float = 0.002,
                 port: int = 9700):
        super().__init__(rank, peer_ips, port=port)
        if n_vertices < self.size:
            raise ValueError("need at least one vertex per rank")
        self.n_vertices = n_vertices
        self.iterations = iterations
        self.damping = damping
        self.work_s_per_iter = work_s_per_iter
        rows_per_rank = n_vertices // self.size
        self.row0 = rank * rows_per_rank
        self.row1 = n_vertices if rank == self.size - 1 \
            else self.row0 + rows_per_rank
        self.block: Optional[np.ndarray] = None
        self.x: Optional[np.ndarray] = None
        self.iteration = 0
        self.result: Optional[np.ndarray] = None

    def on_mpi_ready(self, result):
        blocks = None
        if self.rank == 0:
            matrix = build_link_matrix(self.n_vertices)
            rows_per_rank = self.n_vertices // self.size
            blocks = []
            for rank in range(self.size):
                row0 = rank * rows_per_rank
                row1 = self.n_vertices if rank == self.size - 1 \
                    else row0 + rows_per_rank
                blocks.append(matrix[row0:row1].copy())
        return self.scatter(blocks, then="pr_got_block")

    def phase_pr_got_block(self, result):
        self.block = result
        self.x = np.full(self.n_vertices, 1.0 / self.n_vertices)
        self.goto("pr_register_memory")
        return sys("mmap", "block", self.block.nbytes)

    def phase_pr_register_memory(self, result):
        self.goto("pr_iterate")
        return self.phase_pr_iterate(None)

    def phase_pr_iterate(self, result):
        if self.iteration >= self.iterations:
            self.result = self.x
            return self.mpi_exit(0)
        self.goto("pr_combine")
        return sys("compute", self.work_s_per_iter)

    def phase_pr_combine(self, result):
        pad = np.zeros(self.n_vertices)
        pad[self.row0:self.row1] = self.block @ self.x
        return self.allreduce(pad, op="sum", then="pr_apply")

    def phase_pr_apply(self, result):
        self.x = (1.0 - self.damping) / self.n_vertices + \
            self.damping * result
        self.iteration += 1
        self.goto("pr_touch")
        return sys("mtouch", "block", fraction=0.05)

    def phase_pr_touch(self, result):
        self.goto("pr_iterate")
        return self.phase_pr_iterate(None)


def pagerank_factory(n_ranks: int, n_vertices: int = 60,
                     iterations: int = 20, damping: float = 0.85,
                     work_s_per_iter: float = 0.002, port: int = 9700):
    """Factory for :meth:`CruzCluster.launch_app_factory`."""

    def make(rank: int, peer_ips: List[str]) -> PageRankRank:
        return PageRankRank(rank=rank, peer_ips=peer_ips,
                            n_vertices=n_vertices, iterations=iterations,
                            damping=damping,
                            work_s_per_iter=work_s_per_iter, port=port)

    return make
