"""Kernel edge cases: resource cancellation, signal interactions,
non-blocking socket flags, crash semantics."""

import pytest

from repro.cluster import Cluster
from repro.errors import SyscallError
from repro.simos.process import ProcessState, SIGCONT, SIGKILL, SIGSTOP
from repro.simos.program import PhasedProgram
from repro.simos.syscalls import Exit, MSG_DONTWAIT, sys

from tests.programs import ComputeLoop, Sleeper


def make_cluster(n=1, **kwargs):
    kwargs.setdefault("time_wait_s", 0.5)
    return Cluster(n, **kwargs)


def test_kill_while_queued_for_cpu_releases_slot():
    """A killed process waiting for a CPU must not leak the slot."""
    cluster = make_cluster(cpus_per_node=1)
    node = cluster.nodes[0]
    hog = node.spawn(ComputeLoop(iterations=1, work_s=2.0))
    victim = node.spawn(ComputeLoop(iterations=1, work_s=1.0))
    cluster.run_for(0.5)  # victim is queued behind the hog
    node.kill(victim.pid, SIGKILL)
    cluster.run()
    assert victim.exit_code == -9
    assert hog.exit_code == 0
    assert node.cpu.in_use == 0
    # A later job gets the CPU normally.
    late = node.spawn(ComputeLoop(iterations=1, work_s=0.5))
    cluster.run()
    assert late.exit_code == 0


def test_kill_while_holding_cpu_releases_slot():
    cluster = make_cluster(cpus_per_node=1)
    node = cluster.nodes[0]
    hog = node.spawn(ComputeLoop(iterations=1, work_s=10.0))
    cluster.run_for(0.5)
    node.kill(hog.pid, SIGKILL)
    cluster.run_for(0.5)
    assert hog.exit_code == -9
    assert node.cpu.in_use == 0


def test_kill_while_blocked_on_semaphore_cancels_waiter():
    class SemWaiter(PhasedProgram):
        initial_phase = "get"

        def phase_get(self, result):
            self.goto("wait")
            return sys("semget", 42, 0)

        def phase_wait(self, result):
            self.semid = result
            self.goto("done")
            return sys("semop", self.semid, -1)

        def phase_done(self, result):
            return Exit(0)

    cluster = make_cluster()
    node = cluster.nodes[0]
    victim = node.spawn(SemWaiter())
    survivor = node.spawn(SemWaiter())
    cluster.run_for(0.1)
    node.kill(victim.pid, SIGKILL)
    cluster.run_for(0.1)
    # Post one unit: the dead waiter must not consume it.
    semid = node.ipc.semget(42, 0)
    node.ipc.sem_lookup(semid).op(+1)
    cluster.run_for(0.1)
    assert victim.exit_code == -9
    assert survivor.exit_code == 0


def test_stop_while_blocked_then_continue_completes_syscall():
    class PipeReader(PhasedProgram):
        initial_phase = "pipe"

        def __init__(self):
            super().__init__()
            self.got = None

        def phase_pipe(self, result):
            self.goto("read")
            return sys("pipe")

        def phase_read(self, result):
            self.rfd, self.wfd = result
            self.goto("done")
            return sys("read", self.rfd, 10)

        def phase_done(self, result):
            self.got = result
            return Exit(0)

    class Feeder(PhasedProgram):
        initial_phase = "sleep"

        def __init__(self, target_node, reader):
            super().__init__()
            self._node = target_node
            self._reader = reader

        def phase_sleep(self, result):
            self.goto("feed")
            return sys("sleep", 0.5)

        def phase_feed(self, result):
            # Write directly into the reader's pipe (kernel-level poke).
            pipe = self._reader.fds.get(self._reader.program.wfd).obj
            pipe.buffer.extend(b"late-data")
            pipe.wake_readers()
            return Exit(0)

    cluster = make_cluster()
    node = cluster.nodes[0]
    reader = node.spawn(PipeReader())
    cluster.run_for(0.1)
    node.signal_now(reader.pid, SIGSTOP)
    node.spawn(Feeder(node, reader))
    cluster.run_for(1.0)
    # Data arrived while stopped: the process must NOT consume it yet.
    assert reader.program.got is None
    assert reader.stopped
    node.signal_now(reader.pid, SIGCONT)
    cluster.run_for(0.1)
    assert reader.program.got == b"late-data"
    assert reader.exit_code == 0


def test_msg_dontwait_send_and_recv_return_eagain():
    class NonBlocking(PhasedProgram):
        initial_phase = "socket"

        def __init__(self, ip):
            super().__init__()
            self.ip = ip
            self.recv_errno = None
            self.sent_total = 0
            self.send_errno = None

        def phase_socket(self, result):
            self.goto("connect")
            return sys("socket", "tcp")

        def phase_connect(self, result):
            self.fd = result
            self.goto("try_recv")
            return sys("connect", self.fd, self.ip, 7900)

        def phase_try_recv(self, result):
            self.goto("after_recv")
            return sys("recv", self.fd, 100, flags=MSG_DONTWAIT)

        def phase_after_recv(self, result):
            if isinstance(result, SyscallError):
                self.recv_errno = result.errno
            self.goto("flood")
            return self.phase_flood(None)

        def phase_flood(self, result):
            if isinstance(result, SyscallError):
                self.send_errno = result.errno
                return Exit(0)
            if isinstance(result, int):
                self.sent_total += result
            return sys("send", self.fd, b"x" * 65536,
                       flags=MSG_DONTWAIT)

    class SilentServer(PhasedProgram):
        """Accepts but never reads: the peer's send buffer fills."""

        initial_phase = "socket"

        def phase_socket(self, result):
            self.goto("bind")
            return sys("socket", "tcp")

        def phase_bind(self, result):
            self.fd = result
            self.goto("listen")
            return sys("bind", self.fd, None, 7900)

        def phase_listen(self, result):
            self.goto("accept")
            return sys("listen", self.fd)

        def phase_accept(self, result):
            self.goto("stall")
            return sys("accept", self.fd)

        def phase_stall(self, result):
            self.goto("stall")
            return sys("sleep", 10.0)

    cluster = make_cluster(n=2)
    cluster.nodes[0].spawn(SilentServer())
    client = cluster.nodes[1].spawn(
        NonBlocking(str(cluster.nodes[0].stack.eth0.ip)))
    cluster.run_for(5.0)
    assert client.program.recv_errno == "EAGAIN"
    assert client.program.send_errno == "EAGAIN"
    assert client.program.sent_total > 0
    assert client.exit_code == 0


def test_program_crash_marks_process_and_spares_node():
    class Buggy(PhasedProgram):
        initial_phase = "boom"

        def phase_boom(self, result):
            raise ZeroDivisionError("app bug")

    cluster = make_cluster()
    node = cluster.nodes[0]
    buggy = node.spawn(Buggy())
    healthy = node.spawn(Sleeper(0.2))
    cluster.run()
    assert buggy.exit_code == -11
    assert isinstance(buggy.crash_exception, ZeroDivisionError)
    assert healthy.exit_code == 0


def test_double_stop_and_double_continue_are_idempotent():
    cluster = make_cluster()
    node = cluster.nodes[0]
    proc = node.spawn(ComputeLoop(iterations=100, work_s=0.01))
    cluster.run_for(0.05)
    node.signal_now(proc.pid, SIGSTOP)
    node.signal_now(proc.pid, SIGSTOP)
    cluster.run_for(0.2)
    assert proc.state == ProcessState.STOPPED
    node.signal_now(proc.pid, SIGCONT)
    node.signal_now(proc.pid, SIGCONT)
    cluster.run()
    assert proc.exit_code == 0


def test_signal_unknown_pid_raises():
    cluster = make_cluster()
    with pytest.raises(SyscallError, match="ESRCH"):
        cluster.nodes[0].kill(999, SIGKILL)
