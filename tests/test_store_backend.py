"""Sharded, replicated image store behind the StoreBackend API.

Covers the backend in isolation (ring placement, replication, repair),
the ImageStore facade (deprecation shim, reconstructibility views), and
the degraded-restore paths the redesign exists for: losing a replica at
RF=2 must not lose a committed version, losing the only copy at RF=1
must fail with a *typed* error, and failover must fall back to the
newest version still reconstructible from surviving replicas.
"""

import pytest

from repro.cruz.backend import ShardedBackend, SharedFSBackend
from repro.cruz.cluster import CruzCluster
from repro.cruz.storage import ImageStore, blob_chunk_id
from repro.errors import (
    ChunkMissingError,
    StoreError,
    VersionUnreconstructibleError,
)
from repro.simos.filesystem import SharedFileSystem
from repro.simos.memory import PAGE_SIZE

from tests.programs import ComputeLoop

NODES = ("node0", "node1", "node2", "node3")


def make_backend(rf=2, nodes=NODES):
    return ShardedBackend(SharedFileSystem(), nodes=nodes,
                          replication_factor=rf)


def run(cluster, generator, limit=1e6):
    task = cluster.sim.process(generator)
    return cluster.sim.run_until_complete(task, limit=limit)


def make_pod_with_grid(cluster, node_index=0, name="p0", n_pages=60):
    pod = cluster.create_pod(node_index, name)
    proc = pod.spawn(ComputeLoop(iterations=1000, work_s=0.01))
    cluster.run_for(0.05)
    proc.memory.allocate("grid", n_pages * PAGE_SIZE)
    return pod, proc


def checkpoint(cluster, pod, node_index=0, resume=True):
    engine = cluster.agents[node_index].checkpoint_engine
    return run(cluster, engine.checkpoint(pod, resume=resume))


# -- ring placement --------------------------------------------------------


def test_placement_is_deterministic_writer_first_and_distinct():
    backend = make_backend(rf=3)
    for payload in (b"alpha", b"beta", b"gamma", b"delta"):
        cid = blob_chunk_id(payload)
        dests = backend.placement(cid, writer="node2")
        assert dests[0] == "node2"              # writer affinity
        assert len(dests) == 3
        assert len(set(dests)) == 3             # distinct nodes
        # Pure function of (cid, writer, availability): a second backend
        # over a different filesystem places identically.
        assert make_backend(rf=3).placement(cid, writer="node2") == dests


def test_placement_skips_down_nodes_and_degrades():
    backend = make_backend(rf=2)
    cid = blob_chunk_id(b"payload")
    full = backend.placement(cid, writer="node0")
    replica = full[1]
    backend.mark_down(replica)
    degraded = backend.placement(cid, writer="node0")
    assert replica not in degraded
    assert degraded[0] == "node0" and len(degraded) == 2
    # Down to a single up node the write degrades to one copy.
    for node in NODES:
        if node != "node0":
            backend.mark_down(node)
    assert backend.placement(cid, writer="node0") == ("node0",)


def test_put_get_replicates_dedups_and_repairs():
    backend = make_backend(rf=2)
    cid = blob_chunk_id(b"payload")
    result = backend.put_chunk(cid, b"payload", writer="node1")
    assert result.logical_write
    assert result.replica_copies == 1
    assert backend.holders(cid) == tuple(sorted(result.dests))
    assert backend.total_copies(cid) == 2
    assert backend.get_chunk(cid) == b"payload"

    again = backend.put_chunk(cid, b"payload", writer="node1")
    assert not again.logical_write              # dedup'd
    assert again.replica_copies == 0

    # Lose one replica: the chunk is under-replicated and repairable.
    victim = backend.holders(cid)[0]
    backend.mark_down(victim)
    assert backend.available(cid)
    assert [entry[0] for entry in backend.under_replicated()] == [cid]
    dest = backend.repair_dest(cid)
    assert dest is not None and dest != victim
    assert backend.replicate(cid, dest) == len(b"payload")
    assert not backend.under_replicated()

    # Lose every reachable copy: typed miss naming the queried shards.
    for node in backend.live_holders(cid):
        backend.delete_on(node, cid)
    with pytest.raises(ChunkMissingError, match="missing chunk") as info:
        backend.get_chunk(cid)
    assert info.value.cid == cid
    assert info.value.queried_nodes == backend.up_nodes


def test_down_node_copies_survive_power_off():
    backend = make_backend(rf=1, nodes=("node0", "node1"))
    cid = blob_chunk_id(b"payload")
    backend.put_chunk(cid, b"payload", writer="node0")
    backend.mark_down("node0")
    assert not backend.available(cid)           # unreachable...
    assert backend.has(cid)                     # ...but not lost
    backend.mark_up("node0")
    assert backend.get_chunk(cid) == b"payload"


def test_legacy_backend_keeps_single_shard_semantics():
    backend = SharedFSBackend(SharedFileSystem())
    cid = blob_chunk_id(b"payload")
    assert backend.put_chunk(cid, b"payload").logical_write
    assert backend.holders(cid) == ("shared-fs",)
    assert backend.under_replicated() == []
    assert backend.write_dests(cid, None) == ("disk",)


# -- the ImageStore facade -------------------------------------------------


def test_store_chunks_shim_warns_deprecation():
    store = ImageStore(SharedFileSystem())
    with pytest.warns(DeprecationWarning, match="ImageStore.chunks"):
        chunks = store.chunks
    assert chunks is store._chunks              # still functional


def test_backend_layout_persists_across_store_instances():
    fs = SharedFileSystem()
    first = ImageStore(fs, backend=ShardedBackend(
        fs, nodes=("a", "b", "c"), replication_factor=2))
    assert first.backend.kind == "sharded"
    # A coordinator restarted elsewhere re-attaches with the same
    # layout from the .store record, not the legacy default.
    second = ImageStore(fs)
    assert second.backend.kind == "sharded"
    assert second.backend.nodes == ["a", "b", "c"]
    assert second.backend.replication_factor == 2


def test_reconstructible_versions_track_replica_loss():
    cluster = CruzCluster(2, replication_factor=1)
    pod, proc = make_pod_with_grid(cluster)
    checkpoint(cluster, pod, resume=False)                      # v1
    store = cluster.store
    assert store.reconstructible_versions(pod.name) == [1]
    store.backend.mark_down("node0")            # the writer held RF=1
    assert store.versions(pod.name) == [1]      # still committed...
    assert store.reconstructible_versions(pod.name) == []  # ...unusable
    with pytest.raises(VersionUnreconstructibleError) as info:
        store.load(pod.name, 1)
    assert isinstance(info.value, StoreError)
    assert info.value.pod_name == pod.name and info.value.version == 1
    assert info.value.missing_cid
    # Power restored: nothing was lost, only unreachable.
    store.backend.mark_up("node0")
    assert store.reconstructible_versions(pod.name) == [1]
    assert store.load(pod.name, 1).version == 1


# -- degraded restore ------------------------------------------------------


def test_rf2_restore_is_bit_exact_after_losing_the_writer_replica():
    """Crash the node that wrote the checkpoint (it held the primary
    copy of every chunk): the restore must come entirely from the
    surviving ring replicas, bit-exact."""
    from repro.zap.checkpoint import scrub_pod_network
    from repro.zap.virtualization import uninstall_pod

    cluster = CruzCluster(3, replication_factor=2)
    pod, proc = make_pod_with_grid(cluster)
    image = checkpoint(cluster, pod, resume=False)              # v1
    done_at_v1 = proc.program.done
    scrub_pod_network(pod)
    pod.kill_all()
    uninstall_pod(pod)
    cluster.agents[0].unregister_pod(pod.name)
    cluster.crash_node(0)                       # the writer's shard dies

    store = cluster.store
    assert store.reconstructible_versions(pod.name) == [1]
    loaded = store.load(pod.name)
    assert loaded.version == image.version == 1
    # Every chunk group now sources from survivors only.
    assert loaded.chunk_sources
    for holders, _nbytes in loaded.chunk_sources:
        assert holders and "node0" not in holders
    restored = run(cluster, cluster.agents[1].restart_engine.restart(
        loaded, cluster.nodes[1], resume=False))
    proc2 = restored.processes()[0]
    assert proc2.program.done == done_at_v1
    assert proc2.memory.regions["grid"].page_count == 60
    assert proc2.memory.page_versions == \
        loaded.processes[0].memory.page_versions


def test_rereplication_restores_rf_after_node_loss():
    cluster = CruzCluster(3, replication_factor=2)
    pod, proc = make_pod_with_grid(cluster)
    checkpoint(cluster, pod, resume=False)
    cluster.crash_node(2)                       # replica-only node
    assert cluster.store.stats["rereplicated_chunks"] == 0
    cluster.run_for(2.0)                        # heal window
    store = cluster.store
    assert store.under_replicated() == []
    assert store.stats["rereplicated_chunks"] > 0
    assert store.reconstructible_versions(pod.name) == [1]
    # Healed means the loss of a *second* node is now survivable too.
    store.backend.mark_down("node1")
    assert store.reconstructible_versions(pod.name) == [1]
