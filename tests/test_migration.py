"""Live pre-copy migration: correctness holes, rollback matrix, eviction.

Covers the migration-path regressions this PR fixes (unchecked source
agent, dirty bits cleared before the store commit, silent ``zip``
truncation in ``restart_app``, cross-app cleanup) plus the new pre-copy
machinery: convergence, the shrunken pause window, intermediate-version
GC, the full rollback matrix (restore failure with and without a
working rollback, chaos-injected source crash mid-pre-copy), and the
supervisor's suspect-state eviction.
"""

from types import SimpleNamespace

import numpy as np
import pytest

from repro.apps.slm import reference_solution, slm_factory
from repro.cruz.migration import (
    MigrationReport,
    PrecopyMigrator,
    _fixup_app,
    owning_app,
    pod_dirty_bytes,
)
from repro.errors import CheckpointError, MigrationError, PodError
from repro.zap.checkpoint import scrub_pod_network
from repro.zap.virtualization import uninstall_pod

from tests.test_cruz_coordination import (
    make_cluster,
    ring_app,
    run_app_to_completion,
)


def run_coroutine(cluster, generator, limit=1e6):
    task = cluster.sim.process(generator)
    return cluster.run_until_complete(task, limit=limit)


def slm_app(cluster, ranks=2, steps=200, total_work_s=20.0,
            memory_mb_per_rank=20.0, rows_per_rank=4, cols=16):
    return cluster.launch_app_factory(
        "slm", ranks,
        slm_factory(ranks, global_rows=rows_per_rank * ranks, cols=cols,
                    steps=steps, total_work_s=total_work_s,
                    memory_mb_per_rank=memory_mb_per_rank))


# -- preflight (S1: unchecked Optional agent) ------------------------------


def test_migrate_pod_without_source_agent_raises_typed_error():
    """Regression: a pod on an agent-less node used to surface as an
    ``AttributeError`` on ``None.unregister_pod``."""
    cluster = make_cluster(2)
    ghost = SimpleNamespace(name="ghost",
                            node=cluster.coordinator_node)
    with pytest.raises(MigrationError) as info:
        cluster.migrate_pod(ghost, target_node_index=0)
    assert "no checkpoint agent" in str(info.value)
    assert info.value.version is None
    assert not info.value.source_destroyed


def test_preflight_rejects_dead_endpoints_and_bad_index():
    cluster = make_cluster(3)
    app = ring_app(cluster, 2)
    cluster.run_for(0.2)
    pod = app.pods[0]
    with pytest.raises(PodError):
        cluster.migrate_pod(pod, target_node_index=7)
    cluster.agents[2].crashed = True
    with pytest.raises(MigrationError, match="target node .* is dead"):
        cluster.migrate_pod(pod, target_node_index=2)
    cluster.agents[2].crashed = False
    cluster.agents[0].crashed = True
    with pytest.raises(MigrationError, match="source node .* is dead"):
        cluster.migrate_pod(pod, target_node_index=2)


# -- restart_app length validation (S3) ------------------------------------


def test_restart_app_length_mismatch_names_both_counts():
    """Regression: ``zip(node_indices, app.pods)`` silently truncated a
    short placement list, restarting a partial membership."""
    cluster = make_cluster(2)
    app = ring_app(cluster, 2)
    cluster.run_for(0.2)
    assert cluster.checkpoint_app(app).committed
    with pytest.raises(ValueError, match=r"1 node index\(es\) for 2 pod"):
        cluster.restart_app(app, node_indices=[0])


# -- cleanup scoping (S4) ---------------------------------------------------


def test_fixup_rewrites_only_the_identical_member():
    """Regression: failure cleanup used to rewrite every app's pods by
    *name*; a namesake member of another app was silently re-pointed."""
    cluster = make_cluster(3)
    app = ring_app(cluster, 2)
    cluster.run_for(0.2)
    victim = app.pods[0]
    namesake = SimpleNamespace(name=victim.name, node=victim.node)
    other = SimpleNamespace(name="other", pods=[namesake])
    failure = MigrationError(victim.name, 3, "node2", "boom",
                             rolled_back=True)
    failure.pod = SimpleNamespace(name=victim.name)
    _fixup_app(other, victim, failure, None)
    assert other.pods[0] is namesake      # identity mismatch: untouched
    _fixup_app(app, victim, failure, None)
    assert app.pods[0] is failure.pod     # the owning app is re-pointed
    assert owning_app(cluster, app.pods[1]) is app


def test_failed_migration_leaves_other_apps_alone():
    cluster = make_cluster(4)
    app_a = ring_app(cluster, 2, name="ring-a")
    app_b = ring_app(cluster, 2, name="ring-b")
    cluster.run_for(0.2)
    members_b = list(app_b.pods)

    def exploding_restart(image, node, resume=True, **kwargs):
        raise RuntimeError("target out of memory")
        yield  # pragma: no cover - generator shape

    cluster.agents[3].restart_engine.restart = exploding_restart
    with pytest.raises(MigrationError) as info:
        cluster.migrate_pod(app_a.pods[0], target_node_index=3)
    assert info.value.rolled_back
    assert app_b.pods == members_b
    assert app_a.pods[0].name == "ring-a-r0"
    run_app_to_completion(cluster, app_b)


# -- dirty bits survive a failed commit (S2) --------------------------------


def test_failed_incremental_save_keeps_dirty_bits():
    """Regression: ``build_image`` cleared dirty bits before the store
    commit, so a failed save silently shrank the next delta to zero."""
    cluster = make_cluster(3, sanitize=True)
    app = slm_app(cluster, memory_mb_per_rank=4.0)
    cluster.run_for(0.5)
    pod = app.pods[0]
    engine = cluster.agents[0].checkpoint_engine
    run_coroutine(cluster, engine.checkpoint(pod, resume=True,
                                             incremental=True))
    cluster.run_for(0.3)                    # the app re-dirties its field
    dirty_before = pod_dirty_bytes(pod)
    assert dirty_before > 0

    store, original_save = cluster.store, cluster.store.save

    def failing_save(image, **kwargs):
        raise CheckpointError("injected: disk full")

    store.save = failing_save
    with pytest.raises(CheckpointError, match="disk full"):
        run_coroutine(cluster, engine.checkpoint(pod, resume=True,
                                                 incremental=True))
    store.save = original_save
    # Nothing committed, so nothing may be retired.
    assert pod_dirty_bytes(pod) == dirty_before
    # The retried incremental ships the same delta and only then retires.
    image = run_coroutine(cluster, engine.checkpoint(pod, resume=True,
                                                     incremental=True))
    assert image.version in store.versions(pod.name)
    assert pod_dirty_bytes(pod) == 0
    assert not cluster.trace.sanitizer.violations


def test_san_mem_restore_flags_diverging_memory():
    """The SAN-MEM-RESTORE check: restored address spaces must carry the
    image's exact regions and page write-versions."""
    cluster = make_cluster(2, sanitize=True)
    app = slm_app(cluster, memory_mb_per_rank=4.0)
    cluster.run_for(0.5)
    pod = app.pods[0]
    agent = cluster.agents[0]
    image = run_coroutine(
        cluster, agent.checkpoint_engine.checkpoint(pod, resume=False))
    scrub_pod_network(pod)
    pod.kill_all()
    uninstall_pod(pod)
    agent.unregister_pod(pod.name)
    restored = run_coroutine(
        cluster, cluster.agents[1].restart_engine.restart(
            image, cluster.nodes[1], resume=True))
    sanitizer = cluster.trace.sanitizer
    assert not sanitizer.violations        # clean restore passes
    # Now tamper the captured image and re-run the check by hand: a
    # page whose write clock diverges must be reported.
    memory = image.processes[0].memory
    page = next(iter(memory.page_versions))
    memory.page_versions[page] += 1
    sanitizer.check_restored_memory(image, restored,
                                    time=cluster.sim.now)
    codes = [violation.code for violation in sanitizer.violations]
    assert "SAN-MEM-RESTORE" in codes


# -- pre-copy behaviour -----------------------------------------------------


def test_precopy_converges_and_shrinks_the_pause():
    steps = 120
    pauses = {}
    for live in (False, True):
        cluster = make_cluster(3, sanitize=True)
        app = slm_app(cluster, steps=steps, total_work_s=12.0,
                      memory_mb_per_rank=20.0)
        cluster.run_for(1.0)
        pod_name = app.pods[0].name
        new_pod = cluster.migrate_pod(app.pods[0], target_node_index=2,
                                      live=live)
        report = cluster.last_migration
        pauses[live] = report.pause_window_s
        assert isinstance(report, MigrationReport)
        assert new_pod.node is cluster.nodes[2]
        assert app.pods[0] is new_pod
        if live:
            assert report.mode == "precopy"
            assert report.converged
            assert 1 <= report.precopy_rounds <= 5
            assert report.warm_bytes > 0
            # Intermediate round versions are GC'd: the store history
            # looks exactly like a single-checkpoint migration.
            assert cluster.store.versions(pod_name) == \
                [report.final_version]
        else:
            assert report.mode == "stop_and_copy"
            assert report.precopy_rounds == 0
        cluster.run_until(
            lambda: all(p.step_count >= steps
                        for p in cluster.app_programs(app)),
            limit=60.0)
        cluster.run_for(0.2)
        programs = sorted(cluster.app_programs(app),
                          key=lambda p: p.rank)
        np.testing.assert_array_equal(
            np.vstack([p.q for p in programs]),
            reference_solution(8, 16, steps))
        assert not cluster.trace.sanitizer.violations
    assert pauses[True] < 0.25 * pauses[False]


# -- rollback matrix --------------------------------------------------------


def test_live_migration_rolls_back_on_target_restore_failure():
    cluster = make_cluster(3, sanitize=True)
    app = ring_app(cluster, 2)
    cluster.run_for(0.2)
    victim = app.pods[0]

    def exploding_restart(image, node, resume=True, **kwargs):
        raise RuntimeError("target out of memory")
        yield  # pragma: no cover - generator shape

    cluster.agents[2].restart_engine.restart = exploding_restart
    with pytest.raises(MigrationError) as info:
        cluster.migrate_pod(victim, target_node_index=2, live=True)
    error = info.value
    assert error.rolled_back and error.source_destroyed
    assert error.version in cluster.store.versions(victim.name)
    fallback = app.pods[0]
    assert fallback.name == victim.name
    assert fallback.node is cluster.nodes[0]
    assert fallback.name in cluster.agents[0].pods
    for node in cluster.nodes:
        assert not node.stack.netfilter.rules
    assert not cluster.trace.sanitizer.violations
    run_app_to_completion(cluster, app)


def test_rollback_failure_reports_pod_running_nowhere():
    cluster = make_cluster(3, sanitize=True)
    app = ring_app(cluster, 2)
    cluster.run_for(0.2)
    victim = app.pods[0]

    def exploding_restart(image, node, resume=True, **kwargs):
        raise RuntimeError("restore always fails")
        yield  # pragma: no cover - generator shape

    # Both the target restore and the source rollback explode.
    cluster.agents[2].restart_engine.restart = exploding_restart
    cluster.agents[0].restart_engine.restart = exploding_restart
    with pytest.raises(MigrationError) as info:
        cluster.migrate_pod(victim, target_node_index=2, live=True)
    error = info.value
    assert error.source_destroyed and not error.rolled_back
    assert "NOT running anywhere" in str(error)
    assert error.rollback_error is not None
    # The committed image named by the error really is restorable...
    assert error.version in cluster.store.versions(victim.name)
    # ...and the dangling member was dropped, not left pointing at a
    # dead pod.
    assert all(member.name != victim.name for member in app.pods)
    for node in cluster.nodes:
        assert not node.stack.netfilter.rules
    assert not cluster.trace.sanitizer.violations


def test_source_crash_mid_precopy_leaves_app_untouched():
    """Chaos-injected node crash while pre-copy rounds stream: the
    migration aborts with ``source_destroyed=False``, discards its
    half-committed images, and leaves recovery to failover."""
    from repro.cruz.faults import ChaosInjector

    cluster = make_cluster(3, sanitize=True)
    app = slm_app(cluster, memory_mb_per_rank=20.0)
    cluster.run_for(0.5)
    victim = app.pods[0]
    members_before = list(app.pods)
    chaos = ChaosInjector(cluster)
    # Round 1 writes 20 MB (~200 ms simulated): crash the source square
    # in the middle of it.
    chaos.schedule_node_crash(0, at=cluster.sim.now + 0.05)
    with pytest.raises(MigrationError) as info:
        cluster.migrate_pod(victim, target_node_index=2, live=True)
    error = info.value
    assert not error.source_destroyed
    assert "died mid-pre-copy" in str(error)
    # Membership is untouched — whoever killed the node owns recovery.
    assert app.pods == members_before
    # Half-round images were discarded with the other intermediates.
    assert cluster.store.versions(victim.name) == []
    for node in cluster.nodes:
        assert not node.stack.netfilter.rules
    assert not cluster.trace.sanitizer.violations
    assert chaos.node_crashes == 1


# -- suspect-state eviction -------------------------------------------------


def test_suspect_eviction_moves_pods_before_declaration():
    from repro.bench.chaos import run_chaos

    result = run_chaos(evict_on_suspect=True)
    assert result.evict_mode
    assert result.ok, result.render()
    assert result.completed and result.output_correct
    assert result.evictions
    for entry in result.evictions:
        assert entry["ok"]
        assert entry["before_declaration"]
        assert entry["to"] != entry["from"]
        assert entry["rounds"] >= 1
        # Near-zero downtime: the pause is a sliver of the ~1.9 s a
        # stop-and-copy of this pod would take.
        assert entry["pause_window_s"] < 0.05
    assert result.sanitizer_violations == 0


def test_evict_disabled_by_default():
    cluster = make_cluster(2, supervise=True)
    assert not cluster.supervisor.evict_on_suspect
    assert not cluster.supervisor.eviction_active("anything")


def test_precopy_migrator_rejects_zero_rounds():
    cluster = make_cluster(2)
    with pytest.raises(PodError):
        PrecopyMigrator(cluster, max_rounds=0)
