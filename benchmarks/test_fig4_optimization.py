"""Fig. 4: the early-resume optimisation.

Paper: once the coordinator knows communication is disabled everywhere,
each node may resume as soon as its own save completes, instead of waiting
for the slowest node.
"""

from repro.bench.harness import paper_vs_measured, render_table
from repro.bench.optimization import (
    optimization_shape_holds,
    run_optimization,
)


def test_fig4_optimization(benchmark, show):
    result = benchmark.pedantic(
        lambda: run_optimization(n_nodes=4,
                                 state_mb=(100.0, 5.0, 5.0, 5.0)),
        rounds=1, iterations=1)
    shape = optimization_shape_holds(result)
    pods = sorted(result.blocking_pause_s)
    rows = [[pod,
             f"{result.blocking_pause_s[pod]*1000:.0f} ms",
             f"{result.optimized_pause_s[pod]*1000:.0f} ms"]
            for pod in pods]
    show(render_table(
        "Fig 4 — per-pod pause time, blocking (Fig 2) vs optimised",
        ["pod (r0 has 100 MB, others 5 MB)", "blocking", "optimised"],
        rows))
    show(paper_vs_measured("Fig 4 shape", [
        ("blocking: all nodes wait for slowest", "yes",
         "yes" if shape["blocking_all_wait"] else "no",
         shape["blocking_all_wait"]),
        ("optimised: small-state nodes resume early", "yes",
         f"{result.min_optimized_pause*1000:.0f} ms vs "
         f"{result.max_blocking_pause*1000:.0f} ms",
         shape["optimized_fast_pods_resume_early"]),
        ("slowest node bounded by its own save", "yes",
         "yes" if shape["slowest_unchanged"] else "no",
         shape["slowest_unchanged"]),
    ]))
    assert all(shape.values()), shape
