"""Cluster assembly: nodes, switch, shared filesystem, DHCP.

This is the generic substrate layer; :class:`repro.cruz.cluster.CruzCluster`
wraps it with pods, agents and a coordinator.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.net.addresses import Ipv4Address, MacAddress, Subnet
from repro.net.dhcp import (
    DHCP_CLIENT_PORT,
    DHCP_SERVER_PORT,
    DhcpMessage,
    DhcpServer,
)
from repro.net.link import Link
from repro.net.nic import Nic
from repro.net.switch import Switch
from repro.sim.core import Simulator
from repro.sim.rand import RandomStreams
from repro.sim.trace import Trace
from repro.simos.costs import CostModel, DEFAULT_COSTS
from repro.simos.filesystem import SharedFileSystem
from repro.simos.kernel import Node
from repro.simos.netstack import BROADCAST_IP


class Cluster:
    """A switched Ethernet cluster of simulated nodes.

    Node ``i`` is named ``node<i>`` with eth0 at ``10.1.0.<i+1>``. Pod
    (VIF) addresses are allocated from ``10.1.1.*`` by default, mirroring
    the paper's single-subnet requirement for migration (§4.2).
    """

    #: Scheduler presets: ``fast`` is the production configuration
    #: (calendar event queue, slotted timer wheel, batched link/switch
    #: delivery); ``legacy`` is the pre-refactor discipline (monolithic
    #: heap, exact per-timer events, one arrival event per frame) kept
    #: as the simcore benchmark's baseline and as a bit-exact reference.
    SCHEDULERS = ("fast", "legacy")

    def __init__(self, n_nodes: int, seed: int = 0,
                 costs: CostModel = DEFAULT_COSTS,
                 trace_enabled: bool = True,
                 time_wait_s: float = 60.0,
                 bandwidth_bps: float = 1e9,
                 latency_s: float = 5e-6,
                 cpus_per_node: int = 2,
                 nic_supports_multiple_macs: bool = True,
                 tiebreak: str = "fifo",
                 sanitize: Optional[bool] = None,
                 scheduler: str = "fast",
                 link_coalesce_s: float = 0.0,
                 oracle=None):
        if scheduler not in self.SCHEDULERS:
            raise ValueError(f"unknown scheduler preset {scheduler!r}")
        fast = scheduler == "fast"
        self.scheduler = scheduler
        self.sim = Simulator(tiebreak=tiebreak,
                             queue="calendar" if fast else "heap",
                             slotted_timers=fast, lightweight=fast,
                             leaky_cancel=not fast, oracle=oracle)
        self.random = RandomStreams(seed)
        self.trace = Trace(enabled=trace_enabled)
        self.trace.attach_clock(lambda: self.sim.now)
        # Runtime invariant sanitizer: explicit opt-in via the kwarg, or
        # ambient opt-in via CRUZ_SANITIZE=1 (only the latter registers
        # in sanitize.ACTIVE, which the --cruz-sanitize pytest fixture
        # inspects — explicitly sanitized clusters are the negative
        # tests' own business).
        from repro.analysis import sanitize as _sanitize
        if sanitize or (sanitize is None and _sanitize.env_enabled()):
            _sanitize.install(self.trace, register=sanitize is None)
        self.fs = SharedFileSystem()
        self.costs = costs
        self.subnet = Subnet(Ipv4Address.parse("10.1.0.0"), 16)
        self.switch = Switch(self.sim, "switch0", direct=not fast)
        self.nodes: List[Node] = []
        self.links: List[Link] = []
        self.dhcp_server: Optional[DhcpServer] = None
        self._next_pod_host = 256  # 10.1.1.0 onwards
        self._next_vif_mac = 0x4000
        for index in range(n_nodes):
            nic = Nic(self.sim, f"node{index}.eth0",
                      MacAddress.ordinal(index + 1),
                      supports_multiple_macs=nic_supports_multiple_macs)
            node = Node(self.sim, f"node{index}", nic, self.fs,
                        costs=costs, trace=self.trace, cpus=cpus_per_node,
                        time_wait_s=time_wait_s, iss_seed=index + 1)
            node.stack.configure_eth0(self.subnet.host(index + 1))
            self.links.append(Link(
                self.sim, nic.port, self.switch.new_port(),
                bandwidth_bps=bandwidth_bps, latency_s=latency_s,
                name=f"node{index}<->switch", trace=self.trace,
                coalesce_s=link_coalesce_s, direct=not fast))
            self.nodes.append(node)

    # -- address allocation -------------------------------------------------

    def allocate_pod_ip(self) -> Ipv4Address:
        ip = self.subnet.host(self._next_pod_host)
        self._next_pod_host += 1
        return ip

    def allocate_vif_mac(self) -> MacAddress:
        mac = MacAddress.ordinal(self._next_vif_mac)
        self._next_vif_mac += 1
        return mac

    def node_by_name(self, name: str) -> Node:
        for node in self.nodes:
            if node.name == name:
                return node
        raise KeyError(name)

    # -- infrastructure services ---------------------------------------------

    def add_dhcp_server(self, node_index: int = 0,
                        pool_start: int = 512,
                        default_lease_s: float = 3600.0) -> DhcpServer:
        """Run a DHCP server on a node, answering broadcasts on the subnet."""
        node = self.nodes[node_index]
        pool = self.subnet.hosts(start=pool_start)

        def send(message: DhcpMessage,
                 dst: Optional[Ipv4Address]) -> None:
            # DHCP replies to clients without an address are broadcast.
            node.stack.udp.send(
                node.stack.eth0.ip, DHCP_SERVER_PORT,
                dst if dst is not None else BROADCAST_IP,
                DHCP_CLIENT_PORT, message, payload_size=message.size)

        server = DhcpServer(f"dhcp@{node.name}", pool, send,
                            clock=lambda: self.sim.now,
                            default_lease_s=default_lease_s)

        def handler(payload, src_ip, src_port, dst_ip) -> None:
            if isinstance(payload, DhcpMessage):
                server.handle(payload)

        node.stack.udp.bind(DHCP_SERVER_PORT, handler)
        self.dhcp_server = server
        return server

    # -- running ---------------------------------------------------------------

    def run(self, until: Optional[float] = None) -> None:
        self.sim.run(until=until)

    def run_for(self, duration: float) -> None:
        self.sim.run(until=self.sim.now + duration)

    def run_until(self, predicate: Callable[[], bool],
                  limit: float = 1e6, step: float = 0.01) -> None:
        """Advance time until ``predicate()`` holds.

        Event-aware: the predicate is re-checked after each simulator
        event batch (all events sharing a timestamp — with batched link
        delivery, a whole burst of frames delivered by one arrival event
        counts as one batch), so the wait returns at the exact event
        time that made it true instead of at the next fixed-step
        boundary, without paying a predicate call per frame. ``step`` is
        only the fallback stride when the event queue is empty and only
        wall-clock progress (pure time predicates) can change the answer.
        """
        while not predicate():
            if self.sim.now > limit:
                raise TimeoutError("run_until limit exceeded")
            upcoming = self.sim.peek()
            if upcoming == float("inf"):
                target = min(self.sim.now + step, limit + step)
            else:
                target = min(upcoming, limit + step)
            self.sim.run(until=target)

    def run_until_complete(self, process, limit: float = 1e6):
        """Drive one simulation process to completion; returns its value."""
        return self.sim.run_until_complete(process, limit=limit)

    def stats(self) -> Dict[str, int]:
        return {
            "frames_forwarded": self.switch.frames_forwarded,
            "frames_flooded": self.switch.frames_flooded,
            "fs_bytes_written": self.fs.bytes_written,
        }

    def scheduler_stats(self) -> Dict[str, object]:
        """Event-queue and timer-wheel counters (``Simulator.stats()``)."""
        return self.sim.stats()
