"""Property-based end-to-end CR: correctness at ARBITRARY timings.

The §5.1 proof claims consistency for any interleaving; these tests let
hypothesis pick the checkpoint/crash instants and protocol options and
assert full application-level correctness every time.
"""

from hypothesis import given, settings, strategies as st
import numpy as np

from repro.apps.ring import validate_ring
from repro.apps.slm import reference_solution, slm_factory

from tests.test_apps import assemble_field
from tests.test_cruz_coordination import (
    make_cluster,
    ring_app,
    run_app_to_completion,
    workers_of,
)


@settings(max_examples=8, deadline=None)
@given(checkpoint_at=st.floats(0.05, 0.8),
       crash_after=st.floats(0.0, 0.4),
       optimized=st.booleans())
def test_ring_exactly_once_for_any_checkpoint_timing(
        checkpoint_at, crash_after, optimized):
    cluster = make_cluster(3)
    app = ring_app(cluster, 3, max_token=2500)
    cluster.run_for(checkpoint_at)
    stats = cluster.checkpoint_app(app, optimized=optimized,
                                   early_network=optimized)
    assert stats.committed
    cluster.run_for(crash_after)
    cluster.crash_app(app)
    cluster.restart_app(app)
    run_app_to_completion(cluster, app)
    validate_ring(workers_of(cluster, app))


@settings(max_examples=6, deadline=None)
@given(checkpoint_at=st.floats(0.1, 2.0),
       migrate_rank=st.integers(0, 1),
       incremental=st.booleans())
def test_slm_bit_identical_for_any_timing(checkpoint_at, migrate_rank,
                                          incremental):
    steps = 50
    cluster = make_cluster(4)
    # 6 s of work over 2 ranks = 3 s wall minimum: every checkpoint_at
    # in [0.1, 2.0] lands strictly mid-run.
    app = cluster.launch_app_factory(
        "slm", 2, slm_factory(2, global_rows=16, cols=16, steps=steps,
                              total_work_s=6.0), node_indices=[0, 1])
    cluster.run_for(checkpoint_at)
    assert any(r.step_count < steps for r in cluster.app_programs(app))
    cluster.checkpoint_app(app, incremental=incremental)
    cluster.migrate_pod(app.pods[migrate_rank], target_node_index=2)
    cluster.run_for(0.1)
    cluster.crash_app(app)
    cluster.restart_app(app, node_indices=[3, 1])
    run_app_to_completion(cluster, app)
    field = assemble_field(cluster.app_programs(app))
    np.testing.assert_array_equal(field,
                                  reference_solution(16, 16, steps))
