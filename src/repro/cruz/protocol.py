"""Coordination protocol messages (Fig. 2 / Fig. 4) and the reliable
control-plane transport underneath them.

Control messages travel over the simulated network (UDP) between the
Checkpoint Coordinator and the per-node Checkpoint Agents, so message
counts and wire latencies are measured, not asserted. The message set is
the minimum needed for two-phase-commit-style atomicity:

``CHECKPOINT → (COMM_DISABLED) → DONE → CONTINUE → CONTINUE_DONE``

plus ``RESTART`` (same shape) and ``ABORT`` for failure handling.

Datagrams can be lost, duplicated, delayed or reordered (see
:mod:`repro.cruz.faults`), so every protocol message rides a
:class:`ReliableEndpoint`: the receiver acknowledges each message with an
``ACK`` datagram, the sender retransmits with exponential backoff until
the ACK arrives or its retry budget is exhausted, and duplicates are
suppressed on ``(sender, epoch, kind, pod_name)`` so both sides stay
idempotent under retries. ACKs and retransmissions are transport-level:
they are counted separately (``RoundStats.retransmissions`` /
``.duplicates``) and never emit ``coord_msg`` trace events, so the
Fig. 5 per-round message counts stay comparable to the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Tuple

AGENT_PORT = 7601
COORDINATOR_PORT = 7602
SUPERVISOR_PORT = 7603

CHECKPOINT = "CHECKPOINT"
RESTART = "RESTART"
COMM_DISABLED = "COMM_DISABLED"   # Fig. 4 optimisation only
DONE = "DONE"
CONTINUE = "CONTINUE"
CONTINUE_DONE = "CONTINUE_DONE"
ABORT = "ABORT"
#: Transport-level acknowledgement; never part of the Fig. 2 flow.
ACK = "ACK"
#: Liveness beacon from an agent to the node supervisor. Deliberately
#: fire-and-forget: a lost beat IS the failure signal, so heartbeats are
#: neither ACKed, retransmitted, nor duplicate-suppressed (their ``epoch``
#: field carries a per-sender sequence number, reused every round).
HEARTBEAT = "HEARTBEAT"

#: Kinds delivered without the ACK/retransmit/dedup machinery.
UNACKED_KINDS = frozenset({HEARTBEAT})


@dataclass(frozen=True)
class ControlMessage:
    """One coordinator/agent protocol message."""

    kind: str
    epoch: int
    pod_name: str = ""
    node_name: str = ""
    #: RESTART: which stored image version to restore (0 = latest).
    version: int = 0
    #: Fig. 4: agents resume as soon as their own save finishes.
    optimized: bool = False
    #: Incremental checkpoint (dirty pages only).
    incremental: bool = False
    #: Content-address every chunk and skip those already stored, without
    #: relying on dirty-page tracking (hash-everything dedup mode).
    dedup: bool = False
    #: §5.2 TCP-backoff optimisation: re-enable communication as soon as
    #: the communication state is captured (requires ``optimized`` — the
    #: filter may only drop early once every node has disabled comms).
    early_network: bool = False
    #: §5.2 copy-on-write-style optimisation: the pod resumes computing
    #: (still filtered) while its state is written to disk.
    concurrent: bool = False
    #: Agents report local operation durations so the coordinator can
    #: compute coordination overhead exactly as §6 does.
    local_checkpoint_s: float = 0.0
    local_continue_s: float = 0.0
    #: DONE only: bytes of new chunks this save actually moved to the
    #: store, and total logical bytes the image references there.
    new_chunk_bytes: int = 0
    total_chunk_bytes: int = 0
    #: Failure-injection/abort reason.
    reason: str = ""
    #: ACK only: the ``kind`` of the message being acknowledged.
    ack_kind: str = ""
    #: Wire size estimate.
    payload_bytes: int = field(default=64)

    @property
    def size(self) -> int:
        return self.payload_bytes

    @property
    def dedup_key(self) -> Tuple[int, str, str]:
        """Identity under retransmission (ISSUE: ``(epoch, kind, pod)``)."""
        return (self.epoch, self.kind, self.pod_name)


@dataclass
class RoundStats:
    """Coordinator-side measurements for one checkpoint/restart round."""

    epoch: int
    kind: str
    n_nodes: int
    started_at: float
    #: first <checkpoint> sent -> last <done> received (Fig. 5a metric).
    latency_s: float = 0.0
    #: full protocol completion including continue-done.
    total_s: float = 0.0
    #: max over nodes of the local checkpoint/restart operation.
    max_local_op_s: float = 0.0
    #: max over nodes of the local continue operation.
    max_local_continue_s: float = 0.0
    #: First transmissions / first receptions only — the paper-comparable
    #: Fig. 5 counts. Transport-level traffic is tracked separately below.
    messages_sent: int = 0
    messages_received: int = 0
    #: Control datagrams retransmitted by the coordinator endpoint for
    #: this round (lost message or lost ACK), and duplicate protocol
    #: messages it suppressed. Excluded from ``total_messages``.
    retransmissions: int = 0
    duplicates: int = 0
    committed: bool = False
    aborted: bool = False
    #: Sum over nodes of bytes of new chunks written to the store this
    #: round, and of total chunk bytes the round's images reference.
    new_chunk_bytes: int = 0
    total_chunk_bytes: int = 0
    #: Per-phase breakdown (span name -> seconds) derived from the span
    #: recorder: ``coord.*`` phases summed, agent/zap phases max-over-nodes
    #: (see :func:`repro.sim.spans.round_phases`). Empty when tracing is
    #: disabled.
    phase_s: Dict[str, float] = field(default_factory=dict)

    @property
    def coordination_overhead_s(self) -> float:
        """§6: latency minus the (parallel) local operations."""
        return self.latency_s - self.max_local_op_s

    @property
    def dedup_ratio(self) -> float:
        """Fraction of referenced chunk bytes NOT rewritten this round."""
        if self.total_chunk_bytes <= 0:
            return 0.0
        return 1.0 - self.new_chunk_bytes / self.total_chunk_bytes

    @property
    def total_messages(self) -> int:
        return self.messages_sent + self.messages_received


@dataclass(frozen=True)
class RetryPolicy:
    """Retransmission schedule for one reliable send.

    The first transmission is free; each retry waits ``initial_backoff_s``
    doubled per attempt (capped at ``max_backoff_s``). After
    ``max_retries`` retransmissions and one final backoff the sender gives
    up — reliability then falls back to the round/continue timeouts.
    """

    initial_backoff_s: float = 0.05
    backoff_factor: float = 2.0
    max_backoff_s: float = 1.0
    max_retries: int = 6

    def give_up_after_s(self) -> float:
        """Worst-case seconds from first transmission to give-up."""
        total, backoff = 0.0, self.initial_backoff_s
        for _ in range(self.max_retries + 1):
            total += backoff
            backoff = min(backoff * self.backoff_factor,
                          self.max_backoff_s)
        return total


class ReliableEndpoint:
    """ACK + retransmit + duplicate suppression over the simulated UDP.

    One endpoint per protocol participant (the coordinator, each agent).
    ``handler(message, src_ip)`` sees each protocol message exactly once;
    ACKs are generated and consumed internally. Retransmissions carry the
    byte-identical message, so receivers key duplicate suppression on
    ``(src_ip,) + message.dedup_key``.
    """

    def __init__(self, node, port: int,
                 handler: Callable[["ControlMessage", object], None],
                 policy: Optional[RetryPolicy] = None,
                 faults=None,
                 is_alive: Optional[Callable[[], bool]] = None,
                 name: str = "", mc_bugs=frozenset()):
        self.node = node
        self.port = port
        self.handler = handler
        self.policy = policy if policy is not None else RetryPolicy()
        #: Optional :class:`repro.cruz.faults.ControlFaultInjector`.
        self.faults = faults
        #: Model-checker mutation flags (``repro.analysis.mc``):
        #: "stale-replay" turns off receiver-side duplicate suppression,
        #: re-delivering every copy of a message to the handler.
        self.mc_bugs = frozenset(mc_bugs)
        self._is_alive = is_alive if is_alive is not None \
            else (lambda: True)
        self.name = name or f"endpoint@{node.name}:{port}"
        #: (dst_ip, epoch, kind, pod_name) -> ACK event.
        self._pending: Dict[Tuple, object] = {}
        #: (src_ip, epoch, kind, pod_name) already delivered to handler.
        self._seen: Dict[Tuple, bool] = {}
        self.retransmissions = 0
        self.duplicates = 0
        self.acks_sent = 0
        self.acks_received = 0
        self.gave_up = 0
        self.retransmissions_by_epoch: Dict[int, int] = {}
        self.duplicates_by_epoch: Dict[int, int] = {}
        self._closed = False
        node.stack.udp.bind(port, self._on_datagram)

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        """Stop receiving (simulates a crashed/replaced participant)."""
        if not self._closed:
            self._closed = True
            self.node.stack.udp.unbind(self.port)

    def forget_epochs_below(self, epoch: int) -> None:
        """Reclaim dedup/counter state for long-completed epochs.

        Stale retransmissions older than the horizon are re-delivered to
        the handler, which must therefore apply its own epoch guard (the
        agents ignore epochs at or below their last completed round).
        """
        self._seen = {key: True for key in self._seen if key[1] >= epoch}
        for counters in (self.retransmissions_by_epoch,
                         self.duplicates_by_epoch):
            for old in [e for e in counters if e < epoch]:
                del counters[old]

    def retransmissions_for(self, epoch: int) -> int:
        return self.retransmissions_by_epoch.get(epoch, 0)

    def duplicates_for(self, epoch: int) -> int:
        return self.duplicates_by_epoch.get(epoch, 0)

    # -- sending -----------------------------------------------------------

    def _transmit(self, dst_ip, dst_port: int,
                  message: "ControlMessage") -> None:
        """One physical datagram, routed through the fault injector."""
        if not self._is_alive():
            # A crashed participant transmits nothing: retransmit loops
            # already in flight fall silent instead of leaking frames
            # from a powered-off node.
            return

        def put() -> None:
            self.node.stack.udp.send(
                self.node.stack.eth0.ip, self.port, dst_ip, dst_port,
                message, payload_size=message.size)

        if self.faults is not None and self.faults.apply(message, put):
            return
        put()

    def send_unreliable(self, dst_ip, dst_port: int,
                        message: "ControlMessage") -> None:
        """One datagram, no ACK, no retransmission (heartbeats).

        The message still passes through the fault injector, so chaos
        plans can drop or delay liveness beacons like any other control
        traffic.
        """
        self._transmit(dst_ip, dst_port, message)

    def send(self, dst_ip, dst_port: int, message: "ControlMessage",
             on_give_up: Optional[Callable[["ControlMessage"], None]]
             = None) -> None:
        """Send ``message`` reliably (retransmit until ACKed).

        ``on_give_up`` fires if the retry budget is exhausted without an
        ACK — the coordinator uses it to fail the round immediately
        instead of waiting out the full round timeout.
        """
        key = (dst_ip,) + message.dedup_key
        acked = self._pending.get(key)
        if acked is None or acked.triggered:
            acked = self.node.sim.event(
                f"ack({message.kind},{message.epoch})")
            self._pending[key] = acked
        self._transmit(dst_ip, dst_port, message)
        self.node.sim.process(
            self._retransmit_loop(key, dst_ip, dst_port, message, acked,
                                  on_give_up),
            name=f"retx({self.name},{message.kind},{message.epoch})")

    def _retransmit_loop(self, key, dst_ip, dst_port, message, acked,
                         on_give_up):
        sim = self.node.sim
        backoff = self.policy.initial_backoff_s
        for attempt in range(self.policy.max_retries + 1):
            timer = sim.timeout(backoff)
            outcome = yield sim.any_of([acked, timer])
            if acked in outcome:
                self._pending.pop(key, None)
                return
            if attempt == self.policy.max_retries:
                break
            self.retransmissions += 1
            self.retransmissions_by_epoch[message.epoch] = \
                self.retransmissions_by_epoch.get(message.epoch, 0) + 1
            self.node.trace.emit(sim.now, "coord_retry",
                                 node=self.node.name, kind=message.kind,
                                 epoch=message.epoch, attempt=attempt + 1)
            self._transmit(dst_ip, dst_port, message)
            backoff = min(backoff * self.policy.backoff_factor,
                          self.policy.max_backoff_s)
        self._pending.pop(key, None)
        self.gave_up += 1
        self.node.trace.emit(sim.now, "coord_give_up",
                             node=self.node.name, kind=message.kind,
                             epoch=message.epoch)
        if on_give_up is not None:
            on_give_up(message)

    # -- receiving ---------------------------------------------------------

    def _send_ack(self, src_ip, src_port: int,
                  message: "ControlMessage") -> None:
        self.acks_sent += 1
        self._transmit(src_ip, src_port, ControlMessage(
            kind=ACK, epoch=message.epoch, pod_name=message.pod_name,
            node_name=self.node.name, ack_kind=message.kind,
            payload_bytes=16))

    def _on_datagram(self, payload, src_ip, src_port, _dst_ip) -> None:
        if not self._is_alive() or not isinstance(payload, ControlMessage):
            return
        if payload.kind in UNACKED_KINDS:
            # Fire-and-forget kinds bypass ACK generation and duplicate
            # suppression: every received beat must reach the handler
            # (the sequence number repeats across heartbeat intervals).
            self.handler(payload, src_ip)
            return
        if payload.kind == ACK:
            self.acks_received += 1
            key = (src_ip, payload.epoch, payload.ack_kind,
                   payload.pod_name)
            acked = self._pending.pop(key, None)
            if acked is not None and not acked.triggered:
                acked.succeed()
            return
        # Acknowledge before dispatching — a duplicate means our previous
        # ACK (or the original delivery window) was lost, so re-ACK it.
        self._send_ack(src_ip, src_port, payload)
        key = (src_ip,) + payload.dedup_key
        if key in self._seen and "stale-replay" not in self.mc_bugs:
            self.duplicates += 1
            self.duplicates_by_epoch[payload.epoch] = \
                self.duplicates_by_epoch.get(payload.epoch, 0) + 1
            return
        self._seen[key] = True
        self.handler(payload, src_ip)
