"""Shared test fixtures: minimal wiring harnesses below the OS layer."""

from __future__ import annotations

from typing import Callable, Optional

from repro.net.addresses import Ipv4Address
from repro.net.packet import IpPacket
from repro.sim.core import Simulator
from repro.tcp.stack import TcpStack


class Wire:
    """A two-party IP 'cable' with latency and programmable drops.

    Lets TCP tests run without the full Ethernet/OS stack underneath.
    """

    def __init__(self, sim: Simulator, latency: float = 0.0005):
        self.sim = sim
        self.latency = latency
        self.endpoints = {}
        self.drop_fn: Optional[Callable[[IpPacket], bool]] = None
        self.delivered = 0
        self.dropped = 0
        self.log = []

    def attach(self, ip: Ipv4Address, stack: TcpStack) -> None:
        self.endpoints[ip] = stack

    def send(self, packet: IpPacket) -> None:
        if self.drop_fn is not None and self.drop_fn(packet):
            self.dropped += 1
            return
        self.log.append((self.sim.now, packet))
        self.sim.call_later(self.latency, self._deliver, packet)

    def _deliver(self, packet: IpPacket) -> None:
        stack = self.endpoints.get(packet.dst)
        if stack is None:
            return
        self.delivered += 1
        stack.on_packet(packet)


def make_pair(latency: float = 0.0005, time_wait_s: float = 1.0):
    """Two TcpStacks (10.0.0.1 / 10.0.0.2) joined by a Wire."""
    sim = Simulator()
    wire = Wire(sim, latency=latency)
    ip_a = Ipv4Address.parse("10.0.0.1")
    ip_b = Ipv4Address.parse("10.0.0.2")
    stack_a = TcpStack(sim, wire.send, name="A", time_wait_s=time_wait_s,
                       iss_seed=1)
    stack_b = TcpStack(sim, wire.send, name="B", time_wait_s=time_wait_s,
                       iss_seed=2)
    wire.attach(ip_a, stack_a)
    wire.attach(ip_b, stack_b)
    return sim, wire, (ip_a, stack_a), (ip_b, stack_b)
