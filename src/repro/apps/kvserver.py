"""A key-value server and client.

The "database-style" workload: a stateful TCP server inside a pod serving
a client that is *outside* any pod (e.g. a customer on another machine).
Migrating the server must be invisible to that client — the paper's
motivating maintenance/migration scenario (§1).

Wire protocol: newline-free, length-prefixed pickled request/response
dicts, e.g. ``{"op": "put", "key": k, "value": v}`` →
``{"ok": True, "value": ...}``.
"""

from __future__ import annotations

import pickle
import struct
from typing import Dict, List, Optional, Tuple

from repro.simos.program import PhasedProgram
from repro.simos.syscalls import Exit, sys

KV_PORT = 9900
LENGTH_FORMAT = ">I"
LENGTH_BYTES = struct.calcsize(LENGTH_FORMAT)


def encode(obj) -> bytes:
    blob = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
    return struct.pack(LENGTH_FORMAT, len(blob)) + blob


def try_decode(buffer: bytes) -> Tuple[Optional[object], bytes]:
    if len(buffer) < LENGTH_BYTES:
        return None, buffer
    length = struct.unpack(LENGTH_FORMAT, buffer[:LENGTH_BYTES])[0]
    if len(buffer) < LENGTH_BYTES + length:
        return None, buffer
    obj = pickle.loads(buffer[LENGTH_BYTES:LENGTH_BYTES + length])
    return obj, buffer[LENGTH_BYTES + length:]


class KvServer(PhasedProgram):
    """Single-connection key-value store."""

    name = "kv-server"
    initial_phase = "socket"

    def __init__(self, port: int = KV_PORT):
        super().__init__()
        self.port = port
        self.store: Dict[str, object] = {}
        self.requests_served = 0
        self.rx = b""
        self.tx = b""
        self.fd = None
        self.conn_fd = None

    def phase_socket(self, result):
        self.goto("bind")
        return sys("socket", "tcp")

    def phase_bind(self, result):
        self.fd = result
        self.goto("listen")
        return sys("bind", self.fd, None, self.port)

    def phase_listen(self, result):
        self.goto("accept")
        return sys("listen", self.fd, 4)

    def phase_accept(self, result):
        self.goto("serve")
        return sys("accept", self.fd)

    def phase_serve(self, result):
        if isinstance(result, tuple):
            self.conn_fd = result[0]
            return sys("recv", self.conn_fd, 65536)
        if result == b"":
            # Client went away; keep serving (the store persists).
            self.rx = b""
            self.tx = b""
            self.goto("reaccept")
            return sys("close", self.conn_fd)
        self.rx += result
        request, self.rx = try_decode(self.rx)
        while request is not None:
            self.tx += encode(self._apply(request))
            request, self.rx = try_decode(self.rx)
        if self.tx:
            self.goto("reply")
            return sys("send", self.conn_fd, self.tx)
        return sys("recv", self.conn_fd, 65536)

    def phase_reaccept(self, result):
        self.goto("serve")
        return sys("accept", self.fd)

    def phase_reply(self, result):
        self.tx = self.tx[result:]
        if self.tx:
            return sys("send", self.conn_fd, self.tx)
        self.goto("serve")
        return sys("recv", self.conn_fd, 65536)

    def phase_finish(self, result):
        return Exit(0)

    def _apply(self, request: dict) -> dict:
        self.requests_served += 1
        op = request.get("op")
        if op == "put":
            self.store[request["key"]] = request["value"]
            return {"ok": True}
        if op == "get":
            key = request["key"]
            return {"ok": key in self.store,
                    "value": self.store.get(key)}
        if op == "delete":
            return {"ok": self.store.pop(request["key"], None)
                    is not None}
        if op == "count":
            return {"ok": True, "value": len(self.store)}
        return {"ok": False, "error": f"bad op {op!r}"}


class KvServerMulti(PhasedProgram):
    """An event-driven key-value server: many concurrent clients, one
    process, ``poll``-based — the architecture of a real network daemon.

    Being checkpointable requires nothing special: the poll loop is just
    another restartable syscall, and every connection's parse state lives
    in instance attributes.
    """

    name = "kv-server-multi"
    initial_phase = "socket"

    def __init__(self, port: int = KV_PORT):
        super().__init__()
        self.port = port
        self.store: Dict[str, object] = {}
        self.requests_served = 0
        self.clients_accepted = 0
        self.fd = None
        #: fd -> per-connection receive parse buffer.
        self.rx: Dict[int, bytes] = {}
        self.ready: List[int] = []
        self.current_fd = None
        self.tx = b""

    def phase_socket(self, result):
        self.goto("bind")
        return sys("socket", "tcp")

    def phase_bind(self, result):
        self.fd = result
        self.goto("listen")
        return sys("bind", self.fd, None, self.port)

    def phase_listen(self, result):
        self.goto("poll")
        return sys("listen", self.fd, 16)

    def phase_poll(self, result):
        self.goto("dispatch")
        return sys("poll", [self.fd] + sorted(self.rx))

    def phase_dispatch(self, result):
        if isinstance(result, list):
            self.ready = result
        if not self.ready:
            self.goto("poll")
            return self.phase_poll(None)
        fd = self.ready.pop(0)
        if fd == self.fd:
            self.goto("accepted")
            return sys("accept", self.fd)
        self.current_fd = fd
        self.goto("received")
        from repro.simos.syscalls import MSG_DONTWAIT
        return sys("recv", fd, 65536, flags=MSG_DONTWAIT)

    def phase_accepted(self, result):
        conn_fd = result[0]
        self.rx[conn_fd] = b""
        self.clients_accepted += 1
        self.goto("dispatch")
        return self.phase_dispatch(None)

    def phase_received(self, result):
        fd = self.current_fd
        from repro.errors import SyscallError
        if isinstance(result, SyscallError) or result is None:
            self.goto("dispatch")
            return self.phase_dispatch(None)
        if result == b"":
            del self.rx[fd]
            self.goto("dispatch")
            return sys("close", fd)
        self.rx[fd] += result
        self.tx = b""
        request, self.rx[fd] = try_decode(self.rx[fd])
        while request is not None:
            self.tx += encode(self._apply(request))
            request, self.rx[fd] = try_decode(self.rx[fd])
        if self.tx:
            self.goto("replied")
            return sys("send", fd, self.tx)
        self.goto("dispatch")
        return self.phase_dispatch(None)

    def phase_replied(self, result):
        fd = self.current_fd
        self.tx = self.tx[result:]
        if self.tx:
            return sys("send", fd, self.tx)
        self.goto("dispatch")
        return self.phase_dispatch(None)

    # Shared with KvServer.
    _apply = None  # replaced below


KvServerMulti._apply = KvServer._apply


class KvClient(PhasedProgram):
    """Issues a scripted list of requests, one at a time."""

    name = "kv-client"
    initial_phase = "socket"

    def __init__(self, server_ip: str, requests: List[dict],
                 port: int = KV_PORT, think_time_s: float = 0.0):
        super().__init__()
        self.server_ip = server_ip
        self.port = port
        self.requests = list(requests)
        self.think_time_s = think_time_s
        self.responses: List[dict] = []
        self.rx = b""
        self.unsent = b""
        self.fd = None
        self.index = 0

    def phase_socket(self, result):
        self.goto("connect")
        return sys("socket", "tcp")

    def phase_connect(self, result):
        self.fd = result
        self.goto("next_request")
        return sys("connect", self.fd, self.server_ip, self.port)

    def phase_next_request(self, result):
        from repro.errors import SyscallError
        if isinstance(result, SyscallError):
            return Exit(2)  # connection refused / reset
        if self.index >= len(self.requests):
            self.goto("finish")
            return sys("close", self.fd)
        self.unsent = encode(self.requests[self.index])
        self.goto("sending")
        return sys("send", self.fd, self.unsent)

    def phase_sending(self, result):
        self.unsent = self.unsent[result:]
        if self.unsent:
            return sys("send", self.fd, self.unsent)
        self.goto("awaiting")
        return sys("recv", self.fd, 65536)

    def phase_awaiting(self, result):
        if result == b"":
            return Exit(1)
        self.rx += result
        response, self.rx = try_decode(self.rx)
        if response is None:
            return sys("recv", self.fd, 65536)
        self.responses.append(response)
        self.index += 1
        if self.think_time_s:
            self.goto("thinking")
            return sys("sleep", self.think_time_s)
        self.goto("next_request")
        return self.phase_next_request(None)

    def phase_thinking(self, result):
        self.goto("next_request")
        return self.phase_next_request(None)

    def phase_finish(self, result):
        return Exit(0)
