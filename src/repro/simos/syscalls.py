"""System-call descriptors.

Programs interact with the simulated kernel exclusively by returning
:class:`Syscall` objects from :meth:`Program.step`; the kernel executes the
call (possibly blocking the process on a simulation event) and feeds the
result into the next ``step``. This explicit boundary is what lets the Zap
layer interpose on calls the way the real Zap kernel module wraps the
syscall table.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Tuple

#: recv flag: read without consuming (used by the checkpoint path, §4.1).
MSG_PEEK = 0x2
#: send/recv flag: fail with EAGAIN instead of blocking.
MSG_DONTWAIT = 0x40

#: ioctl request: get hardware (MAC) address — interposed by Cruz (§4.2).
SIOCGIFHWADDR = 0x8927

# Socket option names (setsockopt/getsockopt).
SO_NODELAY = "TCP_NODELAY"
SO_CORK = "TCP_CORK"
SO_SNDBUF = "SO_SNDBUF"
SO_RCVBUF = "SO_RCVBUF"
SO_KEEPALIVE = "SO_KEEPALIVE"
SO_REUSEADDR = "SO_REUSEADDR"


@dataclass(frozen=True)
class Syscall:
    """One system call: a name plus positional/keyword arguments."""

    name: str
    args: Tuple = ()
    kwargs: Dict[str, Any] = field(default_factory=dict)

    def __repr__(self) -> str:
        parts = [repr(a) for a in self.args]
        parts += [f"{k}={v!r}" for k, v in self.kwargs.items()]
        return f"{self.name}({', '.join(parts)})"


@dataclass(frozen=True)
class Exit:
    """Returned from ``Program.step`` to terminate the process."""

    code: int = 0


def sys(name: str, *args: Any, **kwargs: Any) -> Syscall:
    """Shorthand constructor: ``sys("recv", fd, 4096, flags=MSG_PEEK)``."""
    return Syscall(name, args, kwargs)
