"""Application programs: explicit state machines over the syscall API.

Why not generators? A checkpoint must capture a *point-in-time* copy of the
process that can be restarted any number of times while the original keeps
running — a live Python generator cannot be copied or rewound, but a program
whose entire mutable state lives in instance attributes can (that is the
honest analogue of saving virtual memory + registers). Programs therefore
implement::

    def step(self, result):          # result of the previous syscall
        ...mutate self...            # "memory"
        return sys("recv", fd, 100)  # the next syscall, or Exit(code)

with a ``self.pc``-style attribute tracking where to resume — exactly like
a CPU program counter inside saved registers.

:class:`PhasedProgram` removes the boilerplate: subclasses define
``phase_<name>`` methods and jump between them with :meth:`goto`.
"""

from __future__ import annotations

from typing import Any, Union

from repro.errors import ReproError
from repro.simos.syscalls import Exit, Syscall


class Program:
    """Base class for checkpointable application programs."""

    #: Human-readable name used in traces and process listings.
    name = "program"

    def step(self, result: Any) -> Union[Syscall, Exit]:
        """Advance one syscall. ``result`` is the previous call's result.

        The first invocation receives ``None``. A :class:`SyscallError`
        raised by the previous call is delivered here as the ``result``
        (programs check ``isinstance(result, SyscallError)``), mirroring
        errno-style error handling.
        """
        raise NotImplementedError

    def on_restart(self) -> None:
        """Hook invoked after this program was restored from a checkpoint.

        Most programs need nothing; ones holding node-local caches can
        invalidate them here. Application-transparent CR means real apps
        have no such hook — it exists for tests that *verify* transparency
        by asserting it is never needed.
        """

    def memory_footprint(self) -> int:
        """Extra bytes of state beyond the address-space regions."""
        return 0


class PhasedProgram(Program):
    """A program whose control flow is named phases.

    Subclasses define ``phase_<name>(self, result)`` methods; each returns
    the next :class:`Syscall` or :class:`Exit`. Use :meth:`goto` to change
    which phase handles the *next* result. The current phase name lives in
    ``self.pc`` — plain data, so checkpoints capture control flow for free.
    """

    initial_phase = "main"

    def __init__(self):
        self.pc = self.initial_phase

    def goto(self, phase: str) -> None:
        if not hasattr(self, f"phase_{phase}"):
            raise ReproError(f"{type(self).__name__}: no phase {phase!r}")
        self.pc = phase

    def step(self, result: Any) -> Union[Syscall, Exit]:
        handler = getattr(self, f"phase_{self.pc}", None)
        if handler is None:
            raise ReproError(
                f"{type(self).__name__}: unknown phase {self.pc!r}")
        outcome = handler(result)
        if not isinstance(outcome, (Syscall, Exit)):
            raise ReproError(
                f"{type(self).__name__}.phase_{self.pc} returned "
                f"{outcome!r}, expected Syscall or Exit")
        return outcome
