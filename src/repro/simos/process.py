"""Process control blocks and signals.

Only the signals the checkpoint path needs are modelled: SIGSTOP (Zap stops
every process in a pod before extracting state, §4.1), SIGCONT, SIGKILL and
SIGTERM.
"""

from __future__ import annotations

import enum
from typing import List, Optional, TYPE_CHECKING

from repro.sim.core import Event, Simulator
from repro.simos.files import FdTable
from repro.simos.memory import AddressSpace
from repro.simos.program import Program
from repro.simos.syscalls import Syscall

if TYPE_CHECKING:
    from repro.zap.pod import Pod

SIGSTOP = "SIGSTOP"
SIGCONT = "SIGCONT"
SIGKILL = "SIGKILL"
SIGTERM = "SIGTERM"


class ProcessState(enum.Enum):
    RUNNABLE = "RUNNABLE"
    BLOCKED = "BLOCKED"
    STOPPED = "STOPPED"
    ZOMBIE = "ZOMBIE"


class ProcessControlBlock:
    """Kernel bookkeeping for one process (or thread, see ``tgid``)."""

    def __init__(self, sim: Simulator, pid: int, program: Program,
                 name: str = "", ppid: int = 0,
                 tgid: Optional[int] = None):
        self.sim = sim
        self.pid = pid
        self.ppid = ppid
        #: Thread-group id: threads share a tgid, an address space and fds.
        self.tgid = tgid if tgid is not None else pid
        self.program = program
        self.name = name or program.name
        self.state = ProcessState.RUNNABLE
        self.memory = AddressSpace()
        self.fds = FdTable()
        self.pod: Optional["Pod"] = None

        self.stopped = False
        self.killed = False
        self.exit_code: Optional[int] = None
        #: Set when the program raised instead of exiting cleanly.
        self.crash_exception: Optional[BaseException] = None
        self.exit_event: Event = sim.event(f"exit(pid={pid})")
        self.current_syscall: Optional[Syscall] = None
        #: Set on restart: re-issue this call before stepping the program.
        self.resume_syscall: Optional[Syscall] = None
        #: Delivered as the first step's result (fork's child sees
        #: ("child", 0) here).
        self.initial_result = None
        self._continue_waiters: List[Event] = []

        # Accounting.
        self.syscall_count = 0
        self.cpu_seconds = 0.0

    @property
    def is_alive(self) -> bool:
        return self.exit_code is None and not self.killed

    def signal(self, sig: str) -> None:
        if not self.is_alive:
            return
        if sig == SIGSTOP:
            self.stopped = True
            if self.state == ProcessState.RUNNABLE:
                self.state = ProcessState.STOPPED
        elif sig == SIGCONT:
            self.stopped = False
            if self.state == ProcessState.STOPPED:
                self.state = ProcessState.RUNNABLE
            waiters, self._continue_waiters = self._continue_waiters, []
            for event in waiters:
                if not event.triggered:
                    event.succeed()
        elif sig in (SIGKILL, SIGTERM):
            self.killed = True
            # A stopped process must still die.
            self.stopped = False
            waiters, self._continue_waiters = self._continue_waiters, []
            for event in waiters:
                if not event.triggered:
                    event.succeed()

    def wait_continue(self) -> Event:
        """Event that fires on SIGCONT (or SIGKILL)."""
        event = self.sim.event(f"cont(pid={self.pid})")
        if not self.stopped:
            event.succeed()
        else:
            self._continue_waiters.append(event)
        return event

    def mark_exited(self, code: int) -> None:
        self.exit_code = code
        self.state = ProcessState.ZOMBIE
        if not self.exit_event.triggered:
            self.exit_event.succeed(code)

    def __repr__(self) -> str:
        return (f"<PCB pid={self.pid} {self.name!r} {self.state.value}"
                f"{' stopped' if self.stopped else ''}>")
