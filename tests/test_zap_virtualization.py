"""Zap virtualisation-layer tests: namespaces and syscall interposition."""

import pytest

from repro.cluster import Cluster
from repro.simos.program import PhasedProgram
from repro.simos.syscalls import Exit, SIOCGIFHWADDR, sys
from repro.zap.pod import Pod
from repro.zap.virtualization import install_pod

from tests.programs import EchoClient, EchoServer, ShmIncrementer, Sleeper


def make_cluster(n=2):
    return Cluster(n, time_wait_s=0.5)


def make_pod(cluster, node_index=0, name=None):
    node = cluster.nodes[node_index]
    pod = Pod(node, name or f"pod{node_index}",
              ip=cluster.allocate_pod_ip(), mac=cluster.allocate_vif_mac())
    install_pod(pod)
    return pod


class PidReporter(PhasedProgram):
    initial_phase = "ask"

    def __init__(self):
        super().__init__()
        self.reported_pid = None

    def phase_ask(self, result):
        self.goto("done")
        return sys("getpid")

    def phase_done(self, result):
        self.reported_pid = result
        return Exit(0)


def test_pod_processes_see_virtual_pids():
    cluster = make_cluster()
    # Burn physical pids so physical != virtual.
    node = cluster.nodes[0]
    for _ in range(5):
        node.spawn(Sleeper(0.01))
    pod = make_pod(cluster)
    proc = pod.spawn(PidReporter())
    cluster.run()
    assert proc.pid > 5  # physical pid is large...
    assert proc.program.reported_pid == 1  # ...but the pod sees vPID 1


def test_vpids_are_per_pod():
    cluster = make_cluster()
    pod_a = make_pod(cluster, 0, "a")
    pod_b = make_pod(cluster, 0, "b")
    proc_a = pod_a.spawn(PidReporter())
    proc_b = pod_b.spawn(PidReporter())
    cluster.run()
    assert proc_a.program.reported_pid == 1
    assert proc_b.program.reported_pid == 1
    assert proc_a.pid != proc_b.pid


def test_kill_by_vpid_targets_pod_member():
    class Killer(PhasedProgram):
        initial_phase = "spawn"

        def __init__(self):
            super().__init__()
            self.victim_vpid = None
            self.reaped = None

        def phase_spawn(self, result):
            self.goto("kill")
            return sys("spawn", Sleeper(100.0))

        def phase_kill(self, result):
            self.victim_vpid = result
            self.goto("wait")
            return sys("kill", self.victim_vpid, "SIGKILL")

        def phase_wait(self, result):
            self.goto("done")
            return sys("waitpid", self.victim_vpid)

        def phase_done(self, result):
            self.reaped = result
            return Exit(0)

    cluster = make_cluster()
    pod = make_pod(cluster)
    proc = pod.spawn(Killer())
    cluster.run()
    assert proc.exit_code == 0
    assert proc.program.victim_vpid == 2
    assert proc.program.reaped == -9


def test_shm_keys_are_pod_private():
    cluster = make_cluster()
    pod_a = make_pod(cluster, 0, "a")
    pod_b = make_pod(cluster, 0, "b")
    worker_a = pod_a.spawn(ShmIncrementer(key=5, rounds=3))
    worker_b = pod_b.spawn(ShmIncrementer(key=5, rounds=7))
    cluster.run()
    assert worker_a.exit_code == 0 and worker_b.exit_code == 0
    # Same app key, two distinct physical segments.
    phys_a = pod_a.vshm[1]
    phys_b = pod_b.vshm[1]
    assert phys_a != phys_b
    node = cluster.nodes[0]
    assert node.ipc.shm_lookup(phys_a).payload["counter"] == 3
    assert node.ipc.shm_lookup(phys_b).payload["counter"] == 7


def test_bind_confined_to_pod_ip():
    cluster = make_cluster()
    pod = make_pod(cluster, 0)
    server = pod.spawn(EchoServer(port=8000, bind_ip=None))  # INADDR_ANY
    cluster.run_for(0.05)
    # The listener is on the pod IP, not the node IP or ANY.
    listeners = cluster.nodes[0].stack.tcp.listeners
    assert any(key[0] == pod.ip for key in listeners)
    assert not any(key[0] == cluster.nodes[0].stack.eth0.ip
                   for key in listeners)
    # An external, non-Zap client connects to the pod's address.
    client = cluster.nodes[1].spawn(
        EchoClient(str(pod.ip), 8000, [b"through-vif"]))
    cluster.run_for(5)
    assert client.program.replies == [b"through-vif"]
    del server


def test_connect_originates_from_pod_ip():
    cluster = make_cluster()
    pod = make_pod(cluster, 0)
    server_node = cluster.nodes[1]
    server = server_node.spawn(EchoServer(port=8100))
    client = pod.spawn(EchoClient(str(server_node.stack.eth0.ip), 8100,
                                  [b"outbound"]))
    cluster.run_for(0.05)
    # The pod-side connection record is bound to the pod IP (it lingers in
    # TIME_WAIT after the exchange).
    conns = list(cluster.nodes[0].stack.tcp.connections.values())
    assert conns and all(c.tcb.local_ip == pod.ip for c in conns)
    cluster.run_for(5)
    assert client.program.replies == [b"outbound"]
    del server


class AskMac(PhasedProgram):
    initial_phase = "ask"

    def __init__(self, ifname="eth0"):
        super().__init__()
        self.ifname = ifname
        self.mac = None

    def phase_ask(self, result):
        self.goto("done")
        return sys("ioctl", SIOCGIFHWADDR, self.ifname)

    def phase_done(self, result):
        self.mac = result
        return Exit(0)


def test_ioctl_in_pod_returns_vif_identity_mac():
    cluster = make_cluster()
    pod = make_pod(cluster)
    proc = pod.spawn(AskMac(ifname="eth0"))  # pod asks for "eth0"
    cluster.run()
    # It gets the pod VIF's identity MAC, not the node NIC's.
    assert proc.program.mac == pod.fake_mac
    assert proc.program.mac != cluster.nodes[0].stack.nic.primary_mac


def test_ioctl_fake_mac_survives_shared_mac_mode():
    cluster = Cluster(2, time_wait_s=0.5,
                      nic_supports_multiple_macs=False)
    node = cluster.nodes[0]
    fake = cluster.allocate_vif_mac()
    pod = Pod(node, "pod-shared", ip=cluster.allocate_pod_ip(),
              mac=node.stack.nic.primary_mac, own_wire_mac=False,
              fake_mac=fake)
    install_pod(pod)
    proc = pod.spawn(AskMac())
    cluster.run()
    assert proc.program.mac == fake
    # On the wire the VIF shares the physical MAC.
    assert pod.vif.mac == node.stack.nic.primary_mac


def test_two_pods_same_node_isolated_tcp():
    cluster = make_cluster()
    pod_a = make_pod(cluster, 0, "a")
    pod_b = make_pod(cluster, 0, "b")
    pod_a.spawn(EchoServer(port=8200))
    client = pod_b.spawn(EchoClient(str(pod_a.ip), 8200, [b"pod2pod"]))
    cluster.run_for(5)
    assert client.program.replies == [b"pod2pod"]


def test_interposer_counts_syscalls():
    cluster = make_cluster()
    pod = make_pod(cluster)
    pod.spawn(PidReporter())
    cluster.run()
    interposer = cluster.nodes[0].interposers[pod.pod_id]
    assert interposer.intercept_count >= 1
