"""Prior-work baselines Cruz is compared against (§2, §5.2)."""

from repro.baselines.flush import (
    FlushAgent,
    FlushCoordinator,
    flush_checkpoint_app,
    install_flush_baseline,
    restart_message_estimate,
)
from repro.baselines.logging_cr import LoggingMpiProgram
from repro.baselines.userlevel import (
    UnsupportedResource,
    UserLevelCheckpointer,
    UserLevelImage,
)

__all__ = [
    "FlushAgent",
    "FlushCoordinator",
    "LoggingMpiProgram",
    "UnsupportedResource",
    "UserLevelCheckpointer",
    "UserLevelImage",
    "flush_checkpoint_app",
    "install_flush_baseline",
    "restart_message_estimate",
]
