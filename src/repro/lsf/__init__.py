"""A minimal LSF-style job scheduler driving Cruz (§6: "integrated it
with LSF, a job scheduler for clusters")."""

from repro.lsf.scheduler import Job, JobScheduler, JobSpec, JobState

__all__ = ["Job", "JobScheduler", "JobSpec", "JobState"]
