"""Single-pod checkpoint/restart, including live TCP state (Cruz §4.1)."""

import pickle

import pytest

from repro.cluster import Cluster
from repro.cruz.netstate import CruzSocketCodec
from repro.errors import CheckpointError
from repro.zap.checkpoint import CheckpointEngine, scrub_pod_network
from repro.zap.pod import Pod
from repro.zap.restart import RestartEngine
from repro.zap.socket_codec import BasicZapCodec
from repro.zap.virtualization import install_pod, uninstall_pod

from tests.programs import (
    ComputeLoop,
    EchoClient,
    EchoServer,
    ShmIncrementer,
    Sleeper,
)
from tests.test_zap_virtualization import make_pod


def make_cluster(n=2):
    return Cluster(n, time_wait_s=0.5)


def engines():
    codec = CruzSocketCodec()
    return CheckpointEngine(codec), RestartEngine(codec)


def run_coroutine(cluster, generator, limit=1e6):
    task = cluster.sim.process(generator)
    return cluster.sim.run_until_complete(task, limit=limit)


def test_checkpoint_is_nondestructive():
    cluster = make_cluster()
    pod = make_pod(cluster)
    proc = pod.spawn(ComputeLoop(iterations=50, work_s=0.01))
    cluster.run_for(0.1)
    ckpt, _ = engines()
    image = run_coroutine(cluster, ckpt.checkpoint(pod, resume=True))
    progress_at_ckpt = pickle.loads(image.processes[0].program_blob).done
    cluster.run()
    assert proc.exit_code == 0
    assert proc.program.done == 50
    assert 0 < progress_at_ckpt < 50


def test_checkpoint_captures_point_in_time_state():
    cluster = make_cluster()
    pod = make_pod(cluster)
    pod.spawn(ComputeLoop(iterations=50, work_s=0.01))
    cluster.run_for(0.1)
    ckpt, _ = engines()
    image = run_coroutine(cluster, ckpt.checkpoint(pod, resume=True))
    frozen_done = pickle.loads(image.processes[0].program_blob).done
    cluster.run_for(0.2)
    # The image must not track the live process.
    assert pickle.loads(image.processes[0].program_blob).done == frozen_done


def test_restart_resumes_from_checkpoint_progress():
    cluster = make_cluster()
    pod = make_pod(cluster, 0)
    pod.spawn(ComputeLoop(iterations=30, work_s=0.01))
    cluster.run_for(0.1)
    ckpt, rst = engines()
    image = run_coroutine(cluster, ckpt.checkpoint(pod, resume=False))
    scrub_pod_network(pod)
    pod.kill_all()
    uninstall_pod(pod)
    restored = run_coroutine(
        cluster, rst.restart(image, cluster.nodes[1], resume=True))
    cluster.run()
    procs = restored.processes()
    assert len(procs) == 1
    assert procs[0].exit_code == 0
    assert procs[0].program.done == 30


def test_restart_preserves_vpids_despite_pid_collision():
    cluster = make_cluster()
    pod = make_pod(cluster, 0)
    workers = [pod.spawn(ComputeLoop(iterations=1000, work_s=0.01))
               for _ in range(3)]
    original_pids = [w.pid for w in workers]
    cluster.run_for(0.05)
    ckpt, rst = engines()
    image = run_coroutine(cluster, ckpt.checkpoint(pod, resume=False))
    scrub_pod_network(pod)
    pod.kill_all()
    uninstall_pod(pod)
    # Occupy the original physical pid range on the target node.
    target = cluster.nodes[1]
    for _ in range(10):
        target.spawn(Sleeper(1000.0))
    restored = run_coroutine(cluster, rst.restart(image, target,
                                                  resume=True))
    cluster.run_for(0.1)
    procs = restored.processes()
    assert [restored.vpid_of(p.pid) for p in procs] == [1, 2, 3]
    assert all(p.pid not in original_pids or True for p in procs)
    # Physical pids collide-proof: they differ from the occupied range.
    assert all(p.is_alive for p in procs)


def test_image_is_reusable_for_multiple_restarts():
    cluster_a = make_cluster()
    pod = make_pod(cluster_a)
    pod.spawn(ComputeLoop(iterations=20, work_s=0.01))
    cluster_a.run_for(0.08)
    ckpt, _ = engines()
    image = run_coroutine(cluster_a, ckpt.checkpoint(pod, resume=False))
    blob = pickle.dumps(image)

    results = []
    for _ in range(2):
        cluster = make_cluster()
        _, rst = engines()
        restored = run_coroutine(
            cluster, rst.restart(pickle.loads(blob), cluster.nodes[0],
                                 resume=True))
        cluster.run()
        results.append(restored.processes()[0].program.done)
    assert results == [20, 20]


def test_checkpoint_restores_shm_and_semaphores():
    cluster = make_cluster()
    pod = make_pod(cluster)
    pod.spawn(ShmIncrementer(key=3, rounds=500, work_s=0.0001))
    cluster.run_for(0.02)  # mid-run: ~200 of 500 rounds done
    ckpt, rst = engines()
    image = run_coroutine(cluster, ckpt.checkpoint(pod, resume=False))
    scrub_pod_network(pod)
    pod.kill_all()
    uninstall_pod(pod)
    restored = run_coroutine(
        cluster, rst.restart(image, cluster.nodes[1], resume=True))
    cluster.run()
    proc = restored.processes()[0]
    assert proc.exit_code == 0
    # Final counter is exactly 500: no lost or doubled increments.
    physical = restored.vshm[1]
    segment = cluster.nodes[1].ipc.shm_lookup(physical)
    assert segment.payload["counter"] == 500


def test_basic_zap_codec_refuses_live_connections():
    """The gap Cruz closes: original Zap cannot save live socket state."""
    cluster = make_cluster()
    pod = make_pod(cluster, 0)
    pod.spawn(EchoServer(port=8600))
    client = cluster.nodes[1].spawn(
        EchoClient(str(pod.ip), 8600, [b"x" * 5000000]))
    cluster.run_for(0.01)  # mid-stream
    ckpt = CheckpointEngine(BasicZapCodec())
    with pytest.raises(CheckpointError, match="live TCP"):
        run_coroutine(cluster, ckpt.checkpoint(pod, resume=True))
    del client


def test_cruz_codec_checkpoints_live_connection_and_stream_completes():
    cluster = make_cluster()
    pod = make_pod(cluster, 0)
    server = pod.spawn(EchoServer(port=8700))
    payload = b"y" * 5000000
    client = cluster.nodes[1].spawn(
        EchoClient(str(pod.ip), 8700, [payload]))
    cluster.run_for(0.01)  # mid-stream
    ckpt, _ = engines()
    image = run_coroutine(cluster, ckpt.checkpoint(pod, resume=True))
    assert image.sockets_captured >= 1
    cluster.run_for(30)
    assert client.program.replies == [payload]
    assert server.program.bytes_echoed == len(payload)


def test_migration_transparent_to_external_client():
    """The headline §4.2 scenario: a pod serving an unmodified external
    client is checkpointed mid-stream, killed, and restarted on another
    node; the client's connection survives."""
    cluster = Cluster(3, time_wait_s=0.5)
    pod = make_pod(cluster, 0)
    server = pod.spawn(EchoServer(port=8800))
    payload = b"m" * 5000000
    client = cluster.nodes[2].spawn(
        EchoClient(str(pod.ip), 8800, [payload]))
    cluster.run_for(0.02)  # stream in full flight
    assert client.program.replies == []

    ckpt, rst = engines()
    image = run_coroutine(cluster, ckpt.checkpoint(pod, resume=False))
    scrub_pod_network(pod)
    pod.kill_all()
    uninstall_pod(pod)
    restored = run_coroutine(
        cluster, rst.restart(image, cluster.nodes[1], resume=True))
    cluster.run_for(60)
    assert client.exit_code == 0
    assert client.program.replies == [payload]
    restored_server = restored.processes()[0]
    assert restored_server.program.bytes_echoed == len(payload)
    del server


def test_migration_with_shared_mac_hardware():
    """Shared-MAC fallback: the pod keeps its IP, changes wire MAC, and
    gratuitous ARP re-points the subnet (§4.2)."""
    cluster = Cluster(3, time_wait_s=0.5,
                      nic_supports_multiple_macs=False)
    node0 = cluster.nodes[0]
    pod = Pod(node0, "pod-shared", ip=cluster.allocate_pod_ip(),
              mac=node0.stack.nic.primary_mac, own_wire_mac=False,
              fake_mac=cluster.allocate_vif_mac())
    install_pod(pod)
    pod.spawn(EchoServer(port=8900))
    payload = b"s" * 3000000
    client = cluster.nodes[2].spawn(
        EchoClient(str(pod.ip), 8900, [payload]))
    cluster.run_for(0.02)

    ckpt, rst = engines()
    image = run_coroutine(cluster, ckpt.checkpoint(pod, resume=False))
    scrub_pod_network(pod)
    pod.kill_all()
    uninstall_pod(pod)
    restored = run_coroutine(
        cluster, rst.restart(image, cluster.nodes[1], resume=True))
    cluster.run_for(60)
    assert client.exit_code == 0
    assert client.program.replies == [payload]
    # Same IP, different wire MAC, same identity (fake) MAC.
    assert restored.ip == pod.ip
    assert restored.vif.mac == cluster.nodes[1].stack.nic.primary_mac
    assert restored.vif.identity_mac == pod.fake_mac


def test_checkpoint_preserves_pipe_contents():
    from tests.programs import SlowPipeline

    cluster = make_cluster()
    pod = make_pod(cluster)
    pod.spawn(SlowPipeline())
    cluster.run_for(0.5)  # inside the sleep; pipe holds data
    ckpt, rst = engines()
    image = run_coroutine(cluster, ckpt.checkpoint(pod, resume=False))
    assert image.pipes and image.pipes[0].buffer == b"buffered-in-kernel"
    pod.kill_all()
    uninstall_pod(pod)
    restored = run_coroutine(
        cluster, rst.restart(image, cluster.nodes[1], resume=True))
    cluster.run()
    assert restored.processes()[0].program.got == b"buffered-in-kernel"


def test_checkpoint_latency_scales_with_memory():
    cluster = make_cluster()
    ckpt, _ = engines()

    def measure(nbytes):
        pod = make_pod(cluster, 0, name=f"pod-{nbytes}")
        proc = pod.spawn(ComputeLoop(iterations=10000, work_s=0.001))
        proc.memory.allocate("grid", nbytes)
        cluster.run_for(0.01)
        start = cluster.sim.now
        run_coroutine(cluster, ckpt.checkpoint(pod, resume=True))
        duration = cluster.sim.now - start
        pod.kill_all()
        uninstall_pod(pod)
        return duration

    small = measure(1 << 20)    # 1 MiB
    large = measure(100 << 20)  # 100 MiB
    assert large > small * 20  # dominated by disk write of memory state


def test_incremental_checkpoint_writes_only_dirty_pages():
    cluster = make_cluster()
    pod = make_pod(cluster)
    proc = pod.spawn(ComputeLoop(iterations=10000, work_s=0.001))
    proc.memory.allocate("grid", 50 << 20)
    cluster.run_for(0.01)
    ckpt, _ = engines()
    first = run_coroutine(cluster,
                          ckpt.checkpoint(pod, resume=True,
                                          incremental=True))
    # Nothing touched since: second incremental image is tiny.
    second = run_coroutine(cluster,
                           ckpt.checkpoint(pod, resume=True,
                                           incremental=True))
    assert first.written_bytes > (50 << 20)
    assert second.written_bytes < (1 << 20)
    # Touch half the region: third image is about half the first.
    proc.memory.touch("grid", fraction=0.5)
    third = run_coroutine(cluster,
                          ckpt.checkpoint(pod, resume=True,
                                          incremental=True))
    assert (20 << 20) < third.written_bytes < (35 << 20)
