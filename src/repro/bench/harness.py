"""Shared benchmark utilities: result records, shape reports, tables,
and the one ``--save``/``--compare`` baseline tail every suite uses."""

from __future__ import annotations

import json
import math
import os
import sys
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence


@dataclass
class Stat:
    """Mean and standard deviation of a sample, paper-style (µ ± σ)."""

    mean: float
    std: float
    n: int

    @classmethod
    def of(cls, values: Sequence[float]) -> "Stat":
        if not values:
            return cls(float("nan"), float("nan"), 0)
        mean = sum(values) / len(values)
        var = sum((v - mean) ** 2 for v in values) / len(values)
        return cls(mean, math.sqrt(var), len(values))

    def scaled(self, factor: float) -> "Stat":
        return Stat(self.mean * factor, self.std * factor, self.n)

    def __str__(self) -> str:
        return f"{self.mean:.3g} ± {self.std:.2g}"


@dataclass
class ShapeCheck:
    """One named predicate of a figure's qualitative shape."""

    name: str
    ok: bool
    #: The measured quantity behind the verdict (whatever is most useful
    #: to show a human: a float, a list of means, ...).
    value: Any = None
    #: What the paper says the value should look like.
    expect: str = ""


class ShapeReport:
    """Named pass/fail checks for one benchmark's qualitative shape.

    This is the unified result convention for every ``bench`` harness:
    build with :meth:`check`, inspect with ``report["check_name"]`` or
    :meth:`as_dict` (the legacy ``*_shape_holds`` dict), render with
    :meth:`render`, serialize with :meth:`to_jsonable`.
    """

    def __init__(self, title: str = ""):
        self.title = title
        self.checks: List[ShapeCheck] = []

    def check(self, name: str, ok: bool, value: Any = None,
              expect: str = "") -> bool:
        self.checks.append(ShapeCheck(name, bool(ok), value, expect))
        return ok

    @property
    def passed(self) -> bool:
        return all(c.ok for c in self.checks)

    def __getitem__(self, name: str) -> bool:
        for check in self.checks:
            if check.name == name:
                return check.ok
        raise KeyError(name)

    def __len__(self) -> int:
        return len(self.checks)

    def as_dict(self) -> Dict[str, bool]:
        """The legacy ``{check_name: bool}`` mapping."""
        return {c.name: c.ok for c in self.checks}

    def to_jsonable(self) -> Dict[str, Any]:
        return {
            "title": self.title,
            "passed": self.passed,
            "checks": [{"name": c.name, "ok": c.ok, "value": c.value,
                        "expect": c.expect} for c in self.checks],
        }

    def render(self) -> str:
        rows = []
        for c in self.checks:
            value = "" if c.value is None else (
                f"{c.value:.4g}" if isinstance(c.value, float)
                else str(c.value))
            rows.append([c.name, "PASS" if c.ok else "FAIL", value,
                         c.expect])
        verdict = "all checks pass" if self.passed else "CHECKS FAILED"
        return render_table(
            self.title or "shape checks",
            ["check", "verdict", "measured", "expected"],
            rows, note=verdict)


def _load_json(path: str) -> Any:
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


def _write_json(path: str, report: Any) -> None:
    os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")


def workload_matches(report: Dict[str, Any],
                     baseline: Optional[Dict[str, Any]],
                     suite: str) -> bool:
    """The shared drift guard: baseline ratios only apply when the run's
    workload matches the committed baseline's (a reduced-scale smoke run
    is guarded by its explicit floors instead)."""
    if baseline is None:
        return False
    if baseline.get("workload") == report.get("workload"):
        return True
    print(f"{suite}: workload differs from committed baseline; "
          f"applying only the explicit floors")
    return False


def baseline_cli(*, baseline_path: str,
                 save: bool,
                 suite: str = "bench",
                 run: Callable[[], Any],
                 evaluate: Callable[[Any, Any], List[str]],
                 render: Optional[Callable[[Any, Any], List[str]]] = None,
                 load: Optional[Callable[[str], Any]] = None,
                 write: Optional[Callable[[str, Any], None]] = None,
                 require_baseline: bool = False,
                 vet_before_save: bool = False) -> int:
    """The one ``--save``/``--compare`` tail shared by every bench suite.

    ``run()`` produces the suite's report (``None`` means the run itself
    failed and already said why); ``evaluate(report, baseline)`` returns
    failure strings (empty = pass, skipped on ``--save`` unless
    ``vet_before_save`` refuses to record a failing run);
    ``render(report, baseline)`` returns human-readable lines printed
    before the verdict. ``load``/``write`` override how the baseline
    file is parsed/recorded (pretty-printed JSON by default; a writer
    may be a no-op when ``run`` produced the artifact itself).

    Exit status: 0 pass, 1 failures, 2 unreadable baseline (or missing
    when ``require_baseline``).
    """
    baseline = None
    if not save:
        if os.path.exists(baseline_path):
            try:
                baseline = (load or _load_json)(baseline_path)
            except (json.JSONDecodeError, OSError, KeyError,
                    TypeError) as exc:
                print(f"unreadable baseline {baseline_path}: {exc}",
                      file=sys.stderr)
                return 2
        elif require_baseline:
            print(f"no baseline at {baseline_path}; run with --save "
                  f"first", file=sys.stderr)
            return 2
    report = run()
    if report is None:
        return 1
    if render is not None:
        for line in render(report, baseline):
            print(line)
    failures: List[str] = []
    if not save or vet_before_save:
        failures = evaluate(report, baseline)
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    if save:
        (write or _write_json)(baseline_path, report)
        print(f"saved {suite} baseline to {baseline_path}")
    else:
        print(f"{suite} benchmark within tolerance")
    return 0


def render_table(title: str, headers: List[str],
                 rows: Iterable[Sequence], note: str = "") -> str:
    """A fixed-width table for benchmark output."""
    rows = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = [f"== {title} =="]
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    if note:
        lines.append(note)
    return "\n".join(lines)


def paper_vs_measured(title: str, rows: List[tuple],
                      note: str = "") -> str:
    """Render 'quantity / paper / measured / verdict' comparison rows."""
    table_rows = []
    for quantity, paper, measured, holds in rows:
        table_rows.append([quantity, paper, measured,
                           "OK" if holds else "MISMATCH"])
    return render_table(title, ["quantity", "paper", "measured", "shape"],
                        table_rows, note=note)
