"""Cruz's network-state checkpoint/restart (§4.1) — the first contribution.

Capture (on a frozen socket):

* receive side — read the buffered byte stream "on behalf of the
  application" with ``MSG_PEEK`` semantics (non-destructive), concatenating
  any alternate-buffer remnant from a previous restore;
* send side — walk the send buffer's kernel structure recording the
  application data *and the packet boundaries* (Linux expects ACKs on
  packet boundaries);
* connection — save a TCB copy adjusted by two sequence-number changes so
  it describes empty buffers (see
  :meth:`~repro.tcp.state.TransmissionControlBlock.snapshot_for_checkpoint`).

Restore:

* recreate the socket and install the saved TCB (empty buffers);
* re-issue one send per recorded packet with the Nagle algorithm and
  TCP_CORK disabled, preserving boundaries;
* park the saved receive bytes in the socket's *alternate buffer*, which
  the interposed ``recv`` drains before the real receive buffer;
* packets dropped around the checkpoint are recovered by TCP
  retransmission — no channel flushing anywhere.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import CheckpointError
from repro.simos.kernel import Node
from repro.simos.sockets import TcpSocket
from repro.tcp.connection import TcpConnection
from repro.tcp.state import (
    SYNCHRONISED_STATES,
    TcpState,
    TransmissionControlBlock,
)
from repro.zap.pod import Pod
from repro.zap.socket_codec import SocketCodec


def capture_connection(
        connection: TcpConnection,
        alternate: bytes = b"") -> Dict[str, Any]:
    """Capture one live connection's full state (must be frozen)."""
    if not connection.frozen:
        raise CheckpointError(
            "connection must be frozen (network locks held) during capture")
    tcb = connection.tcb
    # Receive side: MSG_PEEK-style non-destructive read of everything the
    # application has not consumed, after any alternate-buffer remnant.
    undelivered = connection.read(1 << 62, peek=True)
    recv_data = bytes(alternate) + undelivered
    # Send side: the kernel-structure walk, boundaries preserved.
    send_segments: List[Tuple[int, bytes]] = connection.send_buffer.walk()
    pending = bytes(connection.send_buffer.pending)
    snapshot = tcb.snapshot_for_checkpoint()
    return {
        "kind": "connected",
        "options": tcb.options,
        "bound": (tcb.local_ip, tcb.local_port),
        "tcb": snapshot,
        "send_segments": send_segments,
        "pending": pending,
        "recv_data": recv_data,
        "close_requested": connection._close_requested,
    }


def restore_connection(node: Node, detail: Dict[str, Any],
                       name: str = "") -> TcpConnection:
    """Recreate a connection from a captured detail dict."""
    tcb: TransmissionControlBlock = replace(detail["tcb"])
    connection = TcpConnection.restore(
        node.sim, tcb, transmit=lambda *a: None, name=name,
        time_wait_s=node.stack.tcp.time_wait_s)
    node.stack.tcp.adopt_restored(connection)
    # Re-issue the recorded packets through the send path with boundary
    # preservation pinned (Nagle/CORK off), then any unsegmented tail.
    original_options = tcb.options
    tcb.options = original_options.with_boundaries_pinned()
    try:
        for _seq, payload in detail["send_segments"]:
            connection.send_exact(payload)
        pending = detail["pending"]
        if pending:
            accepted = connection.send_buffer.accept(pending)
            if accepted != len(pending):
                raise CheckpointError("restored send buffer overflow")
    finally:
        tcb.options = original_options
    if detail.get("close_requested"):
        connection.close()
    else:
        connection._output()
    return connection


class CruzSocketCodec(SocketCodec):
    """The full socket codec: everything BasicZapCodec refuses."""

    def capture_tcp(self, sock: TcpSocket) -> Dict[str, Any]:
        connection = sock.connection
        if connection is not None and \
                connection.tcb.state in SYNCHRONISED_STATES:
            return capture_connection(connection,
                                      alternate=bytes(sock.alternate))
        if sock.listener is not None:
            queued = []
            for pending in sock.listener.accept_queue:
                pending.freeze()
                try:
                    queued.append(capture_connection(pending))
                finally:
                    pending.unfreeze()
            return {
                "kind": "listening",
                "options": sock.options,
                "bound": sock.bound,
                "backlog": sock.listener.backlog,
                "queued": queued,
            }
        # Fresh, bound, or mid-handshake (SYN_SENT/SYN_RCVD): a connection
        # that has not synchronised is restored as a bound socket; the
        # restartable `connect` syscall re-initiates the handshake.
        return {
            "kind": "bound" if sock.bound is not None else "fresh",
            "options": sock.options,
            "bound": sock.bound,
            "backlog": 0,
            "queued": [],
        }

    def restore_tcp(self, node: Node, pod: Optional[Pod],
                    detail: Dict[str, Any]) -> TcpSocket:
        sock = TcpSocket(node.sim, node.stack)
        sock.options = detail["options"]
        kind = detail["kind"]
        if kind == "connected":
            connection = restore_connection(
                node, detail,
                name=f"{node.name}:restored:{detail['bound'][1]}")
            sock.adopt(connection)
            recv_data = detail["recv_data"]
            if recv_data:
                sock.alternate = bytearray(recv_data)
                sock.recv_intercepted = True
            return sock
        if detail["bound"] is not None:
            bind_ip = pod.ip if pod is not None else detail["bound"][0]
            sock.bind(bind_ip, detail["bound"][1])
        if kind == "listening":
            sock.listen(detail["backlog"])
            for queued_detail in detail["queued"]:
                connection = restore_connection(
                    node, queued_detail,
                    name=f"{node.name}:requeued:{detail['bound'][1]}")
                sock.listener.accept_queue.append(connection)
        return sock
