"""Client-side SLO accounting: per-request latency percentiles and
error/shed/retry counters, windowed across disruption events.

Every quantity here is measured at the *client* — the only vantage point
the SLO claim is about. The harness feeds each finished
:class:`~repro.apps.kvserver.KvSessionClient`'s samples into a
:class:`SloRecorder`, tags the disruption windows it drove (checkpoint
rounds, failover, migration, canary), and :meth:`SloRecorder.report`
answers the question ISSUE 10 asks: what did p50/p99 and the
error/shed/retry counts look like overall *and inside each disruption*?

Percentiles use the nearest-rank method (same convention as
:class:`repro.sim.spans.HistogramMetric`), so a window's p99 is an actual
observed latency, not an interpolation artifact.
"""

from __future__ import annotations

import math
from typing import Any, Dict, List, Optional, Sequence

#: Client counters mirrored into the shared MetricsRegistry.
_CLIENT_COUNTERS = ("responses_ok", "errors", "sheds", "retries",
                    "reconnects", "deadline_misses")


def percentile(values: Sequence[float], p: float) -> float:
    """Nearest-rank percentile; NaN on an empty sample."""
    if not values:
        return float("nan")
    ordered = sorted(values)
    rank = max(1, math.ceil(p / 100.0 * len(ordered)))
    return ordered[rank - 1]


class SloRecorder:
    """Accumulates per-request samples and disruption windows.

    Samples are dicts of ``{"start", "end", "op", "status", "attempts"}``
    (simulated seconds; status ``ok``/``error``/``shed``) as produced by
    :class:`~repro.apps.kvserver.KvSessionClient`. A request belongs to a
    window when its ``[start, end]`` span overlaps the window's — a
    request *stalled by* a failover counts against the failover window
    even though it was issued before the crash.

    When a :class:`~repro.sim.spans.MetricsRegistry` is supplied, the
    aggregate view is mirrored into ``serve.latency`` (histogram),
    ``serve.requests`` (counter labelled by status), and one
    ``serve.<counter>`` counter per client-side tally, so ``repro spans``
    tooling sees serving traffic like any other subsystem.
    """

    def __init__(self, metrics=None):
        self.metrics = metrics
        self.samples: List[Dict[str, Any]] = []
        self.windows: List[Dict[str, Any]] = []
        self.counters: Dict[str, int] = {
            name: 0 for name in _CLIENT_COUNTERS}
        self.clients = 0

    # -- ingestion -----------------------------------------------------------

    def add_window(self, name: str, start: float, end: float) -> None:
        """Tag one disruption window ``[start, end]`` in simulated time."""
        self.windows.append({"name": name, "start": start, "end": end})

    def ingest_client(self, client_id: int, program) -> None:
        """Absorb one finished session client's samples and counters."""
        self.clients += 1
        for sample in program.samples:
            record = dict(sample)
            record["client"] = client_id
            self.samples.append(record)
            if self.metrics is not None:
                latency = record["end"] - record["start"]
                self.metrics.histogram("serve.latency").observe(latency)
                self.metrics.counter("serve.requests").inc(
                    label=record["status"])
        for name in _CLIENT_COUNTERS:
            amount = getattr(program, name, 0)
            self.counters[name] += amount
            if self.metrics is not None and amount:
                self.metrics.counter(f"serve.{name}").inc(amount)

    # -- reporting -----------------------------------------------------------

    @staticmethod
    def _summary(samples: Sequence[Dict[str, Any]]) -> Dict[str, Any]:
        latencies = [s["end"] - s["start"] for s in samples]
        statuses: Dict[str, int] = {}
        for sample in samples:
            statuses[sample["status"]] = \
                statuses.get(sample["status"], 0) + 1
        extra_attempts = sum(s["attempts"] - 1 for s in samples)
        # None (not NaN) for empty windows: the report must stay valid
        # strict JSON for --json pipelines and the committed baseline.
        return {
            "requests": len(samples),
            "p50_s": percentile(latencies, 50) if latencies else None,
            "p99_s": percentile(latencies, 99) if latencies else None,
            "max_s": max(latencies) if latencies else None,
            "by_status": statuses,
            "extra_attempts": extra_attempts,
        }

    def window_samples(self, window: Dict[str, Any]
                       ) -> List[Dict[str, Any]]:
        return [s for s in self.samples
                if s["start"] <= window["end"]
                and s["end"] >= window["start"]]

    def report(self) -> Dict[str, Any]:
        """Overall + per-window percentile/status summary (plain dicts)."""
        overall = self._summary(self.samples)
        windows = []
        for window in self.windows:
            summary = self._summary(self.window_samples(window))
            summary["window"] = window["name"]
            summary["start"] = window["start"]
            summary["end"] = window["end"]
            windows.append(summary)
        return {
            "clients": self.clients,
            "overall": overall,
            "windows": windows,
            "counters": dict(self.counters),
        }
