"""Zap: pods, virtualisation, and single-node pod checkpoint/restart."""

from repro.zap.checkpoint import CheckpointEngine
from repro.zap.image import (
    CheckpointImage,
    FdImage,
    PipeImage,
    ProcessImage,
    SemImage,
    ShmImage,
    freeze_object,
    thaw_object,
)
from repro.zap.pod import Pod
from repro.zap.restart import RestartEngine
from repro.zap.socket_codec import BasicZapCodec, SocketCodec
from repro.zap.verify import VerificationReport, verify_image, verify_images
from repro.zap.virtualization import ZapInterposer, install_pod, uninstall_pod

__all__ = [
    "BasicZapCodec",
    "CheckpointEngine",
    "CheckpointImage",
    "FdImage",
    "PipeImage",
    "Pod",
    "ProcessImage",
    "RestartEngine",
    "SemImage",
    "ShmImage",
    "SocketCodec",
    "VerificationReport",
    "ZapInterposer",
    "freeze_object",
    "install_pod",
    "thaw_object",
    "uninstall_pod",
    "verify_image",
    "verify_images",
]
