"""MPI test programs (module-level so checkpoint images can pickle them)."""

from __future__ import annotations

from typing import List

from repro.mpi.api import MpiProgram
from repro.simos.syscalls import sys


class CollectiveTester(MpiProgram):
    """Exercises allreduce / barrier / bcast and records the results."""

    name = "collective-tester"

    def __init__(self, rank: int, peer_ips: List[str], port: int = 9700):
        super().__init__(rank, peer_ips, port=port)
        self.sum_result = None
        self.max_result = None
        self.bcast_result = None
        self.barrier_passed = False

    def on_mpi_ready(self, result):
        return self.allreduce(self.rank + 1, op="sum", then="got_sum")

    def phase_got_sum(self, result):
        self.sum_result = result
        return self.allreduce(self.rank, op="max", then="got_max")

    def phase_got_max(self, result):
        self.max_result = result
        return self.barrier(then="after_barrier")

    def phase_after_barrier(self, result):
        self.barrier_passed = True
        return self.bcast("hello" if self.rank == 0 else None,
                          then="got_bcast")

    def phase_got_bcast(self, result):
        self.bcast_result = result
        return self.mpi_exit(0)


class PingPonger(MpiProgram):
    """Ranks exchange point-to-point messages pairwise with rank 0."""

    name = "ping-ponger"

    def __init__(self, rank: int, peer_ips: List[str],
                 rounds: int = 10, port: int = 9700,
                 work_s: float = 0.0):
        super().__init__(rank, peer_ips, port=port)
        self.rounds = rounds
        self.work_s = work_s
        self.transcript = []
        self.round = 0

    def on_mpi_ready(self, result):
        return self._next(None)

    def _next(self, _):
        if self.round >= self.rounds:
            return self.mpi_exit(0)
        if self.work_s:
            self.goto("after_work")
            return sys("compute", self.work_s)
        return self._exchange()

    def phase_after_work(self, result):
        return self._exchange()

    def _exchange(self):
        if self.rank == 0:
            self._collect_from = 1
            return self._collect(None)
        payload = ("ping", self.rank, self.round)
        return self.send_to(0, payload, then="await_ack")

    # rank 0: gather one message from each peer, ack each.
    def _collect(self, _):
        if self._collect_from >= self.size:
            self.round += 1
            self.goto("next_round")
            return self.phase_next_round(None)
        return self.recv_from(self._collect_from, then="got_ping")

    def phase_got_ping(self, result):
        self.transcript.append(result)
        src = self._collect_from
        self._collect_from += 1
        return self.send_to(src, ("ack", self.round), then="collect_more")

    def phase_collect_more(self, result):
        return self._collect(None)

    def phase_await_ack(self, result):
        return self.recv_from(0, then="got_ack")

    def phase_got_ack(self, result):
        self.transcript.append(result)
        self.round += 1
        self.goto("next_round")
        return self.phase_next_round(None)

    def phase_next_round(self, result):
        return self._next(None)
