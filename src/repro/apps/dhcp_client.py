"""A DHCP client, run *inside* a pod.

The §4.2 scenario: "a pod's VIF can be assigned ... a dynamic IP address
if a DHCP client process running in the pod queries a DHCP server on the
network." The client asks the kernel for its hardware address via
``ioctl(SIOCGIFHWADDR)`` — which Zap intercepts to return the pod's *fake*
MAC — and embeds that address in the request payload, so the server's
lease binding survives migration to hardware with a different real MAC.
"""

from __future__ import annotations

from repro.net.dhcp import (
    ACK,
    DHCP_CLIENT_PORT,
    DHCP_SERVER_PORT,
    DISCOVER,
    DhcpMessage,
    OFFER,
    REQUEST,
)
from repro.simos.program import PhasedProgram
from repro.simos.syscalls import Exit, SIOCGIFHWADDR, sys

BROADCAST = "255.255.255.255"


class DhcpClient(PhasedProgram):
    """DISCOVER/OFFER/REQUEST/ACK, then optional periodic renewal."""

    name = "dhcp-client"
    initial_phase = "ask_mac"

    def __init__(self, renew_every_s: float = 0.0, renewals: int = 0):
        super().__init__()
        self.renew_every_s = renew_every_s
        self.renewals_wanted = renewals
        self.renewals_done = 0
        self.chaddr = None
        self.leased_ip = None
        self.lease_history = []
        self.fd = None
        self.xid = 1

    def phase_ask_mac(self, result):
        self.goto("socket")
        return sys("ioctl", SIOCGIFHWADDR, "eth0")

    def phase_socket(self, result):
        self.chaddr = result  # the (fake) MAC Zap reports
        self.goto("bind")
        return sys("socket", "udp")

    def phase_bind(self, result):
        self.fd = result
        self.goto("discover")
        return sys("bind", self.fd, None, DHCP_CLIENT_PORT)

    def phase_discover(self, result):
        self.xid += 1
        self.goto("offer")
        return sys("sendto", self.fd,
                   DhcpMessage(kind=DISCOVER, xid=self.xid,
                               chaddr=self.chaddr),
                   BROADCAST, DHCP_SERVER_PORT, size=300)

    def phase_offer(self, result):
        if isinstance(result, tuple):
            message = result[0]
            # Replies are broadcast: accept only ours (chaddr + xid).
            if getattr(message, "kind", None) == OFFER \
                    and message.chaddr == self.chaddr \
                    and message.xid == self.xid:
                self.goto("ack")
                return sys("sendto", self.fd,
                           DhcpMessage(kind=REQUEST, xid=self.xid,
                                       chaddr=self.chaddr,
                                       requested_ip=message.yiaddr),
                           BROADCAST, DHCP_SERVER_PORT, size=300)
        return sys("recvfrom", self.fd)

    def phase_ack(self, result):
        if isinstance(result, tuple):
            message = result[0]
            if getattr(message, "kind", None) == ACK \
                    and message.chaddr == self.chaddr \
                    and message.xid == self.xid:
                self.leased_ip = message.yiaddr
                self.lease_history.append(message.yiaddr)
                return self._after_lease()
        return sys("recvfrom", self.fd)

    def _after_lease(self):
        if self.renewals_done >= self.renewals_wanted:
            return Exit(0)
        self.goto("renew_sleep")
        return sys("sleep", self.renew_every_s)

    def phase_renew_sleep(self, result):
        self.renewals_done += 1
        # Renew: REQUEST the same address under the same chaddr. After a
        # migration the wire MAC may differ, but the chaddr (fake MAC)
        # does not — so the server renews the same lease.
        self.xid += 1
        self.goto("ack")
        return sys("sendto", self.fd,
                   DhcpMessage(kind=REQUEST, xid=self.xid,
                               chaddr=self.chaddr,
                               requested_ip=self.leased_ip),
                   BROADCAST, DHCP_SERVER_PORT, size=300)
