"""Connection-level TCP tests: handshake, transfer, close, options."""

import pytest

from repro.errors import TcpError
from repro.net.packet import DEFAULT_MSS, PROTO_TCP
from repro.tcp.options import SocketOptions
from repro.tcp.state import TcpState

from tests.helpers import make_pair


class SinkApp:
    """Reads everything a connection delivers."""

    def __init__(self, sim, connection):
        self.sim = sim
        self.connection = connection
        self.received = bytearray()
        connection.on_readable.append(self._drain)
        self._drain()

    def _drain(self):
        chunk = self.connection.read(1 << 20)
        self.received.extend(chunk)


class SourceApp:
    """Writes a fixed payload as fast as the send buffer allows."""

    def __init__(self, sim, connection, payload, close_when_done=False):
        self.sim = sim
        self.connection = connection
        self.remaining = payload
        self.close_when_done = close_when_done
        connection.on_writable.append(self._pump_soon)
        self._pump_soon()

    def _pump_soon(self):
        self.sim.call_later(0, self._pump)

    def _pump(self):
        while self.remaining and self.connection.send_space > 0:
            accepted = self.connection.send(self.remaining[:4096])
            self.remaining = self.remaining[accepted:]
        if not self.remaining and self.close_when_done:
            self.connection.close()
            self.close_when_done = False


def establish(sim, addr_a, addr_b, port=5000, options=None):
    ip_a, stack_a = addr_a
    ip_b, stack_b = addr_b
    listener = stack_b.listen(ip_b, port, options=options)
    client = stack_a.connect(ip_a, ip_b, port, options=options)
    accepted_event = listener.accept()
    sim.run_until_complete(client.established_event, limit=30)
    sim.run_until_complete(accepted_event, limit=30)
    return client, accepted_event.value


def test_three_way_handshake():
    sim, wire, a, b = make_pair()
    client, server = establish(sim, a, b)
    assert client.state == TcpState.ESTABLISHED
    assert server.state == TcpState.ESTABLISHED
    # ISNs were consumed by the SYNs.
    assert client.tcb.snd_nxt == client.tcb.iss + 1
    assert server.tcb.rcv_nxt == client.tcb.iss + 1


def test_connect_to_closed_port_gets_rst():
    sim, wire, a, b = make_pair()
    ip_a, stack_a = a
    ip_b, _stack_b = b
    client = stack_a.connect(ip_a, ip_b, 4242)
    with pytest.raises(TcpError):
        sim.run_until_complete(client.established_event, limit=30)
    assert client.state == TcpState.CLOSED


def test_bulk_transfer_delivers_exact_bytes():
    sim, wire, a, b = make_pair()
    client, server = establish(sim, a, b)
    payload = bytes(range(256)) * 400  # 102400 bytes
    sink = SinkApp(sim, server)
    SourceApp(sim, client, payload)
    sim.run(until=sim.now + 30)
    assert bytes(sink.received) == payload


def test_segments_respect_mss():
    sim, wire, a, b = make_pair()
    client, server = establish(sim, a, b)
    SinkApp(sim, server)
    SourceApp(sim, client, b"z" * 50000)
    sim.run(until=sim.now + 30)
    data_segments = [pkt.payload for _, pkt in wire.log
                     if pkt.protocol == PROTO_TCP and pkt.payload.payload]
    assert data_segments, "expected data segments on the wire"
    assert all(len(seg.payload) <= DEFAULT_MSS for seg in data_segments)
    assert any(len(seg.payload) == DEFAULT_MSS for seg in data_segments)


def test_nagle_coalesces_small_writes():
    sim, wire, a, b = make_pair()
    client, server = establish(sim, a, b)
    SinkApp(sim, server)
    for _ in range(50):
        client.send(b"ab")
    sim.run(until=sim.now + 5)
    data_segments = [pkt.payload for _, pkt in wire.log
                     if pkt.protocol == PROTO_TCP and pkt.payload.payload
                     and pkt.payload.src_port == client.tcb.local_port]
    # Nagle: far fewer segments than the 50 writes.
    assert 1 <= len(data_segments) < 25
    total = sum(len(seg.payload) for seg in data_segments)
    assert total == 100


def test_nodelay_sends_one_segment_per_write():
    sim, wire, a, b = make_pair()
    options = SocketOptions(nagle_enabled=False)
    client, server = establish(sim, a, b, options=options)
    sink = SinkApp(sim, server)
    for _ in range(10):
        client.send(b"ab")
        sim.run(until=sim.now + 0.01)
    data_segments = [pkt.payload for _, pkt in wire.log
                     if pkt.protocol == PROTO_TCP and pkt.payload.payload
                     and pkt.payload.src_port == client.tcb.local_port]
    assert len(data_segments) == 10
    assert bytes(sink.received) == b"ab" * 10


def test_cork_holds_sub_mss_data():
    sim, wire, a, b = make_pair()
    options = SocketOptions(cork=True)
    client, server = establish(sim, a, b, options=options)
    sink = SinkApp(sim, server)
    client.send(b"small")
    sim.run(until=sim.now + 1)
    assert sink.received == bytearray()  # held by TCP_CORK
    client.tcb.options = client.tcb.options.set(cork=False)
    client._output()
    sim.run(until=sim.now + 1)
    assert bytes(sink.received) == b"small"


def test_graceful_close_both_ends_reach_closed():
    sim, wire, a, b = make_pair(time_wait_s=0.5)
    client, server = establish(sim, a, b)
    sink = SinkApp(sim, server)
    SourceApp(sim, client, b"goodbye", close_when_done=True)
    sim.run(until=sim.now + 2)
    assert bytes(sink.received) == b"goodbye"
    assert server.peer_closed
    server.close()
    sim.run(until=sim.now + 5)
    assert client.state == TcpState.CLOSED
    assert server.state == TcpState.CLOSED


def test_fin_delivers_pending_data_first():
    sim, wire, a, b = make_pair()
    client, server = establish(sim, a, b)
    client.send(b"tail")
    client.close()
    sim.run(until=sim.now + 2)
    assert server.read(10) == b"tail"
    assert server.peer_closed


def test_abort_sends_rst_and_peer_sees_reset():
    sim, wire, a, b = make_pair()
    client, server = establish(sim, a, b)
    client.abort()
    sim.run(until=sim.now + 1)
    assert client.state == TcpState.CLOSED
    assert server.state == TcpState.CLOSED


def test_zero_window_then_reader_drains():
    sim, wire, a, b = make_pair()
    options = SocketOptions(recv_buffer_bytes=4096, send_buffer_bytes=65536)
    client, server = establish(sim, a, b, options=options)
    payload = b"q" * 20000
    source = SourceApp(sim, client, payload)
    sim.run(until=sim.now + 5)
    # Receiver never read: its window must have closed.
    assert server.receive_buffer.window == 0
    received = bytearray()
    # Now drain periodically; the stream must complete via window updates.
    def drain():
        received.extend(server.read(1 << 20))
        if len(received) + server.available < len(payload) or source.remaining:
            sim.call_later(0.05, drain)
    drain()
    sim.run(until=sim.now + 30)
    received.extend(server.read(1 << 20))
    assert bytes(received) == payload


def test_ephemeral_ports_unique():
    sim, wire, a, b = make_pair()
    ip_a, stack_a = a
    ip_b, stack_b = b
    stack_b.listen(ip_b, 80)
    conns = [stack_a.connect(ip_a, ip_b, 80) for _ in range(5)]
    ports = {c.tcb.local_port for c in conns}
    assert len(ports) == 5


def test_listener_backlog_overflow_drops_syn():
    sim, wire, a, b = make_pair()
    ip_a, stack_a = a
    ip_b, stack_b = b
    stack_b.listen(ip_b, 80, backlog=2)
    conns = [stack_a.connect(ip_a, ip_b, 80) for _ in range(4)]
    sim.run(until=sim.now + 0.2)
    established = [c for c in conns if c.state == TcpState.ESTABLISHED]
    assert len(established) == 2


def test_listener_close_aborts_embryos():
    sim, wire, a, b = make_pair()
    ip_a, stack_a = a
    ip_b, stack_b = b
    listener = stack_b.listen(ip_b, 80)
    client = stack_a.connect(ip_a, ip_b, 80)
    sim.run(until=sim.now + 0.3)
    listener.close()
    # Subsequent connect attempts get RST.
    late = stack_a.connect(ip_a, ip_b, 80)
    with pytest.raises(TcpError):
        sim.run_until_complete(late.established_event, limit=30)
    del client
