#!/usr/bin/env python
"""Resource management via suspend/resume (the §1 utility-computing case).

A distributed PageRank job is suspended mid-run — its checkpoint goes to
the shared filesystem and every process, socket and pod disappears,
freeing the machines for other work. Minutes later it resumes on the same
cluster and finishes with a result **bit-identical** to an uninterrupted
run: no library hooks, no recomputation, no drift.

Run:  python examples/pagerank_suspend_resume.py
"""

import numpy as np

from repro.apps.pagerank import pagerank_factory, reference_pagerank
from repro.cruz.cluster import CruzCluster
from repro.lsf import JobScheduler, JobSpec, JobState

VERTICES, RANKS, ITERATIONS = 60, 3, 40


def main():
    cluster = CruzCluster(n_app_nodes=3)
    scheduler = JobScheduler(cluster)
    job = scheduler.submit(JobSpec(
        name="pagerank",
        factory=pagerank_factory(RANKS, n_vertices=VERTICES,
                                 iterations=ITERATIONS,
                                 work_s_per_iter=0.05),
        n_ranks=RANKS))
    cluster.run_for(0.8)
    progress = [r.iteration for r in cluster.app_programs(job.app)]
    print(f"t={cluster.sim.now:.1f}s  iteration progress per rank: "
          f"{progress} / {ITERATIONS}")

    print("suspending the job (cluster needed for something else)...")
    scheduler.suspend_job("pagerank")
    assert all(not agent.pods for agent in cluster.agents)
    print(f"t={cluster.sim.now:.1f}s  all pods gone; images stored as "
          f"v{cluster.store.latest_version('pagerank-r0')}")

    cluster.run_for(120.0)  # the cluster does other things for 2 minutes
    print(f"t={cluster.sim.now:.1f}s  resuming...")
    scheduler.resume_job("pagerank")
    scheduler.wait_for("pagerank")
    assert job.state == JobState.FINISHED

    results = [r.result for r in cluster.app_programs(job.app)]
    expected = reference_pagerank(VERTICES, RANKS, ITERATIONS)
    for result in results:
        np.testing.assert_array_equal(result, expected)
    print(f"t={cluster.sim.now:.1f}s  job finished after suspension; "
          f"result bit-identical to an uninterrupted run "
          f"(top vertex: {int(np.argmax(expected))}, "
          f"rank {expected.max():.5f})")


if __name__ == "__main__":
    main()
