"""The user-level library checkpointing baseline (libckpt / Condor, §2).

"User-level library-based implementations lack support for saving/restoring
kernel state other than open files and they require application
modifications or re-linking. Thus they work only for a narrow set of
applications."

This module makes that comparison executable: a checkpointer that handles
exactly what those libraries handled — one process, its memory, and its
open *files* — and refuses everything else (sockets, pipes, IPC,
multi-process jobs). Restores get whatever PID the OS hands out, so
PID-dependent applications break; there is no virtualisation layer to
mask it (the gap Zap closes, §2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.errors import CheckpointError
from repro.simos.files import Descriptor, Pipe, RegularFile
from repro.simos.kernel import Node
from repro.simos.process import ProcessControlBlock, SIGSTOP
from repro.simos.sockets import TcpSocket, UdpSocket
from repro.zap.image import freeze_object, thaw_object
from repro.simos.memory import AddressSpace


class UnsupportedResource(CheckpointError):
    """The application uses something the library cannot checkpoint."""


@dataclass
class UserLevelImage:
    """A single-process, files-only image."""

    name: str
    program_blob: bytes
    memory: AddressSpace
    files: List[dict] = field(default_factory=list)
    resume_syscall: Optional[object] = None
    original_pid: int = 0


class UserLevelCheckpointer:
    """Single-process checkpoint/restart with library-era limitations.

    The library also assumes the application was re-linked against it;
    ``requires_relink`` models that: programs must opt in by exposing
    ``checkpointable_with_library = True`` (application modification —
    precisely what Cruz avoids).
    """

    def __init__(self, requires_relink: bool = True):
        self.requires_relink = requires_relink

    def checkpoint_process(
            self, proc: ProcessControlBlock) -> UserLevelImage:
        if self.requires_relink and not getattr(
                proc.program, "checkpointable_with_library", False):
            raise UnsupportedResource(
                f"{proc.name}: application not re-linked against the "
                f"checkpoint library (set checkpointable_with_library)")
        proc.signal(SIGSTOP)
        files = []
        for fd, descriptor in proc.fds.items():
            obj = descriptor.obj
            if isinstance(obj, RegularFile):
                files.append({"fd": fd, "path": obj.path,
                              "offset": obj.offset,
                              "file_mode": obj.mode,
                              "mode": descriptor.mode})
            elif isinstance(obj, (TcpSocket, UdpSocket)):
                raise UnsupportedResource(
                    f"fd {fd}: network sockets are not checkpointable "
                    f"at user level (the gap Cruz closes, §4.1)")
            elif isinstance(obj, Pipe):
                raise UnsupportedResource(
                    f"fd {fd}: pipes are kernel state invisible to a "
                    f"user-level library")
            else:
                raise UnsupportedResource(
                    f"fd {fd}: unsupported resource {obj.kind!r}")
        return UserLevelImage(
            name=proc.name,
            program_blob=freeze_object(proc.program),
            memory=proc.memory.snapshot(),
            files=files,
            resume_syscall=proc.current_syscall,
            original_pid=proc.pid)

    def checkpoint_job(self, procs: List[ProcessControlBlock]):
        if len(procs) != 1:
            raise UnsupportedResource(
                f"{len(procs)} processes: user-level libraries "
                f"checkpoint a single process only")
        return self.checkpoint_process(procs[0])

    def restore_process(self, image: UserLevelImage,
                        node: Node) -> ProcessControlBlock:
        """Recreate the process. NOTE: the new PID is whatever the OS
        assigns — applications that stored their PID are now wrong."""
        program = thaw_object(image.program_blob)
        proc = node.spawn(program, name=image.name,
                          resume_syscall=image.resume_syscall)
        proc.memory = image.memory.snapshot()
        for entry in image.files:
            regular = RegularFile(node.sim, node.fs, entry["path"],
                                  entry["file_mode"])
            regular.offset = entry["offset"]
            proc.fds.install_at(entry["fd"],
                                Descriptor(regular, entry["mode"]))
        return proc
