"""The MPI-like programming layer.

:class:`MpiProgram` gives checkpointable state-machine programs MPI-style
primitives over plain TCP sockets:

* ``send_to(dst, payload)`` / ``recv_from(src)`` — point-to-point, FIFO per
  peer, length-prefixed pickled payloads;
* ``barrier()`` — all ranks synchronise through rank 0;
* ``allreduce(value)`` — sum/min/max reduction through rank 0;
* ``bcast(value)`` — rank 0 to all.

Setup builds a full mesh: every rank listens on a common port, connects to
all lower ranks (retrying while peers are still booting), then accepts all
higher ranks, identifying each by a hello record. There is no location
directory and no reconnection logic anywhere — after a Cruz restart the
restored TCP connections simply keep working, which is the point.

Subclasses implement ``phase_*`` handlers as usual and drive the library
with the helper methods, each of which takes a ``then=`` continuation
phase. The operation's result is delivered as that phase's ``result``.
"""

from __future__ import annotations

import pickle
import struct
from typing import Any, Dict, List, Optional

from repro.errors import ReproError, SyscallError
from repro.simos.program import PhasedProgram
from repro.simos.syscalls import Exit, sys

LENGTH_FORMAT = ">Q"
LENGTH_BYTES = struct.calcsize(LENGTH_FORMAT)
HELLO_FORMAT = ">I"
HELLO_BYTES = struct.calcsize(HELLO_FORMAT)

#: Delay before retrying a refused connect during mesh setup.
CONNECT_RETRY_DELAY = 0.01


def _encode(payload: Any) -> bytes:
    blob = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
    return struct.pack(LENGTH_FORMAT, len(blob)) + blob


class MpiProgram(PhasedProgram):
    """Base class for rank-parallel programs."""

    name = "mpi-program"
    initial_phase = "mpi_boot"

    def __init__(self, rank: int, peer_ips: List[str], port: int = 9700):
        super().__init__()
        self.rank = rank
        self.peer_ips = list(peer_ips)
        self.size = len(peer_ips)
        self.port = port
        self.listen_fd: Optional[int] = None
        self.peer_fds: Dict[int, int] = {}
        self.rx: Dict[int, bytes] = {r: b"" for r in range(self.size)}
        self._connect_target = 0
        self._accept_remaining = 0
        self._op: Optional[Dict[str, Any]] = None
        self._pending_hello = b""
        # Library accounting (tests check transparency, not the app).
        self.mpi_sends = 0
        self.mpi_receives = 0

    # ------------------------------------------------------------------
    # Application interface
    # ------------------------------------------------------------------

    def on_mpi_ready(self, result):
        """First user hook: the mesh is up. Must return a Syscall/Exit."""
        raise NotImplementedError

    def send_to(self, dst: int, payload: Any, then: str):
        """Queue a message to ``dst``; continue at phase ``then``."""
        if dst == self.rank:
            raise ReproError("send_to self")
        self._op = {"kind": "send", "peer": dst,
                    "buf": _encode(payload), "then": then}
        return self._run_op(None)

    def recv_from(self, src: int, then: str):
        """Receive the next message from ``src``; its payload is the
        ``result`` delivered to phase ``then``."""
        if src == self.rank:
            raise ReproError("recv_from self")
        self._op = {"kind": "recv", "peer": src, "then": then}
        return self._run_op(None)

    def barrier(self, then: str):
        """Synchronise all ranks (fan-in to rank 0, fan-out)."""
        plan = self._barrier_plan()
        self._op = {"kind": "seq", "plan": plan, "index": 0,
                    "then": then, "value": None}
        return self._run_op(None)

    def allreduce(self, value: Any, op: str, then: str):
        """Reduce ``value`` across ranks; every rank gets the result."""
        plan = self._allreduce_plan()
        self._op = {"kind": "seq", "plan": plan, "index": 0,
                    "then": then, "value": value, "reduce": op,
                    "gathered": []}
        return self._run_op(None)

    def bcast(self, value: Any, then: str):
        """Broadcast rank 0's ``value`` to everyone."""
        if self.rank == 0:
            plan = [("send", dst, "value") for dst in range(1, self.size)]
        else:
            plan = [("recv_value", 0)]
        self._op = {"kind": "seq", "plan": plan, "index": 0,
                    "then": then, "value": value}
        return self._run_op(None)

    def reduce(self, value: Any, op: str, then: str):
        """Reduce to rank 0 only (other ranks receive ``None``)."""
        if self.rank == 0:
            plan = [("recv_gather", src) for src in range(1, self.size)]
            plan += [("reduce",)]
        else:
            plan = [("send", 0, "value"), ("clear_value",)]
        self._op = {"kind": "seq", "plan": plan, "index": 0,
                    "then": then, "value": value, "reduce": op,
                    "gathered": []}
        return self._run_op(None)

    def gather(self, value: Any, then: str):
        """Rank 0 receives ``[rank0_value, ..., rankN-1_value]``; other
        ranks receive ``None``."""
        if self.rank == 0:
            plan = [("recv_gather", src) for src in range(1, self.size)]
            plan += [("combine_gather",)]
        else:
            plan = [("send", 0, "value"), ("clear_value",)]
        self._op = {"kind": "seq", "plan": plan, "index": 0,
                    "then": then, "value": value, "gathered": []}
        return self._run_op(None)

    def scatter(self, values, then: str):
        """Rank 0 distributes ``values[i]`` to rank ``i``; every rank's
        result is its own element. Non-root ranks pass ``None``."""
        if self.rank == 0:
            if values is None or len(values) != self.size:
                raise ReproError(
                    f"scatter needs exactly {self.size} values on rank 0")
            plan = [("send_item", dst) for dst in range(1, self.size)]
            plan += [("take_item", 0)]
        else:
            plan = [("recv_value", 0)]
        self._op = {"kind": "seq", "plan": plan, "index": 0,
                    "then": then, "value": None,
                    "items": list(values) if values is not None else None}
        return self._run_op(None)

    def sendrecv(self, dst: int, payload: Any, src: int, then: str):
        """Send to ``dst`` and receive from ``src`` (halo-exchange
        primitive); the received payload is the result."""
        plan = [("send_payload", dst), ("recv_value", src)]
        self._op = {"kind": "seq", "plan": plan, "index": 0,
                    "then": then, "value": None, "payload": payload}
        return self._run_op(None)

    def mpi_exit(self, code: int = 0):
        return Exit(code)

    # -- collective plans ---------------------------------------------------

    def _barrier_plan(self):
        if self.rank == 0:
            plan = [("recv_discard", src) for src in range(1, self.size)]
            plan += [("send", dst, None) for dst in range(1, self.size)]
        else:
            plan = [("send", 0, None), ("recv_discard", 0)]
        return plan

    def _allreduce_plan(self):
        if self.rank == 0:
            plan = [("recv_gather", src) for src in range(1, self.size)]
            plan += [("reduce",)]
            plan += [("send", dst, "value") for dst in range(1, self.size)]
        else:
            plan = [("send", 0, "value"), ("recv_value", 0)]
        return plan

    # ------------------------------------------------------------------
    # Mesh setup phases
    # ------------------------------------------------------------------

    def phase_mpi_boot(self, result):
        self.goto("mpi_bind")
        return sys("socket", "tcp")

    def phase_mpi_bind(self, result):
        self.listen_fd = result
        self.goto("mpi_listen")
        return sys("bind", self.listen_fd, None, self.port)

    def phase_mpi_listen(self, result):
        self.goto("mpi_connect_next")
        return sys("listen", self.listen_fd, self.size)

    def phase_mpi_connect_next(self, result):
        if self._connect_target >= self.rank:
            self._accept_remaining = self.size - 1 - self.rank
            self.goto("mpi_accept_next")
            return self.phase_mpi_accept_next(None)
        self.goto("mpi_connect")
        return sys("socket", "tcp")

    def phase_mpi_connect(self, result):
        self._connect_fd = result
        self.goto("mpi_hello")
        return sys("connect", self._connect_fd,
                   self.peer_ips[self._connect_target], self.port)

    def phase_mpi_hello(self, result):
        if isinstance(result, SyscallError):
            # Peer not listening yet: retry after a short sleep.
            self.goto("mpi_retry_sleep")
            return sys("close", self._connect_fd)
        self.peer_fds[self._connect_target] = self._connect_fd
        self.goto("mpi_hello_sent")
        return sys("send", self._connect_fd,
                   struct.pack(HELLO_FORMAT, self.rank))

    def phase_mpi_retry_sleep(self, result):
        self.goto("mpi_retry_connect")
        return sys("sleep", CONNECT_RETRY_DELAY)

    def phase_mpi_retry_connect(self, result):
        self.goto("mpi_connect")
        return sys("socket", "tcp")

    def phase_mpi_hello_sent(self, result):
        # Every real MPI-over-TCP disables Nagle: small halo/ack messages
        # must not wait behind delayed ACKs.
        self.goto("mpi_connected")
        return sys("setsockopt", self._connect_fd, "TCP_NODELAY", True)

    def phase_mpi_connected(self, result):
        self._connect_target += 1
        self.goto("mpi_connect_next")
        return self.phase_mpi_connect_next(None)

    def phase_mpi_accept_next(self, result):
        if self._accept_remaining <= 0:
            self.goto("mpi_ready")
            return self.phase_mpi_ready(None)
        self.goto("mpi_accepted")
        return sys("accept", self.listen_fd)

    def phase_mpi_accepted(self, result):
        self._hello_fd = result[0]
        self._pending_hello = b""
        self.goto("mpi_read_hello")
        return sys("recv", self._hello_fd, HELLO_BYTES)

    def phase_mpi_read_hello(self, result):
        self._pending_hello += result
        if len(self._pending_hello) < HELLO_BYTES:
            return sys("recv", self._hello_fd,
                       HELLO_BYTES - len(self._pending_hello))
        peer = struct.unpack(HELLO_FORMAT, self._pending_hello)[0]
        self.peer_fds[peer] = self._hello_fd
        self._accept_remaining -= 1
        self.goto("mpi_accepted_nodelay")
        return sys("setsockopt", self._hello_fd, "TCP_NODELAY", True)

    def phase_mpi_accepted_nodelay(self, result):
        self.goto("mpi_accept_next")
        return self.phase_mpi_accept_next(None)

    def phase_mpi_ready(self, result):
        return self.on_mpi_ready(result)

    # ------------------------------------------------------------------
    # Operation driver
    # ------------------------------------------------------------------

    def _finish_op(self, value):
        op = self._op
        self._op = None
        self.goto(op["then"])
        handler = getattr(self, f"phase_{op['then']}")
        return handler(value)

    def _run_op(self, result):
        op = self._op
        if op["kind"] == "send":
            self.goto("mpi_op_send")
            return self.phase_mpi_op_send(None)
        if op["kind"] == "recv":
            self.goto("mpi_op_recv")
            return self.phase_mpi_op_recv(None)
        if op["kind"] == "seq":
            return self._advance_seq(None)
        raise ReproError(f"unknown mpi op {op['kind']!r}")

    # -- point-to-point send ------------------------------------------------

    def phase_mpi_op_send(self, result):
        op = self._op
        if isinstance(result, int):
            op["buf"] = op["buf"][result:]
        if op["buf"]:
            return sys("send", self.peer_fds[op["peer"]], op["buf"])
        self.mpi_sends += 1
        if op.get("seq_parent") is not None:
            return self._seq_step_done(None)
        return self._finish_op(None)

    # -- point-to-point receive -----------------------------------------------

    def phase_mpi_op_recv(self, result):
        op = self._op
        peer = op["peer"]
        if isinstance(result, bytes):
            if result == b"":
                raise ReproError(
                    f"rank {self.rank}: peer {peer} closed mid-message")
            self.rx[peer] += result
        message = self._try_decode(peer)
        if message is None:
            return sys("recv", self.peer_fds[peer], 65536)
        self.mpi_receives += 1
        if op.get("seq_parent") is not None:
            return self._seq_step_done(message[0])
        return self._finish_op(message[0])

    def _try_decode(self, peer: int):
        buffer = self.rx[peer]
        if len(buffer) < LENGTH_BYTES:
            return None
        length = struct.unpack(LENGTH_FORMAT, buffer[:LENGTH_BYTES])[0]
        if len(buffer) < LENGTH_BYTES + length:
            return None
        blob = buffer[LENGTH_BYTES:LENGTH_BYTES + length]
        self.rx[peer] = buffer[LENGTH_BYTES + length:]
        return (pickle.loads(blob),)

    # -- collective sequencing ---------------------------------------------

    def _advance_seq(self, incoming):
        op = self._op
        plan = op["plan"]
        if op["index"] >= len(plan):
            return self._finish_op(op["value"])
        step = plan[op["index"]]
        op["index"] += 1
        kind = step[0]
        if kind == "send":
            _kind, dst, what = step
            payload = op["value"] if what == "value" else None
            self._sub = {"kind": "send", "peer": dst,
                         "buf": _encode(payload), "seq_parent": True}
            return self._start_sub()
        if kind == "send_item":
            dst = step[1]
            self._sub = {"kind": "send", "peer": dst,
                         "buf": _encode(op["items"][dst]),
                         "seq_parent": True}
            return self._start_sub()
        if kind == "send_payload":
            dst = step[1]
            self._sub = {"kind": "send", "peer": dst,
                         "buf": _encode(op["payload"]),
                         "seq_parent": True}
            return self._start_sub()
        if kind in ("recv_discard", "recv_value", "recv_gather"):
            src = step[1]
            self._sub = {"kind": "recv", "peer": src, "seq_parent": True,
                         "role": kind}
            return self._start_sub()
        if kind == "reduce":
            op["value"] = self._reduce([op["value"]] + op["gathered"],
                                       op["reduce"])
            return self._advance_seq(None)
        if kind == "combine_gather":
            op["value"] = [op["value"]] + op["gathered"]
            return self._advance_seq(None)
        if kind == "take_item":
            op["value"] = op["items"][step[1]]
            return self._advance_seq(None)
        if kind == "clear_value":
            op["value"] = None
            return self._advance_seq(None)
        raise ReproError(f"unknown collective step {kind!r}")

    def _start_sub(self):
        sub = self._sub
        parent = self._op
        sub["parent"] = parent
        sub["then"] = parent["then"]  # not used; parent resumes instead
        self._op = sub
        if sub["kind"] == "send":
            self.goto("mpi_op_send")
            return self.phase_mpi_op_send(None)
        self.goto("mpi_op_recv")
        return self.phase_mpi_op_recv(None)

    def _seq_step_done(self, value):
        sub = self._op
        parent = sub["parent"]
        self._op = parent
        role = sub.get("role")
        if role == "recv_value":
            parent["value"] = value
        elif role == "recv_gather":
            parent["gathered"].append(value)
        return self._advance_seq(value)

    @staticmethod
    def _reduce(values, op: str):
        if op == "sum":
            total = values[0]
            for value in values[1:]:
                total = total + value
            return total
        if op == "min":
            return min(values)
        if op == "max":
            return max(values)
        raise ReproError(f"unknown reduce op {op!r}")
