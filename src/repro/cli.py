"""Command-line interface: ``python -m repro <command>``.

Commands regenerate the paper's experiments or run narrated demos without
touching pytest — the quickest way to kick the tyres. Every subcommand
takes ``--json`` to emit its result as machine-readable JSON instead of
tables; ``trace`` exports a checkpoint round's span timeline as Chrome
``trace_event`` JSON or a flat summary.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import math
import sys
from typing import Any, List, Optional

#: One exit-code convention for the analysis commands (``lint``,
#: ``sanitize``, ``analyze``, ``trace``): 0 = clean, 1 = violations or
#: failed checks, 2 = usage error (argparse's own convention).
EXIT_OK = 0
EXIT_VIOLATIONS = 1
EXIT_USAGE = 2


def to_jsonable(obj: Any) -> Any:
    """Recursively convert harness results to JSON-serialisable data.

    Understands anything with a ``to_jsonable`` method (ShapeReport),
    dataclasses (Stat, Fig5Point, RoundStats...), mappings and sequences.
    Non-finite floats become ``None`` so the output stays strict JSON.
    """
    if hasattr(obj, "to_jsonable"):
        return to_jsonable(obj.to_jsonable())
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return {f.name: to_jsonable(getattr(obj, f.name))
                for f in dataclasses.fields(obj)}
    if isinstance(obj, dict):
        return {str(key): to_jsonable(value)
                for key, value in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [to_jsonable(value) for value in obj]
    if isinstance(obj, float) and not math.isfinite(obj):
        return None
    if isinstance(obj, (str, int, float, bool)) or obj is None:
        return obj
    return str(obj)


def _emit_json(payload: Any) -> None:
    print(json.dumps(to_jsonable(payload), indent=2, allow_nan=False))


def _cmd_fig5(args) -> int:
    from repro.bench.fig5 import fig5_shape_report, run_fig5
    from repro.bench.harness import render_table
    points = run_fig5(node_counts=tuple(args.nodes), rounds=args.rounds)
    report = fig5_shape_report(points)
    if args.json:
        _emit_json({"command": "fig5", "points": points,
                    "shape": report})
        return 0 if report.passed else 1
    rows = [[p.n_nodes, f"{p.latency.mean:.3f} s",
             f"{p.overhead.mean*1e6:.0f} us",
             f"{p.restart_latency.mean:.3f} s",
             int(p.messages_per_round)] for p in points]
    print(render_table(
        "Fig 5 — checkpoint latency / coordination overhead / restart",
        ["nodes", "latency", "overhead", "restart", "msgs"], rows))
    print(report.render())
    return 0 if report.passed else 1


def _cmd_fig6(args) -> int:
    from repro.bench.fig6 import fig6_shape_report, run_fig6
    result = run_fig6()
    report = fig6_shape_report(result)
    if args.json:
        _emit_json({"command": "fig6", "result": result,
                    "shape": report})
        return 0 if report.passed else 1
    print(f"steady rate        : "
          f"{result.pre_checkpoint_rate_bps/1e6:.1f} Mb/s")
    print(f"checkpoint duration: "
          f"{result.checkpoint_duration_s*1000:.1f} ms")
    print(f"drain pulse at     : {result.pulse_time_s*1000:.1f} ms")
    print(f"recovery at        : {result.recovery_time_s*1000:.1f} ms")
    print(f"retransmissions    : {len(result.retransmit_times_s)}")
    print(report.render())
    return 0 if report.passed else 1


def _cmd_messages(args) -> int:
    from repro.bench.harness import render_table
    from repro.bench.messages import messages_shape_report, run_messages
    points = run_messages(node_counts=tuple(args.nodes))
    report = messages_shape_report(points)
    if args.json:
        _emit_json({"command": "messages", "points": points,
                    "shape": report})
        return 0 if report.passed else 1
    rows = [[p.n_nodes, p.cruz_messages, p.flush_messages,
             f"{p.cruz_latency_s*1000:.2f} ms",
             f"{p.flush_latency_s*1000:.2f} ms"] for p in points]
    print(render_table("Message complexity — Cruz O(N) vs flush O(N^2)",
                       ["nodes", "cruz", "flush", "cruz lat",
                        "flush lat"], rows))
    print(report.render())
    return 0 if report.passed else 1


def _cmd_overhead(args) -> int:
    from repro.bench.overhead import overhead_shape_report, run_overhead
    result = run_overhead()
    report = overhead_shape_report(result)
    if args.json:
        _emit_json({"command": "overhead", "result": result,
                    "overhead_fraction": result.overhead_fraction,
                    "shape": report})
        return 0 if report.passed else 1
    print(f"bare runtime : {result.bare_runtime_s:.4f} s")
    print(f"pod runtime  : {result.pod_runtime_s:.4f} s")
    print(f"overhead     : {result.overhead_fraction*100:.4f} % "
          f"(paper: < 0.5 %)")
    print(report.render())
    return 0 if report.passed else 1


def _cmd_fig4(args) -> int:
    from repro.bench.harness import render_table
    from repro.bench.optimization import (
        optimization_shape_report,
        run_optimization,
    )
    result = run_optimization()
    report = optimization_shape_report(result)
    if args.json:
        _emit_json({"command": "fig4", "result": result,
                    "shape": report})
        return 0 if report.passed else 1
    pods = sorted(result.blocking_pause_s)
    rows = [[pod, f"{result.blocking_pause_s[pod]*1000:.0f} ms",
             f"{result.optimized_pause_s[pod]*1000:.0f} ms"]
            for pod in pods]
    print(render_table("Fig 4 — per-pod pause, blocking vs optimised",
                       ["pod", "blocking", "optimised"], rows))
    print(report.render())
    return 0 if report.passed else 1


def _cmd_demo(args) -> int:
    from repro.apps.kvserver import KvClient, KvServer
    from repro.cruz.cluster import CruzCluster
    from repro.tools import format_table, netstat, pod_report, ps

    cluster = CruzCluster(2)
    pod = cluster.create_pod(0, "kv")
    pod.spawn(KvServer())
    requests = [{"op": "put", "key": f"k{i}", "value": i}
                for i in range(100)]
    client = cluster.coordinator_node.spawn(
        KvClient(str(pod.ip), requests, think_time_s=0.005))
    cluster.run_for(0.2)
    if not args.json:
        print("## processes on node0")
        print(format_table(ps(cluster.nodes[0])))
        print("\n## connections on node0")
        print(format_table(netstat(cluster.nodes[0])))
        print(f"\nmigrating pod {pod.name!r} to node1 mid-conversation...")
    cluster.migrate_pod(pod, target_node_index=1)
    cluster.run_until(lambda: not client.is_alive, limit=60, step=0.1)
    ok = client.exit_code == 0 and \
        all(r["ok"] for r in client.program.responses)
    if args.json:
        _emit_json({"command": "demo", "ok": ok,
                    "responses": len(client.program.responses),
                    "pods": pod_report(cluster)})
        return 0 if ok else 1
    print("\n## pods after migration")
    print(format_table(pod_report(cluster)))
    print(f"\nclient finished {len(client.program.responses)} requests: "
          f"{'all OK — migration was transparent' if ok else 'FAILED'}")
    return 0 if ok else 1


def _cmd_bench(args) -> int:
    if args.suite == "simcore":
        from repro.bench import simcore
        baseline = args.baseline or simcore.DEFAULT_BASELINE
        workload = {"n_nodes": args.nodes, "n_flows": args.flows,
                    "segments_per_flow": args.segments}
        if args.save:
            status = simcore.save_baseline(baseline, **workload)
        else:
            status = simcore.check(baseline,
                                   min_speedup=args.min_speedup,
                                   tolerance=args.tolerance,
                                   **workload)
    elif args.suite == "migration":
        from repro.bench import migration
        baseline = args.baseline or migration.DEFAULT_BASELINE
        workload = {"ranks": args.ranks,
                    "memory_mb_per_rank": args.memory_mb
                    if args.memory_mb is not None else 100.0}
        if args.save:
            status = migration.save_baseline(baseline, **workload)
        else:
            status = migration.check(
                baseline, max_pause_ratio=args.max_pause_ratio,
                tolerance=args.tolerance, **workload)
    elif args.suite == "mc":
        from repro.bench import mc as bench_mc
        baseline = args.baseline or bench_mc.DEFAULT_BASELINE
        if args.save:
            status = bench_mc.save_baseline(baseline)
        else:
            status = bench_mc.check(baseline, tolerance=args.tolerance,
                                    overhead_limit=args.overhead_limit)
    elif args.suite == "slo":
        from repro.bench import slo
        baseline = args.baseline or slo.DEFAULT_BASELINE
        if args.save:
            status = slo.save_baseline(baseline)
        else:
            status = slo.check(baseline, p99_limit_s=args.p99_limit,
                               tolerance=args.tolerance)
    elif args.suite == "store":
        from repro.bench import store
        baseline = args.baseline or store.DEFAULT_BASELINE
        workload = {"app_nodes": args.app_nodes,
                    "memory_mb": args.memory_mb
                    if args.memory_mb is not None
                    else store.DEFAULT_MEMORY_MB}
        if args.save:
            status = store.save_baseline(baseline, **workload)
        else:
            status = store.check(baseline,
                                 min_scaling=args.min_scaling,
                                 tolerance=args.tolerance, **workload)
    else:
        from repro.bench import regression
        baseline = args.baseline or "benchmarks/BENCH_fig5.json"
        if args.save:
            status = regression.save_baseline(baseline)
        else:
            status = regression.check_regression(baseline,
                                                 tolerance=args.tolerance)
    if args.json:
        _emit_json({"command": "bench", "suite": args.suite,
                    "baseline": baseline,
                    "ok": status == 0, "exit_status": status})
    return status


def _cmd_trace(args) -> int:
    """Run a checkpoint workload and export its span timeline."""
    from repro.apps.slm import slm_factory
    from repro.bench.harness import render_table
    from repro.cruz.cluster import CruzCluster
    from repro.sim.spans import round_coverage
    from repro.tools import format_table, round_report

    n_nodes = args.nodes
    cluster = CruzCluster(n_nodes, trace_enabled=True)
    app = cluster.launch_app_factory(
        "slm", n_nodes,
        slm_factory(n_nodes, global_rows=8 * n_nodes, cols=32,
                    steps=100000, total_work_s=1e6,
                    memory_mb_per_rank=args.memory_mb))
    cluster.run_for(0.5)
    rounds = []
    for _ in range(args.rounds):
        cluster.run_for(args.interval)
        rounds.append(cluster.checkpoint_app(app))
    spans = cluster.spans
    coverages = [round_coverage(spans, stats.epoch) for stats in rounds]

    if args.format == "chrome":
        text = json.dumps(spans.to_chrome())
        if args.out:
            with open(args.out, "w", encoding="utf-8") as handle:
                handle.write(text)
            print(f"wrote {len(spans.spans)} spans to {args.out}",
                  file=sys.stderr)
        else:
            # Pure JSON on stdout so it can be piped straight into a
            # parser (the CI smoke job does exactly that).
            print(text)
        return 0 if min(coverages) >= 0.95 else 1

    if args.json:
        _emit_json({
            "command": "trace",
            "rounds": rounds,
            "coverage": coverages,
            "summary": spans.summary_rows(),
            "metrics": cluster.metrics.snapshot(),
        })
        return 0 if min(coverages) >= 0.95 else 1

    rows = [[r["span"], r["count"], f"{r['total_s']*1000:.2f} ms",
             f"{r['mean_s']*1000:.2f} ms", f"{r['max_s']*1000:.2f} ms"]
            for r in spans.summary_rows()]
    print(render_table(f"Span summary — {args.rounds} round(s) on "
                       f"{n_nodes} nodes",
                       ["span", "count", "total", "mean", "max"], rows))
    print()
    print(format_table(round_report(rounds)))
    for stats, coverage in zip(rounds, coverages):
        print(f"epoch {stats.epoch}: spans cover {coverage*100:.1f}% "
              f"of the round's latency window")
    return 0 if min(coverages) >= 0.95 else 1


def _cmd_lint(args) -> int:
    """Run the CruzSan determinism lint over the source tree."""
    from repro.analysis.lint import RULES, lint_paths

    violations = lint_paths(args.paths or None)
    if args.json:
        _emit_json({
            "command": "lint",
            "violations": [{
                "path": v.path, "line": v.line, "col": v.col,
                "code": v.code, "title": v.title, "hint": v.hint,
            } for v in violations],
            "rules": {code: {"title": title, "hint": hint}
                      for code, (title, hint) in RULES.items()},
        })
        return EXIT_VIOLATIONS if violations else EXIT_OK
    for violation in violations:
        print(violation.render())
    print(f"repro lint: {len(violations)} violation(s)")
    return EXIT_VIOLATIONS if violations else EXIT_OK


def _cmd_sanitize(args) -> int:
    """Drive a named workload with the runtime sanitizer installed."""
    from repro.analysis.sanitize import run_workload

    cluster = run_workload(args.workload)
    sanitizer = cluster.trace.sanitizer
    if args.json:
        _emit_json({
            "command": "sanitize",
            "workload": args.workload,
            "violations": [dataclasses.asdict(v)
                           for v in sanitizer.violations],
        })
        return EXIT_VIOLATIONS if sanitizer.violations else EXIT_OK
    print(sanitizer.report())
    return EXIT_VIOLATIONS if sanitizer.violations else EXIT_OK


def _cmd_analyze(args) -> int:
    """Schedule-race detection: run twice with perturbed tie-breaking."""
    from repro.analysis.determinism import run_determinism_check

    # Exit 1 means "nondeterminism found"; anything that stops the
    # harness itself from producing a verdict is exit 2.
    try:
        report = run_determinism_check(nodes=args.nodes,
                                       rounds=args.rounds,
                                       seeds=args.seeds)
    except Exception as exc:
        print(f"analyze determinism: harness error — "
              f"{type(exc).__name__}: {exc}", file=sys.stderr)
        return EXIT_USAGE
    if args.json:
        _emit_json({
            "command": "analyze",
            "check": "determinism",
            "deterministic": report.deterministic,
            "divergences": report.divergences,
            "state_hashes": {
                policy: fp["state_hash"]
                for policy, fp in report.fingerprints.items()},
        })
        return EXIT_OK if report.deterministic else EXIT_VIOLATIONS
    print(report.render())
    return EXIT_OK if report.deterministic else EXIT_VIOLATIONS


def _cmd_mc(args) -> int:
    """CruzMC: bounded model checking of the coordination protocol."""
    from repro.analysis import mc

    if args.replay:
        try:
            trace = mc.load_trace(args.replay)
            outcome = mc.replay(trace)
        except Exception as exc:
            print(f"mc replay: harness error — "
                  f"{type(exc).__name__}: {exc}", file=sys.stderr)
            return EXIT_USAGE
        if args.json:
            _emit_json({"command": "mc", "mode": "replay",
                        "trace": args.replay, **outcome})
        else:
            status = ("bit-identical"
                      if outcome["identical"] else "DIVERGED")
            print(f"mc replay[{args.replay}]: {status} — reproduced "
                  f"violations {outcome['violation_codes']} "
                  f"(recorded {outcome['recorded_codes']})")
        if not outcome["identical"]:
            return EXIT_USAGE
        return (EXIT_VIOLATIONS if outcome["violation_codes"]
                else EXIT_OK)

    for bug in args.inject_bug:
        if bug not in mc.KNOWN_BUGS:
            print(f"mc: unknown bug {bug!r} "
                  f"(known: {sorted(mc.KNOWN_BUGS)})", file=sys.stderr)
            return EXIT_USAGE
    config = mc.McConfig(
        nodes=args.nodes, rounds=args.rounds,
        max_states=args.max_states, max_depth=args.max_depth,
        branch_scope=args.branch_scope, por=not args.no_por,
        fault_modes=tuple(f for f in args.faults.split(",") if f),
        fault_budget=args.fault_budget,
        fault_kinds=(tuple(k for k in args.fault_kinds.split(",") if k)
                     if args.fault_kinds else mc.DEFAULT_FAULT_KINDS),
        dup_delay_s=args.dup_delay,
        settle_s=args.settle,
        bugs=tuple(args.inject_bug))
    try:
        report = mc.explore(config,
                            stop_on_violation=not args.keep_going)
    except Exception as exc:
        print(f"mc: harness error — {type(exc).__name__}: {exc}",
              file=sys.stderr)
        return EXIT_USAGE
    if report.counterexample is not None and args.trace_out:
        with open(args.trace_out, "w", encoding="utf-8") as handle:
            json.dump(report.counterexample, handle, indent=2)
            handle.write("\n")
    if args.json:
        _emit_json({"command": "mc", "mode": "explore",
                    **report.to_json()})
    else:
        print(report.render())
        if report.counterexample is not None and args.trace_out:
            print(f"  wrote counterexample trace to {args.trace_out}")
    if report.harness_errors:
        return EXIT_USAGE
    return EXIT_VIOLATIONS if report.violations else EXIT_OK


def _render_serve(report: dict, divergences: List[str]) -> List[str]:
    """Human-readable summary of one serving-gauntlet report."""
    slo = report["slo"]
    overall = slo["overall"]
    lines = [
        f"requests: {overall['requests']} from {slo['clients']} "
        f"client(s)  "
        + (f"p50 {overall['p50_s'] * 1e3:.2f}ms  "
           f"p99 {overall['p99_s'] * 1e3:.2f}ms  "
           f"max {overall['max_s'] * 1e3:.2f}ms"
           if overall["p99_s"] is not None else "(no samples)"),
        f"status: {overall['by_status']}  "
        f"extra attempts: {overall['extra_attempts']}",
    ]
    for window in slo["windows"]:
        p99 = window["p99_s"]
        p99_txt = f"p99 {p99 * 1e3:8.2f}ms" if p99 is not None \
            else "      (idle)"
        lines.append(f"  {window['window']:>14}: "
                     f"{window['requests']:3d} req  {p99_txt}  "
                     f"{window['by_status']}")
    lines.append(f"client counters: {slo['counters']}")
    proxy = report["proxy"]
    lines.append(f"proxy: writes={proxy['writes']} "
                 f"reads={proxy['reads']} sheds={proxy['sheds']} "
                 f"dups_served={proxy['dups_served']} "
                 f"sync_replays={proxy['sync_replays']} "
                 f"reconnects={proxy['backend_reconnects']}")
    if report["canary"] is not None:
        lines.append(f"canary: {report['canary']}")
    lines.append(
        f"replicas consistent: {report['replicas_consistent']}  "
        f"(store digest {report['store_digest'][:12]}..., "
        f"{report['store_size']} keys)")
    lines.append(f"client exits: {report['client_exits']}  "
                 f"client-visible errors: {report['client_errors']}")
    if divergences:
        lines.append(f"determinism: FAIL — {divergences[:3]}")
    return lines


def _cmd_serve(args) -> int:
    """Sessionful serving under SLO through every Cruz disruption."""
    from repro.serve.harness import run_serve, serve_determinism

    kwargs = dict(
        backends=args.backends, clients=args.clients,
        sessions=args.sessions,
        requests_per_session=args.requests_per_session,
        rounds=args.rounds, failover=args.failover,
        migrate=args.migrate, canary=args.canary,
        kill_backend=args.kill_backend,
        canary_divergence=args.canary_divergence, seed=args.seed)
    divergences: List[str] = []
    if args.check_determinism:
        result = serve_determinism(**kwargs)
        report = result["fifo"]
        divergences = result["diffs"]
    else:
        report = run_serve(**kwargs)
    ok = report["ok"] and not divergences
    if args.json:
        _emit_json({"command": "serve", "ok": ok,
                    "determinism_divergences": divergences,
                    "report": report})
        return EXIT_OK if ok else EXIT_VIOLATIONS
    for line in _render_serve(report, divergences):
        print(line)
    if args.check_determinism and not divergences:
        print("determinism: PASS (fifo == lifo)")
    print("serve: " + ("OK" if ok else "FAILED"))
    return EXIT_OK if ok else EXIT_VIOLATIONS


def _chaos_kill_backend(args) -> int:
    """``chaos --kill-backend``: silent backend-pod destruction.

    The proxy must detect the dead backend, shed or retry the affected
    requests within the SLO (zero client-visible errors, bounded p99),
    and log-replay the restored replica back to consistency.
    """
    from repro.serve.harness import run_serve, serve_determinism

    kwargs = dict(backends=3, clients=3, sessions=4,
                  requests_per_session=4, rounds=1, kill_backend=True,
                  seed=args.seed)
    divergences: List[str] = []
    if args.check_determinism:
        result = serve_determinism(**kwargs)
        report = result["fifo"]
        divergences = result["diffs"]
    else:
        report = run_serve(**kwargs)
    p99 = report["slo"]["overall"]["p99_s"]
    within_slo = p99 is not None and p99 <= 1.0
    ok = report["ok"] and within_slo and not divergences
    counters = report["slo"]["counters"]
    if args.json:
        _emit_json({"command": "chaos", "mode": "kill-backend",
                    "ok": ok, "p99_s": p99,
                    "client_errors": report["client_errors"],
                    "sheds": counters["sheds"],
                    "retries": counters["retries"],
                    "replicas_consistent":
                        report["replicas_consistent"],
                    "determinism_divergences": divergences,
                    "report": report})
        return EXIT_OK if ok else EXIT_VIOLATIONS
    for line in _render_serve(report, divergences):
        print(line)
    print(f"kill-backend: p99 {p99 * 1e3:.2f}ms (limit 1000ms), "
          f"{counters['sheds']} shed(s), {counters['retries']} "
          f"retrie(s) — " + ("OK" if ok else "FAILED"))
    return EXIT_OK if ok else EXIT_VIOLATIONS


def _cmd_chaos(args) -> int:
    """Seeded chaos run: crash a node mid-round, demand self-healing."""
    from repro.bench.chaos import chaos_determinism, run_chaos

    if args.kill_backend:
        return _chaos_kill_backend(args)
    result = run_chaos(seed=args.seed, crash_node_index=args.crash_node,
                       link_flap=not args.no_flap,
                       evict_on_suspect=args.evict_on_suspect,
                       kill_replica=args.kill_replica)
    divergences: List[str] = []
    if args.check_determinism:
        divergences = chaos_determinism(
            seed=args.seed, link_flap=not args.no_flap,
            evict_on_suspect=args.evict_on_suspect,
            kill_replica=args.kill_replica)
    ok = result.ok and not divergences
    if args.json:
        _emit_json({
            "command": "chaos",
            "ok": ok,
            "result": result,
            "mttr_s": result.mttr_s,
            "determinism_divergences": divergences,
        })
        return EXIT_OK if ok else EXIT_VIOLATIONS
    print(result.render())
    if args.check_determinism:
        print("determinism: " + ("PASS (fifo == lifo)" if not divergences
                                 else f"FAIL — {divergences}"))
    return EXIT_OK if ok else EXIT_VIOLATIONS


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Cruz (DSN 2005) reproduction — demos and "
                    "experiment harnesses")
    common = argparse.ArgumentParser(add_help=False)
    common.add_argument("--json", action="store_true",
                        help="emit the result as JSON on stdout")
    sub = parser.add_subparsers(dest="command", required=True)

    demo = sub.add_parser("demo", parents=[common],
                          help="narrated live-migration demo")
    demo.set_defaults(fn=_cmd_demo)

    fig5 = sub.add_parser("fig5", parents=[common],
                          help="checkpoint latency/overhead")
    fig5.add_argument("--nodes", type=int, nargs="+",
                      default=[2, 4, 6, 8])
    fig5.add_argument("--rounds", type=int, default=5)
    fig5.set_defaults(fn=_cmd_fig5)

    fig6 = sub.add_parser("fig6", parents=[common],
                          help="TCP stream through a checkpoint")
    fig6.set_defaults(fn=_cmd_fig6)

    messages = sub.add_parser("messages", parents=[common],
                              help="Cruz vs flush message complexity")
    messages.add_argument("--nodes", type=int, nargs="+",
                          default=[2, 4, 8, 16])
    messages.set_defaults(fn=_cmd_messages)

    overhead = sub.add_parser("overhead", parents=[common],
                              help="virtualisation runtime overhead")
    overhead.set_defaults(fn=_cmd_overhead)

    fig4 = sub.add_parser("fig4", parents=[common],
                          help="early-resume optimisation")
    fig4.set_defaults(fn=_cmd_fig4)

    trace = sub.add_parser(
        "trace", parents=[common],
        help="run a checkpoint round and export its span timeline")
    trace.add_argument("--nodes", type=int, default=4,
                       help="cluster size (default 4)")
    trace.add_argument("--rounds", type=int, default=1,
                       help="checkpoint rounds to record (default 1)")
    trace.add_argument("--interval", type=float, default=0.5,
                       help="seconds of app time between rounds")
    trace.add_argument("--memory-mb", type=float, default=20.0,
                       help="per-rank state size in MB (default 20)")
    trace.add_argument("--format", choices=["chrome", "summary"],
                       default="summary",
                       help="chrome trace_event JSON or a flat summary")
    trace.add_argument("--out", default="",
                       help="write chrome JSON to this file instead of "
                            "stdout")
    trace.set_defaults(fn=_cmd_trace)

    bench = sub.add_parser(
        "bench", parents=[common],
        help="wall-clock regression guards (fig5 round time, "
             "simcore events/sec)")
    bench.add_argument("suite", nargs="?", default="fig5",
                       choices=["fig5", "simcore", "migration", "store",
                                "mc", "slo"],
                       help="fig5: checkpoint-round wall clock; "
                            "simcore: scheduler events/sec speedup; "
                            "migration: pre-copy vs stop-and-copy "
                            "pause windows; store: sharded-restore "
                            "bandwidth scaling and healing; mc: model-"
                            "checker states/sec, reduction ratio and "
                            "oracle-hook overhead; slo: serving-fleet "
                            "p99/error floors through the full "
                            "disruption gauntlet")
    bench.add_argument("--save", action="store_true",
                       help="record a new baseline instead of comparing")
    bench.add_argument("--compare", action="store_true",
                       help="compare against the baseline (default)")
    bench.add_argument("--baseline", default="",
                       help="baseline JSON path (default per suite)")
    bench.add_argument("--tolerance", type=float, default=0.2,
                       help="allowed fractional regression (default 0.2)")
    bench.add_argument("--nodes", type=int, default=128,
                       help="simcore: cluster size (default 128)")
    bench.add_argument("--flows", type=int, default=2000,
                       help="simcore: TCP flow count (default 2000)")
    bench.add_argument("--segments", type=int, default=100,
                       help="simcore: storm segments per flow "
                            "(default 100)")
    bench.add_argument("--min-speedup", type=float, default=5.0,
                       help="simcore: required fast/legacy storm "
                            "speedup (default 5.0)")
    bench.add_argument("--ranks", type=int, default=2,
                       help="migration: slm ranks (default 2)")
    bench.add_argument("--memory-mb", type=float, default=None,
                       help="per-rank state size in MB (default 100 "
                            "for migration, 16 for store)")
    bench.add_argument("--max-pause-ratio", type=float, default=0.25,
                       help="migration: required pre-copy pause as a "
                            "fraction of stop-and-copy (default 0.25)")
    bench.add_argument("--app-nodes", type=int, default=5,
                       help="store: application node count (default 5)")
    bench.add_argument("--min-scaling", type=float, default=3.0,
                       help="store: required restore bandwidth growth "
                            "from rf=1 to the largest rf (default 3.0)")
    bench.add_argument("--overhead-limit", type=float, default=0.03,
                       help="mc: max fractional slowdown the oracle "
                            "hook may add to the no-oracle scheduler "
                            "fast path (default 0.03)")
    bench.add_argument("--p99-limit", type=float, default=1.0,
                       help="slo: max client-observed p99 latency in "
                            "simulated seconds (default 1.0)")
    bench.set_defaults(fn=_cmd_bench)

    lint = sub.add_parser(
        "lint", parents=[common],
        help="CruzSan determinism lint (CRZ001-CRZ008)")
    lint.add_argument("paths", nargs="*",
                      help="files/directories to lint "
                           "(default: the repro source tree)")
    lint.set_defaults(fn=_cmd_lint)

    sanitize = sub.add_parser(
        "sanitize", parents=[common],
        help="run a workload under the runtime invariant sanitizer")
    from repro.analysis.sanitize import WORKLOADS
    sanitize.add_argument("workload", choices=sorted(WORKLOADS),
                          help="named workload to drive")
    sanitize.set_defaults(fn=_cmd_sanitize)

    analyze = sub.add_parser(
        "analyze", parents=[common],
        help="offline analyses (schedule-race detection)")
    analyze.add_argument("check", choices=["determinism"],
                         help="which analysis to run")
    analyze.add_argument("--nodes", type=int, default=2,
                         help="fig5-small cluster size (default 2)")
    analyze.add_argument("--rounds", type=int, default=2,
                         help="checkpoint rounds per run (default 2)")
    analyze.add_argument("--seeds", type=int, default=1,
                         help="sweep this many RNG seeds (default 1)")
    analyze.set_defaults(fn=_cmd_analyze)

    mc = sub.add_parser(
        "mc", parents=[common],
        help="CruzMC: exhaustively explore bounded schedule and fault "
             "interleavings of the coordination protocol")
    mc.add_argument("--nodes", type=int, default=2,
                    help="application node count (default 2)")
    mc.add_argument("--rounds", type=int, default=1,
                    help="checkpoint rounds per run (default 1)")
    mc.add_argument("--max-states", type=int, default=2000,
                    help="run budget: stop after this many explored "
                         "states (default 2000)")
    mc.add_argument("--max-depth", type=int, default=200,
                    help="choice-point depth bound per run (default 200)")
    mc.add_argument("--branch-scope", choices=["control", "all"],
                    default="control",
                    help="branch only control-plane ties (default) or "
                         "every tie")
    mc.add_argument("--no-por", action="store_true",
                    help="disable partial-order reduction (ample sets "
                         "+ sleep sets); explore the raw tie space")
    mc.add_argument("--faults", default="",
                    help="comma list of fault modes to branch on: "
                         "drop,dup,crash,partition (default: none)")
    mc.add_argument("--fault-budget", type=int, default=1,
                    help="max injected faults per run (default 1)")
    mc.add_argument("--fault-kinds", default="",
                    help="comma list of message kinds eligible for "
                         "faults (default CHECKPOINT,DONE,CONTINUE,"
                         "CONTINUE_DONE)")
    mc.add_argument("--dup-delay", type=float, default=2e-3,
                    help="redelivery delay for duplicated datagrams "
                         "in seconds (default 0.002)")
    mc.add_argument("--settle", type=float, default=0.5,
                    help="post-round settle window in seconds before "
                         "the end-state checks (default 0.5)")
    mc.add_argument("--inject-bug", action="append", default=[],
                    metavar="NAME",
                    help="enable a seeded mutation from KNOWN_BUGS "
                         "(counterexample self-test)")
    mc.add_argument("--keep-going", action="store_true",
                    help="keep exploring after the first violation")
    mc.add_argument("--trace-out", default="",
                    help="write the minimized counterexample trace "
                         "JSON here")
    mc.add_argument("--replay", default="", metavar="TRACE",
                    help="re-execute a counterexample trace and verify "
                         "it reproduces bit-identically")
    mc.set_defaults(fn=_cmd_mc)

    serve = sub.add_parser(
        "serve", parents=[common],
        help="sessionful traffic under SLO: proxy + replicated kv "
             "fleet riding out checkpoints, failover, migration and "
             "canary restores")
    serve.add_argument("--backends", type=int, default=3,
                       help="replicated kv backends (default 3)")
    serve.add_argument("--clients", type=int, default=4,
                       help="concurrent session clients (default 4)")
    serve.add_argument("--sessions", type=int, default=8,
                       help="sessions per client (default 8)")
    serve.add_argument("--requests-per-session", type=int, default=5,
                       help="requests per session (default 5)")
    serve.add_argument("--rounds", type=int, default=2,
                       help="coordinated checkpoint rounds under load "
                            "(default 2)")
    serve.add_argument("--failover", action="store_true",
                       help="crash a backend node mid-traffic; the "
                            "supervisor must restore it")
    serve.add_argument("--migrate", action="store_true",
                       help="live-migrate a backend pod mid-traffic")
    serve.add_argument("--canary", action="store_true",
                       help="run a canary rolling restore "
                            "(drain/restore/verify/promote)")
    serve.add_argument("--kill-backend", action="store_true",
                       help="chaos: silently destroy a backend pod "
                            "mid-traffic")
    serve.add_argument("--canary-divergence", action="store_true",
                       help="chaos: corrupt the restored canary so the "
                            "read-back probe fails and it rolls back")
    serve.add_argument("--seed", type=int, default=7,
                       help="workload seed (default 7)")
    serve.add_argument("--check-determinism", action="store_true",
                       help="run fifo and lifo tie-break and diff the "
                            "client-visible reports")
    serve.set_defaults(fn=_cmd_serve)

    chaos = sub.add_parser(
        "chaos", parents=[common],
        help="seeded node-crash chaos run with automatic failover")
    chaos.add_argument("--seed", type=int, default=7,
                       help="chaos schedule seed (default 7)")
    chaos.add_argument("--crash-node", type=int, default=0,
                       help="application node to crash (default 0)")
    chaos.add_argument("--no-flap", action="store_true",
                       help="skip the survivor link flap")
    chaos.add_argument("--evict-on-suspect", action="store_true",
                       help="mute a healthy node's heartbeats instead "
                            "of crashing it; its pods must be live-"
                            "migrated away before the declaration")
    chaos.add_argument("--kill-replica", action="store_true",
                       help="crash a replica-only storage node mid-"
                            "round at rf=2: no failover may fire, "
                            "every committed version must stay "
                            "reconstructible, and re-replication must "
                            "heal the chunk space")
    chaos.add_argument("--kill-backend", action="store_true",
                       help="destroy a serving-fleet backend pod mid-"
                            "traffic: the proxy must shed/retry within "
                            "the SLO and log-replay the restored "
                            "replica back to consistency")
    chaos.add_argument("--check-determinism", action="store_true",
                       help="also replay under LIFO tie-breaking and "
                            "diff the fingerprints")
    chaos.set_defaults(fn=_cmd_chaos)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
