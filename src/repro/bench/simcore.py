"""Events-per-second benchmark for the discrete-event core.

Two components, both at 128-node / 2000-flow scale, each driven through
both scheduler presets (``fast``: calendar event queue + slotted timer
wheel + batched link delivery + lightweight callbacks; ``legacy``: the
pre-refactor discipline — monolithic heap, an Event per timer arm, leaky
cancellation, one arrival event per frame):

* ``storm`` — the scheduler-isolating workload. It replays, through the
  raw scheduler API, the exact per-segment timer trace the TCP stack
  generates (RTO leaky-cancel + fresh re-arm on every ACK, a delayed-ACK
  timer armed every other segment and almost always cancelled by the
  next transmission, an inter-segment pacing event), plus per-node
  heartbeat timers. This is the pattern the refactor targets: under the
  pre-refactor discipline every one of these ops is an Event allocation
  plus heap traffic and every cancel leaves a dead entry to pop, while
  the new core turns them into O(1) wheel ops and bare callbacks. The
  headline speedup is measured here.
* ``flows`` — the end-to-end check: the same scale as a real TCP mesh,
  2000 staggered transfers across 128 nodes. Wall-clock here is
  dominated by modelled TCP segment processing that both schedulers pay
  identically, so its speedup is structurally modest; it is recorded to
  keep the benchmark honest about end-to-end impact and to catch
  regressions in the batched delivery path.

``python -m repro bench simcore --save`` records the run to
``benchmarks/BENCH_simcore.json``; ``--compare`` re-runs and fails when
the measured speedups fall below the floor or drop more than the
tolerance below the committed baseline. The guard is ratio-based on
purpose: a speedup is comparable across machines, absolute wall-clock
is not.

This module measures wall-clock by design — it is the one place in
``src/repro`` (besides the pytest-benchmark harness) that legitimately
needs a real clock, hence the CRZ001 suppressions below.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional

DEFAULT_BASELINE = "benchmarks/BENCH_simcore.json"
DEFAULT_NODES = 128
DEFAULT_FLOWS = 2000
DEFAULT_PAYLOAD = 8192
#: Timer-churn "segments" per flow in the storm component — sized like a
#: fig5-style long-lived mesh connection, not a one-shot transfer.
DEFAULT_SEGMENTS = 100
#: Start-stagger windows (simulated seconds). The storm spreads flow
#: starts over a full second so the pre-refactor heap accumulates its
#: realistic worst case of leaked-then-popped timer entries.
DEFAULT_STORM_WINDOW_S = 1.0
DEFAULT_FLOWS_WINDOW_S = 0.25
#: Interrupt-moderation analogue for the fast preset's batched links.
DEFAULT_COALESCE_S = 2.0 ** -15
#: Minimum acceptable fast/legacy storm speedup (the headline claim).
DEFAULT_MIN_SPEEDUP = 5.0
#: Allowed relative drop below the committed baseline's speedups.
DEFAULT_TOLERANCE = 0.30

#: TCP timer constants mirrored by the storm (see tcp/connection.py).
STORM_RTO_S = 1.0
STORM_DELACK_S = 0.2
STORM_ACK_GAP_S = 0.001
STORM_HEARTBEAT_S = 0.1


def _wire_flows(cluster, n_flows: int, payload_bytes: int,
                window_s: float = DEFAULT_FLOWS_WINDOW_S) -> Dict[str, int]:
    """Schedule ``n_flows`` TCP transfers across the cluster's nodes.

    Flow ``k`` opens from node ``k % n`` to a deterministically spread
    peer, pushes ``payload_bytes`` and counts itself completed once the
    sink has read every byte. Starts are staggered across ``window_s``
    of simulated time so connection churn overlaps data transfer —
    the regime the paper's coordination rounds live in.
    """
    state = {"completed": 0}
    nodes = cluster.nodes
    n = len(nodes)
    payload = b"\x5a" * payload_bytes

    def sink_for(listener):
        def on_accept(event):
            connection = event.value
            received = [0]

            def drain():
                if received[0] >= payload_bytes:
                    return      # already counted; late FIN/close wakeups
                chunk = connection.read(1 << 20)
                received[0] += len(chunk)
                if received[0] >= payload_bytes:
                    state["completed"] += 1
                    connection.close()

            connection.on_readable.append(drain)
            drain()

        listener.accept().callbacks.append(on_accept)

    def source_for(connection):
        remaining = [payload]

        def pump():
            while remaining[0] and connection.send_space > 0:
                accepted = connection.send(remaining[0][:4096])
                remaining[0] = remaining[0][accepted:]

        connection.on_writable.append(pump)
        connection.established_event.callbacks.append(lambda _ev: pump())

    def start_flow(k: int) -> None:
        src = nodes[k % n]
        dst = nodes[(k + 1 + (k * 7) // n) % n]
        if dst is src:
            dst = nodes[(k + 1) % n]
        port = 20000 + k
        listener = dst.stack.tcp.listen(dst.stack.eth0.ip, port)
        sink_for(listener)
        connection = src.stack.tcp.connect(
            src.stack.eth0.ip, dst.stack.eth0.ip, port)
        source_for(connection)

    for k in range(n_flows):
        cluster.sim.call_at(window_s * k / max(n_flows, 1), start_flow, k)
    return state


def run_storm(scheduler: str,
              n_nodes: int = DEFAULT_NODES,
              n_flows: int = DEFAULT_FLOWS,
              segments_per_flow: int = DEFAULT_SEGMENTS,
              window_s: float = DEFAULT_STORM_WINDOW_S,
              driver=None) -> Dict[str, object]:
    """Replay the TCP stack's timer trace through the raw scheduler.

    Each of ``n_flows`` flows performs ``segments_per_flow`` segment
    exchanges 1 ms apart: every "ACK" cancels and re-arms the 1 s RTO
    timer (the pre-refactor discipline leaks the cancelled entry into
    the heap), every other segment arms a 200 ms delayed-ACK timer that
    the next transmission cancels, and the pacing event itself is a
    scheduler op (an Event under ``legacy``, a bare callback under
    ``fast``). Each of ``n_nodes`` nodes additionally ticks a 100 ms
    heartbeat, like the failover detector. The run extends past the
    last RTO deadline so the legacy heap pays for popping its dead
    entries, exactly as the pre-refactor simulator did.
    """
    from repro.sim.core import Simulator
    from repro.sim.timers import timers_for

    fast = scheduler == "fast"
    sim = Simulator(queue="calendar" if fast else "heap",
                    slotted_timers=fast, lightweight=fast,
                    leaky_cancel=not fast)
    timers = timers_for(sim)
    lazy = timers.LAZY_RESTART
    counts = {"rto_fired": 0, "delack_fired": 0, "flows_done": 0,
              "heartbeats": 0}

    def on_delack() -> None:
        counts["delack_fired"] += 1

    def start_flow(k: int) -> None:
        rto = [None]
        rto_deadline = [0.0]
        delack = [None]
        sent = [0]

        def on_rto() -> None:
            remaining = rto_deadline[0] - sim.now
            if remaining > 1e-12:
                # Lazy restart: the deadline moved while the slot
                # stayed armed; re-arm for the remainder.
                rto[0] = timers.after(remaining, on_rto)
                return
            counts["rto_fired"] += 1

        def segment() -> None:
            sent[0] += 1
            # RTO restart per "ACK" — exactly connection.py's
            # _restart_rtx_timer: a deadline bump under the wheel, a
            # leaky cancel plus a fresh event under the old discipline.
            handle = rto[0]
            if lazy and handle is not None and handle.active:
                rto_deadline[0] = sim.now + STORM_RTO_S
            else:
                if handle is not None and handle.active:
                    handle.cancel()
                rto_deadline[0] = sim.now + STORM_RTO_S
                rto[0] = timers.after(STORM_RTO_S, on_rto)
            if sent[0] % 2 == 0:
                pending = delack[0]
                if pending is not None and pending.active:
                    pending.cancel()
                delack[0] = timers.after(STORM_DELACK_S, on_delack)
            if sent[0] < segments_per_flow:
                sim.defer(STORM_ACK_GAP_S, segment)
            else:
                if rto[0].active:
                    rto[0].cancel()
                counts["flows_done"] += 1

        segment()

    active_until = window_s + segments_per_flow * STORM_ACK_GAP_S

    def heartbeat() -> None:
        counts["heartbeats"] += 1
        if sim.now < active_until:
            timers.after(STORM_HEARTBEAT_S, heartbeat)

    for node in range(n_nodes):
        sim.call_at(node * STORM_HEARTBEAT_S / n_nodes, heartbeat)
    for k in range(n_flows):
        sim.call_at(window_s * k / max(n_flows, 1), start_flow, k)

    # Past the last possible RTO/delayed-ACK deadline: the legacy heap
    # must drain every leaked entry before the clock can get here.
    horizon = active_until + STORM_RTO_S + STORM_DELACK_S + 0.05
    # ``driver`` lets bench/mc.py time an alternative event loop over the
    # byte-identical workload (its oracle-hook overhead guard).
    started = time.perf_counter()  # cruz: noqa[CRZ001] benchmark timing
    if driver is None:
        sim.run(until=horizon)
    else:
        driver(sim, horizon)
    wall_s = time.perf_counter() - started  # cruz: noqa[CRZ001] bench
    stats = sim.stats()
    popped = int(stats["popped"])
    return {
        "scheduler": scheduler,
        "flows_completed": counts["flows_done"],
        "rto_fired": counts["rto_fired"],
        "delack_fired": counts["delack_fired"],
        "heartbeats": counts["heartbeats"],
        "wall_s": round(wall_s, 4),
        "events_popped": popped,
        "events_pushed": int(stats["pushed"]),
        "events_per_sec": round(popped / wall_s) if wall_s > 0 else 0,
        "queue": stats["kind"],
        "timers": timers.KIND,
    }


def run_simcore(scheduler: str,
                n_nodes: int = DEFAULT_NODES,
                n_flows: int = DEFAULT_FLOWS,
                payload_bytes: int = DEFAULT_PAYLOAD,
                coalesce_s: float = DEFAULT_COALESCE_S,
                limit_s: float = 120.0) -> Dict[str, object]:
    """Run the mesh under one scheduler preset; return its measurements.

    Only the event-loop phase is timed — cluster construction and flow
    wiring happen before the clock starts.
    """
    from repro.cluster import Cluster

    cluster = Cluster(n_nodes, trace_enabled=False, scheduler=scheduler,
                      link_coalesce_s=coalesce_s if scheduler == "fast"
                      else 0.0)
    state = _wire_flows(cluster, n_flows, payload_bytes)
    target = n_flows
    started = time.perf_counter()  # cruz: noqa[CRZ001] benchmark timing
    cluster.run_until(lambda: state["completed"] >= target, limit=limit_s)
    wall_s = time.perf_counter() - started  # cruz: noqa[CRZ001] bench
    stats = cluster.scheduler_stats()
    popped = int(stats["popped"])
    return {
        "scheduler": scheduler,
        "flows_completed": state["completed"],
        "sim_time_s": round(cluster.sim.now, 6),
        "wall_s": round(wall_s, 4),
        "events_popped": popped,
        "events_pushed": int(stats["pushed"]),
        "events_per_sec": round(popped / wall_s) if wall_s > 0 else 0,
        "queue": stats["kind"],
        "timers": stats.get("timers", {}).get("kind", "none"),
    }


#: Pre-refactor (seed-commit) measurements of the *identical* workloads,
#: taken once against the repo's growth seed (commit 59914cb) on the
#: same machine that produced the committed baseline. They are recorded
#: for transparency — the reproducible baseline CI compares against is
#: the in-tree ``legacy`` preset, which re-creates the seed's scheduler
#: discipline (monolithic heap, Event per timer arm, leaky cancel,
#: per-frame delivery) inside the current code.
PRE_REFACTOR = {
    "commit": "59914cb",
    "storm_wall_s": 3.3295,
    "flows_wall_s": 10.636,
    "note": ("measured once at the seed commit on the baseline-recording"
             " machine; not re-run by --compare"),
}


def _component(results: Dict[str, Dict[str, object]]) -> Dict[str, object]:
    """Fold a {legacy, fast} result pair into a component record."""
    fast, legacy = results["fast"], results["legacy"]
    speedup = (legacy["wall_s"] / fast["wall_s"]
               if fast["wall_s"] > 0 else float("inf"))
    event_ratio = (legacy["events_popped"] / fast["events_popped"]
                   if fast["events_popped"] else float("inf"))
    return {
        "results": results,
        "speedup": round(speedup, 2),
        "event_ratio": round(event_ratio, 2),
    }


def run_suite(n_nodes: int = DEFAULT_NODES,
              n_flows: int = DEFAULT_FLOWS,
              segments_per_flow: int = DEFAULT_SEGMENTS,
              payload_bytes: int = DEFAULT_PAYLOAD,
              coalesce_s: float = DEFAULT_COALESCE_S) -> Dict[str, object]:
    """Measure both components under both presets.

    The headline ``speedup`` is the storm component's (the scheduler-
    isolating workload the refactor targets); ``flows_speedup`` records
    the honest end-to-end number alongside it.
    """
    storm_results = {}
    flow_results = {}
    for scheduler in ("legacy", "fast"):
        print(f"simcore: storm under {scheduler} scheduler "
              f"({n_nodes} nodes, {n_flows} flows, "
              f"{segments_per_flow} segments)...", flush=True)
        storm_results[scheduler] = run_storm(
            scheduler, n_nodes=n_nodes, n_flows=n_flows,
            segments_per_flow=segments_per_flow)
    for scheduler in ("legacy", "fast"):
        print(f"simcore: flows under {scheduler} scheduler "
              f"({n_nodes} nodes, {n_flows} flows)...", flush=True)
        flow_results[scheduler] = run_simcore(
            scheduler, n_nodes=n_nodes, n_flows=n_flows,
            payload_bytes=payload_bytes, coalesce_s=coalesce_s)
    storm = _component(storm_results)
    flows = _component(flow_results)
    return {
        "suite": "simcore",
        "workload": {
            "nodes": n_nodes, "flows": n_flows,
            "segments_per_flow": segments_per_flow,
            "storm_window_s": DEFAULT_STORM_WINDOW_S,
            "payload_bytes": payload_bytes, "coalesce_s": coalesce_s,
        },
        "storm": storm,
        "flows": flows,
        "speedup": storm["speedup"],
        "flows_speedup": flows["speedup"],
        "pre_refactor": dict(PRE_REFACTOR),
    }


def _render_rows(component: Dict[str, object],
                 label: str) -> List[str]:
    lines = []
    for name in ("legacy", "fast"):
        row = component["results"][name]
        sim_t = row.get("sim_time_s")
        tail = (f"sim t={sim_t:.3f}s" if sim_t is not None
                else f"{row['rto_fired']} RTO fired")
        lines.append(
            f"{label:>5}/{name:<6}: {row['events_popped']:>9} events in "
            f"{row['wall_s']:7.3f}s wall = {row['events_per_sec']:>9} "
            f"events/s  ({row['flows_completed']} flows, {tail})")
    lines.append(
        f"{label:>5} speedup: {component['speedup']:.2f}x wall-clock, "
        f"{component['event_ratio']:.2f}x fewer events")
    return lines


def render(report: Dict[str, object]) -> List[str]:
    lines = _render_rows(report["storm"], "storm")
    lines += _render_rows(report["flows"], "flows")
    pre = report.get("pre_refactor")
    if pre:
        lines.append(
            f"seed ({pre['commit']}): storm {pre['storm_wall_s']:.3f}s, "
            f"flows {pre['flows_wall_s']:.3f}s wall (recorded once, "
            f"see note in baseline)")
    return lines


def save_baseline(baseline_path: str = DEFAULT_BASELINE,
                  **workload) -> int:
    from repro.bench.harness import baseline_cli
    return baseline_cli(
        baseline_path=baseline_path, save=True, suite="simcore",
        run=lambda: run_suite(**workload),
        evaluate=evaluate,
        render=lambda report, _baseline: render(report))


def evaluate(report: Dict[str, object],
             baseline: Optional[Dict[str, object]],
             min_speedup: float = DEFAULT_MIN_SPEEDUP,
             tolerance: float = DEFAULT_TOLERANCE) -> List[str]:
    """Pure comparison: list of failure messages (empty = pass).

    The ``min_speedup`` floor applies to the storm speedup of *this*
    run. The baseline comparison is ratio-based (speedups travel across
    machines, wall-clock does not) and only applies when the run's
    workload matches the committed baseline's — a reduced-scale smoke
    run is guarded by its own explicit floor instead.
    """
    from repro.bench.harness import workload_matches

    failures = []
    speedup = float(report["speedup"])
    if speedup < min_speedup:
        failures.append(
            f"storm: fast scheduler is only {speedup:.2f}x legacy "
            f"(floor {min_speedup:.1f}x)")
    if workload_matches(report, baseline, "simcore"):
        for key, label in (("speedup", "storm"),
                           ("flows_speedup", "flows")):
            recorded = float(baseline.get(key, 0.0))
            measured = float(report.get(key, 0.0))
            floor = recorded * (1.0 - tolerance)
            if measured < floor:
                failures.append(
                    f"{label} speedup {measured:.2f}x dropped more "
                    f"than {tolerance:.0%} below the committed "
                    f"baseline's {recorded:.2f}x")
    workload = report["workload"]
    for label in ("storm", "flows"):
        for name in ("legacy", "fast"):
            row = report[label]["results"][name]
            if row["flows_completed"] < workload["flows"]:
                failures.append(
                    f"{label}/{name} completed {row['flows_completed']} "
                    f"of {workload['flows']} flows")
    return failures


def check(baseline_path: str = DEFAULT_BASELINE,
          min_speedup: float = DEFAULT_MIN_SPEEDUP,
          tolerance: float = DEFAULT_TOLERANCE,
          **workload) -> int:
    from repro.bench.harness import baseline_cli
    return baseline_cli(
        baseline_path=baseline_path, save=False, suite="simcore",
        run=lambda: run_suite(**workload),
        evaluate=lambda report, baseline: evaluate(
            report, baseline, min_speedup=min_speedup,
            tolerance=tolerance),
        render=lambda report, _baseline: render(report))
