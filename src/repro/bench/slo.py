"""``repro bench slo``: serving-under-SLO floors for the proxy fleet.

The serving gauntlet (:func:`repro.serve.harness.run_serve`) drives
sessionful clients through the kv proxy while the fleet absorbs every
disruption Cruz offers — coordinated checkpoint rounds, a backend node
crash with supervised failover, a live migration, a silent pod kill,
and a canary rolling restore. This suite runs the whole gauntlet twice
(fifo and lifo event tie-break) at reduced scale and enforces the SLO
claims ISSUE 10 makes:

* **zero client-visible errors** — sheds and retries are allowed (and
  counted separately), but every session request must eventually get an
  ``ok`` answer and every client must exit 0;
* **bounded p99** — overall and inside each disruption window, request
  latency stays under ``--p99-limit`` (simulated seconds);
* **replica consistency** — all backends end bit-identical;
* **determinism** — the fifo and lifo reports match field for field.

All quantities are simulated seconds, so they travel across machines.
``--save`` records the run to ``benchmarks/BENCH_slo.json``;
``--compare`` re-runs and fails on the explicit floors or — when the
workload matches the committed baseline — on p99 drift beyond the
tolerance.
"""

from __future__ import annotations

from typing import Dict, List, Optional

DEFAULT_BASELINE = "benchmarks/BENCH_slo.json"
DEFAULT_BACKENDS = 3
DEFAULT_CLIENTS = 4
DEFAULT_SESSIONS = 8
DEFAULT_REQUESTS = 5
DEFAULT_ROUNDS = 2
DEFAULT_SEED = 7
#: Client think time, stretched so traffic spans every disruption
#: window (the gauntlet runs ~6 simulated seconds end to end).
DEFAULT_THINK_S = 0.14
#: Hard ceiling on client-observed p99 latency, simulated seconds.
DEFAULT_P99_LIMIT_S = 1.0
#: Allowed relative p99 growth over the committed baseline.
DEFAULT_TOLERANCE = 0.25


def run_suite(backends: int = DEFAULT_BACKENDS,
              clients: int = DEFAULT_CLIENTS,
              sessions: int = DEFAULT_SESSIONS,
              requests_per_session: int = DEFAULT_REQUESTS,
              rounds: int = DEFAULT_ROUNDS,
              seed: int = DEFAULT_SEED,
              think_time_s: float = DEFAULT_THINK_S) -> Dict[str, object]:
    """The full gauntlet, fifo + lifo, with every disruption enabled."""
    from repro.serve.harness import serve_determinism

    print(f"slo: serving gauntlet ({backends} backends, {clients} "
          f"clients, {sessions}x{requests_per_session} requests, "
          f"{rounds} round(s), failover+migrate+kill+canary, "
          f"fifo vs lifo)...", flush=True)
    result = serve_determinism(
        backends=backends, clients=clients, sessions=sessions,
        requests_per_session=requests_per_session, rounds=rounds,
        failover=True, migrate=True, canary=True, kill_backend=True,
        seed=seed, think_time_s=think_time_s)
    fifo = result["fifo"]
    return {
        "suite": "slo",
        "workload": {
            "backends": backends, "clients": clients,
            "sessions": sessions,
            "requests_per_session": requests_per_session,
            "rounds": rounds, "seed": seed,
            "think_time_s": think_time_s,
        },
        "ok": fifo["ok"],
        "client_exits": fifo["client_exits"],
        "client_errors": fifo["client_errors"],
        "replicas_consistent": fifo["replicas_consistent"],
        "store_digest": fifo["store_digest"],
        "slo": fifo["slo"],
        "proxy": fifo["proxy"],
        "canary": fifo["canary"],
        "deterministic": result["deterministic"],
        "divergences": result["diffs"],
        "sim_time_s": fifo["sim_time_s"],
    }


def render(report: Dict[str, object]) -> List[str]:
    slo = report["slo"]
    overall = slo["overall"]
    lines = [
        f"requests: {overall['requests']} from {slo['clients']} clients  "
        f"p50 {overall['p50_s'] * 1e3:7.2f}ms  "
        f"p99 {overall['p99_s'] * 1e3:7.2f}ms  "
        f"max {overall['max_s'] * 1e3:7.2f}ms",
        f"status: {overall['by_status']}  "
        f"extra attempts: {overall['extra_attempts']}",
    ]
    for window in slo["windows"]:
        p99 = window["p99_s"]
        p99_txt = f"{p99 * 1e3:7.2f}ms" if p99 is not None else "   (idle)"
        lines.append(f"  {window['window']:>14}: "
                     f"{window['requests']:3d} req  p99 {p99_txt}  "
                     f"{window['by_status']}")
    counters = slo["counters"]
    lines.append(f"client counters: {counters}")
    canary = report["canary"] or {}
    lines.append(f"canary: promoted={canary.get('promoted')} "
                 f"steps={canary.get('steps')}")
    lines.append(f"replicas consistent: {report['replicas_consistent']}")
    if report["divergences"]:
        lines.append(f"tie-break divergences: {report['divergences']}")
    else:
        lines.append("tie-break: fifo and lifo runs are bit-identical")
    return lines


def evaluate(report: Dict[str, object],
             baseline: Optional[Dict[str, object]],
             p99_limit_s: float = DEFAULT_P99_LIMIT_S,
             tolerance: float = DEFAULT_TOLERANCE) -> List[str]:
    """Pure comparison: list of failure messages (empty = pass)."""
    from repro.bench.harness import workload_matches

    failures = []
    if report["client_errors"]:
        failures.append(f"{report['client_errors']} client-visible "
                        f"error(s); the SLO allows zero")
    bad_exits = [code for code in report["client_exits"] if code != 0]
    if bad_exits:
        failures.append(f"{len(bad_exits)} client(s) exited non-zero: "
                        f"{bad_exits}")
    if not report["replicas_consistent"]:
        failures.append("backend replicas diverged after the gauntlet")
    overall = report["slo"]["overall"]
    p99 = overall["p99_s"]
    if p99 is None or p99 > p99_limit_s:
        failures.append(f"overall p99 {p99}s breaches the "
                        f"{p99_limit_s}s ceiling")
    for window in report["slo"]["windows"]:
        wp99 = window["p99_s"]
        if wp99 is not None and wp99 > p99_limit_s:
            failures.append(
                f"window {window['window']!r} p99 {wp99:.3f}s breaches "
                f"the {p99_limit_s}s ceiling")
    canary = report["canary"] or {}
    if not canary.get("promoted"):
        failures.append(f"canary restore was not promoted: {canary}")
    if not report["deterministic"]:
        failures.append(
            f"fifo/lifo divergence: {report['divergences'][:3]}")
    if workload_matches(report, baseline, "slo"):
        recorded = (baseline.get("slo", {}).get("overall", {})
                    .get("p99_s"))
        if recorded and p99 is not None:
            ceiling = float(recorded) * (1.0 + tolerance)
            if p99 > ceiling:
                failures.append(
                    f"p99 {p99:.3f}s grew more than {tolerance:.0%} "
                    f"over the committed baseline's {recorded:.3f}s")
    return failures


def save_baseline(baseline_path: str = DEFAULT_BASELINE,
                  **workload) -> int:
    from repro.bench.harness import baseline_cli
    return baseline_cli(
        baseline_path=baseline_path, save=True, suite="slo",
        run=lambda: run_suite(**workload),
        evaluate=evaluate,
        render=lambda report, _baseline: render(report),
        vet_before_save=True)


def check(baseline_path: str = DEFAULT_BASELINE,
          p99_limit_s: float = DEFAULT_P99_LIMIT_S,
          tolerance: float = DEFAULT_TOLERANCE,
          **workload) -> int:
    from repro.bench.harness import baseline_cli
    return baseline_cli(
        baseline_path=baseline_path, save=False, suite="slo",
        run=lambda: run_suite(**workload),
        evaluate=lambda report, baseline: evaluate(
            report, baseline, p99_limit_s=p99_limit_s,
            tolerance=tolerance),
        render=lambda report, _baseline: render(report))
