"""The per-node Checkpoint Agent (Fig. 2).

The Agent runs outside any pod (footnote 4: its own traffic never matches
the pod's netfilter rule, so coordination is never self-blocked). On
``<checkpoint>`` it:

1. configures the packet filter to silently drop all traffic to/from the
   local pod,
2. stops the pod's processes and takes the local checkpoint,
3. reports ``<done>``, waits for ``<continue>``,
4. resumes the pod, removes the filter, reports ``<continue-done>``.

With the Fig. 4 optimisation it instead reports ``<comm-disabled>`` right
after step 1 and resumes on its own as soon as both its local save is done
and the coordinator has confirmed every node disabled communication.

The control plane is reliable and idempotent: messages arrive through a
:class:`~repro.cruz.protocol.ReliableEndpoint` (ACK + retransmit +
duplicate suppression), epochs at or below the last locally completed
round are ignored outright, an ``ABORT`` that outruns its own
``CHECKPOINT`` poisons the epoch so the late checkpoint request is
refused, and every abort path removes the pod's netfilter rule before the
round is considered finished. Unilateral aborts (coordinator silence) are
recorded in the shared-store round WAL so a recovering coordinator can
never commit — or resurrect — that epoch.
"""

from __future__ import annotations

from typing import Dict, Generator, List, Optional, Set, Tuple

from repro.cruz import protocol
from repro.cruz.netstate import CruzSocketCodec
from repro.cruz.protocol import (
    AGENT_PORT,
    COORDINATOR_PORT,
    SUPERVISOR_PORT,
    ControlMessage,
    ReliableEndpoint,
    RetryPolicy,
)
from repro.cruz.storage import ImageStore
from repro.errors import CoordinationError
from repro.net.addresses import Ipv4Address
from repro.sim.core import Interrupt
from repro.simos.kernel import Node
from repro.zap.checkpoint import CheckpointEngine, scrub_pod_network
from repro.zap.pod import Pod
from repro.zap.restart import RestartEngine
from repro.zap.socket_codec import SocketCodec
from repro.zap.virtualization import uninstall_pod

#: Completed-epoch bookkeeping kept around for late ABORT undo.
_VERSION_HISTORY = 16


class CheckpointAgent:
    """One agent per application node."""

    def __init__(self, node: Node, store: ImageStore,
                 codec: Optional[SocketCodec] = None,
                 continue_timeout_s: float = 120.0,
                 retry: Optional[RetryPolicy] = None,
                 faults=None, mc_bugs=frozenset()):
        self.node = node
        self.store = store
        #: Model-checker mutation flags (see ``repro.analysis.mc``);
        #: "stale-replay" disables the stale-epoch guard below *and* the
        #: endpoint's duplicate suppression, re-opening the hole where a
        #: replayed CHECKPOINT re-runs a finished round.
        self.mc_bugs = frozenset(mc_bugs)
        #: Coordinator-failure tolerance (§5.1: "can be extended in a
        #: straightforward way"): if <continue> never arrives, the agent
        #: aborts unilaterally — resumes its pod, re-enables
        #: communication, discards the uncommitted image, and records the
        #: abort in the shared round WAL.
        self.continue_timeout_s = continue_timeout_s
        self.unilateral_aborts = 0
        codec = codec if codec is not None else CruzSocketCodec()
        # The engine saves through the chunk store itself, so serialization
        # pipelines with the disk write and written_bytes is measured.
        self.checkpoint_engine = CheckpointEngine(codec, store=store)
        self.restart_engine = RestartEngine(codec)
        self.pods: Dict[str, Pod] = {}
        #: epoch -> {"continue": Event, "aborted": bool, "epoch": int}
        self._rounds: Dict[int, Dict] = {}
        #: Highest epoch this agent finished (committed or aborted);
        #: stale control messages at or below it are ignored.
        self.last_completed_epoch = 0
        #: Epochs whose ABORT arrived before (or without) the round
        #: request — a late CHECKPOINT/RESTART for them is refused.
        self._aborted_epochs: Set[int] = set()
        #: epoch -> (pod_name, version) committed locally, kept so a late
        #: ABORT (e.g. from a recovering coordinator) can still undo it.
        self._epoch_versions: Dict[int, Tuple[str, int]] = {}
        self.messages_handled = 0
        self.messages_sent = 0
        #: Failure injection: a crashed agent ignores all traffic (and,
        #: being crashed, sends no ACKs either).
        self.crashed = False
        #: Liveness beacons sent (see :meth:`start_heartbeats`).
        self.heartbeats_sent = 0
        #: Failure injection: a muted agent stays fully alive (pods run,
        #: control plane answers) but stops beating — a partitioned or
        #: wedged liveness path, the supervisor's false-suspicion case.
        self.mute_heartbeats = False
        self._heartbeat_seq = 0
        #: In-flight dispatch/save simulation processes, interrupted on
        #: :meth:`crash` so a powered-off node stops mid-operation. A
        #: list (not a set) so the interrupt order is reproducible.
        self._tasks: List = []
        self.endpoint = ReliableEndpoint(
            node, AGENT_PORT, self._on_message, policy=retry,
            faults=faults, is_alive=lambda: not self.crashed,
            name=f"agent@{node.name}", mc_bugs=self.mc_bugs)

    def register_pod(self, pod: Pod) -> None:
        self.pods[pod.name] = pod

    def unregister_pod(self, pod_name: str) -> Optional[Pod]:
        return self.pods.pop(pod_name, None)

    # -- liveness ----------------------------------------------------------

    def start_heartbeats(self, supervisor_ip: Ipv4Address,
                         interval_s: float, jitter_s: float, rng) -> None:
        """Send periodic fire-and-forget liveness beacons.

        Each beat waits ``interval_s`` plus a seeded uniform
        ``[0, jitter_s)`` draw, so beats from different nodes never
        align on the same simulator instant (which would make event
        ordering tiebreak-sensitive). A crashed agent skips sends but
        keeps the loop alive, so a revived node resumes beating without
        new plumbing.
        """
        self.node.sim.process(
            self._heartbeat_loop(supervisor_ip, interval_s, jitter_s,
                                 rng),
            name=f"heartbeat@{self.node.name}")

    def _heartbeat_loop(self, supervisor_ip: Ipv4Address,
                        interval_s: float, jitter_s: float,
                        rng) -> Generator:
        sim = self.node.sim
        while True:
            yield sim.timeout(interval_s + rng.random() * jitter_s)
            if self.crashed or self.mute_heartbeats:
                continue
            self._heartbeat_seq += 1
            self.heartbeats_sent += 1
            self.endpoint.send_unreliable(
                supervisor_ip, SUPERVISOR_PORT, ControlMessage(
                    kind=protocol.HEARTBEAT, epoch=self._heartbeat_seq,
                    node_name=self.node.name, payload_bytes=16))

    def crash(self) -> None:
        """Power-loss semantics: stop executing, forget volatile state.

        Interrupts every in-flight dispatch/save process (a dead node
        never finishes a save, never writes an abort record, never sends
        another frame — the endpoint's ``is_alive`` gate silences both
        directions) and drops the per-round state held in memory.
        ``last_completed_epoch`` survives deliberately: the epoch guard
        must keep rejecting stale retransmissions after a revive, and
        epochs only ever grow.
        """
        self.crashed = True
        for task in self._tasks:
            if task.is_alive:
                task.interrupt("node crash")
        self._tasks = []
        self._rounds.clear()
        self._aborted_epochs.clear()

    def revive(self) -> None:
        """Power back on: accept traffic and resume heartbeats."""
        self.crashed = False

    # -- transport ---------------------------------------------------------

    def _send(self, coordinator_ip: Ipv4Address,
              message: ControlMessage) -> None:
        self.messages_sent += 1
        self.node.trace.emit(self.node.sim.now, "coord_msg",
                             node=self.node.name, kind=message.kind,
                             epoch=message.epoch)
        self.endpoint.send(coordinator_ip, COORDINATOR_PORT, message)

    def _on_message(self, payload: ControlMessage,
                    src_ip: Ipv4Address) -> None:
        self.messages_handled += 1
        self._track(self.node.sim.process(
            self._dispatch(payload, src_ip),
            name=f"agent@{self.node.name}:{payload.kind}"))

    def _track(self, task):
        """Remember an in-flight sim process for interrupt-on-crash."""
        self._tasks = [t for t in self._tasks if t.is_alive]
        self._tasks.append(task)
        return task

    def _dispatch(self, message: ControlMessage,
                  coordinator_ip: Ipv4Address) -> Generator:
        yield self.node.sim.timeout(self.node.costs.agent_message_handling)
        if message.kind == protocol.ABORT:
            self._handle_abort(message.epoch)
            return
        if message.epoch <= self.last_completed_epoch and \
                "stale-replay" not in self.mc_bugs:
            # Stale: a retransmission (or reordered stray) for a round
            # this agent already finished. Re-running it would re-create
            # round state that nothing ever reclaims — ignore it.
            return
        if message.kind in (protocol.CHECKPOINT, protocol.RESTART) and \
                message.epoch in self._aborted_epochs:
            # The round was aborted before its request reached us; taking
            # the checkpoint now would pause the pod for a dead epoch.
            return
        if message.kind == protocol.CHECKPOINT:
            yield from self._do_checkpoint(message, coordinator_ip)
        elif message.kind == protocol.RESTART:
            yield from self._do_restart(message, coordinator_ip)
        elif message.kind == protocol.CONTINUE:
            self._signal_continue(message.epoch, aborted=False)

    def _handle_abort(self, epoch: int) -> None:
        state = self._rounds.get(epoch)
        if state is not None:
            self._signal_continue(epoch, aborted=True)
            return
        if epoch > self.last_completed_epoch:
            # ABORT outran the round request (reordering / recovering
            # coordinator): poison the epoch so a late request is refused.
            self._aborted_epochs.add(epoch)
            return
        # Round already completed here. If we committed an image for it
        # (Fig. 4 agents commit at <done>), the global round still
        # aborted — undo the local commit so the dead epoch's version can
        # never be "latest".
        committed = self._epoch_versions.pop(epoch, None)
        if committed is not None:
            pod_name, version = committed
            self.store.discard(pod_name, version)
            self.node.trace.emit(
                self.node.sim.now, "agent_undo", node=self.node.name,
                pod=pod_name, epoch=epoch, version=version)

    def _signal_continue(self, epoch: int, aborted: bool) -> None:
        state = self._rounds.get(epoch)
        if state is None:
            return
        state["aborted"] = aborted
        event = state["continue"]
        if not event.triggered:
            event.succeed()

    def _round_state(self, epoch: int) -> Dict:
        state = self._rounds.get(epoch)
        if state is None:
            state = {"continue": self.node.sim.event(f"continue({epoch})"),
                     "aborted": False, "epoch": epoch}
            self._rounds[epoch] = state
        return state

    def _complete_round(self, epoch: int,
                        committed: Optional[Tuple[str, int]] = None
                        ) -> None:
        """Reclaim all per-round state; runs on every exit path."""
        self._rounds.pop(epoch, None)
        self.last_completed_epoch = max(self.last_completed_epoch, epoch)
        self._aborted_epochs = {
            e for e in self._aborted_epochs
            if e > self.last_completed_epoch}
        if committed is not None:
            self._epoch_versions[epoch] = committed
            while len(self._epoch_versions) > _VERSION_HISTORY:
                self._epoch_versions.pop(min(self._epoch_versions))
        self.endpoint.forget_epochs_below(epoch - 1)

    def _await_continue(self, state: Dict) -> Generator:
        """Wait for <continue>/<abort>, aborting on coordinator silence."""
        sim = self.node.sim
        event = state["continue"]
        timer = sim.timeout(self.continue_timeout_s)
        outcome = yield sim.any_of([event, timer])
        if event not in outcome:
            state["aborted"] = True
            self.unilateral_aborts += 1
            # Record the verdict where a recovering coordinator will look
            # before it could ever commit (or reuse) this epoch.
            self.store.rounds.log_abort(
                state["epoch"], reason="coordinator silent",
                source=self.node.name, at=sim.now)
            self.node.trace.spans.instant(
                "agent.abort", node=self.node.name,
                epoch=state["epoch"], reason="coordinator silent")
            self.node.trace.emit(
                sim.now, "agent_abort", node=self.node.name,
                reason="coordinator silent")

    def _abort_failed_save(self, message: ControlMessage,
                           coordinator_ip: Ipv4Address, pod: Pod,
                           error: BaseException) -> None:
        """The local engine failed mid-save: abort this agent's round.

        Reports ABORT to the coordinator (which fails the epoch without
        waiting for the round timeout), records the verdict in the round
        WAL, resumes the pod and reclaims the round state. The caller's
        try/finally removes the netfilter rule.
        """
        reason = f"local save failed: {error!r}"
        self.store.rounds.log_abort(message.epoch, reason=reason,
                                    source=self.node.name,
                                    at=self.node.sim.now)
        self._send(coordinator_ip, ControlMessage(
            kind=protocol.ABORT, epoch=message.epoch, pod_name=pod.name,
            node_name=self.node.name, reason=reason))
        pod.continue_all()
        self.node.trace.spans.instant(
            "agent.abort", node=self.node.name, epoch=message.epoch,
            reason=reason)
        self.node.trace.emit(self.node.sim.now, "agent_abort",
                             node=self.node.name, reason=reason)
        self._complete_round(message.epoch)

    # -- checkpoint ----------------------------------------------------------

    def _do_checkpoint(self, message: ControlMessage,
                       coordinator_ip: Ipv4Address) -> Generator:
        sim, costs = self.node.sim, self.node.costs
        pod = self.pods.get(message.pod_name)
        if pod is None:
            self._send(coordinator_ip, ControlMessage(
                kind=protocol.ABORT, epoch=message.epoch,
                node_name=self.node.name,
                reason=f"no pod {message.pod_name!r}"))
            return
        state = self._round_state(message.epoch)
        started = sim.now
        # Pause/local spans open at the exact ``started`` instant (no
        # yields in between) so span durations reproduce the float
        # subtractions reported in DONE bit-for-bit. ``agent.pod_pause``
        # ends at the pod_resumed emit; ``agent.local`` at the instant
        # ``local_checkpoint_s`` is measured.
        spans = self.node.trace.spans
        pause_span = spans.begin("agent.pod_pause", node=self.node.name,
                                 pod=pod.name, epoch=message.epoch)
        local_span = spans.begin("agent.local", node=self.node.name,
                                 pod=pod.name, epoch=message.epoch,
                                 op="checkpoint")
        self.node.trace.emit(sim.now, "pod_paused", node=self.node.name,
                             pod=pod.name, epoch=message.epoch)
        # Step 1: silently drop all traffic to/from the local pod.
        rule_id = self.node.stack.netfilter.drop_all_for(pod.ip)
        try:
            with spans.span("agent.filter_install", node=self.node.name,
                            pod=pod.name):
                yield sim.timeout(costs.netfilter_update)
            if message.optimized:
                self._send(coordinator_ip, ControlMessage(
                    kind=protocol.COMM_DISABLED, epoch=message.epoch,
                    pod_name=pod.name, node_name=self.node.name))
                yield from self._optimized_checkpoint(
                    message, coordinator_ip, pod, state, rule_id, started,
                    pause_span, local_span)
                return
            # Step 2: stop the pod and take the local checkpoint. With the
            # copy-on-write option the pod resumes computing (still behind
            # the filter) as soon as its state is extracted.
            try:
                image = yield from self.checkpoint_engine.checkpoint(
                    pod, resume=message.concurrent,
                    incremental=message.incremental,
                    dedup=message.dedup,
                    concurrent=message.concurrent)
            except Exception as error:  # noqa: BLE001 - engine failure
                if isinstance(error, Interrupt):
                    # Node crash mid-save: a powered-off agent writes no
                    # abort record and sends nothing.
                    raise
                spans.end(local_span)
                spans.end(pause_span)
                self._abort_failed_save(message, coordinator_ip, pod,
                                        error)
                return
            version = image.version
            local_checkpoint_s = sim.now - started
            spans.end(local_span)
            # Step 3: report done; Step 4: wait for <continue>.
            self._send(coordinator_ip, ControlMessage(
                kind=protocol.DONE, epoch=message.epoch, pod_name=pod.name,
                node_name=self.node.name,
                local_checkpoint_s=local_checkpoint_s,
                new_chunk_bytes=image.written_bytes,
                total_chunk_bytes=image.total_chunk_bytes))
            with spans.span("agent.wait_continue", node=self.node.name,
                            pod=pod.name):
                yield from self._await_continue(state)
            # Steps 5-7: resume, re-enable communication, report.
            resume_started = sim.now
            if not message.concurrent:
                pod.continue_all()
            self.node.trace.emit(sim.now, "pod_resumed",
                                 node=self.node.name,
                                 pod=pod.name, epoch=message.epoch)
            spans.end(pause_span)
            resume_span = spans.begin("agent.resume", node=self.node.name,
                                      pod=pod.name, epoch=message.epoch)
            with spans.span("agent.filter_remove", node=self.node.name,
                            pod=pod.name):
                self.node.stack.netfilter.remove_rule(rule_id)
                yield sim.timeout(costs.netfilter_update)
            spans.end(resume_span)
            if state["aborted"]:
                # Undo: the round never committed; drop the half-round
                # image.
                self.store.discard(pod.name, version)
                self._complete_round(message.epoch)
            else:
                self._send(coordinator_ip, ControlMessage(
                    kind=protocol.CONTINUE_DONE, epoch=message.epoch,
                    pod_name=pod.name, node_name=self.node.name,
                    local_continue_s=sim.now - resume_started))
                self._complete_round(message.epoch,
                                     committed=(pod.name, version))
        finally:
            # Whatever went wrong above (engine failure, abort raced with
            # the save, ...) the pod must never stay filtered: remove the
            # rule if a happy path did not already. Likewise no span may
            # stay open across rounds (end is idempotent and closes any
            # open descendants).
            self.node.stack.netfilter.remove_rule(rule_id)
            spans.end(pause_span)
            self._sanitize_round_end(pod.ip, message.epoch)

    def _optimized_checkpoint(self, message: ControlMessage,
                              coordinator_ip: Ipv4Address, pod: Pod,
                              state: Dict, rule_id: int,
                              started: float, pause_span,
                              local_span) -> Generator:
        """The Fig. 4 flow, with the §5.2 refinements layered in.

        The local save runs concurrently with waiting for <continue>
        (confirmation that every node has disabled communication). Once
        both the capture is done and <continue> has arrived, the
        ``early_network`` option re-enables communication so TCP backoff
        recovery overlaps the remaining disk write; the pod itself
        resumes as soon as its save completes.

        Runs inside ``_do_checkpoint``'s try/finally, which guarantees
        the netfilter rule is removed on every exit path.
        """
        sim, costs = self.node.sim, self.node.costs
        spans = self.node.trace.spans
        captured = sim.event(f"captured({message.epoch})")
        save_task = self._track(sim.process(
            self.checkpoint_engine.checkpoint(
                pod, resume=False, incremental=message.incremental,
                dedup=message.dedup,
                on_captured=lambda: captured.succeed()
                if not captured.triggered else None),
            name=f"save({pod.name})"))
        # The wait overlaps the concurrent save on this node, so it stays
        # off the ambient stack (attach=False): the engine's zap.* spans
        # must nest under agent.local, not under the wait.
        wait_span = spans.begin("agent.wait_continue",
                                node=self.node.name, pod=pod.name,
                                attach=False, parent=local_span)
        yield from self._await_continue(state)
        spans.end(wait_span)
        try:
            if not captured.triggered:
                # Waiting on `captured` alone would block this round
                # forever (filter installed, pod paused) if the save
                # process died before capturing: the AnyOf fails the
                # moment save_task does.
                yield sim.any_of([captured, save_task])
            removed_early = False
            if message.early_network and not state["aborted"]:
                with spans.span("agent.filter_remove",
                                node=self.node.name, pod=pod.name,
                                attach=False, parent=local_span,
                                early=True):
                    self.node.stack.netfilter.remove_rule(rule_id)
                    yield sim.timeout(costs.netfilter_update)
                removed_early = True
            image = yield save_task
        except Exception as error:  # noqa: BLE001 - engine failure
            if isinstance(error, Interrupt):
                raise  # node crash mid-save: stay silent
            spans.end(local_span)
            spans.end(pause_span)
            self._abort_failed_save(message, coordinator_ip, pod, error)
            return
        version = image.version
        local_checkpoint_s = sim.now - started
        spans.end(local_span)
        resume_started = sim.now
        pod.continue_all()
        self.node.trace.emit(sim.now, "pod_resumed", node=self.node.name,
                             pod=pod.name, epoch=message.epoch)
        spans.end(pause_span)
        resume_span = spans.begin("agent.resume", node=self.node.name,
                                  pod=pod.name, epoch=message.epoch)
        if not removed_early:
            with spans.span("agent.filter_remove", node=self.node.name,
                            pod=pod.name):
                self.node.stack.netfilter.remove_rule(rule_id)
                yield sim.timeout(costs.netfilter_update)
        spans.end(resume_span)
        if state["aborted"]:
            self.store.discard(pod.name, version)
            self._complete_round(message.epoch)
        else:
            self._send(coordinator_ip, ControlMessage(
                kind=protocol.DONE, epoch=message.epoch,
                pod_name=pod.name, node_name=self.node.name,
                local_checkpoint_s=local_checkpoint_s,
                local_continue_s=sim.now - resume_started,
                new_chunk_bytes=image.written_bytes,
                total_chunk_bytes=image.total_chunk_bytes))
            # Fig. 4 agents commit at <done>; remember the version so a
            # late ABORT of this epoch can still undo the local commit.
            self._complete_round(message.epoch,
                                 committed=(pod.name, version))

    # -- restart --------------------------------------------------------------

    def _do_restart(self, message: ControlMessage,
                    coordinator_ip: Ipv4Address) -> Generator:
        sim, costs = self.node.sim, self.node.costs
        state = self._round_state(message.epoch)
        started = sim.now
        spans = self.node.trace.spans
        local_span = spans.begin("agent.local", node=self.node.name,
                                 pod=message.pod_name,
                                 epoch=message.epoch, op="restart")
        image = self.store.load(message.pod_name,
                                message.version or None)
        # Communications must be disabled *before* any state is restored:
        # restored TCP would otherwise transmit before its peers exist (§5).
        rule_id = self.node.stack.netfilter.drop_all_for(image.ip)
        try:
            with spans.span("agent.filter_install", node=self.node.name,
                            pod=message.pod_name):
                yield sim.timeout(costs.netfilter_update)
            pod = yield from self.restart_engine.restart(
                image, self.node, resume=False)
            self.register_pod(pod)
            spans.end(local_span)
            self._send(coordinator_ip, ControlMessage(
                kind=protocol.DONE, epoch=message.epoch, pod_name=pod.name,
                node_name=self.node.name,
                local_checkpoint_s=sim.now - started))
            with spans.span("agent.wait_continue", node=self.node.name,
                            pod=pod.name, epoch=message.epoch):
                yield from self._await_continue(state)
            resume_started = sim.now
            if state["aborted"]:
                scrub_pod_network(pod)
                pod.kill_all()
                uninstall_pod(pod)
                self.unregister_pod(pod.name)
                self.node.stack.netfilter.remove_rule(rule_id)
                self._complete_round(message.epoch)
                return
            self.restart_engine.resume(pod, image)
            resume_span = spans.begin("agent.resume", node=self.node.name,
                                      pod=pod.name, epoch=message.epoch)
            with spans.span("agent.filter_remove", node=self.node.name,
                            pod=pod.name):
                self.node.stack.netfilter.remove_rule(rule_id)
                yield sim.timeout(costs.netfilter_update)
            spans.end(resume_span)
            self._send(coordinator_ip, ControlMessage(
                kind=protocol.CONTINUE_DONE, epoch=message.epoch,
                pod_name=pod.name, node_name=self.node.name,
                local_continue_s=sim.now - resume_started))
            self._complete_round(message.epoch)
        finally:
            self.node.stack.netfilter.remove_rule(rule_id)
            spans.end(local_span)
            self._sanitize_round_end(image.ip, message.epoch)

    def _sanitize_round_end(self, pod_ip, epoch: int) -> None:
        """End-of-round invariant: no drop rule for the pod survives."""
        sanitizer = self.node.trace.sanitizer
        if sanitizer is not None:
            sanitizer.check_netfilter_round_end(
                self.node, pod_ip, epoch=epoch, time=self.node.sim.now)

    def local_checkpoint(self, pod: Pod, resume: bool = True,
                         incremental: bool = False,
                         dedup: bool = False) -> Generator:
        """Uncoordinated single-pod checkpoint (LSF integration path)."""
        image = yield from self.checkpoint_engine.checkpoint(
            pod, resume=resume, incremental=incremental, dedup=dedup)
        return image.version


class AgentError(CoordinationError):
    """Raised for agent-side protocol violations."""
