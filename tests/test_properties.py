"""Property-based tests (hypothesis) for the invariants DESIGN.md names."""

import pickle

from hypothesis import given, settings, strategies as st

from repro.bench.harness import Stat
from repro.cruz.netstate import capture_connection
from repro.simos.memory import AddressSpace, PAGE_SIZE
from repro.tcp.buffers import ReceiveBuffer, SendBuffer
from repro.zap.image import freeze_object, thaw_object

from tests.helpers import make_pair
from tests.test_tcp_connection import SinkApp, SourceApp, establish

SLOW = settings(max_examples=25, deadline=None)


# ---------------------------------------------------------------------------
# Receive buffer: arbitrary segment arrival yields an exact stream prefix
# ---------------------------------------------------------------------------

@SLOW
@given(data=st.binary(min_size=1, max_size=400),
       chop=st.lists(st.integers(1, 60), min_size=1, max_size=30),
       order=st.randoms(use_true_random=False),
       duplicate=st.booleans())
def test_receive_buffer_reassembles_any_arrival_order(
        data, chop, order, duplicate):
    # Chop the stream into segments.
    segments = []
    offset = 0
    index = 0
    while offset < len(data):
        size = chop[index % len(chop)]
        segments.append((offset, data[offset:offset + size]))
        offset += size
        index += 1
    arrival = list(segments)
    if duplicate:
        arrival += segments[: len(segments) // 2]
    order.shuffle(arrival)
    buf = ReceiveBuffer(capacity=1 << 20, rcv_nxt=0)
    for seq, payload in arrival:
        buf.store(seq, payload)
    out = buf.read(1 << 20)
    # Whatever arrived forms an exact prefix (everything, since the
    # capacity is large and all segments were presented).
    assert out == data


@SLOW
@given(data=st.binary(min_size=1, max_size=300),
       reads=st.lists(st.integers(1, 50), min_size=1, max_size=30))
def test_receive_buffer_reads_never_reorder(data, reads):
    buf = ReceiveBuffer(capacity=1 << 20, rcv_nxt=100)
    buf.store(100, data)
    out = b""
    for size in reads:
        out += buf.read(size)
    out += buf.read(1 << 20)
    assert out == data


# ---------------------------------------------------------------------------
# Send buffer: segmentize/acknowledge keep the byte stream intact
# ---------------------------------------------------------------------------

@SLOW
@given(chunks=st.lists(st.binary(min_size=1, max_size=120), min_size=1,
                       max_size=20),
       mss=st.integers(1, 64))
def test_send_buffer_walk_reconstructs_stream(chunks, mss):
    buf = SendBuffer(capacity=1 << 20)
    stream = b""
    for chunk in chunks:
        accepted = buf.accept(chunk)
        stream += chunk[:accepted]
    seq = 0
    while True:
        payload = buf.segmentize(seq, mss)
        if payload is None:
            break
        seq += len(payload)
    walked = b"".join(p for _seq, p in buf.walk())
    assert walked == stream
    # Boundaries are contiguous.
    segments = buf.walk()
    for (s1, p1), (s2, _p2) in zip(segments, segments[1:]):
        assert s1 + len(p1) == s2


@SLOW
@given(nbytes=st.integers(1, 500), mss=st.integers(1, 80),
       ack_points=st.lists(st.integers(0, 500), max_size=10))
def test_send_buffer_cumulative_ack_monotonic(nbytes, mss, ack_points):
    buf = SendBuffer(capacity=1 << 20)
    buf.accept(b"x" * nbytes)
    seq = 0
    while True:
        payload = buf.segmentize(seq, mss)
        if payload is None:
            break
        seq += len(payload)
    total = nbytes
    for ack in sorted(ack_points):
        ack = min(ack, total)
        buf.acknowledge(ack)
        remaining = sum(len(p) for _s, p in buf.walk())
        assert remaining == total - ack


# ---------------------------------------------------------------------------
# §5.1 invariant under randomised checkpoint instants
# ---------------------------------------------------------------------------

@settings(max_examples=15, deadline=None)
@given(instant=st.floats(0.001, 0.05),
       drop_rate=st.floats(0.0, 0.2),
       seed=st.integers(0, 2 ** 16))
def test_checkpoint_invariant_any_instant(instant, drop_rate, seed):
    """snd_una <= rcv_nxt <= snd_nxt (with buffers counted) for a cut
    taken at an arbitrary moment of a lossy transfer."""
    import random
    rng = random.Random(seed)
    sim, wire, a, b = make_pair()
    client, server = establish(sim, a, b)
    SinkApp(sim, server)
    SourceApp(sim, client, b"p" * 300000)
    if drop_rate:
        wire.drop_fn = lambda packet: rng.random() < drop_rate
    sim.run(until=sim.now + instant)
    # The consistent cut: both directions filtered, then captured.
    wire.drop_fn = lambda packet: True
    client.freeze()
    server.freeze()
    c_detail = capture_connection(client)
    s_detail = capture_connection(server)
    sender_una = c_detail["tcb"].snd_una
    sender_effective_nxt = sender_una + sum(
        len(p) for _s, p in c_detail["send_segments"])
    receiver_rcv_nxt = s_detail["tcb"].rcv_nxt
    assert sender_una <= receiver_rcv_nxt <= sender_effective_nxt


# ---------------------------------------------------------------------------
# Address space accounting
# ---------------------------------------------------------------------------

@SLOW
@given(sizes=st.lists(st.integers(0, 5 * PAGE_SIZE), min_size=1,
                      max_size=10))
def test_address_space_accounting(sizes):
    space = AddressSpace()
    for index, nbytes in enumerate(sizes):
        space.allocate(f"r{index}", nbytes)
    assert space.resident_bytes == sum(sizes)
    # Fresh allocations are fully dirty.
    assert space.dirty_bytes() == space.total_pages * PAGE_SIZE
    space.clear_dirty()
    assert space.dirty_bytes() == 0
    space.touch("r0")
    expected = ((sizes[0] + PAGE_SIZE - 1) // PAGE_SIZE) * PAGE_SIZE
    assert space.dirty_bytes() == expected
    snapshot = space.snapshot()
    space.touch("r0")
    assert snapshot.dirty_bytes() == expected  # snapshot is independent


# ---------------------------------------------------------------------------
# Image serde
# ---------------------------------------------------------------------------

@SLOW
@given(payload=st.recursive(
    st.one_of(st.integers(), st.binary(max_size=40), st.text(max_size=20),
              st.floats(allow_nan=False), st.booleans(), st.none()),
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.dictionaries(st.text(max_size=8), children, max_size=4)),
    max_leaves=20))
def test_freeze_thaw_roundtrip(payload):
    assert thaw_object(freeze_object(payload)) == payload


def test_freeze_rejects_unpicklable():
    import pytest
    from repro.errors import CheckpointError
    with pytest.raises(CheckpointError, match="not checkpointable"):
        freeze_object(lambda: None)


# ---------------------------------------------------------------------------
# Stat
# ---------------------------------------------------------------------------

@SLOW
@given(values=st.lists(st.floats(-1e6, 1e6), min_size=1, max_size=50))
def test_stat_mean_bounds(values):
    stat = Stat.of(values)
    assert min(values) - 1e-6 <= stat.mean <= max(values) + 1e-6
    assert stat.std >= 0
    assert stat.n == len(values)


@SLOW
@given(values=st.lists(st.floats(-1e3, 1e3), min_size=2, max_size=30),
       factor=st.floats(0.1, 10))
def test_stat_scaling(values, factor):
    stat = Stat.of(values).scaled(factor)
    direct = Stat.of([v * factor for v in values])
    assert abs(stat.mean - direct.mean) < 1e-6 * max(1, abs(direct.mean))


# ---------------------------------------------------------------------------
# Checkpoint image pickles completely
# ---------------------------------------------------------------------------

def test_checkpoint_image_is_pickle_stable():
    from repro.cluster import Cluster
    from repro.cruz.netstate import CruzSocketCodec
    from repro.zap.checkpoint import CheckpointEngine
    from tests.test_zap_virtualization import make_pod
    from tests.programs import EchoServer, EchoClient

    cluster = Cluster(2, time_wait_s=0.5)
    pod = make_pod(cluster)
    pod.spawn(EchoServer(port=6500))
    cluster.nodes[1].spawn(EchoClient(str(pod.ip), 6500, [b"z" * 3000000]))
    cluster.run_for(0.01)
    engine = CheckpointEngine(CruzSocketCodec())
    task = cluster.sim.process(engine.checkpoint(pod, resume=True))
    image = cluster.sim.run_until_complete(task, limit=1e6)
    blob = pickle.dumps(image)
    clone = pickle.loads(blob)
    assert clone.pod_name == image.pod_name
    assert clone.state_bytes == image.state_bytes
    assert len(clone.processes) == len(image.processes)
    assert [p.vpid for p in clone.processes] == \
        [p.vpid for p in image.processes]
    assert clone.processes[0].program_blob == \
        image.processes[0].program_blob
