"""Structured event tracing, spans, and typed metrics.

The benchmark harnesses reconstruct the paper's figures from telemetry:
Fig 6 is a sliding-window rate computed over ``bytes-delivered`` records,
while Fig 4/5 phase timings come from the span recorder (``Trace.spans``,
see :mod:`repro.sim.spans`). Category counts are backed by the typed
metrics registry (``Trace.metrics``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple

from repro.sim.spans import MetricsRegistry, SpanRecorder


@dataclass(frozen=True)
class TraceRecord:
    """One trace entry: what happened, where, when."""

    time: float
    category: str
    node: str
    detail: Dict[str, Any]


class Trace:
    """An append-only trace with category filters and windowed aggregation.

    A ``Trace`` is the per-cluster telemetry hub: flat records (this
    class), nested spans (``self.spans``) and typed metrics
    (``self.metrics``). ``enabled`` gates record/span *retention* only —
    metric counts always accumulate, so message accounting works even in
    traceless benchmark runs.
    """

    def __init__(self, enabled: bool = True,
                 clock: Optional[Callable[[], float]] = None):
        self.enabled = enabled
        self.records: List[TraceRecord] = []
        self.metrics = MetricsRegistry()
        self.spans = SpanRecorder(clock=clock, enabled=enabled)
        #: Optional :class:`repro.analysis.sanitize.Sanitizer`. The
        #: runtime hooks (TCP input, chunk store, coordinator, agents,
        #: kernel) check this slot and stay silent while it is None.
        self.sanitizer = None
        self._emits = self.metrics.counter("trace.emits")

    def attach_clock(self, clock: Callable[[], float]) -> None:
        """Bind span timestamps to a time source (the simulator clock)."""
        self.spans.attach_clock(clock)

    def emit(self, time: float, category: str, node: str = "",
             **detail: Any) -> None:
        self._emits.inc(label=category)
        if self.enabled:
            self.records.append(TraceRecord(time, category, node, detail))

    def count(self, category: str) -> int:
        """Total emissions of ``category`` (counted even when disabled)."""
        return int(self._emits.labelled(category))

    def select(self, category: str,
               node: Optional[str] = None) -> Iterator[TraceRecord]:
        for record in self.records:
            if record.category != category:
                continue
            if node is not None and record.node != node:
                continue
            yield record

    def series(self, category: str, value_key: str,
               node: Optional[str] = None) -> List[Tuple[float, float]]:
        """Extract ``(time, detail[value_key])`` pairs for a category."""
        return [(r.time, float(r.detail[value_key]))
                for r in self.select(category, node)]

    def sliding_rate(self, category: str, value_key: str, window: float,
                     t_start: float, t_end: float, step: float,
                     node: Optional[str] = None) -> List[Tuple[float, float]]:
        """Average rate (units/second) over a trailing window.

        This mirrors the paper's Fig 6 methodology: "the average rate
        measured in the receiver during a sliding window of 10 ms duration
        previous to the corresponding point".
        """
        points = self.series(category, value_key, node)
        out: List[Tuple[float, float]] = []
        t = t_start
        while t <= t_end + 1e-12:
            total = 0.0
            for when, value in points:
                if t - window < when <= t:
                    total += value
            out.append((t, total / window))
            t += step
        return out


@dataclass
class Counter:
    """A labelled monotonic counter for protocol-message accounting.

    Deprecated: new code should use
    :meth:`repro.sim.spans.MetricsRegistry.counter` via ``Trace.metrics``;
    kept because existing call sites and tests construct it directly.
    """

    name: str
    value: int = 0
    by_label: Dict[str, int] = field(default_factory=dict)

    def add(self, amount: int = 1, label: str = "") -> None:
        self.value += amount
        if label:
            self.by_label[label] = self.by_label.get(label, 0) + amount
