"""Control-plane fault injection: drop/duplicate/delay/reorder datagrams.

The reliability machinery in :class:`repro.cruz.protocol.ReliableEndpoint`
only earns its keep if rounds *commit* under a lossy control plane, so the
torture tests drive every coordinator/agent datagram (protocol messages
and ACKs alike) through a :class:`ControlFaultInjector` seeded from the
cluster's :class:`repro.sim.rand.RandomStreams` — the same seed always
injects the same faults at the same instants.

Faults are described by :class:`FaultPlan` rules, matched in order against
each outgoing datagram by message kind and epoch. One uniform draw per
matching plan partitions the probability mass ``[drop | duplicate |
delay | pass]``, so the categories are mutually exclusive per datagram and
the expected loss rate equals ``drop`` exactly. Delayed (and the second
copy of duplicated) datagrams are re-injected after ``delay_s`` plus a
uniform jitter, which also reorders them relative to later traffic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, FrozenSet, List, Optional

from repro.cruz.protocol import ControlMessage
from repro.sim.core import Simulator


@dataclass
class FaultPlan:
    """One fault rule for matching control messages.

    Probabilities are per-datagram and mutually exclusive (a single draw
    decides drop vs duplicate vs delay vs clean delivery), so
    ``drop + duplicate + delay`` must not exceed 1.
    """

    drop: float = 0.0
    duplicate: float = 0.0
    delay: float = 0.0
    #: Base re-injection delay for delayed/duplicated copies.
    delay_s: float = 2e-3
    #: Extra uniform [0, jitter_s) delay — produces reordering.
    jitter_s: float = 3e-3
    #: Restrict to these message kinds (None = every kind, ACKs included).
    kinds: Optional[FrozenSet[str]] = None
    #: Restrict to these epochs (None = every epoch).
    epochs: Optional[FrozenSet[int]] = None
    #: Stop injecting after this many faults (None = unlimited).
    max_faults: Optional[int] = None
    #: Faults charged against ``max_faults`` so far.
    injected: int = field(default=0)

    def __post_init__(self) -> None:
        if self.drop + self.duplicate + self.delay > 1.0 + 1e-9:
            raise ValueError("fault probabilities must sum to <= 1")
        if self.kinds is not None:
            self.kinds = frozenset(self.kinds)
        if self.epochs is not None:
            self.epochs = frozenset(self.epochs)

    def matches(self, message: ControlMessage) -> bool:
        if self.kinds is not None and message.kind not in self.kinds:
            return False
        if self.epochs is not None and message.epoch not in self.epochs:
            return False
        return self.max_faults is None or self.injected < self.max_faults


class ControlFaultInjector:
    """Applies :class:`FaultPlan` rules to outgoing control datagrams.

    Wired between :class:`~repro.cruz.protocol.ReliableEndpoint` and the
    UDP stack: ``apply(message, transmit)`` either returns ``False`` (the
    endpoint delivers normally) or takes ownership of delivery — dropping
    the datagram, sending it twice, or scheduling it late.
    """

    def __init__(self, sim: Simulator, rng):
        self.sim = sim
        self.rng = rng
        self.plans: List[FaultPlan] = []
        self.dropped = 0
        self.duplicated = 0
        self.delayed = 0
        self.passed = 0

    def add_plan(self, plan: FaultPlan) -> FaultPlan:
        self.plans.append(plan)
        return plan

    def clear(self) -> None:
        self.plans.clear()

    @property
    def faults_injected(self) -> int:
        return self.dropped + self.duplicated + self.delayed

    def _reinject_delay(self, plan: FaultPlan) -> float:
        return plan.delay_s + self.rng.random() * plan.jitter_s

    def apply(self, message: ControlMessage,
              transmit: Callable[[], None]) -> bool:
        """Returns True when the injector handled (or ate) the datagram."""
        for plan in self.plans:
            if not plan.matches(message):
                continue
            draw = self.rng.random()
            if draw < plan.drop:
                plan.injected += 1
                self.dropped += 1
                return True
            if draw < plan.drop + plan.duplicate:
                plan.injected += 1
                self.duplicated += 1
                transmit()
                self.sim.call_later(self._reinject_delay(plan), transmit)
                return True
            if draw < plan.drop + plan.duplicate + plan.delay:
                plan.injected += 1
                self.delayed += 1
                self.sim.call_later(self._reinject_delay(plan), transmit)
                return True
            break  # matched, drew "clean": first matching plan decides
        self.passed += 1
        return False
