"""Tests for random streams and trace recording."""

from repro.sim.rand import RandomStreams
from repro.sim.trace import Counter, Trace


def test_streams_are_deterministic():
    a = RandomStreams(7).stream("tcp").random()
    b = RandomStreams(7).stream("tcp").random()
    assert a == b


def test_streams_are_independent():
    streams = RandomStreams(7)
    first = streams.stream("a").random()
    # Drawing from another stream must not perturb "a".
    streams2 = RandomStreams(7)
    streams2.stream("b").random()
    assert streams2.stream("a").random() == first


def test_fork_differs_from_parent():
    parent = RandomStreams(7)
    child = parent.fork("node0")
    assert child.stream("x").random() != parent.stream("x").random()


def test_trace_select_and_series():
    trace = Trace()
    trace.emit(1.0, "rx", node="n1", nbytes=100)
    trace.emit(2.0, "rx", node="n2", nbytes=50)
    trace.emit(3.0, "rx", node="n1", nbytes=200)
    assert trace.count("rx") == 3
    assert trace.series("rx", "nbytes", node="n1") == [(1.0, 100.0),
                                                       (3.0, 200.0)]


def test_trace_counts_when_disabled():
    trace = Trace(enabled=False)
    trace.emit(1.0, "rx", nbytes=1)
    assert trace.count("rx") == 1
    assert trace.records == []


def test_sliding_rate_window():
    trace = Trace()
    # 100 bytes at t=0.995 and t=1.0; window (0.99, 1.0] catches both.
    trace.emit(0.995, "rx", node="r", nbytes=100)
    trace.emit(1.0, "rx", node="r", nbytes=100)
    points = trace.sliding_rate("rx", "nbytes", window=0.01,
                                t_start=1.0, t_end=1.0, step=0.01, node="r")
    assert points == [(1.0, 20000.0)]


def test_counter_labels():
    counter = Counter("msgs")
    counter.add(label="checkpoint")
    counter.add(2, label="done")
    assert counter.value == 3
    assert counter.by_label == {"checkpoint": 1, "done": 2}
