"""Control-plane fault injection: rounds must commit under loss.

The headline scenario from the issue: with a fixed seed and a 15%
control-datagram drop rate, a 4-node checkpoint round still commits via
ACK/retransmission, and RoundStats reports the retries without inflating
the paper-comparable Fig. 5 message counts.
"""

import pytest

from repro.apps.ring import validate_ring
from repro.cruz.faults import FaultPlan
from repro.cruz.protocol import CHECKPOINT, RetryPolicy
from repro.errors import CoordinationError

from tests.test_cruz_coordination import (
    make_cluster,
    ring_app,
    run_app_to_completion,
    workers_of,
)


def total_agent(cluster, counter):
    return sum(getattr(agent.endpoint, counter) for agent in cluster.agents)


def test_round_commits_under_15_percent_drop():
    """The acceptance scenario: 15% loss, fixed seed, 4 nodes."""
    cluster = make_cluster(4, seed=7)
    cluster.add_control_fault(FaultPlan(drop=0.15))
    app = ring_app(cluster, 4)
    cluster.run_for(0.2)
    before = cluster.coordination_message_count()
    stats = cluster.checkpoint_app(app)
    assert stats.committed and not stats.aborted
    # Losses really happened and retransmission papered over them.
    assert cluster.fault_injector.dropped > 0
    total_retx = stats.retransmissions + \
        total_agent(cluster, "retransmissions")
    assert total_retx > 0
    # The paper-comparable counts are first transmissions only: 2N sent
    # (checkpoint + continue) and 2N received (done + continue-done),
    # regardless of how many datagrams the transport needed.
    assert stats.messages_sent == 8
    assert stats.messages_received == 8
    assert cluster.coordination_message_count() - before == 16
    run_app_to_completion(cluster, app)
    validate_ring(workers_of(cluster, app))


def test_optimized_round_commits_under_drop():
    cluster = make_cluster(4, seed=7)
    cluster.add_control_fault(FaultPlan(drop=0.15))
    app = ring_app(cluster, 4)
    cluster.run_for(0.2)
    stats = cluster.checkpoint_app(app, optimized=True, early_network=True)
    assert stats.committed
    assert stats.messages_sent == 8
    assert stats.messages_received == 8
    for node in cluster.nodes:
        assert not node.stack.netfilter.rules


def test_duplicate_messages_are_suppressed():
    """Every protocol datagram duplicated: handlers still run once."""
    cluster = make_cluster(2, seed=11)
    cluster.add_control_fault(FaultPlan(duplicate=1.0))
    app = ring_app(cluster, 2)
    cluster.run_for(0.2)
    before = cluster.coordination_message_count()
    stats = cluster.checkpoint_app(app)
    cluster.run_for(0.1)  # let the late copies land
    assert stats.committed
    assert cluster.fault_injector.duplicated > 0
    # Duplicates were seen and suppressed somewhere (either side).
    assert stats.duplicates + total_agent(cluster, "duplicates") > 0
    # Exactly one image version per pod despite duplicated CHECKPOINTs.
    for pod in app.pods:
        assert cluster.store.versions(pod.name) == [1]
    assert cluster.coordination_message_count() - before == 8
    run_app_to_completion(cluster, app)
    validate_ring(workers_of(cluster, app))


def test_delayed_messages_reorder_but_do_not_corrupt():
    cluster = make_cluster(3, seed=13)
    cluster.add_control_fault(
        FaultPlan(delay=0.5, delay_s=5e-3, jitter_s=1e-2))
    app = ring_app(cluster, 3)
    cluster.run_for(0.2)
    first = cluster.checkpoint_app(app)
    second = cluster.checkpoint_app(app)
    assert first.committed and second.committed
    assert cluster.fault_injector.delayed > 0
    assert first.messages_sent == 6 and second.messages_sent == 6
    run_app_to_completion(cluster, app)
    validate_ring(workers_of(cluster, app))


def test_total_loss_of_checkpoint_exhausts_retries_and_aborts():
    """A dead path fails the round at retry-budget exhaustion, well
    before the round timeout, and the next (clean) round commits."""
    retry = RetryPolicy(initial_backoff_s=0.01, max_backoff_s=0.05,
                        max_retries=3)
    cluster = make_cluster(2, seed=5, coordinator_timeout_s=60.0,
                           control_retry=retry)
    plan = cluster.add_control_fault(
        FaultPlan(drop=1.0, kinds={CHECKPOINT}))
    app = ring_app(cluster, 2, max_token=50000)
    cluster.run_for(0.2)
    started = cluster.sim.now
    with pytest.raises(CoordinationError, match="no ACK"):
        cluster.checkpoint_app(app)
    assert cluster.sim.now - started < 1.0  # give-up, not round timeout
    cluster.fault_injector.clear()
    cluster.run_for(0.5)
    stats = cluster.checkpoint_app(app)
    assert stats.committed
    del plan
    run_app_to_completion(cluster, app)
    validate_ring(workers_of(cluster, app))


def test_fault_plan_rejects_probabilities_over_one():
    with pytest.raises(ValueError, match="sum to <= 1"):
        FaultPlan(drop=0.7, duplicate=0.4)


def test_fault_plan_filters_by_kind_epoch_and_budget():
    from repro.cruz.protocol import ControlMessage, DONE
    plan = FaultPlan(drop=1.0, kinds={DONE}, epochs={2}, max_faults=1)
    assert plan.matches(ControlMessage(kind=DONE, epoch=2))
    assert not plan.matches(ControlMessage(kind=CHECKPOINT, epoch=2))
    assert not plan.matches(ControlMessage(kind=DONE, epoch=3))
    plan.injected = 1
    assert not plan.matches(ControlMessage(kind=DONE, epoch=2))


@pytest.mark.torture
@pytest.mark.parametrize("drop,seed", [(0.10, 101), (0.15, 202),
                                       (0.20, 303)])
def test_torture_repeated_rounds_under_loss(drop, seed):
    """Several mixed-protocol rounds commit under sustained loss and the
    application still terminates with a valid ring."""
    cluster = make_cluster(4, seed=seed, coordinator_timeout_s=60.0)
    cluster.add_control_fault(FaultPlan(drop=drop))
    app = ring_app(cluster, 4, max_token=4000)
    for index in range(4):
        cluster.run_for(0.3)
        stats = cluster.checkpoint_app(
            app, optimized=bool(index % 2),
            early_network=bool(index % 2), limit=1e7)
        assert stats.committed, f"round {index} under {drop:.0%} loss"
    assert cluster.fault_injector.dropped > 0
    run_app_to_completion(cluster, app)
    validate_ring(workers_of(cluster, app))
    for node in cluster.nodes:
        assert not node.stack.netfilter.rules


@pytest.mark.torture
def test_torture_mixed_faults_with_restart(seed=909):
    """Drop + duplicate + delay together, plus a crash/restart cycle."""
    cluster = make_cluster(3, seed=seed, coordinator_timeout_s=60.0)
    cluster.add_control_fault(
        FaultPlan(drop=0.10, duplicate=0.10, delay=0.10))
    app = ring_app(cluster, 3, max_token=6000)
    cluster.run_for(0.3)
    assert cluster.checkpoint_app(app, limit=1e7).committed
    cluster.run_for(0.3)
    cluster.crash_app(app)
    restart = cluster.restart_app(app, limit=1e7)
    assert restart.committed
    run_app_to_completion(cluster, app)
    validate_ring(workers_of(cluster, app))
