"""A token-ring workload: N ranks pass an incrementing token over TCP.

The strictest possible correctness probe for coordinated checkpoint-restart:
every rank records every token it forwards, so *any* lost, duplicated or
reordered byte anywhere in the system shows up as a broken arithmetic
progression. The app is completely CR-oblivious — plain sockets, no
library hooks — which is the paper's transparency claim.
"""

from __future__ import annotations

import struct
from typing import List, Optional

from repro.simos.program import PhasedProgram
from repro.simos.syscalls import Exit, sys

TOKEN_FORMAT = ">Q"
TOKEN_BYTES = struct.calcsize(TOKEN_FORMAT)


class RingWorker(PhasedProgram):
    """Rank ``rank`` of an ``n_ranks`` token ring.

    Each rank listens on ``port``, connects to ``(rank + 1) % n`` and
    forwards tokens until the token value reaches ``max_token``. Rank 0
    injects token 0. ``padding`` bytes ride along with each token to put
    real pressure on socket buffers.
    """

    name = "ring-worker"
    initial_phase = "socket_listen"

    def __init__(self, rank: int, peer_ips: List[str], port: int,
                 max_token: int, padding: int = 0,
                 work_per_hop_s: float = 0.0):
        super().__init__()
        self.rank = rank
        self.peer_ips = list(peer_ips)
        self.port = port
        self.max_token = max_token
        self.padding = padding
        self.work_per_hop_s = work_per_hop_s
        self.record_bytes = TOKEN_BYTES + padding
        self.n_ranks = len(peer_ips)
        self.next_ip = peer_ips[(rank + 1) % self.n_ranks]
        self.seen: List[int] = []
        self.listen_fd: Optional[int] = None
        self.out_fd: Optional[int] = None
        self.in_fd: Optional[int] = None
        self.rx = b""
        self.unsent = b""
        self.finished = False

    # -- setup: listen, connect to successor, accept predecessor ----------

    def phase_socket_listen(self, result):
        self.goto("bind")
        return sys("socket", "tcp")

    def phase_bind(self, result):
        self.listen_fd = result
        self.goto("listen")
        return sys("bind", self.listen_fd, None, self.port)

    def phase_listen(self, result):
        self.goto("socket_out")
        return sys("listen", self.listen_fd, 4)

    def phase_socket_out(self, result):
        self.goto("connect")
        return sys("socket", "tcp")

    def phase_connect(self, result):
        self.out_fd = result
        self.goto("nodelay")
        return sys("connect", self.out_fd, self.next_ip, self.port)

    def phase_nodelay(self, result):
        # Token passing is request-response: Nagle + delayed ACK would
        # add ~40 ms per hop, so disable it like any latency-bound app.
        self.goto("accept")
        return sys("setsockopt", self.out_fd, "TCP_NODELAY", True)

    def phase_accept(self, result):
        self.goto("start")
        return sys("accept", self.listen_fd)

    def phase_start(self, result):
        self.in_fd = result[0]
        if self.rank == 0:
            self._queue_token(0)
            self.goto("drain_send")
            return self.phase_drain_send(None)
        self.goto("receive")
        return sys("recv", self.in_fd, 65536)

    # -- steady state ------------------------------------------------------

    def _queue_token(self, token: int) -> None:
        self.seen.append(token)
        self.unsent = struct.pack(TOKEN_FORMAT, token) + \
            b"\x00" * self.padding

    def phase_receive(self, result):
        if result == b"":
            # Predecessor closed: ring is shutting down.
            self.goto("finish")
            return sys("close", self.in_fd)
        self.rx += result
        if len(self.rx) < self.record_bytes:
            return sys("recv", self.in_fd, 65536)
        record = self.rx[:self.record_bytes]
        self.rx = self.rx[self.record_bytes:]
        token = struct.unpack(TOKEN_FORMAT, record[:TOKEN_BYTES])[0]
        if token >= self.max_token:
            # The terminal token was already recorded by the rank that
            # queued it; don't record it twice.
            self.finished = True
            self.goto("finish")
            return sys("close", self.out_fd)
        self._queue_token(token + 1)
        if self.work_per_hop_s > 0:
            self.goto("work")
            return sys("compute", self.work_per_hop_s)
        self.goto("drain_send")
        return self.phase_drain_send(None)

    def phase_work(self, result):
        self.goto("drain_send")
        return self.phase_drain_send(None)

    def phase_drain_send(self, result):
        if isinstance(result, int):
            self.unsent = self.unsent[result:]
        if self.unsent:
            return sys("send", self.out_fd, self.unsent)
        self.goto("receive")
        return sys("recv", self.in_fd, 65536)

    def phase_finish(self, result):
        return Exit(0)


def ring_factory(n_ranks: int, port: int = 9500, max_token: int = 1000,
                 padding: int = 0, work_per_hop_s: float = 0.0):
    """A factory for :meth:`CruzCluster.launch_app_factory`."""

    def make(rank: int, peer_ips: List[str]) -> RingWorker:
        return RingWorker(rank=rank, peer_ips=peer_ips, port=port,
                          max_token=max_token, padding=padding,
                          work_per_hop_s=work_per_hop_s)

    return make


def validate_ring(workers: List[RingWorker]) -> None:
    """Assert the global exactly-once, in-order token invariant."""
    n = len(workers)
    all_tokens = []
    for worker in workers:
        tokens = worker.seen
        # Each rank's tokens form an arithmetic progression of stride n.
        for first, second in zip(tokens, tokens[1:]):
            if second - first != n and not (
                    worker.finished and second == tokens[-1]):
                raise AssertionError(
                    f"rank {worker.rank}: token jump {first} -> {second}")
        all_tokens.extend(tokens)
    if len(set(all_tokens)) != len(all_tokens):
        raise AssertionError("a token was seen twice (duplicate delivery)")
