"""Shared pytest plumbing: the ``--cruz-sanitize`` lane.

``pytest --cruz-sanitize`` runs every test with ``CRUZ_SANITIZE=1`` in
the environment, so each :class:`repro.cluster.Cluster` a test builds
installs a runtime sanitizer (see :mod:`repro.analysis.sanitize`).  At
test teardown the fixture collects the violations from every
environment-installed sanitizer and fails the test if any accumulated.

Tests that *want* violations (the negative cases in
``test_sanitizer.py``) construct their clusters with an explicit
``sanitize=True`` — those sanitizers never register in
``sanitize.ACTIVE`` and are therefore invisible to this fixture.
"""

import pytest

from repro.analysis import sanitize


def pytest_addoption(parser):
    parser.addoption(
        "--cruz-sanitize", action="store_true", default=False,
        help="run every test with the Cruz runtime invariant sanitizer "
             "enabled (CRUZ_SANITIZE=1) and fail on any violation")


@pytest.fixture(autouse=True)
def cruz_sanitize(request, monkeypatch):
    if not request.config.getoption("--cruz-sanitize"):
        yield
        return
    monkeypatch.setenv(sanitize.ENV_FLAG, "1")
    sanitize.ACTIVE.clear()
    yield
    violations = [violation for sanitizer in sanitize.ACTIVE
                  for violation in sanitizer.violations]
    sanitize.ACTIVE.clear()
    if violations:
        lines = "\n".join(v.render() for v in violations)
        pytest.fail(
            f"cruz sanitizer: {len(violations)} violation(s)\n{lines}")
