"""Wall-clock regression guard over pytest-benchmark reports.

``python -m repro bench --save`` records the Fig. 5 benchmark timings to
``benchmarks/BENCH_fig5.json``; ``python -m repro bench --compare`` re-runs
them and fails when any benchmark's mean regressed more than the tolerance
(20 % by default) against the committed baseline. The comparison itself is
pure-function so it is unit-testable without spawning pytest.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import tempfile
from dataclasses import dataclass
from typing import Dict, List

#: The Fig. 5 benchmarks the guard watches.
BENCH_FILES = [
    "benchmarks/test_fig5a_checkpoint_latency.py",
    "benchmarks/test_fig5b_coordination_overhead.py",
]
DEFAULT_BASELINE = "benchmarks/BENCH_fig5.json"
DEFAULT_TOLERANCE = 0.20


@dataclass
class Comparison:
    """One benchmark's baseline-vs-current verdict."""

    name: str
    baseline_s: float
    current_s: float
    tolerance: float

    @property
    def ratio(self) -> float:
        if self.baseline_s <= 0:
            return 1.0
        return self.current_s / self.baseline_s

    @property
    def regressed(self) -> bool:
        return self.ratio > 1.0 + self.tolerance


def load_report(path: str) -> Dict[str, float]:
    """benchmark name -> mean seconds, from a pytest-benchmark JSON."""
    with open(path, "r", encoding="utf-8") as handle:
        report = json.load(handle)
    return {bench["name"]: bench["stats"]["mean"]
            for bench in report.get("benchmarks", [])}


def compare_reports(baseline: Dict[str, float],
                    current: Dict[str, float],
                    tolerance: float = DEFAULT_TOLERANCE
                    ) -> List[Comparison]:
    """Compare means for every benchmark present in both reports."""
    rows = []
    for name in sorted(baseline):
        if name not in current:
            continue
        rows.append(Comparison(name=name, baseline_s=baseline[name],
                               current_s=current[name],
                               tolerance=tolerance))
    return rows


def run_benchmarks(json_path: str) -> int:
    """Run the Fig. 5 benchmarks, writing a pytest-benchmark report."""
    env = dict(os.environ)
    src = os.path.join(os.getcwd(), "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "") \
        if env.get("PYTHONPATH") else src
    command = [sys.executable, "-m", "pytest", *BENCH_FILES,
               "--benchmark-only", "-q",
               f"--benchmark-json={json_path}"]
    return subprocess.call(command, env=env)


def save_baseline(baseline_path: str = DEFAULT_BASELINE) -> int:
    from repro.bench.harness import baseline_cli

    def run():
        # pytest-benchmark writes the baseline artifact itself; a failed
        # run leaves nothing worth recording.
        if run_benchmarks(baseline_path) != 0:
            print("benchmark run failed", file=sys.stderr)
            return None
        return load_report(baseline_path)

    return baseline_cli(
        baseline_path=baseline_path, save=True, suite="fig5",
        run=run,
        evaluate=lambda report, baseline: [],
        render=lambda report, _baseline: [
            f"recorded means for {len(report)} benchmarks"],
        write=lambda path, report: None)  # run() already wrote the file


def check_regression(baseline_path: str = DEFAULT_BASELINE,
                     tolerance: float = DEFAULT_TOLERANCE) -> int:
    """Re-run the benchmarks and compare; exit status 1 on regression."""
    from repro.bench.harness import baseline_cli

    def run():
        with tempfile.TemporaryDirectory() as tmp:
            current_path = os.path.join(tmp, "bench.json")
            if run_benchmarks(current_path) != 0:
                print("benchmark run failed", file=sys.stderr)
                return None
            return load_report(current_path)

    def _render(current, baseline):
        lines = []
        for row in compare_reports(baseline, current,
                                   tolerance=tolerance):
            verdict = "REGRESSED" if row.regressed else "ok"
            lines.append(f"{row.name}: baseline {row.baseline_s:.4f}s "
                         f"current {row.current_s:.4f}s "
                         f"({row.ratio:.2f}x baseline) {verdict}")
        return lines

    def _evaluate(current, baseline):
        rows = compare_reports(baseline, current, tolerance=tolerance)
        if not rows:
            return ["no overlapping benchmarks between baseline and "
                    "current"]
        return [f"{row.name}: wall-clock regression exceeds "
                f"{tolerance:.0%} tolerance ({row.ratio:.2f}x baseline)"
                for row in rows if row.regressed]

    return baseline_cli(
        baseline_path=baseline_path, save=False, suite="fig5",
        run=run, evaluate=_evaluate, render=_render,
        load=load_report, require_baseline=True)
