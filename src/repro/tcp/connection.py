"""The TCP connection engine.

Implements enough of RFC 793/1122/5681/6298 to honour the properties the
paper's coordinated-checkpoint correctness argument relies on:

* cumulative acknowledgements over a packetised send buffer,
* retransmission with exponential backoff (how dropped in-flight packets are
  recovered after a checkpoint's netfilter window),
* fast retransmit on three duplicate ACKs,
* slow start / congestion avoidance (shapes the Fig. 6 recovery curve),
* the Nagle algorithm and TCP_CORK (must be disabled during restore so
  re-issued sends keep their packet boundaries),
* flow control with zero-window probing (a window-update ACK dropped by the
  checkpoint filter must not wedge the connection),
* connection setup/teardown including TIME_WAIT.

The engine is transport-only: it hands finished segments to a ``transmit``
callable and is fed by ``on_segment``; IP/Ethernet, ARP and netfilter live in
the host network stack.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.errors import TcpError
from repro.net.addresses import Ipv4Address
from repro.net.packet import (TCP_ACK, TCP_FIN, TCP_PSH, TCP_RST, TCP_SYN, TcpSegment)
from repro.sim.core import Event, Simulator
from repro.sim.timers import TimerHandle, timers_for
from repro.tcp.buffers import ReceiveBuffer, SendBuffer
from repro.tcp.state import (
    SYNCHRONISED_STATES,
    TcpState,
    TransmissionControlBlock,
)

#: Delayed-ACK timer (Linux 2.4 used up to HZ/25 = 40 ms).
DELAYED_ACK_DELAY = 0.04
#: Duplicate ACKs that trigger fast retransmit.
DUPACK_THRESHOLD = 3
#: Keepalive: idle time before probing, probe interval, probes before
#: giving up. Real stacks default to hours; simulations shrink these.
KEEPALIVE_IDLE = 10.0
KEEPALIVE_INTERVAL = 2.0
KEEPALIVE_PROBES = 4
#: 2*MSL for TIME_WAIT. Real stacks use 60–240 s; tests may shrink it.
DEFAULT_TIME_WAIT = 60.0

TransmitFn = Callable[[TcpSegment, Ipv4Address, Ipv4Address], None]


class TcpConnection:
    """One endpoint of a TCP connection."""

    def __init__(self, sim: Simulator, tcb: TransmissionControlBlock,
                 transmit: TransmitFn, name: str = "",
                 time_wait_s: float = DEFAULT_TIME_WAIT):
        self.sim = sim
        self.tcb = tcb
        self.transmit = transmit
        self.name = name or f"tcp:{tcb.local_ip}:{tcb.local_port}"
        self.time_wait_s = time_wait_s

        options = tcb.options
        self.send_buffer = SendBuffer(options.send_buffer_bytes)
        self.receive_buffer = ReceiveBuffer(
            options.recv_buffer_bytes, rcv_nxt=tcb.rcv_nxt)

        self.established_event: Event = sim.event(f"{self.name}.established")
        self.closed_event: Event = sim.event(f"{self.name}.closed")
        self.on_readable: List[Callable[[], None]] = []
        self.on_writable: List[Callable[[], None]] = []
        self.on_close: List[Callable[[], None]] = []

        self.frozen = False
        self._close_requested = False
        self._fin_received = False
        self._dupacks = 0
        self._segments_since_ack = 0
        #: All connection timers live on the simulator's shared timer
        #: wheel: arming appends to a slot (one firing event per slot,
        #: not per segment) and cancellation is a flag write.
        self._timers = timers_for(sim)
        self._lazy_restart = self._timers.LAZY_RESTART
        self._rtx_timer: Optional[TimerHandle] = None
        self._rtx_deadline = -1.0
        #: Loss-recovery window: retransmit up to here on partial ACKs.
        self._recover_until = 0
        self._recovery_started = -1.0
        self._ack_timer: Optional[TimerHandle] = None
        self._probe_timer: Optional[TimerHandle] = None
        self._probe_interval = 0.0
        self._keepalive_timer: Optional[TimerHandle] = None
        self._keepalive_misses = 0
        self._last_activity = sim.now
        self._syn_sent_at = -1.0
        self._on_teardown: List[Callable[["TcpConnection"], None]] = []

        # Metrics the benchmarks read.
        self.bytes_sent = 0
        self.bytes_delivered = 0
        self.segments_transmitted = 0
        self.segments_retransmitted = 0
        self.timeouts = 0
        self.fast_retransmits = 0

        #: Cluster telemetry hub (a :class:`repro.sim.trace.Trace`) and
        #: the owning node's name; set by :meth:`TcpStack.register` so
        #: retransmit/drain events land in the span timeline and the
        #: typed metrics registry. ``None`` outside a cluster.
        self.telemetry = None
        self.telemetry_node = ""

        if tcb.cwnd == 0:
            tcb.cwnd = 2 * options.mss

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def open_active(self) -> None:
        """Send a SYN (active open)."""
        tcb = self.tcb
        if tcb.state != TcpState.CLOSED:
            raise TcpError(f"{self.name}: active open in state {tcb.state}")
        tcb.snd_una = tcb.iss
        tcb.snd_nxt = tcb.iss + 1
        tcb.state = TcpState.SYN_SENT
        self._syn_sent_at = self.sim.now
        self._emit(TCP_SYN, seq=tcb.iss)
        self._arm_rtx_timer()

    def open_passive_reply(self) -> None:
        """Reply SYN|ACK from SYN_RCVD (used by the listener)."""
        tcb = self.tcb
        tcb.snd_una = tcb.iss
        tcb.snd_nxt = tcb.iss + 1
        self._syn_sent_at = self.sim.now
        self._emit(TCP_SYN | TCP_ACK, seq=tcb.iss)
        self._arm_rtx_timer()

    def on_teardown(self, callback: Callable[["TcpConnection"], None]) -> None:
        self._on_teardown.append(callback)

    def _teardown(self) -> None:
        self._cancel_timers()
        if not self.closed_event.triggered:
            self.closed_event.succeed()
        for callback in list(self._on_teardown):
            callback(self)
        for callback in list(self.on_close):
            callback()

    # ------------------------------------------------------------------
    # Application-facing API (called by the socket layer)
    # ------------------------------------------------------------------

    @property
    def state(self) -> TcpState:
        return self.tcb.state

    @property
    def send_space(self) -> int:
        return self.send_buffer.free_space

    @property
    def available(self) -> int:
        return self.receive_buffer.available

    @property
    def peer_closed(self) -> bool:
        return self._fin_received

    def send(self, data: bytes) -> int:
        """Queue application data; returns the number of bytes accepted."""
        if self.tcb.state not in (TcpState.ESTABLISHED, TcpState.CLOSE_WAIT):
            raise TcpError(f"{self.name}: send in state {self.tcb.state}")
        if self._close_requested:
            raise TcpError(f"{self.name}: send after close")
        accepted = self.send_buffer.accept(data)
        self.bytes_sent += accepted
        if accepted:
            self._output()
        return accepted

    def read(self, max_bytes: int, peek: bool = False) -> bytes:
        """Deliver buffered in-order bytes to the application."""
        window_was_zero = self.receive_buffer.window == 0
        chunk = self.receive_buffer.read(max_bytes, peek=peek)
        if not peek:
            self.bytes_delivered += len(chunk)
            if window_was_zero and chunk and not self.frozen:
                self._send_ack()  # window update
        return chunk

    def close(self) -> None:
        """Graceful close: FIN once the send buffer drains."""
        if self._close_requested:
            return
        self._close_requested = True
        tcb = self.tcb
        if tcb.state in (TcpState.CLOSED, TcpState.LISTEN):
            tcb.state = TcpState.CLOSED
            self._teardown()
            return
        if tcb.state == TcpState.SYN_SENT:
            tcb.state = TcpState.CLOSED
            self._teardown()
            return
        self._output()

    def destroy(self) -> None:
        """Tear down silently — no FIN, no RST.

        Used when a pod migrates away: the origin node's connection state
        simply vanishes; the restored instance elsewhere carries on the
        conversation, so nothing may be signalled to the peer.
        """
        self.tcb.state = TcpState.CLOSED
        self._teardown()

    def abort(self) -> None:
        """Hard close: send RST, drop all state."""
        tcb = self.tcb
        if tcb.state in SYNCHRONISED_STATES:
            self._emit(TCP_RST | TCP_ACK, seq=tcb.snd_nxt)
        tcb.state = TcpState.CLOSED
        if not self.established_event.triggered:
            self.established_event.fail(
                TcpError(f"{self.name}: connection aborted"))
        self._teardown()

    # ------------------------------------------------------------------
    # Checkpoint support
    # ------------------------------------------------------------------

    def freeze(self) -> None:
        """Stop transmitting/delivering while state is captured (§4.1).

        The analogue of Zap acquiring the kernel's network spin locks: timer
        fires and incoming segments are ignored until :meth:`unfreeze`.
        """
        self.frozen = True

    def unfreeze(self) -> None:
        self.frozen = False
        if self.tcb.state == TcpState.CLOSED:
            return
        pending = self.receive_buffer.available
        if pending > 0:
            # Bytes that queued up during the freeze drain to the
            # application now — the post-checkpoint recovery pulse that
            # Fig. 6 plots.
            self._note("tcp.drains", instant="tcp.drain", nbytes=pending)
            if self.telemetry is not None:
                self.telemetry.metrics.histogram(
                    "tcp.drain_bytes").observe(pending)
        self._arm_rtx_timer()
        self._output()

    def _note(self, counter: str, instant: str = "", **attrs) -> None:
        """Count into the cluster metrics registry (and optionally drop
        an instant on the span timeline) when telemetry is wired."""
        if self.telemetry is None:
            return
        self.telemetry.metrics.counter(counter).inc(
            label=self.telemetry_node)
        if instant:
            self.telemetry.spans.instant(
                instant, node=self.telemetry_node, conn=self.name,
                **attrs)

    @classmethod
    def restore(cls, sim: Simulator, tcb: TransmissionControlBlock,
                transmit: TransmitFn, name: str = "",
                time_wait_s: float = DEFAULT_TIME_WAIT) -> "TcpConnection":
        """Recreate a connection from a checkpointed TCB.

        The TCB must be a :meth:`TransmissionControlBlock.
        snapshot_for_checkpoint` copy — i.e. it already reflects empty
        buffers. The caller re-issues the saved send-buffer data through
        :meth:`send` (with Nagle/CORK disabled) and parks the saved
        receive-buffer bytes in the socket's alternate buffer.
        """
        conn = cls(sim, tcb, transmit, name=name, time_wait_s=time_wait_s)
        if tcb.state in SYNCHRONISED_STATES and tcb.state != TcpState.TIME_WAIT:
            conn.established_event.succeed(conn)
            if tcb.state in (TcpState.CLOSE_WAIT, TcpState.CLOSING,
                             TcpState.LAST_ACK):
                conn._fin_received = True
        elif tcb.state == TcpState.TIME_WAIT:
            conn.established_event.succeed(conn)
            conn._enter_time_wait()
        return conn

    def send_exact(self, payload: bytes) -> None:
        """Re-issue one checkpointed packet (restore path, §4.1).

        The analogue of the per-packet ``send`` calls Cruz issues with the
        Nagle algorithm and TCP_CORK disabled: exactly one segment is
        queued and transmitted, preserving the recorded packet boundary,
        bypassing congestion/flow gating (the bytes were already within the
        peer's window when originally sent).
        """
        tcb = self.tcb
        if len(payload) > tcb.options.mss:
            raise TcpError(
                f"checkpointed packet of {len(payload)} bytes exceeds "
                f"MSS {tcb.options.mss}")
        if self.send_buffer.pending:
            raise TcpError("send_exact while unsegmented data is pending")
        if self.send_buffer.accept(payload) != len(payload):
            raise TcpError("send buffer too small for checkpointed packet")
        self.send_buffer.segmentize(tcb.snd_nxt, len(payload))
        segment = self.send_buffer.segments[-1]
        segment.transmit_count = 1
        segment.last_sent_at = self.sim.now
        self._emit(TCP_ACK | TCP_PSH, seq=segment.seq,
                   payload=payload)
        tcb.snd_nxt += len(payload)
        self._arm_rtx_timer()

    # ------------------------------------------------------------------
    # Output path
    # ------------------------------------------------------------------

    def _emit(self, flags: int, seq: int, payload: bytes = b"") -> None:
        tcb = self.tcb
        ack = tcb.rcv_nxt if flags & TCP_ACK else 0
        segment = TcpSegment(
            src_port=tcb.local_port, dst_port=tcb.remote_port,
            seq=seq, ack=ack, flags=flags,
            window=self.receive_buffer.window, payload=payload)
        self.segments_transmitted += 1
        self._segments_since_ack = 0
        self._cancel_ack_timer()
        self.transmit(segment, tcb.local_ip, tcb.remote_ip)

    def _usable_window(self) -> int:
        tcb = self.tcb
        window = min(tcb.snd_wnd, tcb.cwnd)
        return max(0, window - tcb.flight_size)

    def _nagle_blocks(self, chunk_len: int) -> bool:
        """True if Nagle/CORK says to hold back a sub-MSS segment."""
        options = self.tcb.options
        if chunk_len >= options.mss:
            return False
        if options.cork:
            return True
        if not options.nagle_enabled:
            return False
        return self.tcb.flight_size > 0

    def _output(self) -> None:
        """Transmit as much pending data as windows and Nagle allow."""
        if self.frozen:
            return
        tcb = self.tcb
        if tcb.state not in (TcpState.ESTABLISHED, TcpState.CLOSE_WAIT,
                             TcpState.FIN_WAIT_1, TcpState.CLOSING,
                             TcpState.LAST_ACK):
            return
        sent_something = False
        while self.send_buffer.pending:
            usable = self._usable_window()
            if usable <= 0:
                self._arm_probe_timer()
                break
            chunk_len = min(len(self.send_buffer.pending),
                            tcb.options.mss, usable)
            if self._nagle_blocks(min(len(self.send_buffer.pending),
                                      tcb.options.mss)):
                break
            payload = self.send_buffer.segmentize(tcb.snd_nxt, chunk_len)
            if payload is None:
                break
            segment = self.send_buffer.segments[-1]
            segment.transmit_count = 1
            segment.last_sent_at = self.sim.now
            self._emit(TCP_ACK | TCP_PSH, seq=segment.seq,
                       payload=payload)
            tcb.snd_nxt += len(payload)
            sent_something = True
        if (self._close_requested and not self.send_buffer.pending
                and tcb.fin_seq is None
                and tcb.state in (TcpState.ESTABLISHED, TcpState.CLOSE_WAIT)):
            self._send_fin()
            sent_something = True
        if sent_something:
            self._arm_rtx_timer()
        for callback in list(self.on_writable):
            if self.send_space > 0:
                callback()

    def _send_fin(self) -> None:
        tcb = self.tcb
        tcb.fin_seq = tcb.snd_nxt
        self._emit(TCP_FIN | TCP_ACK, seq=tcb.snd_nxt)
        tcb.snd_nxt += 1
        if tcb.state == TcpState.ESTABLISHED:
            tcb.state = TcpState.FIN_WAIT_1
        elif tcb.state == TcpState.CLOSE_WAIT:
            tcb.state = TcpState.LAST_ACK
        self._arm_rtx_timer()

    def _send_ack(self) -> None:
        self._emit(TCP_ACK, seq=self.tcb.snd_nxt)

    # ------------------------------------------------------------------
    # Timers
    # ------------------------------------------------------------------

    def _cancel_timers(self) -> None:
        self._cancel_rtx_timer()
        self._cancel_ack_timer()
        self._cancel_probe_timer()
        if self._keepalive_timer is not None:
            self._keepalive_timer.cancel()
            self._keepalive_timer = None

    # -- keepalive ---------------------------------------------------------

    def start_keepalive(self) -> None:
        """Arm SO_KEEPALIVE probing (idle detection of dead peers)."""
        if self._keepalive_timer is not None:
            return
        self._keepalive_timer = self._timers.after(
            KEEPALIVE_IDLE, self._on_keepalive_timeout)

    def _on_keepalive_timeout(self) -> None:
        self._keepalive_timer = None
        tcb = self.tcb
        if tcb.state == TcpState.CLOSED or not tcb.options.keepalive:
            return
        if self.frozen:
            self._keepalive_timer = self._timers.after(
                KEEPALIVE_INTERVAL, self._on_keepalive_timeout)
            return
        idle = self.sim.now - self._last_activity
        if idle < KEEPALIVE_IDLE - 1e-9:  # epsilon: avoid FP respin
            self._keepalive_timer = self._timers.after(
                KEEPALIVE_IDLE - idle, self._on_keepalive_timeout)
            return
        if self._keepalive_misses >= KEEPALIVE_PROBES:
            # Peer is gone: reset locally (ETIMEDOUT in real stacks).
            self._fin_received = True
            for callback in list(self.on_readable):
                callback()
            tcb.state = TcpState.CLOSED
            self._teardown()
            return
        self._keepalive_misses += 1
        # The classic probe: a zero-length segment at snd_nxt - 1. It is
        # outside the peer's window, which obliges a live peer to ACK.
        self._emit(TCP_ACK, seq=tcb.snd_nxt - 1)
        self._keepalive_timer = self._timers.after(
            KEEPALIVE_INTERVAL, self._on_keepalive_timeout)

    def _arm_rtx_timer(self) -> None:
        if self.tcb.flight_size == 0 and self.tcb.state not in (
                TcpState.SYN_SENT, TcpState.SYN_RCVD):
            return
        deadline = self.sim.now + self.tcb.rto
        if self._rtx_timer is not None and self._rtx_timer.active \
                and self._rtx_deadline <= deadline:
            return
        self._cancel_rtx_timer()
        self._rtx_deadline = deadline
        self._rtx_timer = self._timers.after(
            self.tcb.rto, self._on_rtx_timeout)

    def _restart_rtx_timer(self) -> None:
        """Reset the RTO deadline to ``now + rto`` after an ACK.

        With the timer wheel this is the kernel's ``mod_timer``
        discipline: keep the armed slot, move only the logical
        deadline, and let a stale firing re-arm itself for the
        remainder — one float store per ACK instead of a cancel plus a
        fresh timer. Under ``DirectTimers`` (the legacy scheduler
        preset) it degrades to the pre-refactor cancel-and-re-arm so
        the benchmark baseline keeps the old cost model.
        """
        deadline = self.sim.now + self.tcb.rto
        timer = self._rtx_timer
        if timer is not None and timer.active:
            if self._lazy_restart and deadline >= timer.deadline:
                self._rtx_deadline = deadline
                return
            timer.cancel()
        self._rtx_deadline = deadline
        self._rtx_timer = self._timers.after(
            self.tcb.rto, self._on_rtx_timeout)

    def _cancel_rtx_timer(self) -> None:
        if self._rtx_timer is not None:
            self._rtx_timer.cancel()
            self._rtx_timer = None

    def _on_rtx_timeout(self) -> None:
        self._rtx_timer = None
        tcb = self.tcb
        remaining = self._rtx_deadline - self.sim.now
        if remaining > 1e-12:
            # Stale firing: ACKs pushed the logical deadline back while
            # the original slot stayed armed (lazy restart). Re-arm for
            # the remainder; nothing has timed out.
            self._rtx_timer = self._timers.after(
                remaining, self._on_rtx_timeout)
            return
        if self.frozen:
            # The spin-lock window: defer, do not lose the timer.
            self._rtx_timer = self._timers.after(
                tcb.rto, self._on_rtx_timeout)
            return
        if tcb.state == TcpState.CLOSED:
            return
        if tcb.state in (TcpState.SYN_SENT, TcpState.SYN_RCVD):
            self.timeouts += 1
            tcb.backoff()
            if tcb.backoff_count > 6:
                if not self.established_event.triggered:
                    self.established_event.fail(
                        TcpError(f"{self.name}: connect timed out"))
                tcb.state = TcpState.CLOSED
                self._teardown()
                return
            flags = TCP_SYN if tcb.state == TcpState.SYN_SENT \
                else TCP_SYN | TCP_ACK
            self._emit(flags, seq=tcb.iss)
            self._arm_rtx_timer()
            return
        oldest = self.send_buffer.oldest_unacked()
        if oldest is None and tcb.fin_seq is not None and not tcb.fin_acked:
            self.timeouts += 1
            tcb.backoff()
            self._emit(TCP_FIN | TCP_ACK, seq=tcb.fin_seq)
            self._arm_rtx_timer()
            return
        if oldest is None:
            return
        # RFC 5681 timeout response: collapse to slow start and back off.
        self.timeouts += 1
        self._note("tcp.timeouts")
        tcb.ssthresh = max(tcb.flight_size // 2, 2 * tcb.options.mss)
        tcb.cwnd = tcb.options.mss
        tcb.backoff()
        # Enter loss recovery: everything sent so far may be gone; it is
        # retransmitted as partial ACKs open the (slow-started) window.
        self._recover_until = tcb.snd_nxt
        self._recovery_started = self.sim.now
        self._retransmit(oldest)
        self._arm_rtx_timer()

    def _retransmit(self, segment) -> None:
        segment.transmit_count += 1
        segment.last_sent_at = self.sim.now
        self.segments_retransmitted += 1
        self._note("tcp.retransmits", instant="tcp.retransmit",
                   seq=segment.seq, nbytes=len(segment.payload))
        self._emit(TCP_ACK | TCP_PSH, seq=segment.seq,
                   payload=segment.payload)

    def _arm_ack_timer(self) -> None:
        if self._ack_timer is not None:
            return
        self._ack_timer = self._timers.after(
            DELAYED_ACK_DELAY, self._on_ack_timeout)

    def _cancel_ack_timer(self) -> None:
        if self._ack_timer is not None:
            self._ack_timer.cancel()
            self._ack_timer = None

    def _on_ack_timeout(self) -> None:
        self._ack_timer = None
        if self.frozen or self.tcb.state == TcpState.CLOSED:
            return
        if self._segments_since_ack > 0:
            self._send_ack()

    def _arm_probe_timer(self) -> None:
        """Zero-window probe: keeps flow alive if a window update is lost."""
        if self._probe_timer is not None:
            return
        if self._probe_interval <= 0:
            self._probe_interval = max(self.tcb.rto, 0.2)
        self._probe_timer = self._timers.after(
            self._probe_interval, self._on_probe_timeout)

    def _cancel_probe_timer(self) -> None:
        if self._probe_timer is not None:
            self._probe_timer.cancel()
            self._probe_timer = None
        self._probe_interval = 0.0

    def _on_probe_timeout(self) -> None:
        self._probe_timer = None
        if self.frozen or self.tcb.state == TcpState.CLOSED:
            return
        tcb = self.tcb
        if tcb.snd_wnd > 0 or not self.send_buffer.pending:
            self._probe_interval = 0.0
            self._output()
            return
        oldest = self.send_buffer.oldest_unacked()
        if oldest is not None:
            # An unacked probe/segment already sits in the window: re-send
            # it rather than consuming new sequence space.
            self._retransmit(oldest)
        else:
            # Send a one-byte probe beyond the advertised window.
            payload = self.send_buffer.segmentize(tcb.snd_nxt, 1)
            if payload is not None:
                segment = self.send_buffer.segments[-1]
                segment.transmit_count = 1
                segment.last_sent_at = self.sim.now
                self._emit(TCP_ACK | TCP_PSH, seq=segment.seq,
                           payload=payload)
                tcb.snd_nxt += 1
                self._arm_rtx_timer()
        self._probe_interval = min(self._probe_interval * 2, 60.0)
        self._arm_probe_timer()

    def _enter_time_wait(self) -> None:
        self.tcb.state = TcpState.TIME_WAIT
        self._cancel_rtx_timer()
        self._timers.after(self.time_wait_s, self._time_wait_expired)

    def _time_wait_expired(self) -> None:
        if self.tcb.state == TcpState.TIME_WAIT:
            self.tcb.state = TcpState.CLOSED
            self._teardown()

    # ------------------------------------------------------------------
    # Input path
    # ------------------------------------------------------------------

    def on_segment(self, segment: TcpSegment) -> None:
        """Process one incoming segment (already demuxed by the stack).

        Under ``CRUZ_SANITIZE`` the §5.1 sequence invariants
        (``snd_una <= snd_nxt``, monotonic ``rcv_nxt``, receive buffer
        in sync with the TCB) are re-checked after every segment,
        whatever path it took through the state machine.
        """
        try:
            self._on_segment(segment)
        finally:
            if self.telemetry is not None \
                    and self.telemetry.sanitizer is not None \
                    and not self.frozen:
                self.telemetry.sanitizer.check_tcp_segment(
                    self, time=self.sim.now)

    def _on_segment(self, segment: TcpSegment) -> None:
        if self.frozen:
            return  # dropped exactly like the netfilter rule would
        self._last_activity = self.sim.now
        self._keepalive_misses = 0
        tcb = self.tcb
        state = tcb.state
        if state == TcpState.CLOSED:
            return
        if segment.flags & TCP_RST:
            self._on_rst(segment)
            return
        if state == TcpState.SYN_SENT:
            self._on_segment_syn_sent(segment)
            return
        if state == TcpState.SYN_RCVD and segment.flags & TCP_SYN:
            # Duplicate SYN: re-send SYN|ACK.
            self._emit(TCP_SYN | TCP_ACK, seq=tcb.iss)
            return
        if segment.flags & TCP_SYN and state in SYNCHRONISED_STATES:
            # SYN in a synchronised state: stale duplicate; ack and ignore.
            self._send_ack()
            return
        if segment.flags & TCP_ACK:
            self._process_ack(segment)
        if tcb.state == TcpState.CLOSED:
            return
        if segment.payload:
            self._process_payload(segment)
        if segment.flags & TCP_FIN:
            self._process_fin(segment)
        elif not segment.payload and segment.seq < tcb.rcv_nxt and \
                tcb.state in SYNCHRONISED_STATES:
            # Zero-length segment below the window (a keepalive probe):
            # RFC 793 obliges an ACK for unacceptable segments.
            self._send_ack()

    def _on_rst(self, segment: TcpSegment) -> None:
        tcb = self.tcb
        # Accept RST only if it is in-window (rough check).
        if tcb.state in SYNCHRONISED_STATES and segment.seq != tcb.rcv_nxt:
            return
        tcb.state = TcpState.CLOSED
        if not self.established_event.triggered:
            self.established_event.fail(
                TcpError(f"{self.name}: connection reset"))
        self._fin_received = True  # readers must wake and see EOF/reset
        for callback in list(self.on_readable):
            callback()
        self._teardown()

    def _on_segment_syn_sent(self, segment: TcpSegment) -> None:
        tcb = self.tcb
        if not segment.flags & TCP_SYN:
            return
        tcb.irs = segment.seq
        tcb.rcv_nxt = segment.seq + 1
        self.receive_buffer.rcv_nxt = tcb.rcv_nxt
        tcb.snd_wnd = segment.window
        if segment.flags & TCP_ACK and segment.ack == tcb.snd_nxt:
            tcb.snd_una = segment.ack
            tcb.state = TcpState.ESTABLISHED
            if self._syn_sent_at >= 0:
                tcb.update_rtt(self.sim.now - self._syn_sent_at)
            self._cancel_rtx_timer()
            self._send_ack()
            if not self.established_event.triggered:
                self.established_event.succeed(self)
            self._output()
        else:
            # Simultaneous open.
            tcb.state = TcpState.SYN_RCVD
            self._emit(TCP_SYN | TCP_ACK, seq=tcb.iss)

    def _process_ack(self, segment: TcpSegment) -> None:
        tcb = self.tcb
        ack = segment.ack
        if tcb.state == TcpState.SYN_RCVD:
            if ack == tcb.snd_nxt:
                tcb.state = TcpState.ESTABLISHED
                tcb.snd_una = ack
                tcb.snd_wnd = segment.window
                if self._syn_sent_at >= 0:
                    tcb.update_rtt(self.sim.now - self._syn_sent_at)
                self._cancel_rtx_timer()
                if not self.established_event.triggered:
                    self.established_event.succeed(self)
                self._output()
            return
        if ack > tcb.snd_nxt:
            # Acks data we never sent; ack back and ignore.
            self._send_ack()
            return
        old_una = tcb.snd_una
        if ack > tcb.snd_una:
            self._dupacks = 0
            # RTT sample per Karn's algorithm: only segments sent once.
            for buffered in self.send_buffer.segments:
                if buffered.end == ack and buffered.transmit_count == 1:
                    tcb.update_rtt(self.sim.now - buffered.last_sent_at)
                    break
            newly_acked = ack - old_una
            self.send_buffer.acknowledge(ack)
            tcb.snd_una = ack
            tcb.ack_progress()
            if tcb.fin_seq is not None and ack > tcb.fin_seq:
                tcb.fin_acked = True
            self._grow_cwnd(newly_acked)
            if tcb.flight_size == 0:
                self._cancel_rtx_timer()
            else:
                self._restart_rtx_timer()
            if tcb.snd_una < self._recover_until:
                # NewReno-style partial ACK: keep retransmitting through
                # the loss window as cwnd allows.
                self._retransmit_recovery_window()
            self._advance_close_states()
        elif ack == tcb.snd_una and tcb.flight_size > 0 \
                and not segment.payload and not segment.flags & TCP_FIN:
            self._dupacks += 1
            if self._dupacks == DUPACK_THRESHOLD:
                self._fast_retransmit()
        tcb.snd_wnd = segment.window
        if tcb.snd_wnd > 0:
            self._cancel_probe_timer()
        if tcb.state != TcpState.CLOSED:
            self._output()

    def _grow_cwnd(self, newly_acked: int) -> None:
        tcb = self.tcb
        mss = tcb.options.mss
        if tcb.cwnd < tcb.ssthresh:
            tcb.cwnd += min(newly_acked, mss)  # slow start
        else:
            tcb.cwnd += max(1, mss * mss // tcb.cwnd)  # congestion avoidance

    def _retransmit_recovery_window(self) -> None:
        """Resend not-yet-resent segments below the recovery point."""
        tcb = self.tcb
        budget = min(tcb.cwnd, max(tcb.snd_wnd, tcb.options.mss))
        used = 0
        resent_any = False
        for segment in self.send_buffer.segments:
            if segment.seq >= self._recover_until:
                break
            size = len(segment.payload)
            if segment.last_sent_at >= self._recovery_started:
                used += size  # already retransmitted this recovery
                continue
            if used + size > budget:
                break
            self._retransmit(segment)
            resent_any = True
            used += size
        if resent_any:
            self._arm_rtx_timer()

    def _fast_retransmit(self) -> None:
        tcb = self.tcb
        oldest = self.send_buffer.oldest_unacked()
        if oldest is None:
            return
        self.fast_retransmits += 1
        self._note("tcp.fast_retransmits")
        tcb.ssthresh = max(tcb.flight_size // 2, 2 * tcb.options.mss)
        tcb.cwnd = tcb.ssthresh
        self._retransmit(oldest)
        self._arm_rtx_timer()

    def _advance_close_states(self) -> None:
        tcb = self.tcb
        if tcb.state == TcpState.FIN_WAIT_1 and tcb.fin_acked:
            tcb.state = TcpState.FIN_WAIT_2
        elif tcb.state == TcpState.CLOSING and tcb.fin_acked:
            self._enter_time_wait()
        elif tcb.state == TcpState.LAST_ACK and tcb.fin_acked:
            tcb.state = TcpState.CLOSED
            self._teardown()

    def _process_payload(self, segment: TcpSegment) -> None:
        tcb = self.tcb
        before = self.receive_buffer.available
        self.receive_buffer.store(segment.seq, segment.payload)
        tcb.rcv_nxt = self.receive_buffer.rcv_nxt
        delivered = self.receive_buffer.available - before
        if segment.seq != tcb.rcv_nxt - len(segment.payload) and delivered == 0:
            # Out-of-order or duplicate: immediate dup-ACK for fast rtx.
            self._send_ack()
        else:
            self._segments_since_ack += 1
            if self._segments_since_ack >= 2:
                self._send_ack()
            else:
                self._arm_ack_timer()
        if delivered > 0:
            for callback in list(self.on_readable):
                callback()

    def _process_fin(self, segment: TcpSegment) -> None:
        tcb = self.tcb
        fin_seq = segment.seq + len(segment.payload)
        if fin_seq != tcb.rcv_nxt:
            return  # FIN not yet in order
        tcb.rcv_nxt += 1
        self.receive_buffer.rcv_nxt = tcb.rcv_nxt
        self._fin_received = True
        self._send_ack()
        if tcb.state == TcpState.ESTABLISHED:
            tcb.state = TcpState.CLOSE_WAIT
        elif tcb.state == TcpState.FIN_WAIT_1:
            tcb.state = TcpState.CLOSING if not tcb.fin_acked \
                else TcpState.TIME_WAIT
            if tcb.state == TcpState.TIME_WAIT:
                self._enter_time_wait()
        elif tcb.state == TcpState.FIN_WAIT_2:
            self._enter_time_wait()
        for callback in list(self.on_readable):
            callback()

    def __repr__(self) -> str:
        tcb = self.tcb
        return (f"<TcpConnection {self.name} {tcb.state.value} "
                f"una={tcb.snd_una} nxt={tcb.snd_nxt} rcv={tcb.rcv_nxt}>")
