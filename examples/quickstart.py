#!/usr/bin/env python
"""Quickstart: checkpoint and restart a live TCP service, transparently.

Builds a three-node simulated cluster, runs a key-value server inside a
Cruz pod, drives it from an *unmodified* client on another machine, and
live-migrates the server mid-conversation. The client never notices.

Run:  python examples/quickstart.py
"""

from repro.apps.kvserver import KvClient, KvServer
from repro.cruz.cluster import CruzCluster


def main():
    # Node 0 and 1 host applications; node 2 hosts the coordinator.
    cluster = CruzCluster(n_app_nodes=2)

    # A pod is Zap's migratable container: its own IP, MAC, PIDs.
    pod = cluster.create_pod(node_index=0, name="kv")
    pod.spawn(KvServer())
    print(f"kv server in pod {pod.name!r} at {pod.ip} on {pod.node.name}")

    # A plain client outside any pod, on the coordinator node.
    requests = [{"op": "put", "key": f"k{i}", "value": i} for i in range(50)]
    requests += [{"op": "get", "key": f"k{i}"} for i in range(50)]
    client = cluster.coordinator_node.spawn(
        KvClient(str(pod.ip), requests, think_time_s=0.01))

    # Let the conversation get going...
    cluster.run_for(0.2)
    print(f"t={cluster.sim.now:.2f}s  client completed "
          f"{client.program.index}/{len(requests)} requests")

    # ...then move the server to another machine, mid-stream.
    print("live-migrating the pod to node1 "
          "(checkpoint -> kill -> restart)...")
    new_pod = cluster.migrate_pod(pod, target_node_index=1)
    print(f"t={cluster.sim.now:.2f}s  pod now on {new_pod.node.name}, "
          f"same address {new_pod.ip}")

    # The client finishes against the migrated server.
    cluster.run_until(lambda: not client.is_alive, limit=120, step=0.1)
    responses = client.program.responses
    assert client.exit_code == 0
    assert all(r["ok"] for r in responses)
    assert [r["value"] for r in responses[50:]] == list(range(50))
    print(f"t={cluster.sim.now:.2f}s  client finished: "
          f"{len(responses)} responses, all correct — migration was "
          f"invisible")


if __name__ == "__main__":
    main()
