"""Cruz: application-transparent distributed checkpoint-restart.

The paper's two contributions:

1. saving and restoring the state of live TCP connections
   (:mod:`repro.cruz.netstate`);
2. a lightweight coordinated checkpoint-restart protocol that drops
   in-flight packets instead of flushing channels
   (:mod:`repro.cruz.coordinator` / :mod:`repro.cruz.agent`).

:class:`repro.cruz.cluster.CruzCluster` is the high-level entry point.
"""

from repro.cruz.agent import CheckpointAgent
from repro.cruz.faults import ControlFaultInjector, FaultPlan
from repro.cruz.consistency import (
    ChannelVerdict,
    ConsistencyReport,
    check_app_checkpoint,
    check_global_consistency,
)
from repro.cruz.cluster import CruzCluster
from repro.cruz.coordinator import CheckpointCoordinator, DistributedApp
from repro.cruz.netstate import (
    CruzSocketCodec,
    capture_connection,
    restore_connection,
)
from repro.cruz.protocol import (
    ControlMessage,
    ReliableEndpoint,
    RetryPolicy,
    RoundStats,
)
from repro.cruz.storage import ImageStore, LivenessLog, RoundLog
from repro.cruz.supervisor import (
    FailoverRecord,
    NodeLease,
    NodeSupervisor,
)

__all__ = [
    "ChannelVerdict",
    "CheckpointAgent",
    "ConsistencyReport",
    "CheckpointCoordinator",
    "ControlFaultInjector",
    "ControlMessage",
    "CruzCluster",
    "CruzSocketCodec",
    "DistributedApp",
    "FailoverRecord",
    "FaultPlan",
    "ImageStore",
    "LivenessLog",
    "NodeLease",
    "NodeSupervisor",
    "ReliableEndpoint",
    "RetryPolicy",
    "RoundLog",
    "RoundStats",
    "capture_connection",
    "check_app_checkpoint",
    "check_global_consistency",
    "restore_connection",
]
