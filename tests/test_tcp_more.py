"""Additional TCP protocol behaviour: half-close, simultaneous close,
window updates, RST edge cases, determinism."""

import pytest

from repro.tcp.state import TcpState

from tests.helpers import make_pair
from tests.test_tcp_connection import SinkApp, SourceApp, establish


def test_half_close_peer_can_still_send():
    """After our FIN, the peer may keep sending; we must deliver it."""
    sim, wire, a, b = make_pair(time_wait_s=0.5)
    client, server = establish(sim, a, b)
    client.close()  # client -> server direction closes
    sim.run(until=sim.now + 0.2)
    assert server.peer_closed
    assert client.state == TcpState.FIN_WAIT_2
    # Server keeps talking on the open direction.
    server.send(b"still-here")
    sim.run(until=sim.now + 0.2)
    assert client.read(100) == b"still-here"
    server.close()
    sim.run(until=sim.now + 2)
    assert client.state == TcpState.CLOSED
    assert server.state == TcpState.CLOSED


def test_simultaneous_close_reaches_closed_on_both_ends():
    sim, wire, a, b = make_pair(time_wait_s=0.3)
    client, server = establish(sim, a, b)
    client.close()
    server.close()
    sim.run(until=sim.now + 3)
    assert client.state == TcpState.CLOSED
    assert server.state == TcpState.CLOSED


def test_window_updates_resume_a_full_receiver():
    sim, wire, a, b = make_pair()
    from repro.tcp.options import SocketOptions
    options = SocketOptions(recv_buffer_bytes=8192)
    client, server = establish(sim, a, b, options=options)
    payload = b"w" * 30000
    SourceApp(sim, client, payload)
    sim.run(until=sim.now + 2)
    assert server.receive_buffer.window == 0
    got = bytearray()
    # A single big read must reopen the window via an explicit update.
    got.extend(server.read(1 << 20))
    sim.run(until=sim.now + 5)
    got.extend(server.read(1 << 20))
    sim.run(until=sim.now + 10)
    got.extend(server.read(1 << 20))
    sim.run(until=sim.now + 10)
    got.extend(server.read(1 << 20))
    assert bytes(got) == payload


def test_send_after_close_raises():
    from repro.errors import TcpError
    sim, wire, a, b = make_pair()
    client, server = establish(sim, a, b)
    client.close()
    with pytest.raises(TcpError):
        client.send(b"too late")


def test_data_to_closed_port_after_teardown_gets_rst():
    sim, wire, a, b = make_pair(time_wait_s=0.05)
    ip_a, stack_a = a
    ip_b, stack_b = b
    client, server = establish(sim, a, b)
    # Destroy the server silently; the client doesn't know.
    server.destroy()
    client.send(b"into the void")
    sim.run(until=sim.now + 2)
    # The server stack RSTs the unknown segment; client resets.
    assert client.state == TcpState.CLOSED
    assert stack_b.rst_sent >= 1


def test_retransmission_counters_exposed():
    sim, wire, a, b = make_pair()
    client, server = establish(sim, a, b)
    SinkApp(sim, server)
    blackout = {"on": False}
    wire.drop_fn = lambda packet: blackout["on"]
    SourceApp(sim, client, b"c" * 100000)
    sim.run(until=sim.now + 0.01)
    blackout["on"] = True
    sim.run(until=sim.now + 0.5)
    blackout["on"] = False
    sim.run(until=sim.now + 10)
    assert client.timeouts >= 1
    assert client.segments_retransmitted >= client.timeouts
    assert client.segments_transmitted > client.segments_retransmitted


def test_transfer_is_deterministic_across_runs():
    """Identical setup => identical packet-level trace."""

    def run_once():
        sim, wire, a, b = make_pair()
        client, server = establish(sim, a, b)
        SinkApp(sim, server)
        SourceApp(sim, client, b"d" * 40000)
        sim.run(until=sim.now + 5)
        return [(round(t, 12), pkt.payload.seq, pkt.payload.ack,
                 len(pkt.payload.payload)) for t, pkt in wire.log]

    assert run_once() == run_once()


def test_cluster_runs_are_deterministic():
    from repro.cruz.cluster import CruzCluster
    from repro.apps.ring import ring_factory

    def run_once():
        cluster = CruzCluster(3, time_wait_s=0.5)
        app = cluster.launch_app_factory(
            "ring", 3, ring_factory(3, max_token=500, padding=32))
        cluster.run_for(0.3)
        stats = cluster.checkpoint_app(app)
        cluster.run_for(2.0)
        tokens = [tuple(w.seen) for w in cluster.app_programs(app)]
        return stats.latency_s, stats.coordination_overhead_s, tokens

    assert run_once() == run_once()


def test_keepalive_detects_dead_peer():
    from repro.tcp.connection import (
        KEEPALIVE_IDLE,
        KEEPALIVE_INTERVAL,
        KEEPALIVE_PROBES,
    )
    from repro.tcp.options import SocketOptions
    sim, wire, a, b = make_pair()
    options = SocketOptions(keepalive=True)
    client, server = establish(sim, a, b, options=options)
    client.start_keepalive()
    # The peer silently vanishes (power loss: no FIN, no RST).
    server.destroy()
    wire.drop_fn = lambda packet: True
    sim.run(until=sim.now + KEEPALIVE_IDLE +
            (KEEPALIVE_PROBES + 2) * KEEPALIVE_INTERVAL + 1)
    assert client.state == TcpState.CLOSED
    assert client.peer_closed  # readers see EOF, not a hang


def test_keepalive_leaves_live_idle_peer_alone():
    from repro.tcp.connection import KEEPALIVE_IDLE
    from repro.tcp.options import SocketOptions
    sim, wire, a, b = make_pair()
    options = SocketOptions(keepalive=True)
    client, server = establish(sim, a, b, options=options)
    client.start_keepalive()
    server.start_keepalive()
    # A long idle period with both ends alive: probes are answered and
    # the connection survives.
    sim.run(until=sim.now + KEEPALIVE_IDLE * 5)
    assert client.state == TcpState.ESTABLISHED
    assert server.state == TcpState.ESTABLISHED
    client.send(b"still works")
    sim.run(until=sim.now + 1)
    assert server.read(100) == b"still works"
