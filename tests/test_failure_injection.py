"""Failure injection: coordinator crashes, link flaps, torture runs."""

import pytest

from repro.apps.ring import validate_ring
from repro.apps.slm import reference_solution, slm_factory
from repro.errors import CoordinationError

from tests.test_cruz_coordination import (
    make_cluster,
    ring_app,
    run_app_to_completion,
    workers_of,
)


def test_coordinator_crash_mid_round_agents_abort_unilaterally():
    """Agents finish the local save, hear nothing, and abort: pods
    resume, filters drop, no image version is committed."""
    cluster = make_cluster(2, coordinator_timeout_s=300.0)
    for agent in cluster.agents:
        agent.continue_timeout_s = 2.0
    app = ring_app(cluster, 2, max_token=30000)
    cluster.run_for(0.2)
    versions_before = {pod.name: 0 for pod in app.pods}

    # Start a round, then kill the coordinator after <done> is sent but
    # before <continue>: silence its UDP handler.
    from repro.cruz.protocol import COORDINATOR_PORT
    task = cluster.sim.process(cluster.coordinator.checkpoint(app))
    cluster.run_for(0.001)  # <checkpoint> delivered, saves in progress
    cluster.coordinator_node.stack.udp.unbind(COORDINATOR_PORT)
    cluster.run_for(5.0)  # agents time out waiting for <continue>

    for agent in cluster.agents:
        assert agent.unilateral_aborts == 1
    # The pods resumed and their filters were removed.
    for index, pod in enumerate(app.pods):
        assert not cluster.nodes[index].stack.netfilter.rules
        assert any(p.is_alive for p in pod.processes())
    # No committed image exists for either pod.
    for pod in app.pods:
        with pytest.raises(Exception):
            cluster.store.latest_version(pod.name)
    del task, versions_before
    # The ring is still healthy.
    run_app_to_completion(cluster, app)
    validate_ring(workers_of(cluster, app))


def test_link_flap_during_checkpoint_round():
    """A brief link outage delays, but does not corrupt, a round."""
    cluster = make_cluster(2, coordinator_timeout_s=60.0)
    app = ring_app(cluster, 2, max_token=4000)
    cluster.run_for(0.2)
    # Flap node0's link during the round: coordination messages are UDP,
    # so the coordinator keeps waiting; agents' DONEs... UDP has no
    # retransmission, so the protocol relies on the coordinator timeout.
    # Flap BEFORE the round instead: the checkpoint message to node0 is
    # lost and the round aborts cleanly.
    cluster.links[0].down = True
    with pytest.raises(CoordinationError):
        cluster.checkpoint_app(app, limit=1e6)
    cluster.links[0].down = False
    cluster.run_for(1.0)
    stats = cluster.checkpoint_app(app)
    assert stats.committed
    run_app_to_completion(cluster, app)
    validate_ring(workers_of(cluster, app))


def test_torture_random_checkpoints_and_migrations_stay_bit_identical():
    """The integration torture test: random-phase checkpoints, a crash
    + rollback, and a live migration — final slm field must still be
    bit-identical to the analytic reference."""
    import random
    rng = random.Random(20260707)
    steps = 90
    cluster = make_cluster(4)
    app = cluster.launch_app_factory(
        "slm", 2, slm_factory(2, global_rows=16, cols=24, steps=steps,
                              total_work_s=9.0), node_indices=[0, 1])
    # Several checkpoints at random instants, mixed protocols.
    for index in range(4):
        cluster.run_for(0.2 + rng.random() * 0.5)
        stats = cluster.checkpoint_app(
            app, optimized=bool(index % 2),
            early_network=bool(index % 2),
            incremental=index >= 2)
        assert stats.committed
    # Live-migrate one rank.
    cluster.migrate_pod(app.pods[0], target_node_index=2)
    cluster.run_for(0.3 + rng.random() * 0.3)
    # Crash everything and roll back to the last checkpoint.
    cluster.checkpoint_app(app)
    cluster.crash_app(app)
    cluster.restart_app(app, node_indices=[3, 1])
    run_app_to_completion(cluster, app)

    import numpy as np
    from tests.test_apps import assemble_field
    field = assemble_field(cluster.app_programs(app))
    np.testing.assert_array_equal(field,
                                  reference_solution(16, 24, steps))


def test_checkpoint_storm_every_100ms():
    """Aggressive checkpointing must not corrupt or wedge the app."""
    cluster = make_cluster(2)
    app = ring_app(cluster, 2, max_token=1500, work_per_hop_s=0.001)
    for _ in range(10):
        cluster.run_for(0.1)
        assert cluster.checkpoint_app(app).committed
    run_app_to_completion(cluster, app)
    validate_ring(workers_of(cluster, app))
    assert len(cluster.store.versions(app.pods[0].name)) == 10
