"""Ablation: the §5.2 optimisations Cruz proposes as future work.

Three independent knobs on the coordinated checkpoint, each ablated
against the baseline protocol:

* ``incremental`` — write only dirty pages;
* ``concurrent`` — copy-on-write-style overlap of computation and save;
* ``optimized`` + ``early_network`` — Fig. 4 early resume plus re-enabling
  communication right after the socket state is captured.
"""

from repro.apps.compute import compute_factory
from repro.bench.harness import render_table
from repro.cruz.cluster import CruzCluster


def one_round(**options):
    """Run one checkpoint round over a 2-node compute app with 60 MB of
    state per rank; returns (latency_s, app_progress_during_round)."""
    cluster = CruzCluster(2, trace_enabled=False)
    # Each iteration dirties ~2% of the 60 MB working set, the regime
    # where incremental checkpoints shine.
    app = cluster.launch_app_factory(
        "cb", 2, compute_factory(iterations=10_000_000, work_s=0.001,
                                 state_mb_per_rank=60.0,
                                 touch_fraction=0.02))
    cluster.run_for(0.2)
    if options.pop("second_round", False):
        cluster.checkpoint_app(app, incremental=True)
        cluster.run_for(0.05)
        options["incremental"] = True
    before = sum(p.done for p in cluster.app_programs(app))
    stats = cluster.checkpoint_app(app, **options)
    after = sum(p.done for p in cluster.app_programs(app))
    return stats.latency_s, after - before


def test_ablation_checkpoint_optimizations(benchmark, show):
    def run_all():
        return {
            "baseline (Fig 2)": one_round(),
            "optimized (Fig 4)": one_round(optimized=True),
            "optimized + early network": one_round(
                optimized=True, early_network=True),
            "concurrent (copy-on-write)": one_round(concurrent=True),
            "incremental, 2nd round": one_round(second_round=True),
        }

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    rows = [[name, f"{latency*1000:.1f} ms", progress]
            for name, (latency, progress) in results.items()]
    show(render_table(
        "Ablation — §5.2 checkpoint optimisations "
        "(2 nodes, 60 MB state/rank)",
        ["variant", "round latency", "app progress during round"], rows))

    base_latency, base_progress = results["baseline (Fig 2)"]
    inc_latency, _ = results["incremental, 2nd round"]
    _, cow_progress = results["concurrent (copy-on-write)"]
    # Incremental second rounds are far cheaper than full saves.
    assert inc_latency < base_latency / 5
    # COW lets the app compute through the save; the baseline blocks it.
    assert cow_progress > 10 * max(1, base_progress)


def test_ablation_early_network_shrinks_stream_outage(benchmark, show):
    """§5.2: "The impact of TCP backoff can be reduced by keeping
    communication disabled only for the duration it takes to save the
    communication state" — measured on the Fig. 6 streaming workload."""
    from repro.bench.fig6 import run_fig6

    def run_both():
        baseline = run_fig6(memory_mb=30.0)
        early = run_fig6(memory_mb=30.0, optimized=True,
                         early_network=True)
        return baseline, early

    baseline, early = benchmark.pedantic(run_both, rounds=1, iterations=1)
    show(render_table(
        "Ablation — early network re-enable on a gigabit stream "
        "(30 MB checkpoint)",
        ["variant", "checkpoint", "outage after checkpoint"],
        [["baseline (Fig 2)",
          f"{baseline.checkpoint_duration_s*1000:.0f} ms",
          f"{baseline.outage_after_checkpoint_s*1000:.0f} ms"],
         ["optimized + early network",
          f"{early.checkpoint_duration_s*1000:.0f} ms",
          f"{early.outage_after_checkpoint_s*1000:.0f} ms"]],
        note="TCP backoff recovery overlaps the disk write once the "
             "filter is lifted at capture time"))
    assert early.outage_after_checkpoint_s < \
        baseline.outage_after_checkpoint_s / 5
