"""CruzCluster: the high-level public API.

Wires a simulated cluster with pods, per-node Checkpoint Agents, a
Coordinator on a dedicated node (as in §6's evaluation setup), and the
shared checkpoint image store.

Typical use::

    cluster = CruzCluster(n_app_nodes=4)
    app = cluster.launch_app("slm", [make_rank(i) for i in range(4)])
    cluster.run_for(8.0)
    stats = cluster.checkpoint_app(app)       # coordinated checkpoint
    cluster.crash_app(app)                    # or a real failure
    cluster.restart_app(app)                  # coordinated restart
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Sequence, Set

from repro.cluster import Cluster
from repro.cruz.agent import CheckpointAgent
from repro.cruz.backend import ShardedBackend, SharedFSBackend, StoreBackend
from repro.cruz.coordinator import CheckpointCoordinator, DistributedApp
from repro.cruz.faults import ControlFaultInjector, FaultPlan
from repro.cruz.migration import (
    DEFAULT_DIRTY_THRESHOLD_BYTES,
    DEFAULT_MAX_ROUNDS,
    MigrationReport,
    PrecopyMigrator,
    stop_and_copy,
)
from repro.cruz.netstate import CruzSocketCodec
from repro.cruz.protocol import RetryPolicy, RoundStats
from repro.cruz.storage import ImageStore
from repro.cruz.supervisor import NodeSupervisor
from repro.errors import PodError, RestartMismatchError
from repro.simos.program import Program
from repro.zap.checkpoint import scrub_pod_network
from repro.zap.pod import Pod
from repro.zap.socket_codec import SocketCodec
from repro.zap.virtualization import install_pod, uninstall_pod


class CruzCluster(Cluster):
    """A cluster with Cruz installed on every node.

    Node layout: indices ``0 .. n_app_nodes-1`` host applications; the
    last node (index ``n_app_nodes``) hosts the Checkpoint Coordinator.
    """

    def __init__(self, n_app_nodes: int,
                 codec: Optional[SocketCodec] = None,
                 coordinator_timeout_s: float = 60.0,
                 control_faults: Optional[Sequence[FaultPlan]] = None,
                 control_retry: Optional[RetryPolicy] = None,
                 supervise: bool = False,
                 heartbeat_interval_s: float = 0.05,
                 heartbeat_jitter_s: float = 0.01,
                 lease_misses: int = 3,
                 auto_failover: bool = True,
                 evict_on_suspect: bool = False,
                 store_backend: str = "sharded",
                 replication_factor: Optional[int] = None,
                 mc_bugs: FrozenSet[str] = frozenset(),
                 **kwargs):
        super().__init__(n_app_nodes + 1, **kwargs)
        self.n_app_nodes = n_app_nodes
        #: Seeded mutation flags for the CruzMC model checker's
        #: counterexample tests (``repro.analysis.mc.KNOWN_BUGS``) —
        #: each re-opens a fixed, historically real protocol hole.
        #: Always empty in production paths.
        self.mc_bugs = frozenset(mc_bugs)
        self.codec = codec if codec is not None else CruzSocketCodec()
        #: The chunk space is sharded across the app nodes' disks by
        #: default (RF copies per chunk, writer affinity for the
        #: primary); ``store_backend="shared-fs"`` keeps the legacy
        #: single shared directory.
        if replication_factor is None:
            replication_factor = min(2, n_app_nodes)
        self.replication_factor = replication_factor
        backend: StoreBackend
        if store_backend == "sharded":
            backend = ShardedBackend(
                self.fs,
                nodes=[node.name for node in self.nodes[:n_app_nodes]],
                replication_factor=replication_factor)
        elif store_backend == "shared-fs":
            backend = SharedFSBackend(self.fs)
        else:
            raise PodError(f"unknown store backend {store_backend!r}")
        self.store = ImageStore(self.fs, metrics=self.trace.metrics,
                                sanitizer=self.trace.sanitizer,
                                backend=backend)
        self._rereplication_active = False
        self._rereplication_pending = False
        #: Every control datagram (agents and coordinator, ACKs included)
        #: passes through one seeded fault injector; with no plans added
        #: it is a transparent pass-through.
        self.fault_injector = ControlFaultInjector(
            self.sim, self.random.stream("control-faults"))
        for plan in control_faults or ():
            self.fault_injector.add_plan(plan)
        self.control_retry = control_retry
        self.agents: List[CheckpointAgent] = [
            CheckpointAgent(node, self.store, codec=self.codec,
                            retry=control_retry,
                            faults=self.fault_injector,
                            mc_bugs=self.mc_bugs)
            for node in self.nodes[:n_app_nodes]]
        self.coordinator_node = self.nodes[n_app_nodes]
        self.coordinator_timeout_s = coordinator_timeout_s
        self.coordinator = CheckpointCoordinator(
            self.coordinator_node, timeout_s=coordinator_timeout_s,
            store=self.store, retry=control_retry,
            faults=self.fault_injector)
        self.apps: Dict[str, DistributedApp] = {}
        #: Indices of nodes currently powered off (:meth:`crash_node`).
        self.dead_nodes: Set[int] = set()
        self.heartbeat_interval_s = heartbeat_interval_s
        self.heartbeat_jitter_s = heartbeat_jitter_s
        self.lease_misses = lease_misses
        self.auto_failover = auto_failover
        self.evict_on_suspect = evict_on_suspect
        #: Report of the most recent successful :meth:`migrate_pod`.
        self.last_migration: Optional[MigrationReport] = None
        self.supervisor: Optional[NodeSupervisor] = None
        if supervise:
            self._install_supervisor(start_heartbeats=True)

    # -- supervision ---------------------------------------------------------

    def _install_supervisor(self, start_heartbeats: bool) -> NodeSupervisor:
        self.supervisor = NodeSupervisor(
            self, node=self.coordinator_node,
            heartbeat_interval_s=self.heartbeat_interval_s,
            heartbeat_jitter_s=self.heartbeat_jitter_s,
            lease_misses=self.lease_misses,
            auto_failover=self.auto_failover,
            evict_on_suspect=self.evict_on_suspect)
        supervisor_ip = self.coordinator_node.stack.eth0.ip
        for index, agent in enumerate(self.agents):
            self.supervisor.watch(index)
            if start_heartbeats:
                # One named seeded stream per node: adding nodes (or
                # reordering startup) never perturbs another node's
                # jitter sequence.
                agent.start_heartbeats(
                    supervisor_ip, self.heartbeat_interval_s,
                    self.heartbeat_jitter_s,
                    self.random.stream(f"heartbeat-{agent.node.name}"))
        self.supervisor.start()
        return self.supervisor

    def restart_supervisor(self) -> NodeSupervisor:
        """Replace the supervisor (crash recovery).

        The new instance inherits node liveness from the shared-store
        :class:`~repro.cruz.storage.LivenessLog` — nodes declared dead
        by the old supervisor stay dead without re-detection. The
        agents' heartbeat loops keep running; only the receiving
        endpoint is replaced.
        """
        if self.supervisor is None:
            raise PodError("cluster was built without supervise=True")
        self.supervisor.close()
        return self._install_supervisor(start_heartbeats=False)

    # -- node power model ----------------------------------------------------

    def crash_node(self, node_index: int) -> None:
        """Power-loss failure of one application node (§1's fail-stop).

        Takes the node's link down (every in-flight frame on it is
        dropped), silences its agent mid-operation (no ACKs, no
        heartbeats, interrupted saves — a dead node never writes another
        WAL record), destroys resident pods, and clears the node's
        volatile netfilter state. Distinct from :meth:`crash_app`, which
        kills pods but leaves the node (and its agent) healthy.
        """
        if not 0 <= node_index < self.n_app_nodes:
            raise PodError(f"node {node_index} is not an application node")
        if node_index in self.dead_nodes:
            return
        agent = self.agents[node_index]
        node = self.nodes[node_index]
        self.links[node_index].down = True
        agent.crash()
        for pod in list(agent.pods.values()):
            self.destroy_pod(pod)
        # Packet-filter rules are kernel state; power loss clears them.
        node.stack.netfilter.rules.clear()
        self.dead_nodes.add(node_index)
        self.spans.instant("node.crash", node=node.name)
        self.trace.emit(self.sim.now, "node_crash", node=node.name)
        # The node's chunk shard went with it: mark it unavailable and
        # kick the re-replication daemon to restore RF elsewhere.
        self.store.backend.mark_down(node.name)
        self._schedule_rereplication()

    def revive_node(self, node_index: int) -> None:
        """Power the node back on: link up, agent accepting traffic.

        The revived node rejoins empty (its pods died with it); the
        supervisor marks it alive again at its next heartbeat and new
        placements can use it.
        """
        if node_index not in self.dead_nodes:
            return
        node = self.nodes[node_index]
        self.links[node_index].down = False
        self.agents[node_index].revive()
        self.dead_nodes.discard(node_index)
        self.spans.instant("node.revive", node=node.name)
        self.trace.emit(self.sim.now, "node_revive", node=node.name)
        # The shard comes back with the node; drop copies of chunks
        # garbage-collected while it was out.
        self.store.backend.mark_up(node.name)
        self.store.reconcile_node(node.name)

    # -- re-replication ------------------------------------------------------

    def _schedule_rereplication(self) -> None:
        """Start the background repair pass unless one is running."""
        if self.store.backend.kind != "sharded":
            return
        if self._rereplication_active:
            self._rereplication_pending = True
            return
        self._rereplication_active = True
        self.sim.process(self._rereplication_proc(), name="rereplicate")

    def _rereplication_proc(self):
        """Restore every chunk's replication factor after node loss.

        Event-driven, not polled: each availability change schedules one
        pass; a pass scans the chunk space for copies below the live RF
        target and streams each repair from a surviving replica to the
        next up ring successor, charging the copy on the destination
        disk's clock. A loss during the pass queues a follow-up pass.
        """
        try:
            while True:
                deficits = self.store.under_replicated()
                span = self.spans.begin("store.rereplicate",
                                        node=self.coordinator_node.name,
                                        orphan=True,
                                        chunks=len(deficits))
                repaired = 0
                for cid, _live in deficits:
                    result = self.store.rereplicate_one(cid)
                    if result is None:
                        continue
                    _dest, nbytes = result
                    repaired += 1
                    yield self.sim.timeout(
                        nbytes / self.coordinator_node
                        .costs.disk_write_bandwidth)
                self.spans.end(span, repaired=repaired)
                if not self._rereplication_pending:
                    break
                self._rereplication_pending = False
        finally:
            self._rereplication_active = False

    # -- control-plane faults and coordinator replacement -------------------

    def add_control_fault(self, plan: FaultPlan) -> FaultPlan:
        """Inject faults into the coordination control plane from now on."""
        return self.fault_injector.add_plan(plan)

    def crash_coordinator(self) -> None:
        """Silence the coordinator mid-flight (simulated process crash).

        In-flight rounds hang until agents' unilateral timeouts fire; the
        round WAL in the shared store keeps the recovery record.
        """
        self.coordinator.endpoint.close()

    def restart_coordinator(self,
                            node_index: Optional[int] = None,
                            timeout_s: Optional[float] = None
                            ) -> CheckpointCoordinator:
        """Replace the coordinator and run WAL crash recovery.

        The new coordinator (on the same node by default, or any other —
        the WAL and images live in the shared filesystem) aborts every
        round the old one left in flight and resumes epoch numbering
        after the highest logged epoch.
        """
        self.crash_coordinator()
        if node_index is not None:
            self.coordinator_node = self.nodes[node_index]
        self.coordinator = CheckpointCoordinator(
            self.coordinator_node,
            timeout_s=timeout_s if timeout_s is not None
            else self.coordinator_timeout_s,
            store=self.store, retry=self.control_retry,
            faults=self.fault_injector)
        self.coordinator.recover()
        return self.coordinator

    # -- pods and apps -----------------------------------------------------

    def create_pod(self, node_index: int, name: str,
                   own_wire_mac: Optional[bool] = None) -> Pod:
        node = self.nodes[node_index]
        if own_wire_mac is None:
            own_wire_mac = node.stack.nic.supports_multiple_macs
        if own_wire_mac:
            mac = self.allocate_vif_mac()
            fake = None
        else:
            mac = node.stack.nic.primary_mac
            fake = self.allocate_vif_mac()
        pod = Pod(node, name, ip=self.allocate_pod_ip(), mac=mac,
                  own_wire_mac=own_wire_mac, fake_mac=fake)
        install_pod(pod)
        self.agents[node_index].register_pod(pod)
        return pod

    def launch_app(self, name: str, programs: Sequence[Program],
                   node_indices: Optional[Sequence[int]] = None,
                   ) -> DistributedApp:
        """One pod per program, placed round-robin on the app nodes."""
        if node_indices is None:
            node_indices = [i % self.n_app_nodes
                            for i in range(len(programs))]
        if len(node_indices) != len(programs):
            raise PodError("one node index per program required")
        pods = []
        for rank, (program, node_index) in enumerate(
                zip(programs, node_indices)):
            pod = self.create_pod(node_index, f"{name}-r{rank}")
            pod.spawn(program, name=f"{name}[{rank}]")
            pods.append(pod)
        app = DistributedApp(name, pods)
        self.apps[name] = app
        return app

    def launch_app_factory(self, name: str, n_ranks: int, factory,
                           node_indices: Optional[Sequence[int]] = None,
                           ) -> DistributedApp:
        """Like :meth:`launch_app`, for programs that need the pod IPs.

        ``factory(rank, peer_ips)`` builds each rank's program after all
        pods (and hence their addresses) exist.
        """
        if node_indices is None:
            node_indices = [i % self.n_app_nodes for i in range(n_ranks)]
        pods = [self.create_pod(node_indices[rank], f"{name}-r{rank}")
                for rank in range(n_ranks)]
        peer_ips = [str(pod.ip) for pod in pods]
        for rank, pod in enumerate(pods):
            pod.spawn(factory(rank, peer_ips), name=f"{name}[{rank}]")
        app = DistributedApp(name, pods)
        self.apps[name] = app
        return app

    def pod_ips(self, app: DistributedApp) -> List[str]:
        return [str(pod.ip) for pod in app.pods]

    # -- coordinated operations -----------------------------------------------

    def checkpoint_app(self, app: DistributedApp, optimized: bool = False,
                       incremental: bool = False,
                       dedup: bool = False,
                       early_network: bool = False,
                       concurrent: bool = False,
                       limit: float = 1e6) -> RoundStats:
        """Run one coordinated checkpoint round to completion."""
        task = self.sim.process(self.coordinator.checkpoint(
            app, optimized=optimized, incremental=incremental,
            dedup=dedup,
            early_network=early_network, concurrent=concurrent))
        return self.run_until_complete(task, limit=limit)

    def destroy_pod(self, pod: Pod) -> None:
        """Destroy one pod in place, silently (no FIN/RST to peers)."""
        scrub_pod_network(pod)
        pod.kill_all()
        uninstall_pod(pod)
        agent = self._agent_for(pod.node.name)
        if agent is not None:
            agent.unregister_pod(pod.name)

    def crash_app(self, app: DistributedApp) -> None:
        """Destroy the app's pods in place (simulating node failures).

        State vanishes silently — no FIN/RST reaches the peers, exactly as
        when a machine loses power.
        """
        for pod in app.pods:
            self.destroy_pod(pod)

    def repoint_app(self, app: DistributedApp,
                    members: Optional[Sequence] = None) -> List[Pod]:
        """Re-point ``app.pods`` at the recreated pods after a restart.

        Every member must have a live replacement registered with some
        healthy agent; otherwise :class:`RestartMismatchError` names the
        missing members and ``app.pods`` is left untouched — a partial
        membership must never be silently adopted.
        """
        if members is None:
            members = [(pod.node.stack.eth0.ip, pod.name)
                       for pod in app.pods]
        new_pods, missing = [], []
        for _ip, pod_name in members:
            for agent in self.agents:
                if not agent.crashed and pod_name in agent.pods:
                    new_pods.append(agent.pods[pod_name])
                    break
            else:
                missing.append(pod_name)
        if missing:
            raise RestartMismatchError(app.name, missing)
        app.pods = new_pods
        return new_pods

    def restart_app(self, app: DistributedApp,
                    node_indices: Optional[Sequence[int]] = None,
                    version: int = 0, limit: float = 1e6) -> RoundStats:
        """Coordinated restart from the stored images.

        ``node_indices`` may place pods on different nodes than before
        (migration across the subnet, §4.2), including consolidating
        every pod onto a single surviving node.
        """
        if node_indices is None:
            members = [(pod.node.stack.eth0.ip, pod.name)
                       for pod in app.pods]
        else:
            if len(node_indices) != len(app.pods):
                raise ValueError(
                    f"restart_app({app.name!r}): {len(node_indices)} "
                    f"node index(es) for {len(app.pods)} pod(s) — one "
                    f"index per member required")
            members = [(self.nodes[idx].stack.eth0.ip, pod.name)
                       for idx, pod in zip(node_indices, app.pods)]
        task = self.sim.process(self.coordinator.restart(
            app.name, members, version=version))
        stats = self.run_until_complete(task, limit=limit)
        self.repoint_app(app, members)
        return stats

    def migrate_pod(self, pod: Pod, target_node_index: int,
                    limit: float = 1e6, live: bool = True,
                    max_rounds: int = DEFAULT_MAX_ROUNDS,
                    dirty_threshold_bytes: int =
                    DEFAULT_DIRTY_THRESHOLD_BYTES) -> Pod:
        """Migrate one pod to another node; live (pre-copy) by default.

        ``live=True`` runs the :class:`~repro.cruz.migration
        .PrecopyMigrator` convergence loop: incremental chunk rounds
        stream to the target while the pod keeps running, and the pod is
        isolated + paused only for the final delta. ``live=False`` keeps
        the old whole-migration-isolation stop-and-copy (the benchmark
        baseline). The resulting :class:`MigrationReport` lands in
        ``self.last_migration``.

        Failure semantics (both modes): a failed target restore after
        the source pod was destroyed rolls the pod back onto its source
        node and raises a typed :class:`MigrationError` naming the
        committed, restorable version; ``app.pods`` stays consistent —
        the fixup is scoped to the app actually owning this pod object
        (two apps with same-named pods never interfere). Failures that
        leave the source as found (missing/crashed source agent, dead
        target, source death mid-pre-copy) raise ``MigrationError`` with
        ``source_destroyed=False`` and rewrite nothing.
        """
        if live:
            migrator = PrecopyMigrator(
                self, max_rounds=max_rounds,
                dirty_threshold_bytes=dirty_threshold_bytes)
            sequence = migrator.migrate(pod, target_node_index)
        else:
            sequence = stop_and_copy(self, pod, target_node_index)
        task = self.sim.process(sequence, name=f"migrate({pod.name})")
        new_pod, report = self.run_until_complete(task, limit=limit)
        self.last_migration = report
        return new_pod

    def _agent_for(self, node_name: str) -> Optional[CheckpointAgent]:
        for agent in self.agents:
            if agent.node.name == node_name:
                return agent
        return None

    # -- introspection -------------------------------------------------------

    def app_programs(self, app: DistributedApp) -> List[Program]:
        """The (live) program instances, rank-ordered."""
        programs = []
        for pod in app.pods:
            for proc in pod.processes():
                programs.append(proc.program)
        return programs

    def coordination_message_count(self) -> int:
        return self.trace.count("coord_msg")

    @property
    def spans(self):
        """The cluster-wide span recorder (``trace.spans``)."""
        return self.trace.spans

    @property
    def metrics(self):
        """The cluster-wide typed metrics registry (``trace.metrics``)."""
        return self.trace.metrics
