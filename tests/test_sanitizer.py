"""Runtime sanitizer negative cases: each invariant, deliberately broken.

Every cluster here is built with an explicit ``sanitize=True`` so its
sanitizer stays out of ``repro.analysis.sanitize.ACTIVE`` — these tests
*want* violations and must not trip the ``--cruz-sanitize`` fixture.
"""

import pytest

from repro.analysis import sanitize
from repro.analysis.sanitize import Sanitizer, Violation, run_workload
from repro.apps.slm import slm_factory
from repro.cluster import Cluster
from repro.cruz.cluster import CruzCluster
from repro.zap.pod import Pod
from repro.zap.virtualization import install_pod, uninstall_pod

from repro.apps.kvserver import KvClient, KvServer

from tests.programs import ShmIncrementer, Sleeper


def make_sanitized_cluster(nodes=2):
    cluster = CruzCluster(nodes, sanitize=True)
    app = cluster.launch_app_factory(
        "slm", nodes,
        slm_factory(nodes, global_rows=8 * nodes, cols=32, steps=100000,
                    total_work_s=1e6, memory_mb_per_rank=4.0))
    cluster.run_for(0.5)
    return cluster, app


def make_pod(cluster, node_index=0, name="pod0"):
    node = cluster.nodes[node_index]
    pod = Pod(node, name, ip=cluster.allocate_pod_ip(),
              mac=cluster.allocate_vif_mac())
    install_pod(pod)
    return pod


# -- wiring ----------------------------------------------------------------


def test_explicit_sanitize_does_not_register_globally():
    sanitize.ACTIVE.clear()
    cluster = Cluster(1, sanitize=True)
    assert cluster.trace.sanitizer is not None
    assert cluster.trace.sanitizer not in sanitize.ACTIVE


def test_env_flag_installs_and_registers(monkeypatch):
    monkeypatch.setenv(sanitize.ENV_FLAG, "1")
    sanitize.ACTIVE.clear()
    cluster = Cluster(1)
    assert cluster.trace.sanitizer is not None
    assert cluster.trace.sanitizer in sanitize.ACTIVE
    sanitize.ACTIVE.clear()


def test_sanitizer_off_by_default(monkeypatch):
    monkeypatch.delenv(sanitize.ENV_FLAG, raising=False)
    assert Cluster(1).trace.sanitizer is None
    monkeypatch.setenv(sanitize.ENV_FLAG, "0")
    assert Cluster(1).trace.sanitizer is None


def test_violation_render_carries_span_context():
    violation = Violation(code="SAN-REFCOUNT", message="boom", node="n1",
                          time=1.5, span="zap.store_write", span_id=7,
                          epoch=3)
    text = violation.render()
    assert "[SAN-REFCOUNT]" in text
    assert "node=n1" in text
    assert "epoch=3" in text
    assert "span=zap.store_write#7" in text


# -- clean baseline --------------------------------------------------------


def test_sanitized_round_is_clean():
    cluster, app = make_sanitized_cluster()
    cluster.checkpoint_app(app)
    assert cluster.trace.sanitizer.violations == []
    assert cluster.trace.sanitizer.report() == \
        "sanitizer: clean (0 violations)"


def test_crash_restart_workload_is_clean():
    cluster = run_workload("crash-restart")
    assert cluster.trace.sanitizer.violations == []


# -- SAN-REFCOUNT ----------------------------------------------------------


def test_corrupted_refcount_is_flagged_with_span_context():
    cluster, app = make_sanitized_cluster()
    cluster.checkpoint_app(app)
    sanitizer = cluster.trace.sanitizer
    assert sanitizer.violations == []
    cid = next(iter(cluster.store.refcounts()))
    cluster.store._chunks.refcounts[cid] += 5
    cluster.run_for(0.2)
    cluster.checkpoint_app(app)
    hits = sanitizer.by_code("SAN-REFCOUNT")
    assert any(v.details.get("kind") == "refcount_mismatch"
               and v.details.get("cid") == cid for v in hits)
    mismatch = next(v for v in hits
                    if v.details.get("kind") == "refcount_mismatch")
    # The audit fired during the second round's store write: the
    # violation carries the enclosing span and its inherited epoch.
    assert mismatch.span == "zap.store_write"
    assert mismatch.epoch == 2


def test_deep_audit_spots_missing_chunk_file():
    cluster, app = make_sanitized_cluster()
    cluster.checkpoint_app(app)
    sanitizer = cluster.trace.sanitizer
    store = cluster.store
    cid = next(iter(store.refcounts()))
    # Lose every replica of one chunk behind the store's back.
    for node in store.backend.holders(cid):
        store.backend.delete_on(node, cid)
    assert store.audit() == []  # the shallow audit only checks counts
    sanitizer.check_store(store, time=cluster.sim.now, deep=True)
    hits = sanitizer.by_code("SAN-REFCOUNT")
    assert any(v.details.get("kind") == "missing_chunk"
               and v.details.get("cid") == cid for v in hits)


def test_decref_underflow_is_flagged():
    cluster, _app = make_sanitized_cluster()
    cluster.store._chunks.decref("no-such-chunk")
    hits = cluster.trace.sanitizer.by_code("SAN-REFCOUNT")
    assert len(hits) == 1
    assert hits[0].details["refcount"] == 0


# -- SAN-TCP-SEQ -----------------------------------------------------------


def test_broken_tcp_invariant_is_flagged():
    cluster = Cluster(2, time_wait_s=0.5, sanitize=True)
    pod = make_pod(cluster, 0, "kv")
    pod.spawn(KvServer())
    requests = [{"op": "put", "key": f"k{i}", "value": i}
                for i in range(500)]
    cluster.nodes[1].spawn(KvClient(str(pod.ip), requests,
                                    think_time_s=0.002))
    cluster.run_for(0.15)  # part-way through the request stream
    connections = list(cluster.nodes[0].stack.tcp.connections.values())
    assert connections, "the kv pair should have a live connection"
    for conn in connections:
        # "acknowledged beyond what was ever sent" — impossible state.
        conn.tcb.snd_una = conn.tcb.snd_nxt + 4096
    cluster.run_for(0.2)
    hits = cluster.trace.sanitizer.by_code("SAN-TCP-SEQ")
    assert hits
    assert hits[0].node == cluster.nodes[0].name
    assert "snd_una" in hits[0].message
    assert hits[0].details["conn"] == connections[0].name


# -- SAN-WAL-EPOCH ---------------------------------------------------------


def test_wal_epoch_regression_is_flagged():
    sanitizer = Sanitizer()
    sanitizer.check_wal_epoch(3, logged_max=5, node="coord", time=1.0)
    sanitizer.check_wal_epoch(6, logged_max=5, node="coord", time=2.0)
    hits = sanitizer.by_code("SAN-WAL-EPOCH")
    assert len(hits) == 1
    assert hits[0].epoch == 3
    assert hits[0].details["logged_max"] == 5


# -- SAN-NETFILTER-LEAK ----------------------------------------------------


def test_leaked_netfilter_rule_is_flagged_at_round_end():
    cluster, app = make_sanitized_cluster()
    pod = app.pods[0]
    rule_id = pod.node.stack.netfilter.drop_all_for(pod.ip)
    cluster.checkpoint_app(app)
    hits = cluster.trace.sanitizer.by_code("SAN-NETFILTER-LEAK")
    assert hits
    leak = hits[0]
    assert rule_id in leak.details["rule_ids"]
    assert leak.details["pod_ip"] == str(pod.ip)
    assert leak.node == pod.node.name
    assert leak.epoch == 1


# -- SAN-POD-PAUSE / SAN-SHM-LEAK / SAN-FD-LEAK ---------------------------


def test_pod_exiting_while_stopped_is_flagged():
    cluster = Cluster(1, sanitize=True)
    pod = make_pod(cluster)
    pod.spawn(Sleeper(1000.0))
    cluster.run_for(0.1)
    pod.stop_all()
    uninstall_pod(pod)
    hits = cluster.trace.sanitizer.by_code("SAN-POD-PAUSE")
    assert len(hits) == 1
    assert hits[0].details["pause_count"] == 1
    assert hits[0].details["resume_count"] == 0


def test_balanced_pod_exit_is_clean():
    cluster = Cluster(1, sanitize=True)
    pod = make_pod(cluster)
    pod.spawn(Sleeper(1000.0))
    cluster.run_for(0.1)
    pod.stop_all()
    pod.continue_all()
    pod.kill_all()
    cluster.run_for(0.1)
    uninstall_pod(pod)
    assert cluster.trace.sanitizer.violations == []


def test_shm_segment_surviving_pod_exit_is_flagged():
    cluster = Cluster(1, sanitize=True)
    pod = make_pod(cluster)
    pod.spawn(ShmIncrementer(key=5, rounds=3))
    cluster.run_for(0.5)
    sanitizer = cluster.trace.sanitizer
    # Before the kernel's pod-exit reclamation the namespaced segment is
    # still in the node table: the checker must call it a leak.
    sanitizer.check_pod_exit(pod, time=cluster.sim.now)
    assert len(sanitizer.by_code("SAN-SHM-LEAK")) == 1
    # The real exit path reclaims the namespace first — no new leak.
    pod.kill_all()
    cluster.run_for(0.1)
    uninstall_pod(pod)
    assert len(sanitizer.by_code("SAN-SHM-LEAK")) == 1
    assert not any(segment.key >> 32 == pod.pod_id
                   for segment in cluster.nodes[0].ipc.shm.values())


def test_fd_leak_checker_flags_open_descriptors():
    class _Fds:
        @staticmethod
        def fds():
            return [3, 7]

    class _Proc:
        name = "leaky"
        pid = 42
        fds = _Fds()

    sanitizer = Sanitizer()
    sanitizer.check_process_exit("n1", _Proc(), time=1.0)
    hits = sanitizer.by_code("SAN-FD-LEAK")
    assert len(hits) == 1
    assert hits[0].details["fds"] == [3, 7]


def test_unknown_workload_raises():
    with pytest.raises(KeyError):
        run_workload("bogus")
