"""A minimal per-host UDP layer (DHCP and datagram tests ride on it)."""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.errors import SyscallError
from repro.net.addresses import ANY_IP, Ipv4Address
from repro.net.packet import IpPacket, PROTO_UDP, UdpDatagram
from repro.sim.core import Simulator

#: handler(payload, src_ip, src_port, dst_ip)
UdpHandler = Callable[[object, Ipv4Address, int, Ipv4Address], None]


class UdpStack:
    """Bind/sendto/demux for UDP."""

    def __init__(self, sim: Simulator,
                 send_packet: Callable[[IpPacket], None], name: str = ""):
        self.sim = sim
        self.send_packet = send_packet
        self.name = name
        self._bindings: Dict[int, UdpHandler] = {}
        self.datagrams_received = 0
        self.datagrams_dropped = 0

    def bind(self, port: int, handler: UdpHandler) -> None:
        if port in self._bindings:
            raise SyscallError("EADDRINUSE", f"udp port {port} in use")
        self._bindings[port] = handler

    def unbind(self, port: int) -> None:
        self._bindings.pop(port, None)

    def is_bound(self, port: int) -> bool:
        return port in self._bindings

    def send(self, src_ip: Ipv4Address, src_port: int, dst_ip: Ipv4Address,
             dst_port: int, payload: object,
             payload_size: Optional[int] = None) -> None:
        datagram = UdpDatagram(src_port=src_port, dst_port=dst_port,
                               payload=payload, payload_size=payload_size)
        self.send_packet(IpPacket(
            src=src_ip, dst=dst_ip, protocol=PROTO_UDP, payload=datagram))

    def on_packet(self, packet: IpPacket) -> None:
        datagram = packet.payload
        if not isinstance(datagram, UdpDatagram):
            return
        handler = self._bindings.get(datagram.dst_port) \
            or self._bindings.get(-1)
        if handler is None:
            self.datagrams_dropped += 1
            return
        self.datagrams_received += 1
        handler(datagram.payload, packet.src, datagram.src_port, packet.dst)

    # Used where PROTO constant is needed without importing packet module.
    PROTOCOL = PROTO_UDP
    ANY = ANY_IP
