"""Network devices: physical interfaces and per-pod virtual interfaces.

A VIF (§4.2) is "attached to each pod ... the only network interface that is
visible to processes within the pod. The VIF can be assigned a
network-visible IP address and an ethernet MAC address."

Two hardware modes are modelled, matching the paper:

* multi-MAC / promiscuous hardware — the VIF gets its own wire MAC, which
  migrates with the pod;
* shared-MAC hardware — the VIF uses the physical NIC's MAC on the wire and
  keeps a *fake* MAC for identity; migration re-points the IP via
  gratuitous ARP and DHCP sees only the fake MAC (via ioctl interposition).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.errors import NetworkError, SyscallError
from repro.net.addresses import Ipv4Address, MacAddress


@dataclass
class Interface:
    """One network interface as seen by the kernel."""

    name: str
    mac: MacAddress                      # MAC used on the wire
    ip: Optional[Ipv4Address] = None
    pod_id: Optional[int] = None         # owning pod; None = host interface
    fake_mac: Optional[MacAddress] = None  # identity MAC (shared-MAC mode)
    owns_wire_mac: bool = True           # False in shared-MAC mode

    @property
    def identity_mac(self) -> MacAddress:
        """The MAC this interface reports as its hardware address."""
        return self.fake_mac if self.fake_mac is not None else self.mac


class InterfaceTable:
    """The kernel's interface registry for one node."""

    def __init__(self):
        self._interfaces: Dict[str, Interface] = {}
        #: Bumped on add/remove (and by ``configure_eth0``); consumers
        #: cache derived lookups (owned-IP set, routes) keyed on this.
        self.version = 0

    def add(self, interface: Interface) -> Interface:
        if interface.name in self._interfaces:
            raise NetworkError(f"interface {interface.name} exists")
        self._interfaces[interface.name] = interface
        self.version += 1
        return interface

    def remove(self, name: str) -> Interface:
        interface = self._interfaces.pop(name, None)
        if interface is None:
            raise NetworkError(f"no interface {name}")
        self.version += 1
        return interface

    def get(self, name: str) -> Interface:
        interface = self._interfaces.get(name)
        if interface is None:
            raise SyscallError("ENODEV", name)
        return interface

    def all(self) -> List[Interface]:
        return list(self._interfaces.values())

    def by_ip(self, ip: Ipv4Address) -> Optional[Interface]:
        for interface in self._interfaces.values():
            if interface.ip == ip:
                return interface
        return None

    def for_pod(self, pod_id: int) -> List[Interface]:
        return [i for i in self._interfaces.values() if i.pod_id == pod_id]

    def owned_ips(self) -> Dict[Ipv4Address, MacAddress]:
        return {i.ip: i.mac for i in self._interfaces.values()
                if i.ip is not None}
