"""``repro analyze determinism``: a schedule-race detector.

The simulator's event queue breaks (time, priority) ties by insertion
sequence.  Correct code must not depend on that arbitrary order: any two
tie-break policies must produce bit-identical results.  This module runs
the same workload twice — once with the default FIFO tie-breaking, once
with LIFO (newest-first among same-timestamp, same-priority events) —
and diffs the per-round :class:`RoundStats` plus a hash of the final
store state.  Divergence means some component consumed the queue's
arbitrary ordering (a schedule race).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, List


@dataclass
class DeterminismReport:
    """The two fingerprints and every path where they disagree."""

    workload: str
    divergences: List[str] = field(default_factory=list)
    fingerprints: Dict[str, Dict[str, Any]] = field(default_factory=dict)

    @property
    def deterministic(self) -> bool:
        return not self.divergences

    def render(self) -> str:
        head = (f"determinism[{self.workload}]: "
                + ("PASS — tie-break perturbation is invisible"
                   if self.deterministic
                   else f"FAIL — {len(self.divergences)} divergence(s)"))
        lines = [head]
        lines.extend(f"  {path}" for path in self.divergences)
        return "\n".join(lines)


def _canonical(value: Any) -> str:
    return json.dumps(value, sort_keys=True, default=repr)


def state_hash(cluster) -> str:
    """A digest of the externally visible end state: the chunk store's
    refcounts, every pod's stored versions, and the simulation clock."""
    store = cluster.store
    state = {
        "refcounts": sorted(store.refcounts().items()),
        "versions": {pod_name: store.versions(pod_name)
                     for pod_name in sorted(store._latest)},
        "wal_epochs": store.rounds.epochs(),
        "sim_time": round(cluster.sim.now, 12),
    }
    return hashlib.sha256(_canonical(state).encode()).hexdigest()


def fingerprint(tiebreak: str, nodes: int = 2, rounds: int = 2,
                interval_s: float = 0.2,
                memory_mb: float = 4.0) -> Dict[str, Any]:
    """Run the fig5-small workload under one tie-break policy and
    reduce it to a comparable fingerprint."""
    from repro.apps.slm import slm_factory
    from repro.cruz.cluster import CruzCluster

    cluster = CruzCluster(nodes, tiebreak=tiebreak)
    app = cluster.launch_app_factory(
        "slm", nodes,
        slm_factory(nodes, global_rows=8 * nodes, cols=32, steps=100000,
                    total_work_s=1e6, memory_mb_per_rank=memory_mb))
    cluster.run_for(0.5)
    stats = []
    for _ in range(rounds):
        cluster.run_for(interval_s)
        stats.append(asdict(cluster.checkpoint_app(app)))
    return {
        "tiebreak": tiebreak,
        "rounds": stats,
        "state_hash": state_hash(cluster),
    }


def _diff(a: Any, b: Any, path: str, out: List[str]) -> None:
    if isinstance(a, dict) and isinstance(b, dict):
        for key in sorted(set(a) | set(b)):
            _diff(a.get(key), b.get(key), f"{path}.{key}", out)
        return
    if isinstance(a, list) and isinstance(b, list) and len(a) == len(b):
        for index, (left, right) in enumerate(zip(a, b)):
            _diff(left, right, f"{path}[{index}]", out)
        return
    if a != b:
        out.append(f"{path}: fifo={a!r} lifo={b!r}")


def run_determinism_check(nodes: int = 2, rounds: int = 2,
                          interval_s: float = 0.2,
                          memory_mb: float = 4.0) -> DeterminismReport:
    """The fig5-small workload, twice, with perturbed tie-breaking."""
    report = DeterminismReport(workload=f"fig5-small[n={nodes}]")
    fifo = fingerprint("fifo", nodes=nodes, rounds=rounds,
                       interval_s=interval_s, memory_mb=memory_mb)
    lifo = fingerprint("lifo", nodes=nodes, rounds=rounds,
                       interval_s=interval_s, memory_mb=memory_mb)
    report.fingerprints = {"fifo": fifo, "lifo": lifo}
    _diff(fifo["rounds"], lifo["rounds"], "rounds", report.divergences)
    if fifo["state_hash"] != lifo["state_hash"]:
        report.divergences.append(
            f"state_hash: fifo={fifo['state_hash'][:16]} "
            f"lifo={lifo['state_hash'][:16]}")
    return report
