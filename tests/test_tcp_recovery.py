"""TCP loss recovery: the machinery Cruz's coordinated checkpoint rides on.

The paper drops all in-flight packets during a checkpoint and relies on
TCP retransmission to recover (§3, §5). These tests verify that property at
the transport layer, before any checkpoint code is involved.
"""

import pytest

from repro.net.packet import PROTO_TCP
from repro.tcp.state import TcpState

from tests.helpers import make_pair
from tests.test_tcp_connection import SinkApp, SourceApp, establish


def test_single_data_segment_loss_recovered_by_rto():
    sim, wire, a, b = make_pair()
    client, server = establish(sim, a, b)
    sink = SinkApp(sim, server)

    dropped = []

    def drop_first_data(packet):
        seg = packet.payload
        if seg.payload and not dropped:
            dropped.append(seg)
            return True
        return False

    wire.drop_fn = drop_first_data
    client.send(b"important")
    sim.run(until=sim.now + 5)
    assert bytes(sink.received) == b"important"
    assert client.segments_retransmitted >= 1
    assert client.timeouts >= 1


def test_fast_retransmit_on_dup_acks():
    sim, wire, a, b = make_pair()
    client, server = establish(sim, a, b)
    sink = SinkApp(sim, server)

    state = {"count": 0}

    def drop_one_mid_stream(packet):
        seg = packet.payload
        if seg.payload and len(seg.payload) > 1000:
            state["count"] += 1
            # Drop one segment once the window is wide enough that at
            # least three later segments generate duplicate ACKs.
            if state["count"] == 12:
                return True
        return False

    wire.drop_fn = drop_one_mid_stream
    SourceApp(sim, client, b"x" * 30000)
    sim.run(until=sim.now + 10)
    assert bytes(sink.received) == b"x" * 30000
    assert client.fast_retransmits >= 1


def test_blackout_window_then_full_recovery():
    """The netfilter-drop analogue: all packets dropped for 120 ms."""
    sim, wire, a, b = make_pair()
    client, server = establish(sim, a, b)
    sink = SinkApp(sim, server)
    payload = b"y" * 200000
    SourceApp(sim, client, payload)
    sim.run(until=sim.now + 0.05)  # stream is flowing

    blackout = {"active": True}
    wire.drop_fn = lambda packet: blackout["active"]
    sim.call_later(0.120, lambda: blackout.update(active=False))
    sim.run(until=sim.now + 20)
    assert bytes(sink.received) == payload
    assert client.segments_retransmitted >= 1


def test_ack_loss_is_harmless():
    sim, wire, a, b = make_pair()
    client, server = establish(sim, a, b)
    sink = SinkApp(sim, server)

    import random
    rng = random.Random(7)

    def drop_pure_acks_sometimes(packet):
        seg = packet.payload
        return (not seg.payload and seg.src_port == 5000
                and rng.random() < 0.3)

    wire.drop_fn = drop_pure_acks_sometimes
    payload = b"z" * 50000
    SourceApp(sim, client, payload)
    sim.run(until=sim.now + 20)
    assert bytes(sink.received) == payload


def test_duplicated_delivery_is_idempotent():
    """Packets received multiple times must not corrupt the stream (§4.1)."""
    sim, wire, a, b = make_pair()
    client, server = establish(sim, a, b)
    sink = SinkApp(sim, server)

    original_send = wire.send

    def duplicate_everything(packet):
        original_send_packet(packet)
        original_send_packet(packet)

    def original_send_packet(packet):
        original_send(packet)

    wire.send = duplicate_everything
    client.transmit = lambda seg, src, dst: wire.send(
        _packet(seg, src, dst))

    from repro.net.packet import IpPacket

    def _packet(seg, src, dst):
        return IpPacket(src=src, dst=dst, protocol=PROTO_TCP, payload=seg)

    payload = b"d" * 20000
    SourceApp(sim, client, payload)
    sim.run(until=sim.now + 10)
    assert bytes(sink.received) == payload


def test_cwnd_collapses_on_timeout_and_regrows():
    sim, wire, a, b = make_pair()
    client, server = establish(sim, a, b)
    SinkApp(sim, server)
    SourceApp(sim, client, b"w" * 500000)
    sim.run(until=sim.now + 0.05)
    cwnd_before = client.tcb.cwnd
    assert cwnd_before > 2 * client.tcb.options.mss  # slow start grew it

    blackout = {"active": True}
    wire.drop_fn = lambda packet: blackout["active"]
    sim.run(until=sim.now + 0.5)  # several RTOs fire
    assert client.tcb.cwnd == client.tcb.options.mss
    assert client.tcb.backoff_count >= 1

    blackout["active"] = False
    sim.run(until=sim.now + 20)
    assert client.tcb.cwnd > client.tcb.options.mss  # recovered


def test_rto_exponential_backoff_and_reset():
    sim, wire, a, b = make_pair()
    client, server = establish(sim, a, b)
    sink = SinkApp(sim, server)
    rto_baseline = client.tcb.rto
    blackout = {"active": True}
    wire.drop_fn = lambda packet: blackout["active"]
    client.send(b"stuck")
    sim.run(until=sim.now + 3)
    assert client.tcb.rto > rto_baseline * 2
    blackout["active"] = False
    sim.run(until=sim.now + 30)
    # Delivery resumed and a fresh RTT sample resets backoff.
    assert bytes(sink.received) == b"stuck"
    assert client.tcb.backoff_count == 0


def test_freeze_blocks_io_and_unfreeze_recovers():
    """The spin-lock window of §4.1: no delivery or transmission while
    the socket state is being captured."""
    sim, wire, a, b = make_pair()
    client, server = establish(sim, a, b)
    sink = SinkApp(sim, server)
    payload = b"f" * 100000
    SourceApp(sim, client, payload)
    sim.run(until=sim.now + 0.02)

    client.freeze()
    server.freeze()
    frozen_rcv = server.tcb.rcv_nxt
    frozen_una = client.tcb.snd_una
    sim.run(until=sim.now + 0.3)
    # No state motion while frozen.
    assert server.tcb.rcv_nxt == frozen_rcv
    assert client.tcb.snd_una == frozen_una

    client.unfreeze()
    server.unfreeze()
    sim.run(until=sim.now + 20)
    assert bytes(sink.received) == payload


def test_invariant_snd_una_lte_rcv_nxt_lte_snd_nxt_during_transfer():
    """The §5.1 invariant, sampled at many arbitrary instants."""
    sim, wire, a, b = make_pair()
    client, server = establish(sim, a, b)
    SinkApp(sim, server)
    SourceApp(sim, client, b"i" * 300000)
    for _ in range(200):
        sim.run(until=sim.now + 0.001)
        una = client.tcb.snd_una
        nxt = client.tcb.snd_nxt
        rcv = server.tcb.rcv_nxt
        assert una <= rcv <= nxt, (una, rcv, nxt)


def test_invariant_holds_under_random_loss():
    import random
    rng = random.Random(42)
    sim, wire, a, b = make_pair()
    client, server = establish(sim, a, b)
    SinkApp(sim, server)
    wire.drop_fn = lambda packet: rng.random() < 0.05
    SourceApp(sim, client, b"r" * 100000)
    for _ in range(300):
        sim.run(until=sim.now + 0.005)
        assert client.tcb.snd_una <= server.tcb.rcv_nxt <= client.tcb.snd_nxt


def test_connection_survives_syn_loss():
    sim, wire, a, b = make_pair()
    ip_a, stack_a = a
    ip_b, stack_b = b
    stack_b.listen(ip_b, 5000)
    state = {"drops": 0}

    def drop_first_two(packet):
        if state["drops"] < 2:
            state["drops"] += 1
            return True
        return False

    wire.drop_fn = drop_first_two
    client = stack_a.connect(ip_a, ip_b, 5000)
    sim.run_until_complete(client.established_event, limit=60)
    assert client.state == TcpState.ESTABLISHED


def test_syn_during_pod_pause_accepted_after_resume():
    """A SYN arriving while the server pod is paused behind the agent's
    drop-all netfilter rule (the §4.1 checkpoint window) is silently
    blackholed; the client's SYN retransmission must complete the
    handshake once the pod resumes and the rule is removed."""
    from repro.apps.kvserver import KvClient, KvServer
    from repro.cruz.cluster import CruzCluster

    cluster = CruzCluster(1, supervise=False)
    pod = cluster.create_pod(0, "kv")
    pod.spawn(KvServer())
    cluster.run_for(0.05)  # server reaches accept

    # Exactly what Agent._do_checkpoint does: filter, then SIGSTOP.
    node = cluster.nodes[0]
    rule_id = node.stack.netfilter.drop_all_for(pod.ip)
    pod.stop_all()

    client = cluster.coordinator_node.spawn(KvClient(
        str(pod.ip), [{"op": "put", "key": "k", "value": 1},
                      {"op": "get", "key": "k"}]))
    paused_until = cluster.sim.now + 1.2  # past INITIAL_RTO: >=1 SYN rtx
    cluster.run_for(1.2)
    assert client.is_alive  # blackholed, not refused

    node.stack.netfilter.remove_rule(rule_id)
    pod.continue_all()
    cluster.run_until(lambda: not client.is_alive, limit=30, step=0.05)
    assert client.exit_code == 0
    responses = client.program.responses
    assert [r["ok"] for r in responses] == [True, True]
    assert responses[1]["value"] == 1
    assert cluster.sim.now > paused_until
