"""TCP connection state: the transmission control block.

Sequence numbers follow the paper's Fig. 3 naming: ``snd_una`` is the
paper's ``unack_nxt``, ``snd_nxt`` the next sequence to send, ``rcv_nxt``
the receiver's next expected sequence. The reproduction uses unbounded
Python integers instead of 32-bit wrapping arithmetic; no evaluated claim
depends on wraparound.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import Optional, Tuple

from repro.net.addresses import Ipv4Address
from repro.tcp.options import SocketOptions

#: Linux 2.4's minimum retransmission timeout (HZ/5 = 200 ms).
MIN_RTO = 0.2
MAX_RTO = 120.0
#: Initial RTO before any RTT sample (RFC 2988 says 3 s; Linux used ~3 s,
#: but with LAN RTTs the first sample arrives immediately).
INITIAL_RTO = 1.0


class TcpState(enum.Enum):
    """RFC 793 connection states."""

    CLOSED = "CLOSED"
    LISTEN = "LISTEN"
    SYN_SENT = "SYN_SENT"
    SYN_RCVD = "SYN_RCVD"
    ESTABLISHED = "ESTABLISHED"
    FIN_WAIT_1 = "FIN_WAIT_1"
    FIN_WAIT_2 = "FIN_WAIT_2"
    CLOSE_WAIT = "CLOSE_WAIT"
    CLOSING = "CLOSING"
    LAST_ACK = "LAST_ACK"
    TIME_WAIT = "TIME_WAIT"


SYNCHRONISED_STATES = frozenset({
    TcpState.ESTABLISHED, TcpState.FIN_WAIT_1, TcpState.FIN_WAIT_2,
    TcpState.CLOSE_WAIT, TcpState.CLOSING, TcpState.LAST_ACK,
    TcpState.TIME_WAIT,
})


@dataclass
class TransmissionControlBlock:
    """All per-connection protocol state (the checkpointable core)."""

    local_ip: Ipv4Address
    local_port: int
    remote_ip: Ipv4Address
    remote_port: int
    state: TcpState = TcpState.CLOSED

    # Send sequence space (paper Fig. 3: unack_nxt == snd_una).
    iss: int = 0
    snd_una: int = 0
    snd_nxt: int = 0
    snd_wnd: int = 0          # peer-advertised window

    # Receive sequence space.
    irs: int = 0
    rcv_nxt: int = 0

    # Congestion control.
    cwnd: int = 0
    ssthresh: int = 1 << 30

    # Retransmission timing.
    srtt: Optional[float] = None
    rttvar: float = 0.0
    rto: float = INITIAL_RTO
    backoff_count: int = 0

    # FIN bookkeeping: sequence our FIN occupies once sent.
    fin_seq: Optional[int] = None
    fin_acked: bool = False

    options: SocketOptions = field(default_factory=SocketOptions)

    @property
    def four_tuple(self) -> Tuple:
        return (self.local_ip, self.local_port,
                self.remote_ip, self.remote_port)

    @property
    def flight_size(self) -> int:
        return self.snd_nxt - self.snd_una

    def update_rtt(self, sample: float) -> None:
        """RFC 6298 SRTT/RTTVAR smoothing with Linux's floor."""
        if self.srtt is None:
            self.srtt = sample
            self.rttvar = sample / 2
        else:
            self.rttvar = 0.75 * self.rttvar + 0.25 * abs(self.srtt - sample)
            self.srtt = 0.875 * self.srtt + 0.125 * sample
        self.rto = max(MIN_RTO, min(MAX_RTO, self.srtt + 4 * self.rttvar))
        self.backoff_count = 0

    def backoff(self) -> None:
        """Exponential retransmission backoff on timeout."""
        self.rto = min(MAX_RTO, self.rto * 2)
        self.backoff_count += 1

    def ack_progress(self) -> None:
        """New data was acknowledged: leave backoff (RFC 6298 §5.7)."""
        if self.backoff_count == 0:
            return
        self.backoff_count = 0
        if self.srtt is not None:
            self.rto = max(MIN_RTO, min(MAX_RTO, self.srtt + 4 * self.rttvar))
        else:
            self.rto = INITIAL_RTO

    def snapshot_for_checkpoint(self) -> "TransmissionControlBlock":
        """The §4.1 adjustment: a copy reflecting empty socket buffers.

        Two sequence-number fields change relative to the live TCB:

        * ``snd_nxt`` is rewound to ``snd_una`` — the saved state pretends
          the send-buffer contents were never issued to the OS (the restore
          path re-issues them as fresh ``send`` calls, re-consuming the same
          sequence numbers).
        * the *delivery* pointer implied by the receive buffer becomes
          ``rcv_nxt`` — the saved state pretends everything received in-order
          was already delivered to the application (the restore path parks
          those bytes in the alternate buffer outside TCP).

        Congestion state is reset conservatively: after restart the network
        path may be different, so the connection re-probes from slow start.
        RTT estimates are cleared for the same reason.
        """
        snap = replace(self)
        snap.snd_nxt = snap.snd_una
        if snap.fin_seq is not None and not snap.fin_acked:
            # An unacknowledged FIN is re-sent by the restored close path.
            snap.fin_seq = None
        snap.cwnd = 2 * snap.options.mss
        snap.ssthresh = 1 << 30
        snap.srtt = None
        snap.rttvar = 0.0
        # The restored endpoint re-probes from the floor RTO: its re-issued
        # sends are deliberately dropped while communication is disabled,
        # and recovery should begin one minimum timeout later (§5).
        snap.rto = MIN_RTO
        snap.backoff_count = 0
        return snap

    def invariant_holds(self, receiver_rcv_nxt: int) -> bool:
        """The paper's §5.1 invariant: unack_nxt <= rcv_nxt <= snd_nxt."""
        return self.snd_una <= receiver_rcv_nxt <= self.snd_nxt
