"""Fig. 5 harness: checkpoint latency and coordination overhead vs nodes.

Paper setup (§6): the slm benchmark on 2–8 dual-PIII nodes, checkpoints
every 8 s of execution, coordinator on a separate node. Reported results:

* Fig. 5(a) — total checkpoint latency ≈ 1 s for every node count,
  dominated by writing the application's memory image to disk;
* Fig. 5(b) — coordination overhead 350–550 µs, growing ≈ 50 µs/node
  beyond 4 nodes;
* restart performance "similar" (stated, figure omitted for space).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.apps.slm import slm_factory
from repro.bench.harness import ShapeReport, Stat
from repro.cruz.cluster import CruzCluster
from repro.cruz.protocol import RoundStats
from repro.sim.spans import SpanRecorder


@dataclass
class Fig5Point:
    """One node-count's measurements across several checkpoint rounds."""

    n_nodes: int
    latency: Stat            # seconds (Fig. 5a)
    overhead: Stat           # seconds (Fig. 5b)
    local_save: Stat         # seconds (the disk-bound component)
    restart_latency: Stat    # seconds (§6: "similar", figure omitted)
    messages_per_round: float
    #: The raw per-round coordinator stats the Stats above derive from —
    #: kept so regression tests can cross-check the span-derived numbers
    #: against the RoundStats bookkeeping.
    rounds: List[RoundStats] = field(default_factory=list)
    restart_round: Optional[RoundStats] = None


def round_span_metrics(spans: SpanRecorder,
                       stats: RoundStats) -> Tuple[float, float, float]:
    """(latency, overhead, local) of one round, from the span timeline.

    The Fig. 5a latency is the ``round`` span's start to the end of the
    coordinator's ``coord.wait_done`` phase; the local component is the
    slowest node's ``agent.local`` span; overhead is the difference —
    exactly the quantities ``RoundStats`` reports, reconstructed from the
    timeline (the spans open/close at the same simulation instants the
    coordinator samples its clock, so the floats are identical).
    """
    round_span = spans.one("round", epoch=stats.epoch)
    done = spans.one("coord.wait_done", epoch=stats.epoch)
    latency = done.end - round_span.start
    locals_ = [s.duration
               for s in spans.query("agent.local", epoch=stats.epoch)]
    local = max(locals_) if locals_ else 0.0
    return latency, latency - local, local


def run_fig5(node_counts: Sequence[int] = (2, 4, 6, 8),
             rounds: int = 5,
             memory_mb_per_rank: float = 100.0,
             checkpoint_interval_s: float = 2.0,
             steps: int = 100000,
             total_work_s: float = 1e6,
             optimized: bool = False) -> List[Fig5Point]:
    """Measure checkpoint and restart rounds for each node count.

    The slm job is sized so it never finishes during the measurement
    (matching the paper's methodology of measuring during a long run);
    per-rank memory is constant so the local save is ~1 s at 100 MB/s.
    """
    points = []
    for n_nodes in node_counts:
        cluster = CruzCluster(n_nodes, trace_enabled=True)
        app = cluster.launch_app_factory(
            "slm", n_nodes,
            slm_factory(n_nodes, global_rows=8 * n_nodes, cols=32,
                        steps=steps, total_work_s=total_work_s,
                        memory_mb_per_rank=memory_mb_per_rank))
        cluster.run_for(0.5)  # mesh up, steady state
        checkpoint_rounds = []
        message_counts = []
        for _ in range(rounds):
            cluster.run_for(checkpoint_interval_s)
            before = cluster.coordination_message_count()
            stats = cluster.checkpoint_app(app, optimized=optimized)
            message_counts.append(
                cluster.coordination_message_count() - before)
            checkpoint_rounds.append(stats)
        # Restart measurement: crash and restart from the last image.
        cluster.crash_app(app)
        restart_stats = cluster.restart_app(app)
        # Derive the figure's numbers from the span timeline rather than
        # the coordinator's private bookkeeping.
        spans = cluster.spans
        measured = [round_span_metrics(spans, r)
                    for r in checkpoint_rounds]
        restart_latency, _, _ = round_span_metrics(spans, restart_stats)
        points.append(Fig5Point(
            n_nodes=n_nodes,
            latency=Stat.of([latency for latency, _, _ in measured]),
            overhead=Stat.of([overhead for _, overhead, _ in measured]),
            local_save=Stat.of([local for _, _, local in measured]),
            restart_latency=Stat.of([restart_latency]),
            messages_per_round=sum(message_counts) / len(message_counts),
            rounds=checkpoint_rounds,
            restart_round=restart_stats))
    return points


def fig5_shape_report(points: List[Fig5Point]) -> ShapeReport:
    """The paper's qualitative claims as a checkable shape report."""
    latencies = [p.latency.mean for p in points]
    overheads = [p.overhead.mean for p in points]
    report = ShapeReport("Fig. 5 shape")
    # 5(a): latency is ~constant (disk-bound), around a second.
    report.check("latency_flat",
                 max(latencies) < 1.3 * min(latencies),
                 value=max(latencies) / min(latencies),
                 expect="max/min < 1.3 across node counts")
    report.check("latency_is_seconds_scale",
                 all(0.3 < v < 3.0 for v in latencies),
                 value=latencies, expect="0.3 s < latency < 3 s")
    # 5(a): latency is dominated by the local save.
    report.check("save_dominates",
                 all(p.local_save.mean > 0.95 * p.latency.mean
                     for p in points),
                 value=min(p.local_save.mean / p.latency.mean
                           for p in points),
                 expect="local save > 95% of latency")
    # 5(b): overhead is microseconds, far below the latency.
    report.check("overhead_microseconds",
                 all(1e-5 < v < 5e-3 for v in overheads),
                 value=overheads, expect="10 µs < overhead < 5 ms")
    # 5(b): overhead grows with node count (needs two counts to tell).
    report.check("overhead_grows",
                 len(points) < 2 or overheads[-1] > overheads[0],
                 value=overheads[-1] - overheads[0],
                 expect="overhead(N_max) > overhead(N_min)")
    # restart comparable to checkpoint.
    report.check("restart_similar",
                 all(0.3 * p.latency.mean < p.restart_latency.mean
                     < 3.0 * p.latency.mean for p in points),
                 value=[p.restart_latency.mean / p.latency.mean
                        for p in points],
                 expect="restart within 0.3x-3x of checkpoint")
    return report


def fig5_shape_holds(points: List[Fig5Point]) -> dict:
    """Deprecated: use :func:`fig5_shape_report`; kept for old callers."""
    return fig5_shape_report(points).as_dict()
