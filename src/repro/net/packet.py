"""On-the-wire message formats: Ethernet, ARP, IPv4, TCP, UDP.

These are plain immutable dataclasses rather than byte blobs — the simulator
never needs real serialisation, but sizes are modelled so links can account
for transmission time the way a gigabit NIC would.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field, replace
from enum import IntFlag
from typing import Optional, Tuple, Union

from repro.net.addresses import Ipv4Address, MacAddress

ETHERNET_HEADER_BYTES = 18  # dst + src + type + FCS
IP_HEADER_BYTES = 20
TCP_HEADER_BYTES = 20
UDP_HEADER_BYTES = 8
ARP_BODY_BYTES = 28
#: Standard Ethernet MTU (IP payload budget), as in the paper's testbed.
MTU = 1500
#: Maximum TCP segment payload given the MTU.
DEFAULT_MSS = MTU - IP_HEADER_BYTES - TCP_HEADER_BYTES

ETHERTYPE_IP = 0x0800
ETHERTYPE_ARP = 0x0806

PROTO_TCP = 6
PROTO_UDP = 17

_frame_ids = itertools.count(1)


class TcpFlags(IntFlag):
    """TCP header flags."""

    NONE = 0
    FIN = 1
    SYN = 2
    RST = 4
    PSH = 8
    ACK = 16


@dataclass(frozen=True)
class TcpSegment:
    """A TCP segment; ``seq`` numbers the first payload byte."""

    src_port: int
    dst_port: int
    seq: int
    ack: int
    flags: TcpFlags
    window: int
    payload: bytes = b""

    @property
    def size(self) -> int:
        return TCP_HEADER_BYTES + len(self.payload)

    @property
    def seq_len(self) -> int:
        """Sequence space consumed: payload bytes plus SYN/FIN."""
        length = len(self.payload)
        if self.flags & TcpFlags.SYN:
            length += 1
        if self.flags & TcpFlags.FIN:
            length += 1
        return length

    def describe(self) -> str:
        names = [flag.name for flag in TcpFlags
                 if flag and self.flags & flag]
        return (f"TCP {self.src_port}->{self.dst_port} "
                f"[{'|'.join(names) or '.'}] seq={self.seq} ack={self.ack} "
                f"len={len(self.payload)}")


@dataclass(frozen=True)
class UdpDatagram:
    """A UDP datagram."""

    src_port: int
    dst_port: int
    payload: object = b""
    payload_size: Optional[int] = None

    @property
    def size(self) -> int:
        if self.payload_size is not None:
            return UDP_HEADER_BYTES + self.payload_size
        if isinstance(self.payload, (bytes, bytearray)):
            return UDP_HEADER_BYTES + len(self.payload)
        return UDP_HEADER_BYTES + 64


@dataclass(frozen=True)
class IpPacket:
    """An IPv4 packet carrying TCP or UDP."""

    src: Ipv4Address
    dst: Ipv4Address
    protocol: int
    payload: Union[TcpSegment, UdpDatagram]
    ttl: int = 64

    @property
    def size(self) -> int:
        return IP_HEADER_BYTES + self.payload.size


ARP_REQUEST = 1
ARP_REPLY = 2


@dataclass(frozen=True)
class ArpPacket:
    """An ARP request/reply (also used for gratuitous ARP announcements)."""

    operation: int
    sender_mac: MacAddress
    sender_ip: Ipv4Address
    target_mac: Optional[MacAddress]
    target_ip: Ipv4Address

    @property
    def size(self) -> int:
        return ARP_BODY_BYTES


@dataclass(frozen=True)
class EthernetFrame:
    """An Ethernet frame. ``frame_id`` makes traces unambiguous."""

    src: MacAddress
    dst: MacAddress
    ethertype: int
    payload: Union[IpPacket, ArpPacket]
    frame_id: int = field(default_factory=lambda: next(_frame_ids))

    @property
    def size(self) -> int:
        return ETHERNET_HEADER_BYTES + self.payload.size

    def with_payload(self, payload) -> "EthernetFrame":
        return replace(self, payload=payload)


def tcp_frame(src_mac: MacAddress, dst_mac: MacAddress,
              src_ip: Ipv4Address, dst_ip: Ipv4Address,
              segment: TcpSegment) -> EthernetFrame:
    """Convenience constructor for a full TCP-in-IP-in-Ethernet frame."""
    packet = IpPacket(src=src_ip, dst=dst_ip, protocol=PROTO_TCP,
                      payload=segment)
    return EthernetFrame(src=src_mac, dst=dst_mac, ethertype=ETHERTYPE_IP,
                         payload=packet)


def connection_key(packet: IpPacket) -> Tuple:
    """The 4-tuple identifying a TCP connection, from the receiver's side."""
    segment = packet.payload
    return (packet.dst, segment.dst_port, packet.src, segment.src_port)
