"""Single-pod checkpoint.

The sequence follows §4.1:

1. SIGSTOP every process in the pod ("Zap sends SIGSTOP signals to stop the
   execution of all processes in a pod before checkpointing it").
2. Freeze the network processing for the pod's sockets (the spin-lock
   window) and capture socket state via the codec.
3. Extract user-level and kernel state (programs, memory, fds, pipes, IPC).
4. Write the image; cost is dominated by the memory state / disk bandwidth.
5. Optionally resume the processes (checkpoint is non-destructive).
"""

from __future__ import annotations

from typing import Dict, Generator, List, Optional, Tuple

from repro.errors import CheckpointError
from repro.simos.files import Pipe, RegularFile
from repro.simos.sockets import TcpSocket, UdpSocket
from repro.zap.image import (
    CheckpointImage,
    FdImage,
    PipeImage,
    ProcessImage,
    SemImage,
    ShmImage,
    freeze_object,
)
from repro.zap.pod import Pod
from repro.zap.socket_codec import SocketCodec

#: Estimated per-process kernel bookkeeping written to the image.
PROCESS_OVERHEAD_BYTES = 8192


class CheckpointEngine:
    """Builds :class:`CheckpointImage` objects for pods.

    With a chunk-backed ``store`` (see :mod:`repro.cruz.storage`) the
    engine plans the save up front, charges a short serialization window
    while the pod is stopped, pipelines the disk write against it, and
    commits the image itself (``image.version`` holds the result).
    Without a store the classic whole-image write cost applies and the
    caller persists the image.
    """

    def __init__(self, codec: SocketCodec, store=None):
        self.codec = codec
        self.store = store

    # -- simulation-timed entry point -------------------------------------

    def checkpoint(self, pod: Pod, resume: bool = True,
                   incremental: bool = False,
                   dedup: bool = False,
                   on_captured=None,
                   concurrent: bool = False) -> Generator:
        """A simulation coroutine; its value is the finished image.

        ``on_captured`` — invoked the moment the state has been extracted
        (before the disk write). The §5.2 "early re-enable" optimisation
        hooks here: "keeping communication disabled only for the duration
        it takes to save the communication state ... allows any recovery
        from TCP backoffs to proceed in parallel with saving the
        checkpoint state."

        ``concurrent`` — resume the processes right after extraction and
        overlap the disk write with computation. This models the §5.2
        copy-on-write optimisation; in this reproduction the extracted
        image *is* an isolated copy, so resuming early is always safe.
        """
        node = pod.node
        sim, costs = node.sim, node.costs
        spans = node.trace.spans
        procs = pod.live_processes()
        pre_stopped = {p.pid for p in procs if p.stopped}
        with spans.span("zap.stop", node=node.name, pod=pod.name):
            pod.stop_all()
            if procs:
                yield sim.timeout(costs.signal_delivery * len(procs))
        sockets = self._pod_sockets(pod)
        netstate_span = spans.begin("zap.netstate_capture",
                                    node=node.name, pod=pod.name,
                                    sockets=len(sockets))
        for sock in sockets:
            if isinstance(sock, TcpSocket) and sock.connection is not None:
                sock.connection.freeze()
        if sockets:
            # The short spin-lock window of §4.1.
            yield sim.timeout(costs.socket_capture_time * len(sockets))
        try:
            image = self.build_image(pod, pre_stopped=pre_stopped,
                                     incremental=incremental)
        finally:
            for sock in sockets:
                if isinstance(sock, TcpSocket) and \
                        sock.connection is not None:
                    sock.connection.unfreeze()
            spans.end(netstate_span)
        if self.store is not None:
            mode = "incremental" if incremental \
                else ("dedup" if dedup else "full")
            # The checkpointing node is the writer: with a placed
            # (sharded) store it keeps the primary copy of every chunk,
            # so a restore on this node stays a local disk read.
            plan = self.store.plan(image, mode=mode, writer=node.name)
            image.written_bytes = plan.write_bytes
            image.total_chunk_bytes = plan.total_bytes
            serialize_s, pipeline_s = plan.schedule(costs)
            if serialize_s:
                # Copy-out window: the pod must stay stopped only while
                # its state is serialised; the disk write of process i
                # overlaps the serialization of process i+1 (§5.2).
                with spans.span("zap.serialize", node=node.name,
                                pod=pod.name):
                    yield sim.timeout(serialize_s)
            if on_captured is not None:
                on_captured()
            if concurrent and resume:
                pod.continue_all()
            with spans.span("zap.store_write", node=node.name,
                            pod=pod.name, mode=mode,
                            write_bytes=plan.write_bytes):
                yield sim.timeout(costs.checkpoint_fixed
                                  + (pipeline_s - serialize_s))
                image.version = self.store.save(image, mode=mode,
                                                plan=plan)
            if incremental:
                self._retire_dirty(pod, image)
        else:
            if on_captured is not None:
                on_captured()
            if concurrent and resume:
                pod.continue_all()
            write_bytes = image.written_bytes
            with spans.span("zap.image_write", node=node.name,
                            pod=pod.name, write_bytes=write_bytes):
                yield sim.timeout(costs.checkpoint_fixed +
                                  write_bytes / costs.disk_write_bandwidth)
            if incremental:
                self._retire_dirty(pod, image)
        node.trace.emit(sim.now, "checkpoint", node=node.name,
                        **image.summary())
        if resume and not concurrent:
            pod.continue_all()
        return image

    @staticmethod
    def _retire_dirty(pod: Pod, image: CheckpointImage) -> None:
        """After a *committed* incremental save, retire the dirty bits
        the image covers. Pages re-dirtied between capture and commit
        (the concurrent-write window) stay dirty for the next round."""
        by_vpid = {proc_image.vpid: proc_image
                   for proc_image in image.processes}
        for proc in pod.live_processes():
            captured = by_vpid.get(pod.vpid_of(proc.pid))
            if captured is not None:
                proc.memory.clear_dirty_captured(captured.memory)

    # -- state extraction (instantaneous) ------------------------------------

    def build_image(self, pod: Pod, pre_stopped=frozenset(),
                    incremental: bool = False) -> CheckpointImage:
        """Extract the pod's state. Processes must already be stopped."""
        node = pod.node
        procs = pod.live_processes()
        for proc in procs:
            if not proc.stopped:
                raise CheckpointError(
                    f"process pid={proc.pid} not stopped before checkpoint")
        image = CheckpointImage(
            pod_name=pod.name, taken_at=node.sim.now,
            ip=pod.ip, mac=pod.mac, fake_mac=pod.fake_mac,
            own_wire_mac=pod.own_wire_mac,
            next_vpid=pod._next_vpid, next_vipc=pod._next_vipc)
        # Keyed by the Pipe object itself (identity hash): same dedup as
        # id(obj) keys, but insertion-ordered by fd walk, not by address.
        pipe_indexes: Dict[Pipe, int] = {}
        state_bytes = 0
        written_bytes = 0

        for proc in procs:
            program_blob = freeze_object(proc.program)
            resume_syscall = proc.current_syscall
            fd_images: List[FdImage] = []
            for fd, descriptor in proc.fds.items():
                fd_images.append(self._capture_fd(
                    pod, image, pipe_indexes, fd, descriptor))
            parent_vpid = pod.pid_to_vpid.get(proc.ppid, 0)
            memory_snapshot = proc.memory.snapshot()
            image.processes.append(ProcessImage(
                vpid=pod.vpid_of(proc.pid), parent_vpid=parent_vpid,
                name=proc.name, program_blob=program_blob,
                memory=memory_snapshot, resume_syscall=resume_syscall,
                fds=fd_images,
                was_stopped_by_user=proc.pid in pre_stopped,
                initial_result=proc.initial_result
                if proc.syscall_count == 0 else None))
            state_bytes += (proc.memory.resident_bytes + len(program_blob)
                            + PROCESS_OVERHEAD_BYTES)
            if incremental:
                # Dirty bits are NOT retired here: the save has not
                # committed yet. ``checkpoint`` clears them (per page,
                # via the captured snapshot) only after the store commit
                # succeeds, so an aborted save never loses pages.
                written_bytes += (proc.memory.dirty_bytes()
                                  + len(program_blob)
                                  + PROCESS_OVERHEAD_BYTES)

        self._capture_ipc(pod, image)

        for pipe_image in image.pipes:
            state_bytes += len(pipe_image.buffer)
        for shm_image in image.shm:
            state_bytes += shm_image.size
        for proc_image in image.processes:
            for fd_image in proc_image.fds:
                if fd_image.kind in ("tcp_socket", "udp_socket"):
                    state_bytes += self.codec.image_bytes(
                        fd_image.detail if isinstance(fd_image.detail, dict)
                        else {})
                    image.sockets_captured += 1
        image.state_bytes = state_bytes
        image.written_bytes = written_bytes if incremental else state_bytes
        return image

    def _capture_fd(self, pod: Pod, image: CheckpointImage,
                    pipe_indexes: Dict[Pipe, int], fd: int,
                    descriptor) -> FdImage:
        obj = descriptor.obj
        if isinstance(obj, RegularFile):
            return FdImage(fd=fd, kind="file", mode=descriptor.mode,
                           detail={"path": obj.path, "offset": obj.offset,
                                   "file_mode": obj.mode})
        if isinstance(obj, Pipe):
            index = pipe_indexes.get(obj)
            if index is None:
                index = len(image.pipes)
                pipe_indexes[obj] = index
                image.pipes.append(PipeImage(
                    index=index, buffer=bytes(obj.buffer),
                    readers=obj.readers, writers=obj.writers))
            return FdImage(fd=fd, kind="pipe", mode=descriptor.mode,
                           detail={"pipe_index": index})
        if isinstance(obj, TcpSocket):
            return FdImage(fd=fd, kind="tcp_socket", mode=descriptor.mode,
                           detail=self.codec.capture_tcp(obj))
        if isinstance(obj, UdpSocket):
            return FdImage(fd=fd, kind="udp_socket", mode=descriptor.mode,
                           detail=self.codec.capture_udp(obj))
        raise CheckpointError(f"cannot checkpoint fd kind {obj.kind!r}")

    def _capture_ipc(self, pod: Pod, image: CheckpointImage) -> None:
        node = pod.node
        for vid, physical in sorted(pod.vshm.items()):
            segment = node.ipc.shm_lookup(physical)
            image.shm.append(ShmImage(
                vid=vid, app_key=segment.key & 0xFFFFFFFF,
                size=segment.size,
                payload_blob=freeze_object(segment.payload)))
        for vid, physical in sorted(pod.vsem.items()):
            semaphore = node.ipc.sem_lookup(physical)
            image.sem.append(SemImage(
                vid=vid, app_key=semaphore.key & 0xFFFFFFFF,
                value=semaphore.value))

    @staticmethod
    def _pod_sockets(pod: Pod) -> List:
        return pod_sockets(pod)


def pod_sockets(pod: Pod) -> List:
    """All distinct socket objects reachable from the pod's processes."""
    sockets: List = []
    for proc in pod.live_processes():
        for _fd, descriptor in proc.fds.items():
            obj = descriptor.obj
            if isinstance(obj, (TcpSocket, UdpSocket)) \
                    and not any(obj is known for known in sockets):
                sockets.append(obj)
    return sockets


def scrub_pod_network(pod: Pod) -> None:
    """Silently destroy the pod's network state on its current node.

    A migrating (or checkpointed-then-killed) pod must leave no TCP state
    behind, and — critically — must not emit FIN or RST while dying: the
    peers' connections now belong to the restored instance elsewhere. Call
    this *before* killing the pod's processes.
    """
    for sock in pod_sockets(pod):
        if isinstance(sock, TcpSocket):
            if sock.listener is not None:
                for embryo in list(sock.listener.embryos):
                    embryo.destroy()
                sock.listener.embryos.clear()
                for queued in list(sock.listener.accept_queue):
                    queued.destroy()
                sock.listener.accept_queue.clear()
                sock.listener.closed = True
                sock.stack.tcp.remove_listener(sock.listener)
            if sock.connection is not None:
                sock.connection.destroy()
            sock.closed = True
        else:
            sock.close()
