"""Node supervisor: heartbeat failure detector and automatic failover.

The paper's headline use case (§1, §4.2) is surviving node failure:
after a crash, pods restart from the last committed checkpoint on
*surviving* nodes. The protocol machinery (coordinated restart, WAL,
image versioning) has always been here; this module adds the part that
*notices* failures and decides to recover, in the shape DMTCP-style
user-level coordinators use:

* every agent sends periodic fire-and-forget ``HEARTBEAT`` beacons
  (seeded jitter, so beats never collide on a simulator instant);
* the :class:`NodeSupervisor` keeps a per-node lease on the simulator
  clock and declares a node **dead** after ``lease_misses`` worst-case
  beat intervals of silence;
* every ``up``/``down`` transition is written ahead to the shared-store
  :class:`~repro.cruz.storage.LivenessLog`, so a restarted supervisor
  inherits the cluster's liveness map instead of rediscovering it;
* a death declaration fails the coordinator's in-flight rounds (their
  normal abort path makes survivors discard half-round images), then
  drives per-app failover: pick the newest committed checkpoint version
  shared by every member, ``verify_image`` each member image, place the
  dead node's pods on surviving nodes (least-loaded, lowest index wins
  ties), and run a coordinated restart — retrying with backoff if the
  chosen target dies mid-failover.

Every failover phase is recorded as spans (``failover`` with children
``failover.verify`` / ``failover.place`` / ``failover.restart``, plus
the detached ``failover.detect`` opened at first suspicion), so MTTR
and its breakdown are measured, not asserted.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Generator, List, Optional, Set

from repro.cruz import protocol
from repro.cruz.protocol import (
    SUPERVISOR_PORT,
    ControlMessage,
    ReliableEndpoint,
)
from repro.cruz.migration import PrecopyMigrator
from repro.cruz.storage import LivenessLog
from repro.errors import (
    CheckpointError,
    CoordinationError,
    FailoverError,
    MigrationError,
    RestartMismatchError,
    StoreError,
)
from repro.net.addresses import Ipv4Address
from repro.zap.verify import verify_image


@dataclass
class NodeLease:
    """Detector-side liveness state for one watched node."""

    index: int
    name: str
    #: Simulator time of the most recent beat (or of registration).
    last_beat: float = 0.0
    beats: int = 0
    alive: bool = True
    #: Set when the node first misses a worst-case beat interval.
    suspect_since: Optional[float] = None
    #: Open ``failover.detect`` span while suspect (detached).
    detect_span: object = None


@dataclass
class FailoverRecord:
    """One completed automatic failover, with its span-derived phases."""

    app: str
    dead_node: str
    version: int
    attempts: int
    #: pod name -> node name it was restarted on.
    placement: Dict[str, str] = field(default_factory=dict)
    #: First missed beat (detection starts the MTTR clock).
    suspected_at: float = 0.0
    #: Death declaration (detect phase ends here).
    declared_at: float = 0.0
    #: Restart round committed, pods serving again.
    completed_at: float = 0.0
    detect_s: float = 0.0
    verify_s: float = 0.0
    place_s: float = 0.0
    restart_s: float = 0.0

    @property
    def mttr_s(self) -> float:
        """Detection -> serving (§1's recovery-time story)."""
        return self.completed_at - self.suspected_at

    def phases(self) -> Dict[str, float]:
        return {"detect": self.detect_s, "verify": self.verify_s,
                "place": self.place_s, "restart": self.restart_s,
                "total": self.mttr_s}


class NodeSupervisor:
    """Watches agent heartbeats; declares deaths; drives failover.

    Runs on the coordinator node (its own ``ReliableEndpoint`` on
    ``SUPERVISOR_PORT``) so, like the coordinator, it survives any
    application-node failure.
    """

    def __init__(self, cluster, node=None,
                 heartbeat_interval_s: float = 0.05,
                 heartbeat_jitter_s: float = 0.01,
                 lease_misses: int = 3,
                 auto_failover: bool = True,
                 evict_on_suspect: bool = False,
                 max_restart_attempts: int = 3,
                 retry_backoff_s: float = 0.25,
                 settle_s: float = 0.02):
        self.cluster = cluster
        self.node = node if node is not None else cluster.coordinator_node
        self.heartbeat_interval_s = heartbeat_interval_s
        self.heartbeat_jitter_s = heartbeat_jitter_s
        self.lease_misses = lease_misses
        self.auto_failover = auto_failover
        self.evict_on_suspect = evict_on_suspect
        self.max_restart_attempts = max_restart_attempts
        self.retry_backoff_s = retry_backoff_s
        self.settle_s = settle_s
        self.liveness: LivenessLog = cluster.store.liveness
        self.leases: Dict[int, NodeLease] = {}
        self.heartbeats_received = 0
        self.deaths: List[Dict] = []
        self.failovers: List[FailoverRecord] = []
        self.failures: List[FailoverError] = []
        #: One entry per suspect-state eviction attempt (see ``_evict``).
        self.evictions: List[Dict] = []
        self._active_failovers: Set[str] = set()
        #: Node indices with an eviction sweep in flight.
        self._evicting_nodes: Set[int] = set()
        #: App names with a member currently being live-migrated away.
        self._evicting_apps: Set[str] = set()
        self._monitoring = False
        #: Last logged state per node, inherited from the liveness WAL —
        #: a replacement supervisor starts knowing who is already dead.
        self._inherited = self.liveness.last_states()
        self.endpoint = ReliableEndpoint(
            self.node, SUPERVISOR_PORT, self._on_message,
            faults=getattr(cluster, "fault_injector", None),
            name=f"supervisor@{self.node.name}")

    # -- lease bookkeeping -------------------------------------------------

    @property
    def _sim(self):
        return self.node.sim

    @property
    def _spans(self):
        return self.node.trace.spans

    def _worst_case_beat_s(self) -> float:
        return self.heartbeat_interval_s + self.heartbeat_jitter_s

    def watch(self, node_index: int) -> NodeLease:
        """Start tracking one application node's liveness."""
        name = self.cluster.nodes[node_index].name
        lease = NodeLease(index=node_index, name=name,
                          last_beat=self._sim.now)
        if self._inherited.get(name) == LivenessLog.DOWN:
            lease.alive = False
        self.leases[node_index] = lease
        return lease

    def start(self, monitor_interval_s: Optional[float] = None) -> None:
        """Launch the monitor loop (idempotent)."""
        if self._monitoring:
            return
        self._monitoring = True
        interval = (monitor_interval_s if monitor_interval_s is not None
                    else self.heartbeat_interval_s)
        self._sim.process(self._monitor_loop(interval),
                          name=f"supervisor@{self.node.name}")

    def close(self) -> None:
        """Stop receiving (supervisor crash / replacement)."""
        self.endpoint.close()

    def _on_message(self, payload: ControlMessage,
                    _src_ip: Ipv4Address) -> None:
        if payload.kind != protocol.HEARTBEAT:
            return
        self.heartbeats_received += 1
        self.node.trace.metrics.counter("supervisor.heartbeats").inc(
            label=payload.node_name)
        for lease in self.leases.values():
            if lease.name == payload.node_name:
                self._renew(lease)
                return

    def _renew(self, lease: NodeLease) -> None:
        lease.last_beat = self._sim.now
        lease.beats += 1
        if lease.suspect_since is not None:
            # False alarm: the beat arrived before the lease expired.
            self._spans.end(lease.detect_span, declared=False)
            lease.suspect_since = None
            lease.detect_span = None
        if not lease.alive:
            lease.alive = True
            self.liveness.log(lease.name, LivenessLog.UP,
                              at=self._sim.now, reason="heartbeat resumed",
                              source=self.node.name)
            self._spans.instant("supervisor.rejoin", node=self.node.name,
                                subject=lease.name)
            self.node.trace.emit(self._sim.now, "node_rejoin",
                                 node=self.node.name, subject=lease.name)

    def _monitor_loop(self, interval: float) -> Generator:
        sim = self._sim
        while True:
            yield sim.timeout(interval)
            for index in sorted(self.leases):
                lease = self.leases[index]
                if not lease.alive:
                    continue
                silence = sim.now - lease.last_beat
                if silence <= self._worst_case_beat_s():
                    continue
                if lease.suspect_since is None:
                    lease.suspect_since = sim.now
                    # Detached: the suspicion overlaps normal coordinator
                    # work on this node; it must not adopt children.
                    lease.detect_span = self._spans.begin(
                        "failover.detect", node=self.node.name,
                        subject=lease.name, attach=False, orphan=True)
                    if self.evict_on_suspect and \
                            lease.index not in self._evicting_nodes:
                        self._evicting_nodes.add(lease.index)
                        sim.process(self._evict(lease),
                                    name=f"evict(node{lease.index})")
                if silence > self.lease_misses * self._worst_case_beat_s():
                    self._declare_dead(lease)

    # -- suspect-state eviction --------------------------------------------

    def _evict(self, lease: NodeLease) -> Generator:
        """Proactively live-migrate every pod off a *suspect* node.

        A suspect lease (one missed worst-case beat) precedes a death
        declaration by ``lease_misses - 1`` further beats — enough time
        for converged pre-copy migrations to move the pods with a
        near-zero pause, turning reactive failover (restore from the
        last checkpoint, losing progress since it) into zero-loss
        preemption. If the node really is dead, the migration preflight
        or its mid-round death check fails fast and normal failover owns
        the recovery; if the suspicion was a false alarm, the migration
        was merely transparent.
        """
        from repro.cruz.migration import owning_app
        from repro.lsf.scheduler import least_loaded_target

        cluster = self.cluster
        sim = self._sim
        agent = cluster.agents[lease.index]
        migrator = PrecopyMigrator(cluster)
        span = self._spans.begin("supervisor.evict", node=self.node.name,
                                 subject=lease.name, attach=False,
                                 orphan=True)
        moved = 0
        try:
            # Let any in-flight coordinated round settle first: its
            # agent-side handler may be holding the pod stopped under
            # the round's own drop rule.
            while cluster.store.rounds.in_flight():
                yield sim.timeout(self.settle_s)
            for pod_name in sorted(agent.pods):
                pod = agent.pods.get(pod_name)
                if pod is None:
                    continue
                entry = {"pod": pod_name, "from": lease.name,
                         "started_at": sim.now, "ok": False}
                target = least_loaded_target(
                    cluster, exclude={lease.index},
                    node_alive=self._node_alive)
                if target is None:
                    entry["reason"] = "no live target"
                    self.evictions.append(entry)
                    break
                app = owning_app(cluster, pod)
                app_name = app.name if app is not None else None
                if app_name is not None:
                    self._evicting_apps.add(app_name)
                try:
                    _restored, report = yield from migrator.migrate(
                        pod, target)
                except (MigrationError, CheckpointError,
                        CoordinationError) as error:
                    entry["reason"] = str(error)
                    self.evictions.append(entry)
                    self._spans.instant(
                        "supervisor.evict_failed", node=self.node.name,
                        subject=lease.name, pod=pod_name,
                        reason=str(error))
                    break
                finally:
                    if app_name is not None:
                        self._evicting_apps.discard(app_name)
                entry.update(
                    ok=True, to=report.target_node,
                    rounds=report.precopy_rounds,
                    converged=report.converged,
                    pause_window_s=report.pause_window_s,
                    completed_at=sim.now,
                    #: still merely suspect — eviction beat declaration.
                    before_declaration=lease.alive)
                moved += 1
                self.evictions.append(entry)
                self.node.trace.metrics.counter(
                    "supervisor.evictions").inc(label=lease.name)
        finally:
            self._evicting_nodes.discard(lease.index)
            self._spans.end(span, moved=moved)

    def eviction_active(self, app_name: str) -> bool:
        """True while a member of ``app_name`` is being migrated away
        from a suspect node."""
        return app_name in self._evicting_apps

    # -- death declaration -------------------------------------------------

    def _declare_dead(self, lease: NodeLease) -> None:
        sim = self._sim
        lease.alive = False
        suspected_at = (lease.suspect_since if lease.suspect_since
                        is not None else sim.now)
        if lease.detect_span is not None:
            self._spans.end(lease.detect_span, declared=True)
        lease.detect_span = None
        lease.suspect_since = None
        reason = (f"no heartbeat from {lease.name} for "
                  f"{sim.now - lease.last_beat:.3f}s")
        self.liveness.log(lease.name, LivenessLog.DOWN, at=sim.now,
                          reason=reason, source=self.node.name)
        self.node.trace.metrics.counter("supervisor.deaths").inc(
            label=lease.name)
        self._spans.instant("supervisor.death", node=self.node.name,
                            subject=lease.name)
        self.node.trace.emit(sim.now, "node_death", node=self.node.name,
                             subject=lease.name, reason=reason)
        self.deaths.append({"node": lease.name, "at": sim.now,
                            "reason": reason})
        # Rounds waiting on the dead node's <done> must not burn their
        # full timeout: fail them now so survivors discard half-round
        # images before failover picks a version.
        self.cluster.coordinator.fail_in_flight(
            f"node {lease.name} declared dead")
        if not self.auto_failover:
            return
        for app_name in sorted(self.cluster.apps):
            app = self.cluster.apps[app_name]
            if not any(pod.node.name == lease.name for pod in app.pods):
                continue
            if app.name in self._active_failovers:
                continue
            self._active_failovers.add(app.name)
            sim.process(
                self._failover(app, lease, suspected_at),
                name=f"failover({app.name})")

    # -- failover ----------------------------------------------------------

    def _failover(self, app, lease: NodeLease,
                  suspected_at: float) -> Generator:
        sim = self._sim
        declared_at = sim.now
        # orphan: a concurrent (aborting) round may have spans open on
        # this node; adopting one as parent would let its end() cascade-
        # close the failover spans and zero the phase durations.
        root = self._spans.begin("failover", node=self.node.name,
                                 app=app.name, dead=lease.name,
                                 attach=False, orphan=True)
        try:
            verify_span = self._spans.begin(
                "failover.verify", node=self.node.name, app=app.name,
                parent=root, attach=False)
            # Let the aborted rounds settle: an abort in flight may still
            # be discarding an uncommitted version from the store.
            while self.cluster.store.rounds.in_flight():
                yield sim.timeout(self.settle_s)
            yield sim.timeout(self.settle_s)
            version = yield from self._choose_version(app)
            self._spans.end(verify_span, version=version)

            place_span = self._spans.begin(
                "failover.place", node=self.node.name, app=app.name,
                parent=root, attach=False)
            placement = self._place(app)
            self._spans.end(place_span)

            restart_span = self._spans.begin(
                "failover.restart", node=self.node.name, app=app.name,
                parent=root, attach=False)
            attempts = 0
            while True:
                attempts += 1
                self._destroy_members(app)
                members = [
                    (self.cluster.nodes[placement[pod.name]]
                     .stack.eth0.ip, pod.name)
                    for pod in app.pods]
                try:
                    yield from self.cluster.coordinator.restart(
                        app.name, members, version=version)
                    break
                except CoordinationError as error:
                    if attempts >= self.max_restart_attempts:
                        raise FailoverError(
                            app.name,
                            f"restart failed after {attempts} "
                            f"attempt(s): {error}",
                            version=version, attempts=attempts)
                    # Cascading failure: the chosen target may itself
                    # have died. Back off (lets the aborted round's
                    # cleanup land and the monitor declare new deaths),
                    # then re-place on whoever still holds a lease.
                    yield sim.timeout(self.retry_backoff_s * attempts)
                    placement = self._place(app)
            self._spans.end(restart_span, attempts=attempts)
            self.cluster.repoint_app(app, members)
            record = FailoverRecord(
                app=app.name, dead_node=lease.name, version=version,
                attempts=attempts,
                placement={pod_name: self.cluster.nodes[index].name
                           for pod_name, index in placement.items()},
                suspected_at=suspected_at, declared_at=declared_at,
                completed_at=sim.now,
                detect_s=declared_at - suspected_at,
                verify_s=verify_span.duration,
                place_s=place_span.duration,
                restart_s=restart_span.duration)
            self.failovers.append(record)
            self.node.trace.metrics.histogram("failover.mttr_s").observe(
                record.mttr_s)
            self.node.trace.emit(sim.now, "failover", node=self.node.name,
                                 app=app.name, version=version,
                                 attempts=attempts, mttr=record.mttr_s)
        except (FailoverError, RestartMismatchError) as error:
            failure = error if isinstance(error, FailoverError) else \
                FailoverError(app.name, str(error))
            self.failures.append(failure)
            self.node.trace.metrics.counter("failover.failures").inc(
                label=app.name)
            self._spans.instant("failover.failed", node=self.node.name,
                                app=app.name, reason=str(failure))
            self.node.trace.emit(sim.now, "failover_failed",
                                 node=self.node.name, app=app.name,
                                 reason=str(failure))
        finally:
            self._spans.end(root)
            self._active_failovers.discard(app.name)

    def _choose_version(self, app) -> Generator:
        """Newest committed version every member has, verified green.

        With a sharded store a committed version is only usable if every
        chunk it references survives on some live replica, so candidates
        are intersected with each member's
        :meth:`~repro.cruz.storage.ImageStore.reconstructible_versions`
        before verification. Charges simulated disk-read time for each
        image inspected, so the ``failover.verify`` span measures real
        work.
        """
        store = self.cluster.store
        costs = self.node.costs
        # A node whose lease is still warm but whose agent is already
        # gone contributes no capacity and no replicas: without this,
        # losing every node at once reads as a storage problem instead
        # of the total-capacity loss it is.
        if not any(self._node_alive(i)
                   and not self.cluster.agents[i].crashed
                   for i in range(self.cluster.n_app_nodes)):
            raise FailoverError(
                app.name, "no surviving capacity: every app node is dead")
        member_names = [pod.name for pod in app.pods]
        common = None
        for name in member_names:
            versions = set(store.versions(name))
            common = versions if common is None else common & versions
        if not common:
            raise FailoverError(
                app.name, "no committed checkpoint version shared by "
                          f"members {member_names}")
        usable = None
        for name in member_names:
            views = set(store.reconstructible_versions(name))
            usable = views if usable is None else usable & views
        candidates = common & usable
        if not candidates:
            raise FailoverError(
                app.name, "no shared committed version is reconstructible "
                          f"from surviving replicas "
                          f"(committed: {sorted(common)})")
        rejected = []
        for version in sorted(candidates, reverse=True):
            all_green = True
            for name in member_names:
                try:
                    image = store.load(name, version)
                except StoreError as error:
                    # A replica died between the reconstructibility scan
                    # and the read: fall back to an older version.
                    rejected.append((version, name, [str(error)]))
                    all_green = False
                    break
                yield self._sim.timeout(
                    image.state_bytes / costs.disk_read_bandwidth)
                report = verify_image(image)
                if not report.ok:
                    rejected.append((version, name, report.problems))
                    all_green = False
                    break
            if all_green:
                return version
        raise FailoverError(
            app.name, f"no stored version passes verification "
                      f"(rejected: {rejected})")

    def _node_alive(self, index: int) -> bool:
        lease = self.leases.get(index)
        if lease is not None:
            return lease.alive
        return not self.cluster.agents[index].crashed

    def _place(self, app) -> Dict[str, int]:
        """pod name -> target node index; least-loaded, index tie-break.

        Pods whose home node still holds a lease stay put; the dead
        node's pods go to the surviving node currently hosting the
        fewest pods (excluding this app's own members, which are about
        to be destroyed and re-placed), lowest index winning ties.
        """
        cluster = self.cluster
        candidates = [i for i in range(cluster.n_app_nodes)
                      if self._node_alive(i)]
        if not candidates:
            raise FailoverError(
                app.name, "no surviving capacity: every app node is dead")
        member_names = {pod.name for pod in app.pods}
        load = {i: sum(1 for name in cluster.agents[i].pods
                       if name not in member_names)
                for i in candidates}
        by_name = {node.name: index
                   for index, node in enumerate(cluster.nodes)}
        placement = {}
        for pod in app.pods:
            home = by_name.get(pod.node.name)
            if home in candidates:
                target = home
            else:
                target = min(candidates, key=lambda i: (load[i], i))
            placement[pod.name] = target
            load[target] += 1
        return placement

    def _destroy_members(self, app) -> None:
        """Destroy any member pod still registered on a live agent.

        Covers the surviving original pods before the first restart
        attempt, and stragglers from an aborted attempt before a retry
        (their agents normally clean up on ABORT; this is the backstop).
        """
        for pod in app.pods:
            for agent in self.cluster.agents:
                if agent.crashed:
                    continue
                registered = agent.pods.get(pod.name)
                if registered is not None:
                    self.cluster.destroy_pod(registered)

    def failover_active(self, app_name: str) -> bool:
        """True while an automatic failover of ``app_name`` is running."""
        return app_name in self._active_failovers

    # -- reporting ---------------------------------------------------------

    def lease_table(self) -> List[Dict]:
        """Plain-data liveness snapshot (CLI/debugging)."""
        now = self._sim.now
        return [{"node": lease.name, "alive": lease.alive,
                 "beats": lease.beats,
                 "silence_s": now - lease.last_beat,
                 "suspect": lease.suspect_since is not None}
                for _index, lease in sorted(self.leases.items())]
