"""Point-to-point links with bandwidth, latency, and fault injection.

A link connects two :class:`Port` endpoints. Each direction is an independent
FIFO: frames serialise at the link bandwidth and then propagate after the
fixed latency, matching store-and-forward Ethernet behaviour closely enough
for the paper's timing results.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.errors import NetworkError
from repro.net.packet import EthernetFrame
from repro.sim.core import Simulator

GIGABIT = 1_000_000_000.0


class Port:
    """One attachment point: something that can emit and accept frames."""

    def __init__(self, name: str,
                 receive: Callable[[EthernetFrame, "Port"], None]):
        self.name = name
        self._receive = receive
        self.link: Optional["Link"] = None
        self.frames_in = 0
        self.frames_out = 0

    def deliver(self, frame: EthernetFrame) -> None:
        self.frames_in += 1
        self._receive(frame, self)

    def transmit(self, frame: EthernetFrame) -> None:
        if self.link is None:
            raise NetworkError(f"port {self.name} is not cabled")
        self.frames_out += 1
        self.link.send(frame, self)

    def __repr__(self) -> str:
        return f"<Port {self.name}>"


class Link:
    """A full-duplex cable between two ports.

    With a telemetry hub attached (``trace=``), dropped frames feed the
    ``link.frames_dropped`` counter (labelled per link) and up/down
    transitions are recorded as ``link.down``/``link.up`` span instants
    plus the ``link.links_down`` gauge — so chaos runs show data-plane
    loss in ``repro trace`` output. ``link.down = True`` keeps working as
    a plain attribute assignment.
    """

    def __init__(self, sim: Simulator, a: Port, b: Port,
                 bandwidth_bps: float = GIGABIT,
                 latency_s: float = 5e-6,
                 drop_fn: Optional[Callable[[EthernetFrame], bool]] = None,
                 name: str = "", trace=None):
        if a.link is not None or b.link is not None:
            raise NetworkError("port already cabled")
        self.sim = sim
        self.a = a
        self.b = b
        self.bandwidth_bps = bandwidth_bps
        self.latency_s = latency_s
        self.drop_fn = drop_fn
        self.name = name or f"{a.name}<->{b.name}"
        self.trace = trace
        self._down = False
        self.frames_dropped = 0
        self._busy_until = {id(a): 0.0, id(b): 0.0}
        a.link = self
        b.link = self

    @property
    def down(self) -> bool:
        return self._down

    @down.setter
    def down(self, value: bool) -> None:
        value = bool(value)
        if value == self._down:
            return
        self._down = value
        if self.trace is not None:
            self.trace.metrics.gauge("link.links_down").add(
                1 if value else -1)
            self.trace.spans.instant(
                "link.down" if value else "link.up", link=self.name)
            self.trace.emit(self.sim.now,
                            "link_down" if value else "link_up",
                            link=self.name)

    def _drop(self, frame: EthernetFrame) -> None:
        self.frames_dropped += 1
        if self.trace is not None:
            self.trace.metrics.counter("link.frames_dropped").inc(
                label=self.name)

    def send(self, frame: EthernetFrame, source: Port) -> None:
        """Queue ``frame`` for transmission from ``source``'s side."""
        if source is self.a:
            destination = self.b
        elif source is self.b:
            destination = self.a
        else:
            raise NetworkError(f"{source!r} is not on link {self.name}")
        if self._down or (self.drop_fn is not None
                          and self.drop_fn(frame)):
            self._drop(frame)
            return
        start = max(self.sim.now, self._busy_until[id(source)])
        finish = start + frame.size * 8.0 / self.bandwidth_bps
        self._busy_until[id(source)] = finish
        arrival = finish + self.latency_s
        self.sim.call_at(arrival, self._arrive, frame, destination)

    def _arrive(self, frame: EthernetFrame, destination: Port) -> None:
        if self._down:
            self._drop(frame)
            return
        destination.deliver(frame)
