"""Hashed timer wheel for high-churn, cancellation-heavy timers.

TCP arms and cancels timers at a ferocious rate: every ACK re-arms the
retransmission timer, every other received segment arms (and the next
transmission cancels) a delayed-ACK timer, zero-window probes and
keepalives back off and re-arm. Modelling each arm as its own simulator
event meant the event queue filled with timers that would almost always
be cancelled before firing.

The wheel hashes each timer to a time **slot** of ``granularity``
seconds (a power of two, mirroring the kernel's jiffy wheel). All
timers in a slot share **one** simulator event, scheduled when the slot
first becomes occupied; cancellation just blanks the handle — O(1), no
queue traffic at all. Timers therefore fire at their deadline rounded
*up* to the slot boundary, i.e. at most ``granularity`` late — the same
contract as jiffy-resolution kernel timers, which every armed protocol
(RTO, delayed ACK, keepalive, TIME-WAIT) is specified to tolerate.

Firing order is deterministic: slots fire in time order through the
simulator queue, and within a slot handles run in arming order.

``timers_for(sim)`` returns the simulator's shared wheel — or, when the
simulator was built with ``slotted_timers=False`` (the legacy scheduler
preset the simcore benchmark measures against), a shim with the same
handle API over exact per-timer ``call_later`` events.
"""

from __future__ import annotations

import math
from typing import Any, Callable, Dict, List

from repro.errors import SimulationError

#: Slot width: 2**-13 s ≈ 122 µs. Coarse enough that a busy simulation
#: lands many timers per slot, fine enough that the worst-case lateness
#: is negligible against the tens-of-milliseconds timers it carries.
DEFAULT_GRANULARITY = 2.0 ** -13


class TimerHandle:
    """One armed timer. ``cancel()`` is O(1) and touches no queue."""

    __slots__ = ("deadline", "_fn", "_args")

    def __init__(self, deadline: float, fn: Callable, args: tuple):
        self.deadline = deadline
        self._fn = fn
        self._args = args

    @property
    def active(self) -> bool:
        """True while armed: neither fired nor cancelled."""
        return self._fn is not None

    def cancel(self) -> None:
        self._fn = None
        self._args = ()

    def _fire(self) -> None:
        fn, args = self._fn, self._args
        self._fn = None
        self._args = ()
        fn(*args)

    def __repr__(self) -> str:
        state = "armed" if self.active else "spent"
        return f"<TimerHandle @{self.deadline:.6f} {state}>"


class TimerWheel:
    """Hashed wheel: absolute slot index -> list of handles."""

    KIND = "wheel"
    #: Restart-heavy users (the TCP RTO) may keep an armed handle and
    #: just move their logical deadline, re-arming lazily on a stale
    #: firing — the kernel's ``mod_timer`` discipline. O(1), no wheel
    #: traffic per restart.
    LAZY_RESTART = True

    def __init__(self, sim, granularity: float = DEFAULT_GRANULARITY):
        if granularity <= 0:
            raise SimulationError(f"bad wheel granularity {granularity}")
        self.sim = sim
        self.granularity = granularity
        self._inv = 1.0 / granularity
        self._slots: Dict[int, List[TimerHandle]] = {}
        self.armed = 0
        self.fired = 0
        self.cancelled_fired = 0
        self.slot_events = 0

    def after(self, delay: float, fn: Callable, *args: Any) -> TimerHandle:
        """Arm ``fn(*args)`` to run ``delay`` seconds from now (rounded
        up to the slot boundary). Returns a cancellable handle."""
        if delay < 0:
            raise SimulationError(f"negative timer delay {delay}")
        sim = self.sim
        now = sim._now
        deadline = now + delay
        handle = TimerHandle(deadline, fn, args)
        slot = math.ceil(deadline * self._inv)
        slots = self._slots
        bucket = slots.get(slot)
        if bucket is None:
            slots[slot] = [handle]
            slot_time = slot * self.granularity
            if slot_time < now:
                slot_time = now
            sim.defer_at(slot_time, self._fire_slot, slot)
            self.slot_events += 1
        else:
            bucket.append(handle)
        self.armed += 1
        return handle

    def _fire_slot(self, slot: int) -> None:
        # Detach the bucket first: a firing timer may re-arm into this
        # same slot index, which then gets a fresh bucket + event.
        bucket = self._slots.pop(slot, None)
        if bucket is None:
            return
        for handle in bucket:
            if handle._fn is None:
                self.cancelled_fired += 1
                continue
            self.fired += 1
            handle._fire()

    def stats(self) -> Dict[str, Any]:
        pending = sum(len(bucket) for bucket in self._slots.values())
        return {
            "kind": self.KIND, "granularity": self.granularity,
            "armed": self.armed, "fired": self.fired,
            "cancelled": self.cancelled_fired,
            "slot_events": self.slot_events,
            "pending": pending, "slots": len(self._slots),
        }


class DirectTimers:
    """Exact per-timer events behind the wheel's handle API.

    The legacy scheduler preset: every ``after`` is its own simulator
    event at the exact deadline, cancellation reclaims it via
    ``Simulator.cancel``. Kept so the simcore benchmark can measure the
    wheel against the pre-refactor discipline, and for workloads that
    need exact (unquantised) timer deadlines.
    """

    KIND = "direct"
    #: Pre-refactor discipline: every restart is a fresh event, so lazy
    #: deadline-bumping must not be used (the benchmark baseline would
    #: stop modelling the old cost).
    LAZY_RESTART = False

    def __init__(self, sim):
        self.sim = sim
        self.armed = 0

    def after(self, delay: float, fn: Callable, *args: Any):
        self.armed += 1
        return _DirectHandle(self.sim, delay, fn, args)

    def stats(self) -> Dict[str, Any]:
        return {"kind": self.KIND, "armed": self.armed}


class _DirectHandle:
    """TimerHandle lookalike over one ``call_later`` event."""

    __slots__ = ("sim", "deadline", "_event")

    def __init__(self, sim, delay: float, fn: Callable, args: tuple):
        self.sim = sim
        self.deadline = sim._now + delay
        self._event = sim.call_later(delay, fn, *args)

    @property
    def active(self) -> bool:
        event = self._event
        return event is not None and not event.processed

    def cancel(self) -> None:
        if self._event is not None:
            self.sim.cancel(self._event)
            self._event = None


def timers_for(sim) -> Any:
    """The simulator's shared timer facility (created on first use)."""
    timers = sim.timers
    if timers is None:
        timers = (TimerWheel(sim) if sim.slotted_timers
                  else DirectTimers(sim))
        sim.timers = timers
    return timers
