"""Span-based telemetry layered on the simulator clock.

The paper's whole evaluation (Fig. 4-6, the message-count table) is a set
of timing decompositions of checkpoint rounds. Flat trace records cannot
express "how long did node2 spend in the Fig. 4 serialize window of epoch
7" — nested, labelled spans can:

* :class:`SpanRecorder` records :class:`Span` intervals against a clock
  (the simulator's ``now``). Spans carry a ``node``, arbitrary attributes
  (``epoch``, ``pod`` ...), and parent/child links maintained by a
  per-node ambient stack (or an explicit ``parent=``).
* :class:`MetricsRegistry` holds typed metrics — :class:`CounterMetric`,
  :class:`GaugeMetric`, :class:`HistogramMetric` — replacing the ad-hoc
  counter dicts that used to live on :class:`repro.sim.trace.Trace`.
* Exporters: :meth:`SpanRecorder.to_chrome` emits Chrome ``trace_event``
  JSON (loadable in Perfetto / ``chrome://tracing``);
  :meth:`SpanRecorder.summary_rows` emits a flat per-span-name table.

The span taxonomy used by the Cruz instrumentation is documented in
``docs/OBSERVABILITY.md``; the round state machine in ``docs/PROTOCOL.md``
cross-references each protocol step to its span name.

Recording never touches the event queue or the random streams, so an
instrumented run is event-for-event identical to an uninstrumented one —
the Fig. 5 regression test asserts this bit-for-bit.
"""

from __future__ import annotations

from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
)

#: Span kinds: an interval with a start and an end, or a point event.
SPAN = "span"
INSTANT = "instant"


class Span:
    """One labelled interval (or instant) on a node's timeline."""

    __slots__ = ("span_id", "parent_id", "name", "node", "start", "end",
                 "attrs", "kind")

    def __init__(self, span_id: int, name: str, node: str, start: float,
                 parent_id: Optional[int] = None, kind: str = SPAN,
                 attrs: Optional[Dict[str, Any]] = None):
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.node = node
        self.start = start
        self.end: Optional[float] = start if kind == INSTANT else None
        self.attrs: Dict[str, Any] = attrs or {}
        self.kind = kind

    @property
    def is_open(self) -> bool:
        return self.end is None

    @property
    def duration(self) -> float:
        """Seconds from start to end (0.0 while the span is still open)."""
        return (self.end if self.end is not None else self.start) - \
            self.start

    def __repr__(self) -> str:
        state = "open" if self.is_open else f"{self.duration:.6f}s"
        return f"<Span {self.name} @{self.node} {state} {self.attrs}>"


class _SpanContext:
    """``with recorder.span(...)`` support."""

    __slots__ = ("_recorder", "span")

    def __init__(self, recorder: "SpanRecorder", span: Span):
        self._recorder = recorder
        self.span = span

    def __enter__(self) -> Span:
        return self.span

    def __exit__(self, exc_type, exc, tb) -> None:
        self._recorder.end(self.span)


class SpanRecorder:
    """Append-only span store with ambient per-node parenting.

    ``begin`` opens a span and (by default) pushes it on the node's
    ambient stack, so spans opened afterwards on the same node become its
    children; ``end`` closes it, removing it from the stack wherever it
    sits (concurrent simulation processes may close out of LIFO order)
    and closing any descendants left open. When ``enabled`` is false no
    span is retained — queries return nothing and exports are empty — but
    ``begin``/``end`` still hand back usable Span objects so callers can
    measure without guarding.
    """

    def __init__(self, clock: Optional[Callable[[], float]] = None,
                 enabled: bool = True):
        self._clock = clock if clock is not None else (lambda: 0.0)
        self.enabled = enabled
        self.spans: List[Span] = []
        self._by_id: Dict[int, Span] = {}
        self._children: Dict[int, List[Span]] = {}
        self._stacks: Dict[str, List[Span]] = {}
        self._next_id = 1

    def attach_clock(self, clock: Callable[[], float]) -> None:
        """Bind the recorder to a time source (the simulator's ``now``)."""
        self._clock = clock

    @property
    def now(self) -> float:
        return self._clock()

    # -- recording ---------------------------------------------------------

    def begin(self, name: str, node: str = "",
              parent: Optional[Span] = None, attach: bool = True,
              orphan: bool = False, **attrs: Any) -> Span:
        """Open a span. ``attach=False`` keeps it off the ambient stack
        (its children must name it via ``parent=`` explicitly) — used for
        waits that overlap concurrent work on the same node.
        ``orphan=True`` additionally refuses the ambient stack top as an
        implicit parent: the span is a root even if unrelated work is
        open on the same node — otherwise closing that unrelated span
        would cascade-close this one (``end`` closes open descendants)."""
        span = Span(self._next_id, name, node, self._clock(), attrs=attrs)
        self._next_id += 1
        if not self.enabled:
            return span
        stack = self._stacks.setdefault(node, [])
        if parent is None and not orphan and stack:
            parent = stack[-1]
        if parent is not None:
            span.parent_id = parent.span_id
            self._children.setdefault(parent.span_id, []).append(span)
        self.spans.append(span)
        self._by_id[span.span_id] = span
        if attach:
            stack.append(span)
        return span

    def end(self, span: Span, **attrs: Any) -> Span:
        """Close a span (idempotent); closes any still-open descendants
        at the same timestamp and merges ``attrs`` into the span."""
        if attrs:
            span.attrs.update(attrs)
        if span.end is not None:
            return span
        when = self._clock()
        span.end = when
        for child in self._children.get(span.span_id, ()):
            if child.is_open:
                self.end(child)
        stack = self._stacks.get(span.node)
        if stack is not None:
            for index in range(len(stack) - 1, -1, -1):
                if stack[index] is span:
                    del stack[index]
                    break
        return span

    def span(self, name: str, node: str = "",
             parent: Optional[Span] = None, attach: bool = True,
             **attrs: Any) -> _SpanContext:
        """Context manager: ``with spans.span("serialize", node=...):``."""
        return _SpanContext(
            self, self.begin(name, node=node, parent=parent,
                             attach=attach, **attrs))

    def instant(self, name: str, node: str = "", **attrs: Any) -> Span:
        """Record a zero-duration point event (never on the stack)."""
        span = Span(self._next_id, name, node, self._clock(),
                    kind=INSTANT, attrs=attrs)
        self._next_id += 1
        if self.enabled:
            stack = self._stacks.get(node)
            if stack:
                span.parent_id = stack[-1].span_id
                self._children.setdefault(span.parent_id, []).append(span)
            self.spans.append(span)
            self._by_id[span.span_id] = span
        return span

    def current(self, node: str = "") -> Optional[Span]:
        """The innermost open span on ``node``'s ambient stack, or None.

        The runtime sanitizer uses this to annotate each violation with
        the phase it fired inside (e.g. ``agent.local[epoch=3]``).
        """
        stack = self._stacks.get(node)
        return stack[-1] if stack else None

    def innermost(self) -> Optional[Span]:
        """The deepest open span across every node's ambient stack.

        Checkers with no node of their own (the shared image store, the
        end-of-round audits) use this to attribute a violation to the
        operation in flight — during a checkpoint round that is e.g.
        ``zap.store_write`` rather than nothing at all.
        """
        best: Optional[Span] = None
        depth = 0
        for stack in self._stacks.values():
            if len(stack) > depth:
                depth = len(stack)
                best = stack[-1]
        return best

    def clear(self) -> None:
        self.spans.clear()
        self._by_id.clear()
        self._children.clear()
        self._stacks.clear()

    # -- queries -----------------------------------------------------------

    def parent_of(self, span: Span) -> Optional[Span]:
        if span.parent_id is None:
            return None
        return self._by_id.get(span.parent_id)

    def children_of(self, span: Span) -> List[Span]:
        return list(self._children.get(span.span_id, ()))

    def effective_attr(self, span: Span, key: str,
                       default: Any = None) -> Any:
        """``span.attrs[key]``, inherited from the nearest ancestor that
        sets it — e.g. a ``zap.serialize`` span inherits ``epoch`` from
        the ``agent.local`` span it nests under."""
        current: Optional[Span] = span
        while current is not None:
            if key in current.attrs:
                return current.attrs[key]
            current = self.parent_of(current)
        return default

    def query(self, name: Optional[str] = None,
              node: Optional[str] = None,
              include_open: bool = False,
              **attrs: Any) -> List[Span]:
        """Spans matching name/node and every attr (ancestors included)."""
        out = []
        for span in self.spans:
            if span.is_open and not include_open:
                continue
            if name is not None and span.name != name:
                continue
            if node is not None and span.node != node:
                continue
            if any(self.effective_attr(span, key) != value
                   for key, value in attrs.items()):
                continue
            out.append(span)
        return out

    def one(self, name: str, **attrs: Any) -> Span:
        """The unique span matching; raises if zero or several match."""
        matches = self.query(name=name, include_open=True, **attrs)
        if len(matches) != 1:
            raise LookupError(
                f"expected exactly one span {name!r} matching {attrs}, "
                f"found {len(matches)}")
        return matches[0]

    # -- exporters ---------------------------------------------------------

    def to_chrome(self) -> Dict[str, Any]:
        """Chrome ``trace_event`` JSON (the dict; caller serialises).

        Nodes map to processes (``pid`` + a ``process_name`` metadata
        event); spans are complete ``"X"`` events with microsecond
        timestamps, instants are ``"i"`` events. Span attrs ride in
        ``args`` together with ``span_id``/``parent_id`` so the hierarchy
        survives the flat format.
        """
        events: List[Dict[str, Any]] = []
        pid_of: Dict[str, int] = {}

        def pid_for(node: str) -> int:
            label = node or "global"
            if label not in pid_of:
                pid_of[label] = len(pid_of) + 1
                events.append({
                    "name": "process_name", "ph": "M",
                    "pid": pid_of[label], "tid": 0,
                    "args": {"name": label}})
            return pid_of[label]

        for span in self.spans:
            args = dict(span.attrs)
            args["span_id"] = span.span_id
            if span.parent_id is not None:
                args["parent_id"] = span.parent_id
            base = {
                "name": span.name,
                "cat": span.name.split(".", 1)[0],
                "pid": pid_for(span.node),
                "tid": 1,
                "ts": span.start * 1e6,
                "args": args,
            }
            if span.kind == INSTANT:
                base.update(ph="i", s="t")
            else:
                end = span.end if span.end is not None else span.start
                base.update(ph="X", dur=(end - span.start) * 1e6)
            events.append(base)
        return {"traceEvents": events, "displayTimeUnit": "ms"}

    def summary_rows(self) -> List[Dict[str, Any]]:
        """Flat per-name aggregate: count, total/mean/max seconds."""
        agg: Dict[str, List[float]] = {}
        for span in self.spans:
            if span.is_open:
                continue
            agg.setdefault(span.name, []).append(span.duration)
        rows = []
        for name in sorted(agg):
            durations = agg[name]
            rows.append({
                "span": name,
                "count": len(durations),
                "total_s": sum(durations),
                "mean_s": sum(durations) / len(durations),
                "max_s": max(durations),
            })
        return rows


def union_coverage(intervals: Iterable[Tuple[float, float]],
                   start: float, end: float) -> float:
    """Fraction of ``[start, end]`` covered by the union of intervals."""
    window = end - start
    if window <= 0:
        return 0.0
    clipped = sorted(
        (max(lo, start), min(hi, end))
        for lo, hi in intervals if hi > start and lo < end)
    covered = 0.0
    cursor = start
    for lo, hi in clipped:
        if hi <= cursor:
            continue
        covered += hi - max(lo, cursor)
        cursor = hi
    return covered / window


def round_phases(recorder: SpanRecorder, epoch: int) -> Dict[str, float]:
    """Per-phase breakdown of one coordination round, in seconds.

    Coordinator phases (``coord.*``) are sequential, so repeats sum;
    agent/zap phases run in parallel across nodes, so the value is the
    max — the critical-path view of where the round's latency went.
    """
    phases: Dict[str, float] = {}
    for span in recorder.query(epoch=epoch):
        if span.name == "round" or span.kind == INSTANT:
            continue
        if span.name.startswith("coord."):
            phases[span.name] = phases.get(span.name, 0.0) + span.duration
        else:
            phases[span.name] = max(phases.get(span.name, 0.0),
                                    span.duration)
    return phases


def round_coverage(recorder: SpanRecorder, epoch: int) -> float:
    """Fraction of one round's latency window the phase spans account for.

    The window is the ``round`` span's start to the end of the
    coordinator's ``coord.wait_done`` phase — the exact interval
    ``RoundStats.latency_s`` measures. Every span except the umbrella
    ``round`` span counts toward coverage; a healthy instrumentation
    covers ≥ 95 % of the window (the rest is message flight time between
    phases).
    """
    round_span = recorder.one("round", epoch=epoch)
    try:
        end = recorder.one("coord.wait_done", epoch=epoch).end
    except LookupError:
        end = round_span.end
    if end is None:
        return 0.0
    intervals = [(span.start, span.end)
                 for span in recorder.query(epoch=epoch)
                 if span.name != "round" and span.kind == SPAN]
    return union_coverage(intervals, round_span.start, end)


# ---------------------------------------------------------------------------
# Typed metrics
# ---------------------------------------------------------------------------


class CounterMetric:
    """Monotonic counter with optional per-label sub-counts."""

    __slots__ = ("name", "value", "by_label")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0
        self.by_label: Dict[str, float] = {}

    def inc(self, amount: float = 1, label: str = "") -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease")
        self.value += amount
        if label:
            self.by_label[label] = self.by_label.get(label, 0) + amount

    def labelled(self, label: str) -> float:
        return self.by_label.get(label, 0)


class GaugeMetric:
    """A value that can move both ways (queue depth, open rounds...)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def add(self, delta: float) -> None:
        self.value += delta


class HistogramMetric:
    """Exact-sample histogram with nearest-rank percentiles."""

    __slots__ = ("name", "values")

    def __init__(self, name: str):
        self.name = name
        self.values: List[float] = []

    def observe(self, value: float) -> None:
        self.values.append(value)

    @property
    def count(self) -> int:
        return len(self.values)

    @property
    def total(self) -> float:
        return sum(self.values)

    @property
    def mean(self) -> float:
        return self.total / len(self.values) if self.values else 0.0

    def percentile(self, p: float) -> float:
        """Nearest-rank percentile; ``p`` in (0, 100]."""
        if not self.values:
            return 0.0
        if not 0 < p <= 100:
            raise ValueError(f"percentile {p} outside (0, 100]")
        ordered = sorted(self.values)
        rank = max(1, -(-len(ordered) * p // 100))  # ceil without math
        return ordered[int(rank) - 1]


class MetricsRegistry:
    """Named, typed metrics; get-or-create, type-checked per name."""

    def __init__(self):
        self._metrics: Dict[str, Any] = {}

    def _get(self, name: str, cls):
        metric = self._metrics.get(name)
        if metric is None:
            metric = cls(name)
            self._metrics[name] = metric
        elif not isinstance(metric, cls):
            raise TypeError(
                f"metric {name!r} already registered as "
                f"{type(metric).__name__}")
        return metric

    def counter(self, name: str) -> CounterMetric:
        return self._get(name, CounterMetric)

    def gauge(self, name: str) -> GaugeMetric:
        return self._get(name, GaugeMetric)

    def histogram(self, name: str) -> HistogramMetric:
        return self._get(name, HistogramMetric)

    def names(self) -> List[str]:
        return sorted(self._metrics)

    def snapshot(self) -> Dict[str, Any]:
        """Plain-data dump (for ``--json`` output and tests)."""
        out: Dict[str, Any] = {}
        for name in self.names():
            metric = self._metrics[name]
            if isinstance(metric, CounterMetric):
                out[name] = {"type": "counter", "value": metric.value,
                             "by_label": dict(metric.by_label)}
            elif isinstance(metric, GaugeMetric):
                out[name] = {"type": "gauge", "value": metric.value}
            else:
                out[name] = {"type": "histogram", "count": metric.count,
                             "mean": metric.mean,
                             "p50": metric.percentile(50),
                             "p99": metric.percentile(99)}
        return out
