"""§6 (text): "The runtime overhead of Cruz is negligible (less than 0.5%)
since the underlying Zap mechanism requires nothing more than virtualizing
identifiers."
"""

from repro.bench.harness import paper_vs_measured
from repro.bench.overhead import overhead_shape_holds, run_overhead


def test_runtime_overhead(benchmark, show):
    result = benchmark.pedantic(
        lambda: run_overhead(n_nodes=2, steps=200, total_work_s=4.0),
        rounds=1, iterations=1)
    shape = overhead_shape_holds(result)
    show(paper_vs_measured("Runtime virtualisation overhead (slm)", [
        ("pod vs bare runtime", "< 0.5%",
         f"{result.overhead_fraction*100:.4f}% "
         f"({result.bare_runtime_s:.3f}s -> "
         f"{result.pod_runtime_s:.3f}s)",
         shape["overhead_below_half_percent"]),
    ]))
    assert shape["overhead_positive"]
    assert shape["overhead_below_half_percent"]
