"""§5.2: O(N) coordination messages for Cruz versus O(N²) for the
channel-flushing protocols of MPVM/CoCheck/LAM-MPI — measured on the wire
against the same application, plus per-round latency.
"""

from repro.baselines.flush import restart_message_estimate
from repro.bench.harness import paper_vs_measured, render_table
from repro.bench.messages import messages_shape_holds, run_messages


def test_message_complexity(benchmark, show):
    points = benchmark.pedantic(
        lambda: run_messages(node_counts=(2, 4, 8, 16)),
        rounds=1, iterations=1)
    shape = messages_shape_holds(points)
    rows = [[p.n_nodes, p.cruz_messages, p.flush_messages,
             f"{p.cruz_latency_s*1000:.2f} ms",
             f"{p.flush_latency_s*1000:.2f} ms",
             p.flush_restart_estimate]
            for p in points]
    show(render_table(
        "Coordination message complexity — Cruz vs channel flushing",
        ["nodes", "cruz msgs", "flush msgs", "cruz latency",
         "flush latency", "flush restart msgs (est)"], rows))
    last = points[-1]
    show(paper_vs_measured("§5.2 complexity claims", [
        ("Cruz messages", "O(N) (4 per node)",
         f"{points[0].cruz_messages}..{last.cruz_messages} = 4N",
         shape["cruz_linear"]),
        ("flush messages", "O(N^2)",
         f"{points[0].flush_messages}..{last.flush_messages} = 4N+N(N-1)",
         shape["flush_quadratic"]),
        ("who wins per-round latency", "Cruz",
         "Cruz" if shape["cruz_latency_wins"] else "flush",
         shape["cruz_latency_wins"]),
        ("flush restart channel rebuild", "O(N^2) more messages",
         f"{restart_message_estimate(16)} msgs at N=16 vs 0 for Cruz",
         True),
    ]))
    assert all(shape.values()), shape
